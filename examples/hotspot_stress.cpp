// Domain scenario: a stadium event. User attachment is extremely skewed
// (Zipf ~1.6) toward a few cells; the experiment shows why global,
// uncertainty-aware offloading (Appro/Heu) keeps earning reward when the
// local strategies (Greedy/OCORP) jam the hot cells.
//
//   ./examples/hotspot_stress [--seed=N] [--skew=1.6] [--requests=250]
#include <iostream>

#include "baselines/greedy.h"
#include "baselines/heu_kkt.h"
#include "baselines/ocorp.h"
#include "core/appro.h"
#include "core/heu.h"
#include "mec/topology.h"
#include "mec/workload.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 42));
  const double skew = cli.get_double_or("skew", 1.6);
  const int num_requests = static_cast<int>(cli.get_int_or("requests", 250));

  util::Table table({"skew", "Appro ($)", "Heu ($)", "Greedy ($)",
                     "OCORP ($)", "HeuKKT ($)", "Heu/Greedy"});

  for (double s : {0.0, skew / 2.0, skew}) {
    util::Rng rng(seed);
    const mec::Topology topo = mec::generate_topology({}, rng);
    mec::WorkloadParams wparams;
    wparams.num_requests = num_requests;
    wparams.home_skew = s;
    const auto requests = mec::generate_requests(wparams, topo, rng);
    const auto realized = core::realize_demand_levels(requests, rng);
    const core::AlgorithmParams params;

    util::Rng r1(seed + 1), r2(seed + 1);
    const double appro =
        core::run_appro(topo, requests, realized, params, r1).total_reward();
    const double heu =
        core::run_heu(topo, requests, realized, params, r2).total_reward();
    const double greedy =
        baselines::run_greedy(topo, requests, realized, params).total_reward();
    const double ocorp =
        baselines::run_ocorp(topo, requests, realized, params).total_reward();
    const double kkt =
        baselines::run_heu_kkt(topo, requests, realized, params)
            .total_reward();
    table.add_numeric_row(util::format_double(s, 2),
                          {appro, heu, greedy, ocorp, kkt, heu / greedy}, 1);
  }

  table.print(std::cout, "stadium hotspot: reward vs attachment skew");
  std::cout << "\nThe local strategies' reward should fall as the crowd "
               "concentrates; the global algorithms reroute across the "
               "backhaul and hold theirs.\n";
  return 0;
}
