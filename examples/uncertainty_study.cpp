// Scenario: why uncertainty handling matters (the paper's challenges 1-2).
//
// Compares the two reward models (demand-independent vs proportional) and
// shows what each admission strategy loses by using a point estimate of an
// uncertain stream rate:
//   * peak reservation (Greedy/OCORP)  -> over-provisioning, idle capacity
//   * mean commitment (HeuKKT)         -> realization overflow, lost rewards
//   * slot-indexed distribution (Appro) -> Eq. (8) expected-reward packing
//
//   ./examples/uncertainty_study [--seed=N] [--requests=200]
#include <iostream>

#include "baselines/greedy.h"
#include "baselines/heu_kkt.h"
#include "core/appro.h"
#include "mec/topology.h"
#include "mec/workload.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 42));
  const int num_requests = static_cast<int>(cli.get_int_or("requests", 200));

  for (const auto model : {mec::RewardModel::kIndependent,
                           mec::RewardModel::kProportional}) {
    const bool independent = model == mec::RewardModel::kIndependent;
    util::Rng rng(seed);
    const mec::Topology topo = mec::generate_topology({}, rng);
    mec::WorkloadParams wparams;
    wparams.num_requests = num_requests;
    wparams.reward_model = model;
    const auto requests = mec::generate_requests(wparams, topo, rng);
    const auto realized = core::realize_demand_levels(requests, rng);
    const core::AlgorithmParams params;

    util::Rng r1(seed + 1);
    const auto appro =
        core::run_appro(topo, requests, realized, params, r1);
    const auto greedy =
        baselines::run_greedy(topo, requests, realized, params);
    const auto kkt =
        baselines::run_heu_kkt(topo, requests, realized, params);

    util::Table table({"algorithm", "rate estimate", "reward ($)",
                       "rewarded", "admitted"});
    table.add_row({"Appro", "full distribution (Eq. 8)",
                   util::format_double(appro.total_reward(), 1),
                   std::to_string(appro.num_rewarded()),
                   std::to_string(appro.num_admitted())});
    table.add_row({"Greedy", "peak (over-provision)",
                   util::format_double(greedy.total_reward(), 1),
                   std::to_string(greedy.num_rewarded()),
                   std::to_string(greedy.num_admitted())});
    table.add_row({"HeuKKT", "mean (overflow risk)",
                   util::format_double(kkt.total_reward(), 1),
                   std::to_string(kkt.num_rewarded()),
                   std::to_string(kkt.num_admitted())});
    table.print(std::cout,
                independent
                    ? "demand-INDEPENDENT rewards (paper model, challenge 2)"
                    : "proportional rewards (ablation)");
    std::cout << '\n';
  }

  std::cout << "Under independent rewards, selecting WHICH requests to "
               "serve matters, so the distribution-aware LP wins big; under "
               "the proportional ablation every capacity-filling strategy "
               "collects nearly the same total — exactly the contrast the "
               "paper's challenge 2 describes.\n";
  return 0;
}
