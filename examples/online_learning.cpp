// Online learning scenario: AR requests arrive over a 30 s horizon (600
// slots of 0.05 s); DynamicRR learns the round-robin admission threshold
// with a Lipschitz bandit and is compared against the online baselines.
//
//   ./examples/online_learning [--seed=N] [--requests=N] [--horizon=N]
#include <iostream>

#include "core/types.h"
#include "mec/topology.h"
#include "mec/workload.h"
#include "sim/dynamic_rr.h"
#include "sim/online_baselines.h"
#include "sim/online_sim.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 42));
  util::Rng rng(seed);

  sim::OnlineParams oparams;
  oparams.horizon_slots = static_cast<int>(cli.get_int_or("horizon", 600));

  mec::TopologyParams tparams;
  tparams.num_stations = static_cast<int>(cli.get_int_or("stations", 20));
  const mec::Topology topo = mec::generate_topology(tparams, rng);

  mec::WorkloadParams wparams;
  wparams.num_requests = static_cast<int>(cli.get_int_or("requests", 150));
  wparams.horizon_slots = oparams.horizon_slots;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = core::realize_demand_levels(requests, rng);

  std::cout << "Online horizon: " << oparams.horizon_slots << " slots ("
            << oparams.horizon_slots * oparams.slot_ms / 1000.0 << " s), "
            << requests.size() << " arrivals\n\n";

  util::Table table({"policy", "total reward ($)", "completed", "dropped",
                     "unfinished", "avg latency (ms)", "runtime (ms)"});
  auto run = [&](sim::OnlinePolicy& policy) {
    sim::OnlineSimulator simulator(topo, requests, realized, oparams);
    util::Timer t;
    const auto m = simulator.run(policy);
    table.add_row({policy.name(), util::format_double(m.total_reward, 1),
                   std::to_string(m.completed), std::to_string(m.dropped),
                   std::to_string(m.unfinished),
                   util::format_double(m.avg_latency_ms, 1),
                   util::format_double(t.elapsed_ms(), 1)});
    return m;
  };

  {
    sim::DynamicRrPolicy policy(topo, core::AlgorithmParams{},
                                sim::DynamicRrParams{}, util::Rng(seed + 1));
    run(policy);
    std::cout << "DynamicRR final threshold: " << policy.last_threshold_mhz()
              << " MHz (" << policy.bandit().num_active()
              << " arms still active)\n";
  }
  {
    sim::GreedyOnlinePolicy policy(topo, core::AlgorithmParams{});
    run(policy);
  }
  {
    sim::OcorpOnlinePolicy policy(topo, core::AlgorithmParams{});
    run(policy);
  }
  {
    sim::HeuKktOnlinePolicy policy(topo, core::AlgorithmParams{});
    run(policy);
  }

  table.print(std::cout, "dynamic reward maximization (seed " +
                             std::to_string(seed) + ")");
  return 0;
}
