// Trace pipeline: the paper's "historical information" loop end-to-end.
//
//   1. Synthesize frame-level AR session traces (Braud et al. statistics),
//      or load one from CSV with --trace=<file>.
//   2. Window each trace into data rates and estimate the discrete
//      (rate, reward) demand distribution each request carries.
//   3. Offload the resulting workload with Appro and report how well the
//      estimated distributions predicted the realized demands.
//
//   ./examples/trace_pipeline [--seed=N] [--sessions=N] [--trace=file.csv]
#include <fstream>
#include <iostream>

#include "core/appro.h"
#include "mec/topology.h"
#include "mec/trace.h"
#include "mec/workload.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 42));
  const int sessions = static_cast<int>(cli.get_int_or("sessions", 40));
  util::Rng rng(seed);

  const mec::Topology topo = mec::generate_topology({}, rng);

  // 1-2. Traces -> demand distributions.
  std::vector<mec::ARRequest> requests;
  util::RunningStats observed_rates;
  for (int j = 0; j < sessions; ++j) {
    mec::FrameTrace trace;
    if (const auto path = cli.get("trace")) {
      std::ifstream in(*path);
      if (!in) {
        std::cerr << "cannot open " << *path << '\n';
        return 1;
      }
      trace = mec::FrameTrace::read_csv(in);
    } else {
      mec::TraceParams tparams;
      tparams.duration_s = rng.uniform(4.0, 12.0);
      // Scale the 64 KB frame mean up to land in the paper's 30-50 MB/s
      // band (the paper multiplies per-frame payloads across the 4-task
      // pipeline outputs).
      tparams.frame_kb_mean = rng.uniform(300.0, 460.0);
      trace = mec::synthesize_trace(tparams, rng);
    }
    observed_rates.add(trace.average_rate_mbps());

    mec::ARRequest req;
    req.id = j;
    req.home_station =
        static_cast<int>(rng.uniform_int(0, topo.num_stations() - 1));
    req.tasks = mec::ar_pipeline(
        static_cast<int>(rng.uniform_int(3, 5)));
    req.demand = mec::estimate_demand(trace, mec::EstimateOptions{}, rng);
    req.latency_budget_ms = 200.0;
    requests.push_back(std::move(req));
  }

  std::cout << "Estimated demand distributions from " << sessions
            << " session traces (mean observed rate "
            << util::format_double(observed_rates.mean(), 1) << " MB/s)\n\n";

  util::Table dist_table(
      {"request", "levels", "E[rate] MB/s", "min..max MB/s", "E[reward] $"});
  for (int j = 0; j < std::min<int>(5, sessions); ++j) {
    const auto& d = requests[static_cast<std::size_t>(j)].demand;
    dist_table.add_row(
        {std::to_string(j), std::to_string(d.size()),
         util::format_double(d.expected_rate(), 1),
         util::format_double(d.min_rate(), 1) + ".." +
             util::format_double(d.max_rate(), 1),
         util::format_double(d.expected_reward(), 1)});
  }
  dist_table.print(std::cout, "first five estimated distributions");

  // 3. Offload.
  const auto realized = core::realize_demand_levels(requests, rng);
  util::Rng round_rng(seed + 1);
  const auto result = core::run_appro(topo, requests, realized,
                                      core::AlgorithmParams{}, round_rng);
  std::cout << "\nAppro on the trace-driven workload: "
            << util::format_double(result.total_reward(), 1) << " $ from "
            << result.num_rewarded() << "/" << sessions
            << " rewarded sessions (LP bound "
            << util::format_double(result.lp_bound, 1) << " $)\n";

  // How well did the estimate predict the realization?
  util::RunningStats abs_err;
  for (std::size_t j = 0; j < requests.size(); ++j) {
    const auto& outcome = result.outcomes[j];
    if (!outcome.admitted) continue;
    abs_err.add(std::abs(outcome.realized_rate -
                         requests[j].demand.expected_rate()));
  }
  std::cout << "mean |realized - expected| rate over admitted sessions: "
            << util::format_double(abs_err.mean(), 2) << " MB/s\n";
  return 0;
}
