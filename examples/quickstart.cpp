// Quickstart: build an MEC network, generate AR requests with uncertain
// demands, and compare every offline algorithm on one instance.
//
//   ./examples/quickstart [--seed=N] [--requests=N] [--stations=N]
#include <iostream>

#include "baselines/greedy.h"
#include "baselines/heu_kkt.h"
#include "baselines/ocorp.h"
#include "core/appro.h"
#include "core/heu.h"
#include "core/types.h"
#include "mec/topology.h"
#include "mec/workload.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 42));
  util::Rng rng(seed);

  // 1. The MEC network: a GT-ITM-style topology (paper section VI-A).
  mec::TopologyParams tparams;
  tparams.num_stations = static_cast<int>(cli.get_int_or("stations", 20));
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  std::cout << "MEC network: " << topo.num_stations() << " base stations, "
            << topo.links().size() << " backhaul links, "
            << topo.total_capacity_mhz() << " MHz total capacity\n";

  // 2. AR requests with uncertain demands.
  mec::WorkloadParams wparams;
  wparams.num_requests = static_cast<int>(cli.get_int_or("requests", 150));
  const auto requests = mec::generate_requests(wparams, topo, rng);
  std::cout << "Workload: " << requests.size()
            << " AR requests, rates in [" << wparams.rate_min << ", "
            << wparams.rate_max << "] MB/s over "
            << wparams.num_rate_levels << " levels\n\n";

  // 3. Realize demands once (common random numbers for all algorithms).
  const auto realized = core::realize_demand_levels(requests, rng);

  // 4. Run everything.
  core::AlgorithmParams params;
  util::Table table(
      {"algorithm", "total reward ($)", "rewarded", "admitted",
       "avg latency (ms)", "runtime (ms)"});
  auto report = [&](const std::string& name,
                    const core::OffloadResult& res, double ms) {
    table.add_row({name, util::format_double(res.total_reward(), 1),
                   std::to_string(res.num_rewarded()),
                   std::to_string(res.num_admitted()),
                   util::format_double(res.average_latency_ms(), 1),
                   util::format_double(ms, 1)});
  };

  {
    util::Rng run_rng(seed + 1);
    util::Timer t;
    const auto res = core::run_appro(topo, requests, realized, params, run_rng);
    report("Appro", res, t.elapsed_ms());
    std::cout << "LP upper bound on expected reward: " << res.lp_bound
              << " $\n";
  }
  {
    util::Rng run_rng(seed + 1);
    util::Timer t;
    const auto res = core::run_heu(topo, requests, realized, params, run_rng);
    report("Heu", res, t.elapsed_ms());
  }
  {
    util::Timer t;
    const auto res = baselines::run_greedy(topo, requests, realized, params);
    report("Greedy", res, t.elapsed_ms());
  }
  {
    util::Timer t;
    const auto res = baselines::run_ocorp(topo, requests, realized, params);
    report("OCORP", res, t.elapsed_ms());
  }
  {
    util::Timer t;
    const auto res = baselines::run_heu_kkt(topo, requests, realized, params);
    report("HeuKKT", res, t.elapsed_ms());
  }

  table.print(std::cout, "offline reward maximization (seed " +
                             std::to_string(seed) + ")");
  return 0;
}
