#include "lp/model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace mecar::lp {

int Model::add_variable(std::string name, double objective, double upper,
                        bool integral) {
  if (upper < 0.0) {
    throw std::invalid_argument("Model: variable upper bound below zero");
  }
  vars_.push_back(Variable{std::move(name), objective, upper, integral});
  fixed_values_.push_back(std::numeric_limits<double>::quiet_NaN());
  return static_cast<int>(vars_.size()) - 1;
}

int Model::add_constraint(std::string name, Sense sense, double rhs,
                          std::vector<Term> terms) {
  std::map<int, double> merged;
  for (const Term& t : terms) {
    if (t.col < 0 || t.col >= num_variables()) {
      throw std::out_of_range("Model: term references unknown column");
    }
    merged[t.col] += t.coeff;
  }
  Row row;
  row.name = std::move(name);
  row.sense = sense;
  row.rhs = rhs;
  for (const auto& [col, coeff] : merged) {
    if (coeff != 0.0) row.terms.push_back(Term{col, coeff});
  }
  rows_.push_back(std::move(row));
  return static_cast<int>(rows_.size()) - 1;
}

bool Model::has_integrality() const noexcept {
  return std::any_of(vars_.begin(), vars_.end(),
                     [](const Variable& v) { return v.integral; });
}

double Model::objective_value(const std::vector<double>& x) const {
  if (x.size() != vars_.size()) {
    throw std::invalid_argument("Model::objective_value: size mismatch");
  }
  double value = fixed_objective_;
  for (std::size_t j = 0; j < vars_.size(); ++j) {
    value += vars_[j].objective * x[j];
  }
  return value;
}

double Model::max_violation(const std::vector<double>& x) const {
  if (x.size() != vars_.size()) {
    throw std::invalid_argument("Model::max_violation: size mismatch");
  }
  double worst = 0.0;
  for (std::size_t j = 0; j < vars_.size(); ++j) {
    worst = std::max(worst, -x[j]);                 // x >= 0
    if (std::isfinite(vars_[j].upper)) {
      worst = std::max(worst, x[j] - vars_[j].upper);
    }
  }
  for (const Row& row : rows_) {
    double lhs = 0.0;
    for (const Term& t : row.terms) lhs += t.coeff * x[t.col];
    switch (row.sense) {
      case Sense::kLe: worst = std::max(worst, lhs - row.rhs); break;
      case Sense::kGe: worst = std::max(worst, row.rhs - lhs); break;
      case Sense::kEq: worst = std::max(worst, std::abs(lhs - row.rhs)); break;
    }
  }
  return worst;
}

Model Model::with_fixed(int col, double value) const {
  if (col < 0 || col >= num_variables()) {
    throw std::out_of_range("Model::with_fixed: unknown column");
  }
  if (value < -1e-9 || value > vars_[col].upper + 1e-9) {
    throw std::invalid_argument("Model::with_fixed: value outside bounds");
  }
  Model out = *this;
  out.fixed_objective_ += out.vars_[col].objective * value;
  out.vars_[col].objective = 0.0;
  out.vars_[col].upper = 0.0;  // the remaining free part is forced to 0
  out.vars_[col].integral = false;
  out.fixed_values_[col] = value;
  for (Row& row : out.rows_) {
    for (std::size_t k = 0; k < row.terms.size(); ++k) {
      if (row.terms[k].col == col) {
        row.rhs -= row.terms[k].coeff * value;
        row.terms.erase(row.terms.begin() + static_cast<std::ptrdiff_t>(k));
        break;
      }
    }
  }
  return out;
}

bool Model::is_fixed(int col) const {
  return !std::isnan(fixed_values_.at(col));
}

}  // namespace mecar::lp
