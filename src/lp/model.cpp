#include "lp/model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace mecar::lp {

int Model::add_variable(std::string name, double objective, double upper,
                        bool integral) {
  if (upper < 0.0) {
    throw std::invalid_argument("Model: variable upper bound below zero");
  }
  vars_.push_back(Variable{std::move(name), objective, upper, integral});
  fixed_values_.push_back(std::numeric_limits<double>::quiet_NaN());
  col_rows_.emplace_back();
  return static_cast<int>(vars_.size()) - 1;
}

int Model::add_constraint(std::string name, Sense sense, double rhs,
                          std::vector<Term> terms) {
  std::map<int, double> merged;
  for (const Term& t : terms) {
    if (t.col < 0 || t.col >= num_variables()) {
      throw std::out_of_range("Model: term references unknown column");
    }
    merged[t.col] += t.coeff;
  }
  Row row;
  row.name = std::move(name);
  row.sense = sense;
  row.rhs = rhs;
  const int row_index = static_cast<int>(rows_.size());
  for (const auto& [col, coeff] : merged) {
    if (coeff != 0.0) {
      row.terms.push_back(Term{col, coeff});
      col_rows_[static_cast<std::size_t>(col)].push_back(row_index);
    }
  }
  rows_.push_back(std::move(row));
  return row_index;
}

int Model::add_column(std::string name, double objective, double upper,
                      const std::vector<ColumnEntry>& entries) {
  std::map<int, double> merged;
  for (const ColumnEntry& e : entries) {
    if (e.row < 0 || e.row >= num_constraints()) {
      throw std::out_of_range("Model::add_column: entry references unknown row");
    }
    merged[e.row] += e.coeff;
  }
  const int col = add_variable(std::move(name), objective, upper);
  for (const auto& [row, coeff] : merged) {
    if (coeff == 0.0) continue;
    // The new column index is larger than every existing one, so appending
    // keeps each row's terms sorted by column.
    rows_[static_cast<std::size_t>(row)].terms.push_back(Term{col, coeff});
    col_rows_[static_cast<std::size_t>(col)].push_back(row);
  }
  return col;
}

void Model::remove_column(int col) {
  if (col < 0 || col >= num_variables()) {
    throw std::out_of_range("Model::remove_column: unknown column");
  }
  for (int r : col_rows_[static_cast<std::size_t>(col)]) {
    auto& terms = rows_[static_cast<std::size_t>(r)].terms;
    for (std::size_t k = 0; k < terms.size(); ++k) {
      if (terms[k].col == col) {
        terms.erase(terms.begin() + static_cast<std::ptrdiff_t>(k));
        break;
      }
    }
  }
  col_rows_[static_cast<std::size_t>(col)].clear();
  vars_[static_cast<std::size_t>(col)].objective = 0.0;
  vars_[static_cast<std::size_t>(col)].upper = 0.0;
  vars_[static_cast<std::size_t>(col)].integral = false;
}

void Model::update_bound(int col, double upper) {
  if (col < 0 || col >= num_variables()) {
    throw std::out_of_range("Model::update_bound: unknown column");
  }
  if (upper < 0.0) {
    throw std::invalid_argument("Model::update_bound: upper bound below zero");
  }
  vars_[static_cast<std::size_t>(col)].upper = upper;
}

void Model::update_objective(int col, double objective) {
  if (col < 0 || col >= num_variables()) {
    throw std::out_of_range("Model::update_objective: unknown column");
  }
  vars_[static_cast<std::size_t>(col)].objective = objective;
}

void Model::update_rhs(int row, double rhs) {
  if (row < 0 || row >= num_constraints()) {
    throw std::out_of_range("Model::update_rhs: unknown row");
  }
  rows_[static_cast<std::size_t>(row)].rhs = rhs;
}

bool Model::has_integrality() const noexcept {
  return std::any_of(vars_.begin(), vars_.end(),
                     [](const Variable& v) { return v.integral; });
}

double Model::objective_value(const std::vector<double>& x) const {
  if (x.size() != vars_.size()) {
    throw std::invalid_argument("Model::objective_value: size mismatch");
  }
  double value = fixed_objective_;
  for (std::size_t j = 0; j < vars_.size(); ++j) {
    value += vars_[j].objective * x[j];
  }
  return value;
}

double Model::max_violation(const std::vector<double>& x) const {
  if (x.size() != vars_.size()) {
    throw std::invalid_argument("Model::max_violation: size mismatch");
  }
  double worst = 0.0;
  for (std::size_t j = 0; j < vars_.size(); ++j) {
    worst = std::max(worst, -x[j]);                 // x >= 0
    if (std::isfinite(vars_[j].upper)) {
      worst = std::max(worst, x[j] - vars_[j].upper);
    }
  }
  for (const Row& row : rows_) {
    double lhs = 0.0;
    for (const Term& t : row.terms) lhs += t.coeff * x[t.col];
    switch (row.sense) {
      case Sense::kLe: worst = std::max(worst, lhs - row.rhs); break;
      case Sense::kGe: worst = std::max(worst, row.rhs - lhs); break;
      case Sense::kEq: worst = std::max(worst, std::abs(lhs - row.rhs)); break;
    }
  }
  return worst;
}

Model Model::with_fixed(int col, double value) const {
  if (col < 0 || col >= num_variables()) {
    throw std::out_of_range("Model::with_fixed: unknown column");
  }
  if (value < -1e-9 || value > vars_[col].upper + 1e-9) {
    throw std::invalid_argument("Model::with_fixed: value outside bounds");
  }
  Model out = *this;
  out.fixed_objective_ += out.vars_[col].objective * value;
  out.vars_[col].objective = 0.0;
  out.vars_[col].upper = 0.0;  // the remaining free part is forced to 0
  out.vars_[col].integral = false;
  out.fixed_values_[col] = value;
  for (Row& row : out.rows_) {
    for (std::size_t k = 0; k < row.terms.size(); ++k) {
      if (row.terms[k].col == col) {
        row.rhs -= row.terms[k].coeff * value;
        row.terms.erase(row.terms.begin() + static_cast<std::ptrdiff_t>(k));
        break;
      }
    }
  }
  out.col_rows_[static_cast<std::size_t>(col)].clear();
  return out;
}

bool Model::is_fixed(int col) const {
  return !std::isnan(fixed_values_.at(col));
}

}  // namespace mecar::lp
