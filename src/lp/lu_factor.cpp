#include "lp/lu_factor.h"

#include <cmath>

namespace mecar::lp {

void BasisLu::clear() {
  m_ = 0;
  pivrow_.clear();
  rowpos_.clear();
  lcols_.clear();
  ucols_.clear();
  udiag_.clear();
  etas_.clear();
  factor_nnz_ = 0;
}

bool BasisLu::factorize(const std::vector<SparseCol>& cols,
                        const std::vector<int>& basis, double pivot_tol) {
  const int m = static_cast<int>(basis.size());
  m_ = m;
  etas_.clear();
  pivrow_.assign(static_cast<std::size_t>(m), -1);
  rowpos_.assign(static_cast<std::size_t>(m), -1);
  lcols_.assign(static_cast<std::size_t>(m), {});
  ucols_.assign(static_cast<std::size_t>(m), {});
  udiag_.assign(static_cast<std::size_t>(m), 0.0);
  scratch_.assign(static_cast<std::size_t>(m), 0.0);
  factor_nnz_ = m;

  // Left-looking elimination: work holds the current column with all
  // earlier pivots applied. The per-step scans over elimination steps and
  // rows are O(m) of cheap loads; the arithmetic is proportional to the
  // factor nonzeros, which is what matters on the ~4-nonzeros-per-column
  // slot LPs.
  std::vector<double>& work = scratch_;
  for (int k = 0; k < m; ++k) {
    for (const Term& t : cols[static_cast<std::size_t>(basis[k])].entries) {
      work[static_cast<std::size_t>(t.col)] = t.coeff;
    }
    for (int j = 0; j < k; ++j) {
      const double t = work[static_cast<std::size_t>(pivrow_[j])];
      if (t == 0.0) continue;
      ucols_[static_cast<std::size_t>(k)].push_back(Entry{j, t});
      for (const Entry& e : lcols_[static_cast<std::size_t>(j)]) {
        work[static_cast<std::size_t>(e.idx)] -= e.val * t;
      }
      work[static_cast<std::size_t>(pivrow_[j])] = 0.0;
    }
    int prow = -1;
    double best = pivot_tol;
    for (int r = 0; r < m; ++r) {
      if (rowpos_[static_cast<std::size_t>(r)] >= 0) continue;
      const double v = std::abs(work[static_cast<std::size_t>(r)]);
      if (v > best) {
        best = v;
        prow = r;
      }
    }
    if (prow < 0) {
      // Singular (or hopelessly ill-conditioned) basis: wipe the dense
      // workspace so a later factorize starts clean, and report failure.
      for (int r = 0; r < m; ++r) work[static_cast<std::size_t>(r)] = 0.0;
      clear();
      return false;
    }
    pivrow_[static_cast<std::size_t>(k)] = prow;
    rowpos_[static_cast<std::size_t>(prow)] = k;
    const double pivot = work[static_cast<std::size_t>(prow)];
    udiag_[static_cast<std::size_t>(k)] = pivot;
    work[static_cast<std::size_t>(prow)] = 0.0;
    for (int r = 0; r < m; ++r) {
      if (rowpos_[static_cast<std::size_t>(r)] >= 0) continue;
      const double v = work[static_cast<std::size_t>(r)];
      if (v != 0.0) {
        lcols_[static_cast<std::size_t>(k)].push_back(Entry{r, v / pivot});
        work[static_cast<std::size_t>(r)] = 0.0;
      }
    }
    factor_nnz_ += static_cast<int>(lcols_[static_cast<std::size_t>(k)].size() +
                                    ucols_[static_cast<std::size_t>(k)].size());
  }
  return true;
}

void BasisLu::ftran(std::vector<double>& x) {
  // 1. Apply the L eliminations in pivot order (row space).
  for (int k = 0; k < m_; ++k) {
    const double t = x[static_cast<std::size_t>(pivrow_[k])];
    if (t == 0.0) continue;
    for (const Entry& e : lcols_[static_cast<std::size_t>(k)]) {
      x[static_cast<std::size_t>(e.idx)] -= e.val * t;
    }
  }
  // 2. Backward U solve into position space.
  std::vector<double>& z = scratch_;
  for (int k = m_ - 1; k >= 0; --k) {
    const double v = x[static_cast<std::size_t>(pivrow_[k])] /
                     udiag_[static_cast<std::size_t>(k)];
    z[static_cast<std::size_t>(k)] = v;
    if (v == 0.0) continue;
    for (const Entry& e : ucols_[static_cast<std::size_t>(k)]) {
      x[static_cast<std::size_t>(pivrow_[e.idx])] -= e.val * v;
    }
  }
  for (int k = 0; k < m_; ++k) x[static_cast<std::size_t>(k)] = z[static_cast<std::size_t>(k)];
  // 3. Apply the eta inverses in append order (position space).
  for (const Eta& eta : etas_) {
    const double t = x[static_cast<std::size_t>(eta.r)] / eta.pivot;
    if (t != 0.0) {
      for (const Entry& e : eta.terms) {
        x[static_cast<std::size_t>(e.idx)] -= e.val * t;
      }
    }
    x[static_cast<std::size_t>(eta.r)] = t;
  }
}

void BasisLu::btran(std::vector<double>& x) {
  // Transposed pipeline, reversed: etas backward, then U^T, then L^T.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double t = x[static_cast<std::size_t>(it->r)];
    for (const Entry& e : it->terms) {
      t -= e.val * x[static_cast<std::size_t>(e.idx)];
    }
    x[static_cast<std::size_t>(it->r)] = t / it->pivot;
  }
  // U^T forward solve (position space), scattered back to rows.
  std::vector<double>& v = scratch_;
  for (int k = 0; k < m_; ++k) {
    double t = x[static_cast<std::size_t>(k)];
    for (const Entry& e : ucols_[static_cast<std::size_t>(k)]) {
      t -= e.val * v[static_cast<std::size_t>(e.idx)];
    }
    v[static_cast<std::size_t>(k)] = t / udiag_[static_cast<std::size_t>(k)];
  }
  for (int k = 0; k < m_; ++k) {
    x[static_cast<std::size_t>(pivrow_[k])] = v[static_cast<std::size_t>(k)];
  }
  // L^T backward (row space).
  for (int k = m_ - 1; k >= 0; --k) {
    double t = x[static_cast<std::size_t>(pivrow_[k])];
    for (const Entry& e : lcols_[static_cast<std::size_t>(k)]) {
      t -= e.val * x[static_cast<std::size_t>(e.idx)];
    }
    x[static_cast<std::size_t>(pivrow_[k])] = t;
  }
}

bool BasisLu::push_eta(const std::vector<double>& w, int leave,
                       double unstable_tol, double drop_tol) {
  const double pivot = w[static_cast<std::size_t>(leave)];
  if (std::abs(pivot) <= unstable_tol) return false;
  Eta eta;
  eta.r = leave;
  eta.pivot = pivot;
  for (int i = 0; i < m_; ++i) {
    if (i == leave) continue;
    const double v = w[static_cast<std::size_t>(i)];
    if (std::abs(v) > drop_tol) eta.terms.push_back(Entry{i, v});
  }
  etas_.push_back(std::move(eta));
  return true;
}

}  // namespace mecar::lp
