// MPS (fixed-format-free) export/import for lp::Model.
//
// Lets a slot-indexed LP be dumped for inspection or cross-checked against
// an external solver, and lets externally authored models drive the in-repo
// engines. The dialect written is the widely accepted free MPS subset:
// NAME / ROWS / COLUMNS / RHS / RANGES(omitted) / BOUNDS / ENDATA, with a
// MAXIMIZE comment convention (MPS has no objective-sense record; we write
// `* OBJSENSE MAX` and honour it on read).
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "lp/model.h"

namespace mecar::lp {

/// Structured MPS import failure: the 1-based line number of the offending
/// record plus a message naming the bad field. Derives from
/// std::invalid_argument so existing catch sites keep working.
class MpsParseError : public std::invalid_argument {
 public:
  MpsParseError(int line, const std::string& what_arg)
      : std::invalid_argument("read_mps: line " + std::to_string(line) +
                              ": " + what_arg),
        line_(line) {}
  int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Writes `model` as free MPS. Variable/constraint names are sanitized
/// (spaces -> underscores); integral variables go into an INTORG/INTEND
/// marker block.
void write_mps(const Model& model, std::ostream& os,
               const std::string& name = "MECAR");

/// Parses the subset written by write_mps (objective sense comment, N/L/G/E
/// rows, COLUMNS with integer markers, RHS, UP/BV bounds). Throws
/// MpsParseError (carrying the offending line number and naming the bad
/// field) on malformed input or unsupported records; never lets a raw
/// conversion exception escape.
Model read_mps(std::istream& is);

}  // namespace mecar::lp
