// MPS (fixed-format-free) export/import for lp::Model.
//
// Lets a slot-indexed LP be dumped for inspection or cross-checked against
// an external solver, and lets externally authored models drive the in-repo
// engines. The dialect written is the widely accepted free MPS subset:
// NAME / ROWS / COLUMNS / RHS / RANGES(omitted) / BOUNDS / ENDATA, with a
// MAXIMIZE comment convention (MPS has no objective-sense record; we write
// `* OBJSENSE MAX` and honour it on read).
#pragma once

#include <iosfwd>
#include <string>

#include "lp/model.h"

namespace mecar::lp {

/// Writes `model` as free MPS. Variable/constraint names are sanitized
/// (spaces -> underscores); integral variables go into an INTORG/INTEND
/// marker block.
void write_mps(const Model& model, std::ostream& os,
               const std::string& name = "MECAR");

/// Parses the subset written by write_mps (objective sense comment, N/L/G/E
/// rows, COLUMNS with integer markers, RHS, UP/BV bounds). Throws
/// std::invalid_argument on malformed input or unsupported records.
Model read_mps(std::istream& is);

}  // namespace mecar::lp
