// MPS (fixed-format-free) export/import for lp::Model.
//
// Lets a slot-indexed LP be dumped for inspection or cross-checked against
// an external solver, and lets externally authored models drive the in-repo
// engines. The dialect written is the widely accepted free MPS subset:
// NAME / ROWS / COLUMNS / RHS / BOUNDS / ENDATA, with a MAXIMIZE comment
// convention (MPS has no objective-sense record; we write `* OBJSENSE MAX`
// and honour it on read). The reader additionally accepts RANGES (expanded
// into companion rows) and the full bound menu the model can represent.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "lp/model.h"

namespace mecar::lp {

/// Structured MPS import failure: the 1-based line number of the offending
/// record plus a message naming the bad field. Derives from
/// std::invalid_argument so existing catch sites keep working.
class MpsParseError : public std::invalid_argument {
 public:
  MpsParseError(int line, const std::string& what_arg)
      : std::invalid_argument("read_mps: line " + std::to_string(line) +
                              ": " + what_arg),
        line_(line) {}
  int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Writes `model` as free MPS. Variable/constraint names are sanitized
/// (spaces -> underscores); integral variables go into an INTORG/INTEND
/// marker block.
void write_mps(const Model& model, std::ostream& os,
               const std::string& name = "MECAR");

/// Parses the subset written by write_mps (objective sense comment, N/L/G/E
/// rows, COLUMNS with integer markers, RHS) plus RANGES (each ranged row
/// becomes the original row and a companion row named `<row>~rng` bounding
/// the other side) and BOUNDS records UP / LO (0 only — the model's lower
/// bounds are structurally 0) / FX (applied via Model::with_fixed) / PL /
/// BV. FR and MI are rejected: a free or negative lower bound is not
/// representable. Throws MpsParseError (carrying the offending line number
/// and naming the bad field) on malformed input or unsupported records;
/// never lets a raw conversion exception escape.
Model read_mps(std::istream& is);

}  // namespace mecar::lp
