// Branch-and-bound MIP solver used for the paper's exact solution (ILP-RM).
//
// The paper proposes an exact solution "if the problem size is small"; this
// solver provides it: LP-relaxation bounding with the in-repo simplex,
// most-fractional branching, depth-first search with best-bound pruning.
// Binary variables are branched by fixing (Model::with_fixed); general
// integral variables by adding floor/ceil bound rows.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace mecar::lp {

struct BranchAndBoundOptions {
  SimplexOptions simplex;
  /// Tolerance for considering a relaxation value integral.
  double int_tol = 1e-6;
  /// Prune when bound <= incumbent + gap_tol.
  double gap_tol = 1e-9;
  /// Safety cap on explored nodes (0 = unlimited).
  std::int64_t max_nodes = 2'000'000;
};

struct MipResult {
  SolveStatus status = SolveStatus::kNotSolved;
  double objective = 0.0;
  std::vector<double> x;
  std::int64_t nodes_explored = 0;
  bool optimal() const noexcept { return status == SolveStatus::kOptimal; }
};

/// Exact solver for (mixed) integer programs built with lp::Model.
class BranchAndBound {
 public:
  explicit BranchAndBound(BranchAndBoundOptions options = {})
      : options_(options) {}

  MipResult solve(const Model& model) const;

 private:
  BranchAndBoundOptions options_;
};

}  // namespace mecar::lp
