#include "lp/revised_simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lp/lu_factor.h"
#include "obs/catalog.h"
#include "obs/event_trace.h"
#include "util/log.h"
#include "util/timer.h"

namespace mecar::lp {
namespace {

/// One telemetry update per solve, shared by both solvers' entry points.
void record_solve(const SolveResult& result) {
  const obs::Metrics& m = obs::metrics();
  m.lp_solves.add();
  m.lp_pivots.add(result.iterations);
  m.lp_refactorizations.add(result.stats.refactorizations);
  if (result.stats.warm_start_attempted) {
    if (result.stats.warm_start_used) {
      m.lp_warm_start_hits.add();
    } else {
      m.lp_warm_start_misses.add();
    }
  }
  m.lp_pivots_per_solve.observe(result.iterations);
  m.lp_eta_len.observe(result.stats.eta_len_max);
  m.lp_pricing_mode.set(result.stats.pricing_mode);
  if (result.stats.recoveries() > 0) {
    m.lp_recoveries.add(result.stats.recoveries());
  }
  if (result.status == SolveStatus::kNumericalError) {
    m.lp_numerical_errors.add();
  }
  obs::EventTrace& tr = obs::trace();
  if (tr.enabled()) {
    tr.emit(obs::EventKind::kLpSolve, result.iterations,
            result.stats.refactorizations,
            result.warm_started ? 1.0 : 0.0);
  }
}

/// Eta-update pivots smaller than this are numerically unstable; the
/// engine refactorizes instead of appending the eta.
constexpr double kEtaPivotTol = 1e-8;
/// LU elimination pivot floor: below this the basis is declared singular.
constexpr double kFactorPivotTol = 1e-12;
/// Steepest-edge self-check: a stored reference weight this far (ratio)
/// from the entering column's exact edge norm counts as a drift event.
constexpr double kWeightDriftRatio = 100.0;
/// Drift events tolerated before steepest edge drops to devex.
constexpr int kWeightDriftLimit = 8;
/// In-place recovery attempts (forced refactorizations after a NaN/Inf
/// scan hit) tolerated within one attempt before the engine gives up and
/// reports kNumericalError — the ladder then escalates outside iterate().
constexpr int kMaxNanRecoveryRounds = 4;

/// True when the vector holds no NaN/Inf. The per-pivot guardrail scans
/// are pure reads: they change nothing unless corruption is present.
bool finite_vec(const std::vector<double>& v) {
  for (const double x : v) {
    if (std::isnan(x) || std::isinf(x)) return false;
  }
  return true;
}

class Engine {
 public:
  Engine(const Model& model, const RevisedSimplexOptions& opt)
      : opt_(opt), mode_(opt.pricing) {
    build(model);
  }

  SolveResult run(const Model& model, WarmStartBasis* warm);

 private:
  void build(const Model& model);
  SolveResult run_attempt(const Model& model, WarmStartBasis* warm,
                          bool allow_warm);
  SolveStatus iterate(const std::vector<double>& costs, int& iterations,
                      int max_iterations);
  bool refactorize();
  /// Rung 1 of the recovery ladder: a guardrail scan found NaN/Inf in an
  /// engine vector. Forces a refactorization (dropping the eta file, the
  /// usual corruption carrier) and re-derives the basic solution. False
  /// when the rounds cap is hit or the basis is beyond repair.
  bool recover_in_place();
  void cold_start();
  bool adopt_warm_basis(const WarmStartBasis& warm);
  bool repair_warm_basis(const Model& model, const WarmStartBasis& warm,
                         WarmStartBasis& repaired) const;
  void compute_xb();
  void compute_y(const std::vector<double>& costs);
  int price(const std::vector<double>& costs, bool bland) const;
  void ftran_column(int col);
  /// Test/fuzzer fault injection hook, called after every entering-column
  /// FTRAN. Does nothing unless the options arm it.
  void maybe_inject_fault();
  double sparse_dot(int col, const std::vector<double>& row_vec) const;
  void update_pricing_weights(int entering, int leave, int leaving_col,
                              double gamma_q);
  bool absorb_pivot(int leave);
  bool drive_out_artificials();
  double basic_value(const std::vector<double>& costs) const;
  void extract_solution(const Model& model, SolveResult& result) const;
  void fill_stats(SolveResult& result) const;

  RevisedSimplexOptions opt_;
  PricingMode mode_;
  int m_ = 0;
  int total_cols_ = 0;
  int art_begin_ = 0;
  int price_limit_ = 0;
  std::vector<SparseCol> cols_;
  std::vector<double> rhs_;
  std::vector<double> upper_;  // per tableau column; +inf when unbounded
  std::vector<int> basis_;     // basis position -> column
  std::vector<int> cold_basis_;
  std::vector<char> in_basis_;
  std::vector<char> at_upper_;  // nonbasic rest point (1 = upper bound)
  BasisLu lu_;
  std::vector<double> xb_;     // basic values, position-indexed
  std::vector<double> y_;      // pricing vector, row-indexed
  std::vector<double> w_;      // FTRAN pivot column B^{-1} a_j
  std::vector<double> rho_;    // BTRAN of e_r (steepest edge / devex)
  std::vector<double> sev_;    // BTRAN of w (steepest edge only)
  std::vector<double> gamma_;  // pricing reference weights, per column
  std::vector<int> tab_to_model_;
  std::vector<double> phase2_costs_;
  int refactorizations_ = 0;
  int eta_pivots_ = 0;
  int eta_len_max_ = 0;
  int bound_flips_ = 0;
  int drift_events_ = 0;
  // Recovery-ladder accounting (see SolveStats).
  int recovery_refactorizations_ = 0;
  int recovery_basis_resets_ = 0;
  int recovery_dense_solves_ = 0;
  /// Consecutive in-place recoveries without a clean pivot in between.
  int nan_recovery_rounds_ = 0;
  /// Entering-column FTRANs performed (the injection hooks key off this,
  /// cumulatively across ladder attempts so a one-shot fault stays
  /// one-shot).
  int pivot_attempts_ = 0;
  bool injected_ = false;
  /// True only inside adopt_warm_basis: downgrades the singular-basis
  /// refactor log to debug (the warm path has a by-design cold fallback).
  bool adopting_warm_ = false;
  /// Started at construction; consulted only when budget.deadline_ms > 0.
  util::Timer budget_timer_;
  /// True while the steepest-edge weights are exact edge norms (cold start
  /// from the identity basis, maintained by the Goldfarb update). Warm
  /// starts and artificial drive-out seed/leave approximate reference
  /// weights, where a mismatch with the exact norm is expected and must
  /// not count as numerical drift.
  bool gamma_exact_ = false;
};

void Engine::build(const Model& model) {
  const int n_model = model.num_variables();
  std::vector<int> live(static_cast<std::size_t>(n_model), -1);
  for (int j = 0; j < n_model; ++j) {
    if (model.variable(j).upper > 0.0) {
      live[static_cast<std::size_t>(j)] =
          static_cast<int>(tab_to_model_.size());
      tab_to_model_.push_back(j);
    }
  }
  const int n_live = static_cast<int>(tab_to_model_.size());

  struct RowSpec {
    std::vector<Term> terms;  // live column index, value
    Sense sense = Sense::kLe;
    double rhs = 0.0;
  };
  std::vector<RowSpec> rows;
  for (const Row& row : model.rows()) {
    RowSpec spec;
    spec.sense = row.sense;
    spec.rhs = row.rhs;
    for (const Term& t : row.terms) {
      const int lv = live[static_cast<std::size_t>(t.col)];
      if (lv >= 0) spec.terms.push_back(Term{lv, t.coeff});
    }
    rows.push_back(std::move(spec));
  }
  // Finite variable upper bounds become column bounds, not rows: the basis
  // stays at the true constraint count. (The previous engine appended one
  // explicit <= row per finite bound here.)
  for (RowSpec& row : rows) {
    if (row.rhs < 0.0) {
      row.rhs = -row.rhs;
      for (Term& t : row.terms) t.coeff = -t.coeff;
      if (row.sense == Sense::kLe) row.sense = Sense::kGe;
      else if (row.sense == Sense::kGe) row.sense = Sense::kLe;
    }
  }

  m_ = static_cast<int>(rows.size());
  int n_slack = 0, n_art = 0;
  for (const RowSpec& row : rows) {
    if (row.sense != Sense::kEq) ++n_slack;
    if (row.sense != Sense::kLe) ++n_art;
  }
  art_begin_ = n_live + n_slack;
  total_cols_ = art_begin_ + n_art;

  cols_.resize(static_cast<std::size_t>(total_cols_));
  rhs_.resize(static_cast<std::size_t>(m_));
  upper_.assign(static_cast<std::size_t>(total_cols_), kInf);
  for (int c = 0; c < n_live; ++c) {
    upper_[static_cast<std::size_t>(c)] =
        model.variable(tab_to_model_[static_cast<std::size_t>(c)]).upper;
  }
  basis_.assign(static_cast<std::size_t>(m_), -1);
  in_basis_.assign(static_cast<std::size_t>(total_cols_), 0);
  at_upper_.assign(static_cast<std::size_t>(total_cols_), 0);

  // Structural columns, transposed from rows.
  for (int r = 0; r < m_; ++r) {
    rhs_[static_cast<std::size_t>(r)] = rows[static_cast<std::size_t>(r)].rhs;
    for (const Term& t : rows[static_cast<std::size_t>(r)].terms) {
      cols_[static_cast<std::size_t>(t.col)].entries.push_back(
          Term{r, t.coeff});
    }
  }
  int next_slack = n_live, next_art = art_begin_;
  for (int r = 0; r < m_; ++r) {
    switch (rows[static_cast<std::size_t>(r)].sense) {
      case Sense::kLe:
        cols_[static_cast<std::size_t>(next_slack)].entries.push_back(
            Term{r, 1.0});
        basis_[static_cast<std::size_t>(r)] = next_slack++;
        break;
      case Sense::kGe:
        cols_[static_cast<std::size_t>(next_slack)].entries.push_back(
            Term{r, -1.0});
        ++next_slack;
        cols_[static_cast<std::size_t>(next_art)].entries.push_back(
            Term{r, 1.0});
        basis_[static_cast<std::size_t>(r)] = next_art++;
        break;
      case Sense::kEq:
        cols_[static_cast<std::size_t>(next_art)].entries.push_back(
            Term{r, 1.0});
        basis_[static_cast<std::size_t>(r)] = next_art++;
        break;
    }
  }
  cold_basis_ = basis_;
  for (int b : basis_) in_basis_[static_cast<std::size_t>(b)] = 1;

  xb_.assign(static_cast<std::size_t>(m_), 0.0);
  y_.assign(static_cast<std::size_t>(m_), 0.0);
  w_.assign(static_cast<std::size_t>(m_), 0.0);
  rho_.assign(static_cast<std::size_t>(m_), 0.0);
  sev_.assign(static_cast<std::size_t>(m_), 0.0);
  gamma_.assign(static_cast<std::size_t>(total_cols_), 1.0);

  phase2_costs_.assign(static_cast<std::size_t>(total_cols_), 0.0);
  for (int c = 0; c < n_live; ++c) {
    phase2_costs_[static_cast<std::size_t>(c)] =
        model.variable(tab_to_model_[static_cast<std::size_t>(c)]).objective;
  }
}

void Engine::compute_xb() {
  // xb = B^{-1}(b - sum over nonbasic-at-upper columns of u_j a_j).
  for (int r = 0; r < m_; ++r) {
    xb_[static_cast<std::size_t>(r)] = rhs_[static_cast<std::size_t>(r)];
  }
  for (int j = 0; j < total_cols_; ++j) {
    if (in_basis_[static_cast<std::size_t>(j)] ||
        !at_upper_[static_cast<std::size_t>(j)]) {
      continue;
    }
    const double u = upper_[static_cast<std::size_t>(j)];
    for (const Term& t : cols_[static_cast<std::size_t>(j)].entries) {
      xb_[static_cast<std::size_t>(t.col)] -= u * t.coeff;
    }
  }
  lu_.ftran(xb_);
}

bool Engine::refactorize() {
  if (!lu_.factorize(cols_, basis_, kFactorPivotTol)) {
    // While adopting a warm (possibly shape-repaired) basis a singular
    // factorization is an expected outcome with a clean fallback (cold
    // start), not an anomaly worth a per-occurrence warning.
    if (adopting_warm_) {
      util::log_debug() << "revised simplex: singular warm basis; cold start";
    } else {
      util::log_warn() << "revised simplex: singular basis at refactor";
    }
    return false;
  }
  ++refactorizations_;
  // Recomputing the basic solution from scratch re-anchors it numerically
  // (the incremental updates drift by one rounding per pivot).
  compute_xb();
  // Guardrail: the fresh factorization must reproduce a finite basic
  // solution that actually solves B·x_B = b_eff. A violation means the
  // factors are untrustworthy (near-singular basis slipped past the pivot
  // floor) and the caller must escalate.
  if (!finite_vec(xb_)) {
    util::log_warn() << "revised simplex: non-finite basic solution "
                        "after refactorization";
    return false;
  }
  double rhs_max = 0.0;
  std::vector<double> resid(static_cast<std::size_t>(m_));
  for (int r = 0; r < m_; ++r) {
    const double b = rhs_[static_cast<std::size_t>(r)];
    rhs_max = std::max(rhs_max, std::abs(b));
    resid[static_cast<std::size_t>(r)] = b;
  }
  for (int j = 0; j < total_cols_; ++j) {
    if (in_basis_[static_cast<std::size_t>(j)] ||
        !at_upper_[static_cast<std::size_t>(j)]) {
      continue;
    }
    const double u = upper_[static_cast<std::size_t>(j)];
    for (const Term& t : cols_[static_cast<std::size_t>(j)].entries) {
      resid[static_cast<std::size_t>(t.col)] -= u * t.coeff;
    }
  }
  for (int r = 0; r < m_; ++r) {
    const double x = xb_[static_cast<std::size_t>(r)];
    for (const Term& t :
         cols_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])]
             .entries) {
      resid[static_cast<std::size_t>(t.col)] -= x * t.coeff;
    }
  }
  double resid_max = 0.0;
  for (const double r : resid) resid_max = std::max(resid_max, std::abs(r));
  const double tol = opt_.residual_tol * (1.0 + rhs_max);
  if (!(resid_max <= tol)) {  // negated compare catches NaN
    util::log_warn() << "revised simplex: factorization residual "
                     << resid_max << " exceeds " << tol;
    return false;
  }
  return true;
}

bool Engine::recover_in_place() {
  if (++nan_recovery_rounds_ > kMaxNanRecoveryRounds) return false;
  ++recovery_refactorizations_;
  return refactorize();
}

void Engine::cold_start() {
  basis_ = cold_basis_;
  std::fill(in_basis_.begin(), in_basis_.end(), 0);
  std::fill(at_upper_.begin(), at_upper_.end(), 0);
  for (int b : basis_) in_basis_[static_cast<std::size_t>(b)] = 1;
  // The cold basis is a signed identity (unit slack/artificial columns), so
  // this factorization cannot fail and FTRAN of the rhs is the rhs itself.
  lu_.factorize(cols_, basis_, kFactorPivotTol);
  xb_ = rhs_;
  // With B = I the edge norm of every column is exactly 1 + ||a_j||^2, so
  // steepest edge starts from true weights (and the drift self-check is
  // meaningful from the first pivot).
  for (int j = 0; j < total_cols_; ++j) {
    double norm2 = 0.0;
    for (const Term& t : cols_[static_cast<std::size_t>(j)].entries) {
      norm2 += t.coeff * t.coeff;
    }
    gamma_[static_cast<std::size_t>(j)] = 1.0 + norm2;
  }
  gamma_exact_ = true;
}

bool Engine::repair_warm_basis(const Model& model, const WarmStartBasis& warm,
                               WarmStartBasis& repaired) const {
  // The tableau shapes diverged because the model mutated between solves
  // (columns added/removed, delta rows appended through the Model
  // incremental API). Remap the exported basis onto this layout instead of
  // discarding it: structural columns through the model-column snapshot,
  // slacks by ordinal (row order is append-only under the delta protocol),
  // and a vanished basic column by its row's own slack. The remap is only
  // a candidate — adopt_warm_basis still factorizes and bound-checks it
  // and falls back to the cold start when the guess does not hold.
  const int m_old = warm.m;
  const int n_live_old = static_cast<int>(warm.model_cols.size());
  if (m_old > m_ || static_cast<int>(warm.basis.size()) != m_old) return false;
  const int n_model = model.num_variables();
  const int n_live = static_cast<int>(tab_to_model_.size());
  const int n_slack = art_begin_ - n_live;

  std::vector<int> live(static_cast<std::size_t>(n_model), -1);
  for (int c = 0; c < n_live; ++c) {
    live[static_cast<std::size_t>(tab_to_model_[static_cast<std::size_t>(c)])] =
        c;
  }
  // Slack tableau index of each row (-1 for equality rows). Slacks are
  // numbered per non-Eq row in row order, and rhs normalization never
  // changes whether a row has a slack, so ordinals are stable as long as
  // rows only get appended.
  std::vector<int> row_slack(static_cast<std::size_t>(m_), -1);
  {
    int s = 0, r = 0;
    for (const Row& row : model.rows()) {
      if (row.sense != Sense::kEq) {
        row_slack[static_cast<std::size_t>(r)] = n_live + s++;
      }
      ++r;
    }
  }

  std::vector<char> used(static_cast<std::size_t>(art_begin_), 0);
  std::vector<int> basis(static_cast<std::size_t>(m_), -1);
  for (int r = 0; r < m_old; ++r) {
    const int b = warm.basis[static_cast<std::size_t>(r)];
    int nb = -1;
    if (b >= 0 && b < n_live_old) {
      const int col = warm.model_cols[static_cast<std::size_t>(b)];
      if (col >= 0 && col < n_model) nb = live[static_cast<std::size_t>(col)];
      // The basic column was removed from the model: substitute the row's
      // own slack and let the factorization check vet the result.
      if (nb < 0) nb = row_slack[static_cast<std::size_t>(r)];
    } else if (b >= n_live_old) {
      const int s = b - n_live_old;
      if (s < n_slack) nb = n_live + s;
    }
    if (nb < 0 || nb >= art_begin_ || used[static_cast<std::size_t>(nb)]) {
      return false;
    }
    used[static_cast<std::size_t>(nb)] = 1;
    basis[static_cast<std::size_t>(r)] = nb;
  }
  // Appended delta rows enter with their own slack basic — the cold choice
  // for a <= row. An appended equality row has no slack; repair fails and
  // the solve cold-starts.
  for (int r = m_old; r < m_; ++r) {
    const int nb = row_slack[static_cast<std::size_t>(r)];
    if (nb < 0 || used[static_cast<std::size_t>(nb)]) return false;
    used[static_cast<std::size_t>(nb)] = 1;
    basis[static_cast<std::size_t>(r)] = nb;
  }

  repaired.m = m_;
  repaired.total_cols = total_cols_;
  repaired.basis = std::move(basis);
  repaired.at_upper.assign(static_cast<std::size_t>(total_cols_), 0);
  if (!warm.at_upper.empty()) {
    for (int j = 0; j < n_live_old &&
                    j < static_cast<int>(warm.at_upper.size());
         ++j) {
      if (warm.at_upper[static_cast<std::size_t>(j)] == 0) continue;
      const int col = warm.model_cols[static_cast<std::size_t>(j)];
      const int nb =
          (col >= 0 && col < n_model) ? live[static_cast<std::size_t>(col)] : -1;
      if (nb >= 0) repaired.at_upper[static_cast<std::size_t>(nb)] = 1;
    }
  }
  repaired.model_cols = tab_to_model_;
  return true;
}

bool Engine::adopt_warm_basis(const WarmStartBasis& warm) {
  if (static_cast<int>(warm.basis.size()) != m_) return false;
  if (!warm.at_upper.empty() &&
      static_cast<int>(warm.at_upper.size()) != total_cols_) {
    return false;
  }
  // Only structural and slack columns may seed a warm basis: an artificial
  // would force a phase-1 pass and defeat the point.
  std::vector<char> seen(static_cast<std::size_t>(art_begin_), 0);
  for (int b : warm.basis) {
    if (b < 0 || b >= art_begin_ || seen[static_cast<std::size_t>(b)]) {
      return false;
    }
    seen[static_cast<std::size_t>(b)] = 1;
  }
  basis_ = warm.basis;
  std::fill(in_basis_.begin(), in_basis_.end(), 0);
  for (int b : basis_) in_basis_[static_cast<std::size_t>(b)] = 1;
  for (int j = 0; j < total_cols_; ++j) {
    const bool up = !warm.at_upper.empty() &&
                    warm.at_upper[static_cast<std::size_t>(j)] != 0 &&
                    !in_basis_[static_cast<std::size_t>(j)] &&
                    std::isfinite(upper_[static_cast<std::size_t>(j)]);
    at_upper_[static_cast<std::size_t>(j)] = up ? 1 : 0;
  }
  adopting_warm_ = true;
  const bool factorized = refactorize();
  adopting_warm_ = false;
  if (!factorized) {
    cold_start();
    return false;
  }
  // The adopted basis must still be feasible for this model's rhs and
  // bounds; otherwise phase 2 cannot start from it.
  for (int r = 0; r < m_; ++r) {
    const double v = xb_[static_cast<std::size_t>(r)];
    const double u = upper_[static_cast<std::size_t>(
        basis_[static_cast<std::size_t>(r)])];
    if (v < -opt_.feas_tol || v > u + opt_.feas_tol) {
      cold_start();
      return false;
    }
  }
  for (int r = 0; r < m_; ++r) {
    double& v = xb_[static_cast<std::size_t>(r)];
    v = std::max(v, 0.0);
    const double u = upper_[static_cast<std::size_t>(
        basis_[static_cast<std::size_t>(r)])];
    if (std::isfinite(u)) v = std::min(v, u);
  }
  // Reference-framework weights: exact norms for the adopted basis would
  // cost one FTRAN per column, so the warm path prices against the devex
  // approximation (safeguarded from below, converges to useful values in a
  // few pivots — and warm solves take only a few pivots).
  std::fill(gamma_.begin(), gamma_.end(), 1.0);
  gamma_exact_ = false;
  return true;
}

void Engine::compute_y(const std::vector<double>& costs) {
  for (int r = 0; r < m_; ++r) {
    y_[static_cast<std::size_t>(r)] =
        costs[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])];
  }
  lu_.btran(y_);
}

int Engine::price(const std::vector<double>& costs, bool bland) const {
  int best = -1;
  double best_score = 0.0;
  for (int j = 0; j < price_limit_; ++j) {
    if (in_basis_[static_cast<std::size_t>(j)]) continue;
    double d = costs[static_cast<std::size_t>(j)];
    for (const Term& t : cols_[static_cast<std::size_t>(j)].entries) {
      d -= y_[static_cast<std::size_t>(t.col)] * t.coeff;
    }
    // A column at its lower bound improves the (max) objective by
    // increasing when d > 0; one at its upper bound by decreasing when
    // d < 0.
    const bool eligible = at_upper_[static_cast<std::size_t>(j)]
                              ? d < -opt_.opt_tol
                              : d > opt_.opt_tol;
    if (!eligible) continue;
    if (bland) return j;
    const double score = mode_ == PricingMode::kDantzig
                             ? std::abs(d)
                             : d * d / gamma_[static_cast<std::size_t>(j)];
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

void Engine::ftran_column(int col) {
  std::fill(w_.begin(), w_.end(), 0.0);
  for (const Term& t : cols_[static_cast<std::size_t>(col)].entries) {
    w_[static_cast<std::size_t>(t.col)] = t.coeff;
  }
  lu_.ftran(w_);
}

void Engine::maybe_inject_fault() {
  ++pivot_attempts_;
  if (w_.empty()) return;
  const bool hit = opt_.inject_nan_every_pivot ||
                   (opt_.inject_nan_at_pivot > 0 && !injected_ &&
                    pivot_attempts_ >= opt_.inject_nan_at_pivot);
  if (!hit) return;
  injected_ = true;
  w_[0] = std::numeric_limits<double>::quiet_NaN();
}

double Engine::sparse_dot(int col, const std::vector<double>& row_vec) const {
  double acc = 0.0;
  for (const Term& t : cols_[static_cast<std::size_t>(col)].entries) {
    acc += row_vec[static_cast<std::size_t>(t.col)] * t.coeff;
  }
  return acc;
}

/// Maintains the pricing reference weights across the pivot that moves
/// `entering` into basis position `leave` (evicting `leaving_col`).
/// Steepest edge uses the Goldfarb update with the exact entering norm
/// `gamma_q` = 1 + ||B^{-1}a_q||^2 (two BTRANs: rho = B^{-T}e_r and
/// v = B^{-T}w); devex keeps only the rho BTRAN and grows weights
/// monotonically. Both are safeguarded from below, so a stale weight can
/// bias the entering choice but never break correctness. Must run before
/// the eta push: the BTRANs are against the pre-pivot basis.
void Engine::update_pricing_weights(int entering, int leave, int leaving_col,
                                    double gamma_q) {
  const double wr = w_[static_cast<std::size_t>(leave)];
  std::fill(rho_.begin(), rho_.end(), 0.0);
  rho_[static_cast<std::size_t>(leave)] = 1.0;
  lu_.btran(rho_);
  const bool se = mode_ == PricingMode::kSteepestEdge;
  if (se) {
    sev_ = w_;
    lu_.btran(sev_);
  }
  for (int j = 0; j < price_limit_; ++j) {
    if (in_basis_[static_cast<std::size_t>(j)] || j == entering) continue;
    const double alpha = sparse_dot(j, rho_);
    if (alpha == 0.0) continue;
    const double beta = alpha / wr;
    double& g = gamma_[static_cast<std::size_t>(j)];
    if (se) {
      const double av = sparse_dot(j, sev_);
      g = std::max(g - 2.0 * beta * av + beta * beta * gamma_q,
                   1.0 + beta * beta);
    } else {
      g = std::max(g, beta * beta * gamma_q);
    }
  }
  gamma_[static_cast<std::size_t>(leaving_col)] =
      se ? std::max(gamma_q / (wr * wr), 1.0 + 1.0 / (wr * wr))
         : std::max(gamma_q / (wr * wr), 1.0);
}

/// Folds the pivot column w_ (position `leave` replaced) into the basis
/// representation: appends an eta when stable, refactorizes otherwise or
/// when the eta file hit the interval. Returns false only when a required
/// refactorization found the basis singular — an unrecoverable state.
bool Engine::absorb_pivot(int leave) {
  // Eta-file condition monitor: an update column with extreme element
  // growth relative to its pivot poisons every later FTRAN/BTRAN through
  // the product form. Refactorize instead of appending it.
  const double wr = std::abs(w_[static_cast<std::size_t>(leave)]);
  double wmax = 0.0;
  for (const double v : w_) wmax = std::max(wmax, std::abs(v));
  if (wr > 0.0 && wmax > opt_.eta_growth_limit * wr) {
    ++recovery_refactorizations_;
    return refactorize();
  }
  if (lu_.push_eta(w_, leave, kEtaPivotTol)) {
    ++eta_pivots_;
    eta_len_max_ = std::max(eta_len_max_, lu_.eta_len());
    if (lu_.eta_len() >= std::max(1, opt_.refactor_interval)) {
      return refactorize();
    }
    return true;
  }
  return refactorize();
}

SolveStatus Engine::iterate(const std::vector<double>& costs, int& iterations,
                            int max_iterations) {
  bool bland = false;
  int degenerate_streak = 0;
  const bool budgeted = opt_.budget.limited();
  while (true) {
    if (budgeted) {
      // Anytime contract: stop at the budget and let the caller keep the
      // current (primal-feasible, objective-monotone) iterate.
      if (opt_.budget.max_pivots > 0 &&
          iterations >= opt_.budget.max_pivots) {
        return SolveStatus::kDeadline;
      }
      if (opt_.budget.deadline_ms > 0.0 &&
          budget_timer_.elapsed_ms() >= opt_.budget.deadline_ms) {
        return SolveStatus::kDeadline;
      }
    }
    compute_y(costs);
    if (!finite_vec(y_)) {
      // Corrupted pricing vector (typically a poisoned eta). Rung 1:
      // rebuild the factors in place and retry the pivot.
      if (!recover_in_place()) return SolveStatus::kNumericalError;
      continue;
    }
    const int entering = price(costs, bland);
    if (entering < 0) return SolveStatus::kOptimal;

    ftran_column(entering);  // w_ = B^{-1} a_q, position-indexed
    maybe_inject_fault();
    if (!finite_vec(w_)) {
      // The pivot column is garbage; nothing was committed yet.
      if (!recover_in_place()) return SolveStatus::kNumericalError;
      continue;
    }
    const bool from_upper = at_upper_[static_cast<std::size_t>(entering)] != 0;
    const double sigma = from_upper ? -1.0 : 1.0;

    // Ratio test over the basic variables: the entering column moves away
    // from its bound by t, each basic value moves by -t*sigma*w_i and may
    // hit either of its own bounds. Ties break to the lowest column index
    // for determinism.
    int leave = -1;
    double best_ratio = 0.0;
    int best_basis = -1;
    bool leave_to_upper = false;
    for (int r = 0; r < m_; ++r) {
      const double d = sigma * w_[static_cast<std::size_t>(r)];
      double ratio;
      bool to_upper;
      if (d > opt_.pivot_tol) {
        ratio = xb_[static_cast<std::size_t>(r)] / d;
        to_upper = false;
      } else if (d < -opt_.pivot_tol) {
        const double ub = upper_[static_cast<std::size_t>(
            basis_[static_cast<std::size_t>(r)])];
        if (!std::isfinite(ub)) continue;
        ratio = (ub - xb_[static_cast<std::size_t>(r)]) / (-d);
        to_upper = true;
      } else {
        continue;
      }
      if (leave < 0 || ratio < best_ratio - opt_.pivot_tol ||
          (ratio < best_ratio + opt_.pivot_tol &&
           basis_[static_cast<std::size_t>(r)] < best_basis)) {
        leave = r;
        best_ratio = ratio;
        best_basis = basis_[static_cast<std::size_t>(r)];
        leave_to_upper = to_upper;
      }
    }

    const double uq = upper_[static_cast<std::size_t>(entering)];
    if (leave < 0 && !std::isfinite(uq)) return SolveStatus::kUnbounded;
    // The entering column can also hit its own opposite bound first: a
    // bound flip, no basis change, no eta.
    const bool flip =
        leave < 0 || (std::isfinite(uq) && uq <= best_ratio);
    bool degenerate = false;
    if (flip) {
      const double t = uq;
      for (int r = 0; r < m_; ++r) {
        xb_[static_cast<std::size_t>(r)] -=
            t * sigma * w_[static_cast<std::size_t>(r)];
      }
      at_upper_[static_cast<std::size_t>(entering)] = from_upper ? 0 : 1;
      ++bound_flips_;
    } else {
      const double t = best_ratio;
      degenerate = t <= opt_.pivot_tol;
      const int leaving_col = basis_[static_cast<std::size_t>(leave)];
      if (mode_ != PricingMode::kDantzig) {
        double norm2 = 0.0;
        for (int r = 0; r < m_; ++r) {
          const double v = w_[static_cast<std::size_t>(r)];
          norm2 += v * v;
        }
        const double gamma_q = 1.0 + norm2;
        if (mode_ == PricingMode::kSteepestEdge && gamma_exact_) {
          const double stored = gamma_[static_cast<std::size_t>(entering)];
          if (stored > kWeightDriftRatio * gamma_q ||
              gamma_q > kWeightDriftRatio * stored) {
            if (++drift_events_ > kWeightDriftLimit) {
              mode_ = PricingMode::kDevex;
              util::log_debug()
                  << "revised simplex: steepest-edge weights drifted, "
                     "falling back to devex";
            }
          }
        }
        update_pricing_weights(entering, leave, leaving_col, gamma_q);
      }
      for (int r = 0; r < m_; ++r) {
        xb_[static_cast<std::size_t>(r)] -=
            t * sigma * w_[static_cast<std::size_t>(r)];
      }
      xb_[static_cast<std::size_t>(leave)] = from_upper ? uq - t : t;
      in_basis_[static_cast<std::size_t>(leaving_col)] = 0;
      at_upper_[static_cast<std::size_t>(leaving_col)] =
          leave_to_upper ? 1 : 0;
      basis_[static_cast<std::size_t>(leave)] = entering;
      in_basis_[static_cast<std::size_t>(entering)] = 1;
      at_upper_[static_cast<std::size_t>(entering)] = 0;
      if (!absorb_pivot(leave)) return SolveStatus::kNumericalError;
    }
    if (!finite_vec(xb_)) {
      // The pivot is committed; a refactorization re-derives the basic
      // solution from the (new) basis and discards the corrupted update.
      if (!recover_in_place()) return SolveStatus::kNumericalError;
    } else {
      nan_recovery_rounds_ = 0;  // clean pivot: reset the escalation cap
    }

    ++iterations;
    if (iterations >= max_iterations) return SolveStatus::kIterationLimit;
    if (degenerate) {
      if (++degenerate_streak >= opt_.stall_threshold && !bland) {
        bland = true;
        util::log_debug() << "revised simplex: degenerate stall, Bland mode";
      }
    } else {
      degenerate_streak = 0;
      bland = false;
    }
  }
}

bool Engine::drive_out_artificials() {
  for (int r = 0; r < m_; ++r) {
    if (basis_[static_cast<std::size_t>(r)] < art_begin_) continue;
    std::fill(rho_.begin(), rho_.end(), 0.0);
    rho_[static_cast<std::size_t>(r)] = 1.0;
    lu_.btran(rho_);  // row r of B^{-1}A via one BTRAN, then sparse dots
    for (int j = 0; j < art_begin_; ++j) {
      if (in_basis_[static_cast<std::size_t>(j)] ||
          at_upper_[static_cast<std::size_t>(j)]) {
        continue;
      }
      if (std::abs(sparse_dot(j, rho_)) <= 1e-7) continue;
      ftran_column(j);
      const double wr = w_[static_cast<std::size_t>(r)];
      if (std::abs(wr) <= 1e-9) continue;
      // Degenerate pivot: the artificial's residual value (~0 after a
      // feasible phase 1) moves onto the entering column.
      const double t = xb_[static_cast<std::size_t>(r)] / wr;
      for (int i = 0; i < m_; ++i) {
        if (i == r) continue;
        xb_[static_cast<std::size_t>(i)] -=
            t * w_[static_cast<std::size_t>(i)];
      }
      xb_[static_cast<std::size_t>(r)] = t;
      in_basis_[static_cast<std::size_t>(
          basis_[static_cast<std::size_t>(r)])] = 0;
      basis_[static_cast<std::size_t>(r)] = j;
      in_basis_[static_cast<std::size_t>(j)] = 1;
      // This pivot bypasses update_pricing_weights: the stored weights are
      // approximations from here on and must not trip the drift check.
      gamma_exact_ = false;
      // A singular basis here used to be swallowed silently, leaving the
      // engine to price phase 2 against broken factors — a latent
      // wrong-answer bug. Surface it so the caller escalates.
      if (!absorb_pivot(r)) return false;
      break;
    }
  }
  return true;
}

double Engine::basic_value(const std::vector<double>& costs) const {
  double value = 0.0;
  for (int r = 0; r < m_; ++r) {
    value += costs[static_cast<std::size_t>(
                basis_[static_cast<std::size_t>(r)])] *
             xb_[static_cast<std::size_t>(r)];
  }
  for (int j = 0; j < total_cols_; ++j) {
    if (!in_basis_[static_cast<std::size_t>(j)] &&
        at_upper_[static_cast<std::size_t>(j)]) {
      value += costs[static_cast<std::size_t>(j)] *
               upper_[static_cast<std::size_t>(j)];
    }
  }
  return value;
}

void Engine::fill_stats(SolveResult& result) const {
  result.stats.refactorizations = refactorizations_;
  result.stats.eta_pivots = eta_pivots_;
  result.stats.eta_len_max = eta_len_max_;
  result.stats.bound_flips = bound_flips_;
  result.stats.pricing_mode = static_cast<int>(mode_);
  result.stats.recovery_refactorizations = recovery_refactorizations_;
  result.stats.recovery_basis_resets = recovery_basis_resets_;
  result.stats.recovery_dense_solves = recovery_dense_solves_;
}

void Engine::extract_solution(const Model& model, SolveResult& result) const {
  const int n_live = static_cast<int>(tab_to_model_.size());
  result.x.assign(static_cast<std::size_t>(model.num_variables()), 0.0);
  for (int j = 0; j < n_live; ++j) {
    if (!in_basis_[static_cast<std::size_t>(j)] &&
        at_upper_[static_cast<std::size_t>(j)]) {
      result.x[static_cast<std::size_t>(
          tab_to_model_[static_cast<std::size_t>(j)])] =
          upper_[static_cast<std::size_t>(j)];
    }
  }
  for (int r = 0; r < m_; ++r) {
    const int b = basis_[static_cast<std::size_t>(r)];
    if (b < n_live) {
      double v = std::max(0.0, xb_[static_cast<std::size_t>(r)]);
      const double u = upper_[static_cast<std::size_t>(b)];
      if (std::isfinite(u)) v = std::min(v, u);
      result.x[static_cast<std::size_t>(
          tab_to_model_[static_cast<std::size_t>(b)])] = v;
    }
  }
  for (int j = 0; j < model.num_variables(); ++j) {
    if (model.is_fixed(j)) {
      result.x[static_cast<std::size_t>(j)] =
          model.fixed_values()[static_cast<std::size_t>(j)];
    }
  }
  result.objective = basic_value(phase2_costs_) + model.fixed_objective();
}

SolveResult Engine::run_attempt(const Model& model, WarmStartBasis* warm,
                                bool allow_warm) {
  SolveResult result;
  nan_recovery_rounds_ = 0;
  const int max_iterations =
      opt_.max_iterations > 0 ? opt_.max_iterations
                              : 200 * (m_ + total_cols_) + 2000;

  // Warm start: re-enter at the previous solve's basis when the tableau
  // kept its shape, or repair the basis onto the new shape when the model
  // mutated through the incremental API. An adopted basis is
  // artificial-free and feasible for the bounds, so phase 1 is provably
  // unnecessary.
  if (allow_warm && warm != nullptr && !warm->empty()) {
    if (warm->m == m_ && warm->total_cols == total_cols_) {
      result.stats.warm_start_attempted = true;
      result.warm_started = adopt_warm_basis(*warm);
      result.stats.warm_start_used = result.warm_started;
    } else if (opt_.repair_warm_basis && !warm->model_cols.empty()) {
      WarmStartBasis repaired;
      if (repair_warm_basis(model, *warm, repaired)) {
        result.stats.warm_start_attempted = true;
        result.stats.warm_start_repaired = true;
        result.warm_started = adopt_warm_basis(repaired);
        result.stats.warm_start_used = result.warm_started;
      }
    }
  }
  if (!result.warm_started) cold_start();

  if (!result.warm_started && art_begin_ < total_cols_) {
    price_limit_ = total_cols_;
    std::vector<double> phase1(static_cast<std::size_t>(total_cols_), 0.0);
    for (int c = art_begin_; c < total_cols_; ++c) {
      phase1[static_cast<std::size_t>(c)] = -1.0;
    }
    const SolveStatus st = iterate(phase1, result.iterations, max_iterations);
    result.stats.phase1_iterations = result.iterations;
    if (st == SolveStatus::kIterationLimit ||
        st == SolveStatus::kDeadline ||
        st == SolveStatus::kNumericalError) {
      // No feasible iterate exists yet at a phase-1 stop: no x to keep.
      result.status = st;
      fill_stats(result);
      return result;
    }
    if (basic_value(phase1) < -opt_.feas_tol) {
      result.status = SolveStatus::kInfeasible;
      fill_stats(result);
      return result;
    }
    if (!drive_out_artificials()) {
      result.status = SolveStatus::kNumericalError;
      fill_stats(result);
      return result;
    }
  }

  price_limit_ = art_begin_;
  const SolveStatus st =
      iterate(phase2_costs_, result.iterations, max_iterations);
  result.stats.phase2_iterations =
      result.iterations - result.stats.phase1_iterations;
  fill_stats(result);
  result.status = st;
  if (st == SolveStatus::kDeadline) {
    // Anytime contract: phase 2 kept the iterate primal feasible and its
    // objective monotone, so the current basis is the best seen. Export
    // the iterate but NOT the basis — a non-optimal basis is no warm
    // start for the next slot.
    extract_solution(model, result);
    return result;
  }
  if (st != SolveStatus::kOptimal) return result;

  if (warm != nullptr) {
    warm->m = m_;
    warm->total_cols = total_cols_;
    warm->basis = basis_;
    warm->at_upper = at_upper_;
    warm->model_cols = tab_to_model_;
  }
  extract_solution(model, result);
  return result;
}

SolveResult Engine::run(const Model& model, WarmStartBasis* warm) {
  SolveResult result;
  if (!model_input_finite(model)) {
    // Garbage in: no recovery ladder can conjure a meaningful answer from
    // a NaN cost vector or rhs. Refuse immediately.
    result.status = SolveStatus::kNumericalError;
    return result;
  }

  result = run_attempt(model, warm, /*allow_warm=*/true);
  if (result.status != SolveStatus::kNumericalError) return result;

  // Rung 2 of the recovery ladder: reset to the slack/bound cold basis
  // and redo the attempt from scratch. Contains transient corruption that
  // in-place refactorization could not shake off (e.g. a poisoned warm
  // basis). An optimal retry exports its basis as usual — it is genuine.
  ++recovery_basis_resets_;
  util::log_warn() << "revised simplex: numerical error, restarting from "
                      "the cold basis";
  SolveResult retry = run_attempt(model, warm, /*allow_warm=*/false);
  retry.iterations += result.iterations;
  retry.stats.phase1_iterations += result.stats.phase1_iterations;
  retry.stats.phase2_iterations += result.stats.phase2_iterations;
  retry.stats.warm_start_attempted = result.stats.warm_start_attempted;
  if (retry.status != SolveStatus::kNumericalError) return retry;

  // Rung 3: one-shot dense-Tableau cross-solve. A different algorithm
  // with no shared factorization state — the last line of defence before
  // reporting the slot LP unsolvable. The carried warm basis is cleared:
  // the dense solver exports none, so the next solve must cold-start.
  ++recovery_dense_solves_;
  util::log_warn() << "revised simplex: cold restart failed too, "
                      "cross-solving with the dense tableau";
  SimplexOptions dopt;
  dopt.pivot_tol = opt_.pivot_tol;
  dopt.opt_tol = opt_.opt_tol;
  dopt.feas_tol = opt_.feas_tol;
  dopt.max_iterations = opt_.max_iterations;
  dopt.stall_threshold = opt_.stall_threshold;
  SolveResult dense = SimplexSolver(dopt).solve(model);
  dense.iterations += retry.iterations;
  dense.stats.refactorizations = refactorizations_;
  dense.stats.recovery_refactorizations = recovery_refactorizations_;
  dense.stats.recovery_basis_resets = recovery_basis_resets_;
  dense.stats.recovery_dense_solves = recovery_dense_solves_;
  dense.stats.warm_start_attempted = retry.stats.warm_start_attempted;
  if (warm != nullptr) warm->clear();
  return dense;
}

}  // namespace

SolveResult RevisedSimplexSolver::solve(const Model& model) const {
  Engine engine(model, options_);
  SolveResult result = engine.run(model, nullptr);
  record_solve(result);
  return result;
}

SolveResult RevisedSimplexSolver::solve(const Model& model,
                                        WarmStartBasis& warm) const {
  Engine engine(model, options_);
  SolveResult result = engine.run(model, &warm);
  record_solve(result);
  return result;
}

SolveResult solve_lp(const Model& model) {
  // The revised engine wins when m*n is large and columns are sparse; the
  // dense tableau has the lower constant factor on small models.
  const long long m = model.num_constraints();
  const long long n = model.num_variables();
  if (m * n >= 64LL * 1024LL) {
    return RevisedSimplexSolver().solve(model);
  }
  return SimplexSolver().solve(model);
}

}  // namespace mecar::lp
