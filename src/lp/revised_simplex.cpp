#include "lp/revised_simplex.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/catalog.h"
#include "obs/event_trace.h"
#include "util/log.h"

namespace mecar::lp {
namespace {

/// One telemetry update per solve, shared by both solvers' entry points.
void record_solve(const SolveResult& result) {
  const obs::Metrics& m = obs::metrics();
  m.lp_solves.add();
  m.lp_pivots.add(result.iterations);
  m.lp_refactorizations.add(result.stats.refactorizations);
  if (result.stats.warm_start_attempted) {
    if (result.stats.warm_start_used) {
      m.lp_warm_start_hits.add();
    } else {
      m.lp_warm_start_misses.add();
    }
  }
  m.lp_pivots_per_solve.observe(result.iterations);
  obs::EventTrace& tr = obs::trace();
  if (tr.enabled()) {
    tr.emit(obs::EventKind::kLpSolve, result.iterations,
            result.stats.refactorizations,
            result.warm_started ? 1.0 : 0.0);
  }
}

}  // namespace

namespace {

struct SparseCol {
  std::vector<Term> entries;  // (row, value)
};

class Engine {
 public:
  Engine(const Model& model, const RevisedSimplexOptions& opt) : opt_(opt) {
    build(model);
  }

  SolveResult run(const Model& model, WarmStartBasis* warm);

 private:
  void build(const Model& model);
  SolveStatus iterate(const std::vector<double>& costs, int& iterations,
                      int max_iterations);
  bool refactorize();
  bool adopt_warm_basis(const std::vector<int>& warm);
  void reset_to_cold_basis(const std::vector<int>& cold_basis);
  void compute_y(const std::vector<double>& costs);
  int price(const std::vector<double>& costs, bool bland) const;
  void column_times_binv(int col, std::vector<double>& w) const;
  void drive_out_artificials();
  double basic_value(const std::vector<double>& costs) const;

  RevisedSimplexOptions opt_;
  int m_ = 0;
  int total_cols_ = 0;
  int art_begin_ = 0;
  int price_limit_ = 0;
  std::vector<SparseCol> cols_;
  std::vector<double> rhs_;
  std::vector<int> basis_;
  std::vector<char> in_basis_;
  std::vector<double> binv_;  // row-major m x m
  std::vector<double> xb_;
  std::vector<double> y_;  // pricing vector
  std::vector<double> w_;  // pivot column scratch (B^{-1} a_j)
  std::vector<double> refac_work_;  // refactorization scratch: B copy
  std::vector<double> refac_inv_;   // refactorization scratch: -> B^{-1}
  std::vector<int> tab_to_model_;
  std::vector<double> phase2_costs_;
  int pivots_since_refactor_ = 0;
  int refactorizations_ = 0;
};

void Engine::build(const Model& model) {
  const int n_model = model.num_variables();
  std::vector<int> live(static_cast<std::size_t>(n_model), -1);
  for (int j = 0; j < n_model; ++j) {
    if (model.variable(j).upper > 0.0) {
      live[static_cast<std::size_t>(j)] =
          static_cast<int>(tab_to_model_.size());
      tab_to_model_.push_back(j);
    }
  }
  const int n_live = static_cast<int>(tab_to_model_.size());

  struct RowSpec {
    std::vector<Term> terms;  // live column index, value
    Sense sense = Sense::kLe;
    double rhs = 0.0;
  };
  std::vector<RowSpec> rows;
  for (const Row& row : model.rows()) {
    RowSpec spec;
    spec.sense = row.sense;
    spec.rhs = row.rhs;
    for (const Term& t : row.terms) {
      const int lv = live[static_cast<std::size_t>(t.col)];
      if (lv >= 0) spec.terms.push_back(Term{lv, t.coeff});
    }
    rows.push_back(std::move(spec));
  }
  for (int j = 0; j < n_model; ++j) {
    const double u = model.variable(j).upper;
    const int lv = live[static_cast<std::size_t>(j)];
    if (lv >= 0 && std::isfinite(u)) {
      RowSpec spec;
      spec.sense = Sense::kLe;
      spec.rhs = u;
      spec.terms.push_back(Term{lv, 1.0});
      rows.push_back(std::move(spec));
    }
  }
  for (RowSpec& row : rows) {
    if (row.rhs < 0.0) {
      row.rhs = -row.rhs;
      for (Term& t : row.terms) t.coeff = -t.coeff;
      if (row.sense == Sense::kLe) row.sense = Sense::kGe;
      else if (row.sense == Sense::kGe) row.sense = Sense::kLe;
    }
  }

  m_ = static_cast<int>(rows.size());
  int n_slack = 0, n_art = 0;
  for (const RowSpec& row : rows) {
    if (row.sense != Sense::kEq) ++n_slack;
    if (row.sense != Sense::kLe) ++n_art;
  }
  art_begin_ = n_live + n_slack;
  total_cols_ = art_begin_ + n_art;

  cols_.resize(static_cast<std::size_t>(total_cols_));
  rhs_.resize(static_cast<std::size_t>(m_));
  basis_.assign(static_cast<std::size_t>(m_), -1);
  in_basis_.assign(static_cast<std::size_t>(total_cols_), 0);

  // Structural columns, transposed from rows.
  for (int r = 0; r < m_; ++r) {
    rhs_[static_cast<std::size_t>(r)] = rows[static_cast<std::size_t>(r)].rhs;
    for (const Term& t : rows[static_cast<std::size_t>(r)].terms) {
      cols_[static_cast<std::size_t>(t.col)].entries.push_back(
          Term{r, t.coeff});
    }
  }
  int next_slack = n_live, next_art = art_begin_;
  for (int r = 0; r < m_; ++r) {
    switch (rows[static_cast<std::size_t>(r)].sense) {
      case Sense::kLe:
        cols_[static_cast<std::size_t>(next_slack)].entries.push_back(
            Term{r, 1.0});
        basis_[static_cast<std::size_t>(r)] = next_slack++;
        break;
      case Sense::kGe:
        cols_[static_cast<std::size_t>(next_slack)].entries.push_back(
            Term{r, -1.0});
        ++next_slack;
        cols_[static_cast<std::size_t>(next_art)].entries.push_back(
            Term{r, 1.0});
        basis_[static_cast<std::size_t>(r)] = next_art++;
        break;
      case Sense::kEq:
        cols_[static_cast<std::size_t>(next_art)].entries.push_back(
            Term{r, 1.0});
        basis_[static_cast<std::size_t>(r)] = next_art++;
        break;
    }
  }
  for (int b : basis_) in_basis_[static_cast<std::size_t>(b)] = 1;

  // Initial basis is the identity.
  binv_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_),
               0.0);
  for (int r = 0; r < m_; ++r) {
    binv_[static_cast<std::size_t>(r) * static_cast<std::size_t>(m_) +
          static_cast<std::size_t>(r)] = 1.0;
  }
  xb_ = rhs_;
  y_.assign(static_cast<std::size_t>(m_), 0.0);
  w_.assign(static_cast<std::size_t>(m_), 0.0);

  phase2_costs_.assign(static_cast<std::size_t>(total_cols_), 0.0);
  for (int c = 0; c < n_live; ++c) {
    phase2_costs_[static_cast<std::size_t>(c)] =
        model.variable(tab_to_model_[static_cast<std::size_t>(c)]).objective;
  }
}

bool Engine::refactorize() {
  // Gauss-Jordan inversion of the current basis matrix. The scratch
  // buffers are engine members so repeated refactorizations (and warm
  // starts) reuse one allocation instead of two fresh m x m vectors each.
  const auto mm = static_cast<std::size_t>(m_);
  refac_work_.assign(mm * mm, 0.0);
  refac_inv_.assign(mm * mm, 0.0);
  std::vector<double>& work = refac_work_;  // B
  std::vector<double>& inv = refac_inv_;    // -> B^{-1}
  for (int r = 0; r < m_; ++r) inv[static_cast<std::size_t>(r) * mm + r] = 1.0;
  for (int c = 0; c < m_; ++c) {
    for (const Term& t :
         cols_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(c)])]
             .entries) {
      work[static_cast<std::size_t>(t.col) * mm + static_cast<std::size_t>(c)] =
          t.coeff;
    }
  }
  for (int col = 0; col < m_; ++col) {
    // Partial pivoting.
    int pivot = col;
    double best = std::abs(work[static_cast<std::size_t>(col) * mm + col]);
    for (int r = col + 1; r < m_; ++r) {
      const double v = std::abs(work[static_cast<std::size_t>(r) * mm + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      util::log_warn() << "revised simplex: singular basis at refactor";
      return false;  // keep the incrementally updated inverse
    }
    if (pivot != col) {
      for (int k = 0; k < m_; ++k) {
        std::swap(work[static_cast<std::size_t>(pivot) * mm + k],
                  work[static_cast<std::size_t>(col) * mm + k]);
        std::swap(inv[static_cast<std::size_t>(pivot) * mm + k],
                  inv[static_cast<std::size_t>(col) * mm + k]);
      }
    }
    const double p = work[static_cast<std::size_t>(col) * mm + col];
    const double ip = 1.0 / p;
    for (int k = 0; k < m_; ++k) {
      work[static_cast<std::size_t>(col) * mm + k] *= ip;
      inv[static_cast<std::size_t>(col) * mm + k] *= ip;
    }
    for (int r = 0; r < m_; ++r) {
      if (r == col) continue;
      const double f = work[static_cast<std::size_t>(r) * mm + col];
      if (f == 0.0) continue;
      for (int k = 0; k < m_; ++k) {
        work[static_cast<std::size_t>(r) * mm + k] -=
            f * work[static_cast<std::size_t>(col) * mm + k];
        inv[static_cast<std::size_t>(r) * mm + k] -=
            f * inv[static_cast<std::size_t>(col) * mm + k];
      }
    }
  }
  binv_.swap(refac_inv_);  // no reallocation; old binv_ becomes scratch
  ++refactorizations_;
  // xb = B^{-1} rhs.
  for (int r = 0; r < m_; ++r) {
    double acc = 0.0;
    for (int k = 0; k < m_; ++k) {
      acc += binv_[static_cast<std::size_t>(r) * mm + k] *
             rhs_[static_cast<std::size_t>(k)];
    }
    xb_[static_cast<std::size_t>(r)] = acc;
  }
  pivots_since_refactor_ = 0;
  return true;
}

void Engine::reset_to_cold_basis(const std::vector<int>& cold_basis) {
  basis_ = cold_basis;
  std::fill(in_basis_.begin(), in_basis_.end(), 0);
  for (int b : basis_) in_basis_[static_cast<std::size_t>(b)] = 1;
  const auto mm = static_cast<std::size_t>(m_);
  binv_.assign(mm * mm, 0.0);
  for (int r = 0; r < m_; ++r) {
    binv_[static_cast<std::size_t>(r) * mm + static_cast<std::size_t>(r)] =
        1.0;
  }
  xb_ = rhs_;
  pivots_since_refactor_ = 0;
}

bool Engine::adopt_warm_basis(const std::vector<int>& warm) {
  if (static_cast<int>(warm.size()) != m_) return false;
  // Only structural and slack columns may seed a warm basis: an artificial
  // would force a phase-1 pass and defeat the point.
  std::vector<char> seen(static_cast<std::size_t>(art_begin_), 0);
  for (int b : warm) {
    if (b < 0 || b >= art_begin_ || seen[static_cast<std::size_t>(b)]) {
      return false;
    }
    seen[static_cast<std::size_t>(b)] = 1;
  }
  const std::vector<int> cold_basis = basis_;
  basis_ = warm;
  std::fill(in_basis_.begin(), in_basis_.end(), 0);
  for (int b : basis_) in_basis_[static_cast<std::size_t>(b)] = 1;
  bool ok = refactorize();
  if (ok) {
    // The adopted basis must still be primal feasible for this model's
    // rhs; otherwise phase 2 cannot start from it.
    for (double v : xb_) {
      if (v < -opt_.feas_tol) {
        ok = false;
        break;
      }
    }
  }
  if (!ok) {
    reset_to_cold_basis(cold_basis);
    return false;
  }
  for (double& v : xb_) v = std::max(v, 0.0);
  return true;
}

void Engine::compute_y(const std::vector<double>& costs) {
  const auto mm = static_cast<std::size_t>(m_);
  std::fill(y_.begin(), y_.end(), 0.0);
  for (int r = 0; r < m_; ++r) {
    const double cb =
        costs[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])];
    if (cb == 0.0) continue;
    const double* row = &binv_[static_cast<std::size_t>(r) * mm];
    for (int k = 0; k < m_; ++k) y_[static_cast<std::size_t>(k)] += cb * row[k];
  }
}

int Engine::price(const std::vector<double>& costs, bool bland) const {
  int best = -1;
  double best_d = opt_.opt_tol;
  for (int j = 0; j < price_limit_; ++j) {
    if (in_basis_[static_cast<std::size_t>(j)]) continue;
    double d = costs[static_cast<std::size_t>(j)];
    for (const Term& t : cols_[static_cast<std::size_t>(j)].entries) {
      d -= y_[static_cast<std::size_t>(t.col)] * t.coeff;
    }
    if (d > opt_.opt_tol) {
      if (bland) return j;
      if (d > best_d) {
        best_d = d;
        best = j;
      }
    }
  }
  return best;
}

void Engine::column_times_binv(int col, std::vector<double>& w) const {
  const auto mm = static_cast<std::size_t>(m_);
  std::fill(w.begin(), w.end(), 0.0);
  for (const Term& t : cols_[static_cast<std::size_t>(col)].entries) {
    const double v = t.coeff;
    for (int r = 0; r < m_; ++r) {
      w[static_cast<std::size_t>(r)] +=
          binv_[static_cast<std::size_t>(r) * mm +
                static_cast<std::size_t>(t.col)] *
          v;
    }
  }
}

SolveStatus Engine::iterate(const std::vector<double>& costs, int& iterations,
                            int max_iterations) {
  std::vector<double>& w = w_;  // member scratch, reused across phases
  bool bland = false;
  int degenerate_streak = 0;
  while (true) {
    compute_y(costs);
    const int entering = price(costs, bland);
    if (entering < 0) return SolveStatus::kOptimal;

    column_times_binv(entering, w);
    int leave = -1;
    double best_ratio = 0.0;
    int best_basis = -1;
    for (int r = 0; r < m_; ++r) {
      const double wr = w[static_cast<std::size_t>(r)];
      if (wr <= opt_.pivot_tol) continue;
      const double ratio = xb_[static_cast<std::size_t>(r)] / wr;
      if (leave < 0 || ratio < best_ratio - opt_.pivot_tol ||
          (ratio < best_ratio + opt_.pivot_tol &&
           basis_[static_cast<std::size_t>(r)] < best_basis)) {
        leave = r;
        best_ratio = ratio;
        best_basis = basis_[static_cast<std::size_t>(r)];
      }
    }
    if (leave < 0) return SolveStatus::kUnbounded;

    const bool degenerate = xb_[static_cast<std::size_t>(leave)] <=
                            opt_.pivot_tol;

    // Pivot: update basis inverse and basic solution.
    const auto mm = static_cast<std::size_t>(m_);
    const double p = w[static_cast<std::size_t>(leave)];
    const double ip = 1.0 / p;
    double* leave_row = &binv_[static_cast<std::size_t>(leave) * mm];
    for (int k = 0; k < m_; ++k) leave_row[k] *= ip;
    xb_[static_cast<std::size_t>(leave)] *= ip;
    for (int r = 0; r < m_; ++r) {
      if (r == leave) continue;
      const double f = w[static_cast<std::size_t>(r)];
      if (f == 0.0) continue;
      double* row = &binv_[static_cast<std::size_t>(r) * mm];
      for (int k = 0; k < m_; ++k) row[k] -= f * leave_row[k];
      xb_[static_cast<std::size_t>(r)] -=
          f * xb_[static_cast<std::size_t>(leave)];
    }
    in_basis_[static_cast<std::size_t>(
        basis_[static_cast<std::size_t>(leave)])] = 0;
    basis_[static_cast<std::size_t>(leave)] = entering;
    in_basis_[static_cast<std::size_t>(entering)] = 1;

    ++iterations;
    if (++pivots_since_refactor_ >= opt_.refactor_interval) refactorize();
    if (iterations >= max_iterations) return SolveStatus::kIterationLimit;
    if (degenerate) {
      if (++degenerate_streak >= opt_.stall_threshold && !bland) {
        bland = true;
        util::log_debug() << "revised simplex: degenerate stall, Bland mode";
      }
    } else {
      degenerate_streak = 0;
      bland = false;
    }
  }
}

void Engine::drive_out_artificials() {
  for (int r = 0; r < m_; ++r) {
    if (basis_[static_cast<std::size_t>(r)] < art_begin_) continue;
    const auto mm = static_cast<std::size_t>(m_);
    for (int j = 0; j < art_begin_; ++j) {
      if (in_basis_[static_cast<std::size_t>(j)]) continue;
      double wr = 0.0;
      for (const Term& t : cols_[static_cast<std::size_t>(j)].entries) {
        wr += binv_[static_cast<std::size_t>(r) * mm +
                    static_cast<std::size_t>(t.col)] *
              t.coeff;
      }
      if (std::abs(wr) <= 1e-7) continue;
      // Pivot j into row r.
      std::vector<double>& w = w_;
      column_times_binv(j, w);
      const double p = w[static_cast<std::size_t>(r)];
      if (std::abs(p) <= 1e-9) continue;
      const double ipv = 1.0 / p;
      double* leave_row = &binv_[static_cast<std::size_t>(r) * mm];
      for (int k = 0; k < m_; ++k) leave_row[k] *= ipv;
      xb_[static_cast<std::size_t>(r)] *= ipv;
      for (int rr = 0; rr < m_; ++rr) {
        if (rr == r) continue;
        const double f = w[static_cast<std::size_t>(rr)];
        if (f == 0.0) continue;
        double* row = &binv_[static_cast<std::size_t>(rr) * mm];
        for (int k = 0; k < m_; ++k) row[k] -= f * leave_row[k];
        xb_[static_cast<std::size_t>(rr)] -=
            f * xb_[static_cast<std::size_t>(r)];
      }
      in_basis_[static_cast<std::size_t>(
          basis_[static_cast<std::size_t>(r)])] = 0;
      basis_[static_cast<std::size_t>(r)] = j;
      in_basis_[static_cast<std::size_t>(j)] = 1;
      break;
    }
  }
}

double Engine::basic_value(const std::vector<double>& costs) const {
  double value = 0.0;
  for (int r = 0; r < m_; ++r) {
    value += costs[static_cast<std::size_t>(
                basis_[static_cast<std::size_t>(r)])] *
             xb_[static_cast<std::size_t>(r)];
  }
  return value;
}

SolveResult Engine::run(const Model& model, WarmStartBasis* warm) {
  SolveResult result;
  const int max_iterations =
      opt_.max_iterations > 0 ? opt_.max_iterations
                              : 200 * (m_ + total_cols_) + 2000;

  // Warm start: re-enter at the previous solve's basis when the tableau
  // kept its shape. An adopted basis is artificial-free and primal
  // feasible, so phase 1 is provably unnecessary.
  if (warm != nullptr && !warm->empty() && warm->m == m_ &&
      warm->total_cols == total_cols_) {
    result.stats.warm_start_attempted = true;
    result.warm_started = adopt_warm_basis(warm->basis);
    result.stats.warm_start_used = result.warm_started;
  }

  if (!result.warm_started && art_begin_ < total_cols_) {
    price_limit_ = total_cols_;
    std::vector<double> phase1(static_cast<std::size_t>(total_cols_), 0.0);
    for (int c = art_begin_; c < total_cols_; ++c) {
      phase1[static_cast<std::size_t>(c)] = -1.0;
    }
    const SolveStatus st = iterate(phase1, result.iterations, max_iterations);
    result.stats.phase1_iterations = result.iterations;
    if (st == SolveStatus::kIterationLimit) {
      result.status = st;
      result.stats.refactorizations = refactorizations_;
      return result;
    }
    if (basic_value(phase1) < -opt_.feas_tol) {
      result.status = SolveStatus::kInfeasible;
      result.stats.refactorizations = refactorizations_;
      return result;
    }
    drive_out_artificials();
  }

  price_limit_ = art_begin_;
  const SolveStatus st =
      iterate(phase2_costs_, result.iterations, max_iterations);
  result.stats.phase2_iterations =
      result.iterations - result.stats.phase1_iterations;
  result.stats.refactorizations = refactorizations_;
  result.status = st;
  if (st != SolveStatus::kOptimal) return result;

  if (warm != nullptr) {
    warm->m = m_;
    warm->total_cols = total_cols_;
    warm->basis = basis_;
  }

  result.x.assign(static_cast<std::size_t>(model.num_variables()), 0.0);
  for (int r = 0; r < m_; ++r) {
    const int b = basis_[static_cast<std::size_t>(r)];
    if (b < static_cast<int>(tab_to_model_.size())) {
      result.x[static_cast<std::size_t>(
          tab_to_model_[static_cast<std::size_t>(b)])] =
          std::max(0.0, xb_[static_cast<std::size_t>(r)]);
    }
  }
  for (int j = 0; j < model.num_variables(); ++j) {
    if (model.is_fixed(j)) {
      result.x[static_cast<std::size_t>(j)] =
          model.fixed_values()[static_cast<std::size_t>(j)];
    }
  }
  result.objective = basic_value(phase2_costs_) + model.fixed_objective();
  return result;
}

}  // namespace

SolveResult RevisedSimplexSolver::solve(const Model& model) const {
  Engine engine(model, options_);
  SolveResult result = engine.run(model, nullptr);
  record_solve(result);
  return result;
}

SolveResult RevisedSimplexSolver::solve(const Model& model,
                                        WarmStartBasis& warm) const {
  Engine engine(model, options_);
  SolveResult result = engine.run(model, &warm);
  record_solve(result);
  return result;
}

SolveResult solve_lp(const Model& model) {
  // The revised engine wins when m*n is large and columns are sparse; the
  // dense tableau has the lower constant factor on small models.
  const long long m = model.num_constraints();
  const long long n = model.num_variables();
  if (m * n >= 64LL * 1024LL) {
    return RevisedSimplexSolver().solve(model);
  }
  return SimplexSolver().solve(model);
}

}  // namespace mecar::lp
