#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/catalog.h"
#include "obs/event_trace.h"
#include "util/log.h"

namespace mecar::lp {

std::string to_string(SolveStatus status) {
  // Exhaustive switch, no default: adding an enumerator without a name is
  // a compile warning here, not a silent "?" in a log line.
  switch (status) {
    case SolveStatus::kNotSolved: return "not-solved";
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
    case SolveStatus::kDeadline: return "deadline";
    case SolveStatus::kNumericalError: return "numerical-error";
  }
  return "unknown";  // unreachable for in-range values
}

bool model_input_finite(const Model& model) {
  for (const Variable& v : model.variables()) {
    if (std::isnan(v.objective) || std::isinf(v.objective)) return false;
    if (std::isnan(v.upper)) return false;  // +inf upper is legal
  }
  for (const Row& row : model.rows()) {
    if (std::isnan(row.rhs) || std::isinf(row.rhs)) return false;
    for (const Term& t : row.terms) {
      if (std::isnan(t.coeff) || std::isinf(t.coeff)) return false;
    }
  }
  return true;
}

namespace {

// Dense tableau with one extra objective row and one rhs column.
// Column layout: [structural cols that are live] [slacks/surplus] [artificials].
class Tableau {
 public:
  Tableau(const Model& model, const SimplexOptions& opt) : opt_(opt) {
    build(model);
  }

  SolveResult run(const Model& model);

 private:
  struct RowSpec {
    std::vector<Term> terms;  // live structural terms (tableau col indices)
    Sense sense = Sense::kLe;
    double rhs = 0.0;
  };

  void build(const Model& model);
  void set_objective_from(const std::vector<double>& costs);
  // One simplex phase; returns final status (optimal = phase converged).
  SolveStatus iterate(int& iterations, int max_iterations);
  void pivot(int row, int col);
  int choose_entering(bool bland) const;
  // Columns >= price_limit_ never enter the basis (used to ban artificials
  // during phase 2).
  int price_limit_ = 0;
  int choose_leaving(int entering) const;
  void drive_out_artificials();

  double& at(int r, int c) { return data_[static_cast<std::size_t>(r) * stride_ + c]; }
  double at(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * stride_ + c];
  }
  double& rhs(int r) { return at(r, total_cols_); }
  double rhs(int r) const { return at(r, total_cols_); }
  double& obj(int c) { return at(m_, c); }
  double obj(int c) const { return at(m_, c); }

  SimplexOptions opt_;
  int m_ = 0;           // constraint rows
  int total_cols_ = 0;  // structural-live + slack + artificial columns
  int stride_ = 0;      // total_cols_ + 1 (rhs)
  int art_begin_ = 0;   // first artificial column (== total_cols_ if none)
  std::vector<double> data_;
  std::vector<int> basis_;              // basic column per row
  std::vector<int> live_cols_;          // model col -> tableau col (-1 dead)
  std::vector<int> tab_to_model_;       // tableau structural col -> model col
  std::vector<double> phase2_costs_;    // per tableau column
  int degenerate_streak_ = 0;
};

void Tableau::build(const Model& model) {
  const int n_model = model.num_variables();
  live_cols_.assign(static_cast<std::size_t>(n_model), -1);

  // Live structural columns: positive upper bound (zero-upper columns are
  // forced to 0 and dropped; their fixed values are re-added on extraction).
  for (int j = 0; j < n_model; ++j) {
    if (model.variable(j).upper > 0.0) {
      live_cols_[static_cast<std::size_t>(j)] =
          static_cast<int>(tab_to_model_.size());
      tab_to_model_.push_back(j);
    }
  }
  const int n_live = static_cast<int>(tab_to_model_.size());

  // Gather rows: model rows plus bound rows for finite positive uppers.
  std::vector<RowSpec> rows;
  rows.reserve(static_cast<std::size_t>(model.num_constraints()));
  for (const Row& row : model.rows()) {
    RowSpec spec;
    spec.sense = row.sense;
    spec.rhs = row.rhs;
    for (const Term& t : row.terms) {
      const int live = live_cols_[static_cast<std::size_t>(t.col)];
      if (live >= 0) spec.terms.push_back(Term{live, t.coeff});
      // Dead columns are fixed to 0: no rhs adjustment needed.
    }
    rows.push_back(std::move(spec));
  }
  for (int j = 0; j < n_model; ++j) {
    const double u = model.variable(j).upper;
    const int live = live_cols_[static_cast<std::size_t>(j)];
    if (live >= 0 && std::isfinite(u)) {
      RowSpec spec;
      spec.sense = Sense::kLe;
      spec.rhs = u;
      spec.terms.push_back(Term{live, 1.0});
      rows.push_back(std::move(spec));
    }
  }

  // Normalize rhs >= 0 by flipping rows.
  for (RowSpec& row : rows) {
    if (row.rhs < 0.0) {
      row.rhs = -row.rhs;
      for (Term& t : row.terms) t.coeff = -t.coeff;
      if (row.sense == Sense::kLe) row.sense = Sense::kGe;
      else if (row.sense == Sense::kGe) row.sense = Sense::kLe;
    }
  }

  m_ = static_cast<int>(rows.size());

  // Column counts: slack/surplus for every inequality; artificial for >=/=.
  int n_slack = 0;
  int n_art = 0;
  for (const RowSpec& row : rows) {
    if (row.sense != Sense::kEq) ++n_slack;
    if (row.sense != Sense::kLe) ++n_art;
  }
  art_begin_ = n_live + n_slack;
  total_cols_ = n_live + n_slack + n_art;
  stride_ = total_cols_ + 1;
  data_.assign(static_cast<std::size_t>(m_ + 1) * stride_, 0.0);
  basis_.assign(static_cast<std::size_t>(m_), -1);

  int next_slack = n_live;
  int next_art = art_begin_;
  for (int r = 0; r < m_; ++r) {
    const RowSpec& row = rows[static_cast<std::size_t>(r)];
    for (const Term& t : row.terms) at(r, t.col) = t.coeff;
    rhs(r) = row.rhs;
    switch (row.sense) {
      case Sense::kLe:
        at(r, next_slack) = 1.0;
        basis_[static_cast<std::size_t>(r)] = next_slack++;
        break;
      case Sense::kGe:
        at(r, next_slack) = -1.0;
        ++next_slack;
        at(r, next_art) = 1.0;
        basis_[static_cast<std::size_t>(r)] = next_art++;
        break;
      case Sense::kEq:
        at(r, next_art) = 1.0;
        basis_[static_cast<std::size_t>(r)] = next_art++;
        break;
    }
  }

  // Phase-2 costs per tableau column (0 for slacks/artificials).
  phase2_costs_.assign(static_cast<std::size_t>(total_cols_), 0.0);
  for (int c = 0; c < n_live; ++c) {
    phase2_costs_[static_cast<std::size_t>(c)] =
        model.variable(tab_to_model_[static_cast<std::size_t>(c)]).objective;
  }
}

void Tableau::set_objective_from(const std::vector<double>& costs) {
  // Reduced costs c_j - c_B B^{-1} A_j, computed from the current tableau
  // (tableau rows already hold B^{-1} A). The rhs cell stores the NEGATED
  // objective value: pivot row-operations then keep both invariants.
  for (int c = 0; c <= total_cols_; ++c) obj(c) = 0.0;
  for (int c = 0; c < total_cols_; ++c) obj(c) = costs[static_cast<std::size_t>(c)];
  double value = 0.0;
  for (int r = 0; r < m_; ++r) {
    const double cb = costs[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])];
    if (cb == 0.0) continue;
    for (int c = 0; c < total_cols_; ++c) obj(c) -= cb * at(r, c);
    value += cb * rhs(r);
  }
  rhs(m_) = -value;
}

int Tableau::choose_entering(bool bland) const {
  if (bland) {
    for (int c = 0; c < price_limit_; ++c) {
      if (obj(c) > opt_.opt_tol) return c;
    }
    return -1;
  }
  int best = -1;
  double best_rc = opt_.opt_tol;
  for (int c = 0; c < price_limit_; ++c) {
    if (obj(c) > best_rc) {
      best_rc = obj(c);
      best = c;
    }
  }
  return best;
}

int Tableau::choose_leaving(int entering) const {
  int best_row = -1;
  double best_ratio = 0.0;
  int best_basis = -1;
  for (int r = 0; r < m_; ++r) {
    const double a = at(r, entering);
    if (a <= opt_.pivot_tol) continue;
    const double ratio = rhs(r) / a;
    if (best_row < 0 || ratio < best_ratio - opt_.pivot_tol ||
        (ratio < best_ratio + opt_.pivot_tol &&
         basis_[static_cast<std::size_t>(r)] < best_basis)) {
      best_row = r;
      best_ratio = ratio;
      best_basis = basis_[static_cast<std::size_t>(r)];
    }
  }
  return best_row;
}

void Tableau::pivot(int row, int col) {
  const double p = at(row, col);
  const double inv = 1.0 / p;
  for (int c = 0; c <= total_cols_; ++c) at(row, c) *= inv;
  at(row, col) = 1.0;  // kill roundoff
  for (int r = 0; r <= m_; ++r) {
    if (r == row) continue;
    const double factor = at(r, col);
    if (factor == 0.0) continue;
    double* target = &data_[static_cast<std::size_t>(r) * stride_];
    const double* source = &data_[static_cast<std::size_t>(row) * stride_];
    for (int c = 0; c <= total_cols_; ++c) target[c] -= factor * source[c];
    at(r, col) = 0.0;
  }
  basis_[static_cast<std::size_t>(row)] = col;
}

SolveStatus Tableau::iterate(int& iterations, int max_iterations) {
  bool bland = false;
  degenerate_streak_ = 0;
  while (true) {
    const int entering = choose_entering(bland);
    if (entering < 0) return SolveStatus::kOptimal;
    const int leaving = choose_leaving(entering);
    if (leaving < 0) return SolveStatus::kUnbounded;
    const bool degenerate = rhs(leaving) <= opt_.pivot_tol;
    pivot(leaving, entering);
    ++iterations;
    if (iterations >= max_iterations) return SolveStatus::kIterationLimit;
    if (degenerate) {
      if (++degenerate_streak_ >= opt_.stall_threshold && !bland) {
        bland = true;  // anti-cycling fallback
        util::log_debug() << "simplex: stall after " << degenerate_streak_
                          << " degenerate pivots; switching to Bland's rule";
      }
    } else {
      degenerate_streak_ = 0;
      bland = false;
    }
  }
}

void Tableau::drive_out_artificials() {
  for (int r = 0; r < m_; ++r) {
    const int b = basis_[static_cast<std::size_t>(r)];
    if (b < art_begin_) continue;
    // Basic artificial (value ~0 after a feasible phase 1): pivot in any
    // non-artificial column with a nonzero entry; if none, the row is
    // redundant and the artificial harmlessly stays basic at zero.
    for (int c = 0; c < art_begin_; ++c) {
      if (std::abs(at(r, c)) > 1e-7) {
        pivot(r, c);
        break;
      }
    }
  }
}

SolveResult Tableau::run(const Model& model) {
  SolveResult result;
  const int max_iterations =
      opt_.max_iterations > 0
          ? opt_.max_iterations
          : 200 * (m_ + total_cols_) + 2000;

  if (art_begin_ < total_cols_) {
    // Phase 1: maximize -sum(artificials); all columns may enter.
    price_limit_ = total_cols_;
    std::vector<double> phase1(static_cast<std::size_t>(total_cols_), 0.0);
    for (int c = art_begin_; c < total_cols_; ++c) {
      phase1[static_cast<std::size_t>(c)] = -1.0;
    }
    set_objective_from(phase1);
    const SolveStatus st = iterate(result.iterations, max_iterations);
    result.stats.phase1_iterations = result.iterations;
    if (st == SolveStatus::kIterationLimit) {
      result.status = st;
      return result;
    }
    // rhs(m_) = -(phase-1 objective) = total infeasibility; feasible iff ~0.
    if (rhs(m_) > opt_.feas_tol) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
    drive_out_artificials();
  }

  // Phase 2: artificial columns are banned from entering; any artificial
  // still basic sits on a redundant row at value zero.
  price_limit_ = art_begin_;
  set_objective_from(phase2_costs_);
  const SolveStatus st = iterate(result.iterations, max_iterations);
  result.stats.phase2_iterations =
      result.iterations - result.stats.phase1_iterations;
  result.status = st;
  if (st != SolveStatus::kOptimal) return result;

  // Extract solution.
  result.x.assign(static_cast<std::size_t>(model.num_variables()), 0.0);
  for (int r = 0; r < m_; ++r) {
    const int b = basis_[static_cast<std::size_t>(r)];
    if (b < static_cast<int>(tab_to_model_.size())) {
      result.x[static_cast<std::size_t>(
          tab_to_model_[static_cast<std::size_t>(b)])] = std::max(0.0, rhs(r));
    }
  }
  for (int j = 0; j < model.num_variables(); ++j) {
    if (model.is_fixed(j)) {
      result.x[static_cast<std::size_t>(j)] =
          model.fixed_values()[static_cast<std::size_t>(j)];
    }
  }
  result.objective = -rhs(m_) + model.fixed_objective();
  return result;
}

}  // namespace

SolveResult SimplexSolver::solve(const Model& model) const {
  SolveResult result;
  if (!model_input_finite(model)) {
    // Garbage in: iterating would only launder the NaNs into a plausible-
    // looking "optimal" answer. Refuse up front.
    result.status = SolveStatus::kNumericalError;
  } else {
    Tableau tableau(model, options_);
    result = tableau.run(model);
  }
  const obs::Metrics& m = obs::metrics();
  m.lp_solves.add();
  m.lp_pivots.add(result.iterations);
  m.lp_pivots_per_solve.observe(result.iterations);
  obs::EventTrace& tr = obs::trace();
  if (tr.enabled()) {
    tr.emit(obs::EventKind::kLpSolve, result.iterations, 0.0, 0.0);
  }
  return result;
}

}  // namespace mecar::lp
