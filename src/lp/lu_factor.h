// Sparse LU factorization of a simplex basis with an eta-file of
// product-form updates.
//
// The revised simplex never materializes B^{-1}. It keeps
//   B = L U            (sparse triangular factors, row-permuted)
//   B' = B F_1 ... F_k (one elementary "eta" matrix F per pivot since the
//                       last refactorization; F is the identity with one
//                       column replaced by the pivot spectrum w = B^{-1}a_q)
// and answers the two solves every iteration needs:
//   FTRAN  x = B'^{-1} a   (pivot column for the ratio test)
//   BTRAN  y = B'^{-T} c   (pricing vector, steepest-edge rows)
// A pivot appends one eta vector in O(nnz(w)) instead of the O(m^2)
// explicit-inverse update the previous engine paid; when the eta file
// reaches the refactorization interval (or an update pivot is too small to
// be stable) the caller refactorizes from scratch, which also re-anchors
// the basic solution numerically. This is the classic eta-file /
// product-form scheme (cf. the chuffed `LUFactor` row etas referenced in
// SNIPPETS.md §3); Forrest–Tomlin-style factor repair is a possible later
// refinement, the interface would not change.
#pragma once

#include <vector>

#include "lp/model.h"

namespace mecar::lp {

/// One sparse column of the constraint matrix: (row, value) entries, using
/// Term with `col` holding the row index. Shared with the simplex engine.
struct SparseCol {
  std::vector<Term> entries;
};

/// Sparse LU factors of a basis matrix plus the eta file appended since the
/// last factorize(). All vectors handed to ftran/btran are dense, length m.
class BasisLu {
 public:
  /// Factorizes B whose k-th column is `cols[basis[k]]`. Left-looking
  /// elimination with partial (max-magnitude) row pivoting; deterministic.
  /// Clears the eta file. Returns false when the basis is numerically
  /// singular (a pivot below `pivot_tol`); the previous factors are then
  /// unusable and the caller must restore a known-good basis.
  bool factorize(const std::vector<SparseCol>& cols,
                 const std::vector<int>& basis, double pivot_tol);

  /// x := B'^{-1} x. Input is row-indexed (a scattered constraint column);
  /// output is basis-position-indexed (coefficients over basic columns).
  void ftran(std::vector<double>& x);

  /// x := B'^{-T} x. Input is basis-position-indexed (costs of the basic
  /// columns); output is row-indexed (the pricing vector y).
  void btran(std::vector<double>& x);

  /// Appends the eta for a pivot replacing basis position `leave` with the
  /// column whose FTRAN spectrum is `w`. Entries below `drop_tol` are
  /// dropped (they cannot affect any later solve above roundoff). Returns
  /// false — and leaves the file untouched — when |w[leave]| <= unstable_tol,
  /// signalling the caller to refactorize instead.
  bool push_eta(const std::vector<double>& w, int leave, double unstable_tol,
                double drop_tol = 1e-13);

  int m() const noexcept { return m_; }
  bool empty() const noexcept { return m_ == 0 && etas_.empty(); }
  /// Etas appended since the last factorize (pivots absorbed cheaply).
  int eta_len() const noexcept { return static_cast<int>(etas_.size()); }
  /// Nonzeros in L + U (diagonal included): fill-in diagnostic.
  int factor_nnz() const noexcept { return factor_nnz_; }

  void clear();

 private:
  struct Entry {
    int idx = 0;  // row index (L) or elimination step (U)
    double val = 0.0;
  };
  struct Eta {
    int r = 0;  // basis position whose column was replaced
    double pivot = 0.0;
    std::vector<Entry> terms;  // w restricted to positions != r
  };

  int m_ = 0;
  std::vector<int> pivrow_;                // elimination step -> row
  std::vector<int> rowpos_;                // row -> elimination step
  std::vector<std::vector<Entry>> lcols_;  // strictly-below-pivot multipliers
  std::vector<std::vector<Entry>> ucols_;  // above-diagonal U, by column
  std::vector<double> udiag_;
  std::vector<Eta> etas_;
  std::vector<double> scratch_;
  int factor_nnz_ = 0;
};

}  // namespace mecar::lp
