#include "lp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/log.h"

namespace mecar::lp {
namespace {

/// Index of the integral variable whose relaxation value is most fractional;
/// -1 when the point is integral on all flagged variables.
int most_fractional(const Model& model, const std::vector<double>& x,
                    double tol) {
  int best = -1;
  double best_dist = tol;  // distance to nearest integer, in (tol, 0.5]
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).integral || model.is_fixed(j)) continue;
    const double v = x[static_cast<std::size_t>(j)];
    const double dist = std::abs(v - std::round(v));
    if (dist > best_dist) {
      best_dist = dist;
      best = j;
    }
  }
  return best;
}

struct SearchState {
  const BranchAndBoundOptions* options = nullptr;
  const SimplexSolver* solver = nullptr;
  double incumbent = -std::numeric_limits<double>::infinity();
  std::vector<double> incumbent_x;
  std::int64_t nodes = 0;
  bool node_limit_hit = false;
  bool iteration_trouble = false;
};

void search(const Model& model, SearchState& state) {
  if (state.node_limit_hit) return;
  if (state.options->max_nodes > 0 && state.nodes >= state.options->max_nodes) {
    state.node_limit_hit = true;
    return;
  }
  ++state.nodes;

  const SolveResult relax = state.solver->solve(model);
  if (relax.status == SolveStatus::kInfeasible) return;
  if (relax.status != SolveStatus::kOptimal) {
    // Iteration limit, numerical error, unbounded (shouldn't happen in our
    // bounded models), deadline: the node cannot be trusted or explored.
    state.iteration_trouble = true;
    return;
  }
  if (relax.objective <= state.incumbent + state.options->gap_tol) return;

  const int branch_var =
      most_fractional(model, relax.x, state.options->int_tol);
  if (branch_var < 0) {
    // Integral solution improving the incumbent.
    state.incumbent = relax.objective;
    state.incumbent_x = relax.x;
    // Snap near-integral values exactly.
    for (int j = 0; j < model.num_variables(); ++j) {
      if (model.variable(j).integral) {
        auto& v = state.incumbent_x[static_cast<std::size_t>(j)];
        v = std::round(v);
      }
    }
    return;
  }

  const double v = relax.x[static_cast<std::size_t>(branch_var)];
  const double floor_v = std::floor(v);
  const double ceil_v = std::ceil(v);
  const Variable& var = model.variable(branch_var);

  const bool binary_like = var.upper <= 1.0 + 1e-9;
  // Explore the branch nearer the relaxation value first (better incumbents
  // earlier -> more pruning).
  const bool ceil_first = (v - floor_v) > 0.5;

  auto explore_le = [&] {  // x <= floor(v)
    if (binary_like && floor_v <= 0.0) {
      search(model.with_fixed(branch_var, 0.0), state);
    } else {
      Model child = model;
      child.add_constraint("bb_le", Sense::kLe, floor_v,
                           {Term{branch_var, 1.0}});
      search(child, state);
    }
  };
  auto explore_ge = [&] {  // x >= ceil(v)
    if (binary_like && ceil_v >= var.upper - 1e-9) {
      search(model.with_fixed(branch_var, var.upper), state);
    } else {
      Model child = model;
      child.add_constraint("bb_ge", Sense::kGe, ceil_v,
                           {Term{branch_var, 1.0}});
      search(child, state);
    }
  };

  if (ceil_first) {
    explore_ge();
    explore_le();
  } else {
    explore_le();
    explore_ge();
  }
}

}  // namespace

MipResult BranchAndBound::solve(const Model& model) const {
  SimplexSolver solver(options_.simplex);
  SearchState state;
  state.options = &options_;
  state.solver = &solver;

  search(model, state);

  MipResult result;
  result.nodes_explored = state.nodes;
  if (state.incumbent_x.empty()) {
    result.status = (state.node_limit_hit || state.iteration_trouble)
                        ? SolveStatus::kIterationLimit
                        : SolveStatus::kInfeasible;
    return result;
  }
  result.status = (state.node_limit_hit || state.iteration_trouble)
                      ? SolveStatus::kIterationLimit
                      : SolveStatus::kOptimal;
  result.objective = state.incumbent;
  result.x = std::move(state.incumbent_x);
  return result;
}

}  // namespace mecar::lp
