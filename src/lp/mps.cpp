#include "lp/mps.h"

#include <cmath>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/parse.h"

namespace mecar::lp {
namespace {

std::string sanitize(std::string name, const std::string& fallback) {
  if (name.empty()) return fallback;
  for (char& ch : name) {
    if (ch == ' ' || ch == '\t') ch = '_';
  }
  return name;
}

std::vector<std::string> tokens(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> out;
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

}  // namespace

void write_mps(const Model& model, std::ostream& os,
               const std::string& name) {
  os << "* OBJSENSE MAX\n";
  os << "NAME          " << sanitize(name, "MECAR") << '\n';
  os << "ROWS\n";
  os << " N  OBJ\n";
  for (int r = 0; r < model.num_constraints(); ++r) {
    const Row& row = model.row(r);
    const char sense = row.sense == Sense::kLe   ? 'L'
                       : row.sense == Sense::kGe ? 'G'
                                                 : 'E';
    os << ' ' << sense << "  "
       << sanitize(row.name, "R" + std::to_string(r)) << '\n';
  }

  // Column-major view of the rows.
  std::vector<std::vector<std::pair<int, double>>> columns(
      static_cast<std::size_t>(model.num_variables()));
  for (int r = 0; r < model.num_constraints(); ++r) {
    for (const Term& t : model.row(r).terms) {
      columns[static_cast<std::size_t>(t.col)].emplace_back(r, t.coeff);
    }
  }

  os << "COLUMNS\n";
  bool in_int_block = false;
  int marker = 0;
  for (int j = 0; j < model.num_variables(); ++j) {
    const Variable& var = model.variable(j);
    if (var.integral != in_int_block) {
      os << "    MARKER" << marker++ << "  'MARKER'  "
         << (var.integral ? "'INTORG'" : "'INTEND'") << '\n';
      in_int_block = var.integral;
    }
    const std::string cname = sanitize(var.name, "C" + std::to_string(j));
    if (var.objective != 0.0) {
      os << "    " << cname << "  OBJ  " << var.objective << '\n';
    }
    for (const auto& [r, coeff] : columns[static_cast<std::size_t>(j)]) {
      os << "    " << cname << "  "
         << sanitize(model.row(r).name, "R" + std::to_string(r)) << "  "
         << coeff << '\n';
    }
    if (var.objective == 0.0 &&
        columns[static_cast<std::size_t>(j)].empty()) {
      // Keep empty columns visible so the reader reconstructs them.
      os << "    " << cname << "  OBJ  0\n";
    }
  }
  if (in_int_block) {
    os << "    MARKER" << marker++ << "  'MARKER'  'INTEND'\n";
  }

  os << "RHS\n";
  for (int r = 0; r < model.num_constraints(); ++r) {
    const Row& row = model.row(r);
    if (row.rhs != 0.0) {
      os << "    RHS1  " << sanitize(row.name, "R" + std::to_string(r))
         << "  " << row.rhs << '\n';
    }
  }

  os << "BOUNDS\n";
  for (int j = 0; j < model.num_variables(); ++j) {
    const Variable& var = model.variable(j);
    if (std::isfinite(var.upper)) {
      os << " UP BND1  " << sanitize(var.name, "C" + std::to_string(j))
         << "  " << var.upper << '\n';
    }
  }
  os << "ENDATA\n";
}

Model read_mps(std::istream& is) {
  enum class Section { kNone, kRows, kColumns, kRhs, kBounds, kDone };
  Section section = Section::kNone;
  int line_no = 0;
  // Strict numeric field: the whole token must parse (no trailing junk).
  const auto numeric = [&line_no](const std::string& tok,
                                  const char* field) -> double {
    if (const auto v = util::parse_double(tok)) return *v;
    throw MpsParseError(line_no, std::string("bad ") + field + " value '" +
                                     tok + "'");
  };
  Model model;
  std::map<std::string, int> row_ids;        // name -> constraint index
  std::map<std::string, Sense> row_sense;    // staged before creation
  std::vector<std::string> row_order;
  std::map<std::string, int> col_ids;
  std::map<std::string, double> objective;   // column -> obj coefficient
  std::map<std::string, std::map<std::string, double>> matrix;  // row->col
  std::map<std::string, double> rhs;
  std::map<std::string, double> uppers;
  std::map<std::string, bool> integral;
  std::vector<std::string> col_order;
  bool in_int_block = false;
  std::string objective_row;

  std::string line;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '*') continue;  // comment (incl. OBJSENSE)
    const auto toks = tokens(line);
    if (toks.empty()) continue;
    if (line[0] != ' ' && line[0] != '\t') {
      const std::string& head = toks[0];
      if (head == "NAME") continue;
      if (head == "ROWS") { section = Section::kRows; continue; }
      if (head == "COLUMNS") { section = Section::kColumns; continue; }
      if (head == "RHS") { section = Section::kRhs; continue; }
      if (head == "BOUNDS") { section = Section::kBounds; continue; }
      if (head == "RANGES") {
        throw MpsParseError(line_no, "RANGES not supported");
      }
      if (head == "ENDATA") { section = Section::kDone; break; }
      throw MpsParseError(line_no, "unknown section " + head);
    }
    switch (section) {
      case Section::kRows: {
        if (toks.size() != 2) {
          throw MpsParseError(line_no,
                              "malformed ROWS line (want 'SENSE NAME')");
        }
        if (toks[0] == "N") {
          objective_row = toks[1];
        } else if (toks[0] == "L" || toks[0] == "G" || toks[0] == "E") {
          row_sense[toks[1]] = toks[0] == "L"   ? Sense::kLe
                               : toks[0] == "G" ? Sense::kGe
                                                : Sense::kEq;
          row_order.push_back(toks[1]);
        } else {
          throw MpsParseError(line_no, "bad row sense " + toks[0]);
        }
        break;
      }
      case Section::kColumns: {
        if (toks.size() >= 3 && toks[1] == "'MARKER'") {
          in_int_block = (toks[2] == "'INTORG'");
          break;
        }
        if (toks.size() < 3 || toks.size() % 2 == 0) {
          throw MpsParseError(
              line_no, "malformed COLUMNS line (want 'COL ROW VAL ...')");
        }
        const std::string& col = toks[0];
        if (!col_ids.contains(col)) {
          col_ids[col] = static_cast<int>(col_order.size());
          col_order.push_back(col);
          integral[col] = in_int_block;
        }
        for (std::size_t k = 1; k + 1 < toks.size(); k += 2) {
          const std::string& row = toks[k];
          const double value = numeric(toks[k + 1], "coefficient");
          if (row == objective_row) {
            objective[col] += value;
          } else if (row_sense.contains(row)) {
            matrix[row][col] += value;
          } else {
            throw MpsParseError(line_no, "unknown row " + row);
          }
        }
        break;
      }
      case Section::kRhs: {
        if (toks.size() < 3 || toks.size() % 2 == 0) {
          throw MpsParseError(line_no,
                              "malformed RHS line (want 'SET ROW VAL ...')");
        }
        for (std::size_t k = 1; k + 1 < toks.size(); k += 2) {
          rhs[toks[k]] = numeric(toks[k + 1], "RHS");
        }
        break;
      }
      case Section::kBounds: {
        if (toks.size() < 3) {
          throw MpsParseError(line_no, "malformed BOUNDS line");
        }
        if (toks[0] == "UP") {
          if (toks.size() != 4) {
            throw MpsParseError(line_no,
                                "malformed UP bound (want 'UP SET COL VAL')");
          }
          uppers[toks[2]] = numeric(toks[3], "upper bound");
        } else if (toks[0] == "BV") {
          integral[toks[2]] = true;
          uppers[toks[2]] = 1.0;
        } else {
          throw MpsParseError(line_no, "unsupported bound " + toks[0]);
        }
        break;
      }
      default:
        throw MpsParseError(line_no, "data before a section");
    }
  }

  for (const std::string& col : col_order) {
    const double upper =
        uppers.contains(col) ? uppers.at(col) : kInf;
    model.add_variable(col, objective.contains(col) ? objective.at(col) : 0.0,
                       upper, integral.at(col));
  }
  for (const std::string& row : row_order) {
    std::vector<Term> terms;
    if (matrix.contains(row)) {
      for (const auto& [col, value] : matrix.at(row)) {
        terms.push_back(Term{col_ids.at(col), value});
      }
    }
    model.add_constraint(row, row_sense.at(row),
                         rhs.contains(row) ? rhs.at(row) : 0.0,
                         std::move(terms));
  }
  return model;
}

}  // namespace mecar::lp
