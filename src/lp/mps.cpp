#include "lp/mps.h"

#include <cmath>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/parse.h"

namespace mecar::lp {
namespace {

std::string sanitize(std::string name, const std::string& fallback) {
  if (name.empty()) return fallback;
  for (char& ch : name) {
    if (ch == ' ' || ch == '\t') ch = '_';
  }
  return name;
}

std::vector<std::string> tokens(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> out;
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

}  // namespace

void write_mps(const Model& model, std::ostream& os,
               const std::string& name) {
  // Shortest-round-trip precision: a re-read model must carry bit-equal
  // coefficients, bounds, and rhs values, not 6-significant-digit copies.
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "* OBJSENSE MAX\n";
  os << "NAME          " << sanitize(name, "MECAR") << '\n';
  os << "ROWS\n";
  os << " N  OBJ\n";
  for (int r = 0; r < model.num_constraints(); ++r) {
    const Row& row = model.row(r);
    const char sense = row.sense == Sense::kLe   ? 'L'
                       : row.sense == Sense::kGe ? 'G'
                                                 : 'E';
    os << ' ' << sense << "  "
       << sanitize(row.name, "R" + std::to_string(r)) << '\n';
  }

  // Column-major view of the rows.
  std::vector<std::vector<std::pair<int, double>>> columns(
      static_cast<std::size_t>(model.num_variables()));
  for (int r = 0; r < model.num_constraints(); ++r) {
    for (const Term& t : model.row(r).terms) {
      columns[static_cast<std::size_t>(t.col)].emplace_back(r, t.coeff);
    }
  }

  os << "COLUMNS\n";
  bool in_int_block = false;
  int marker = 0;
  for (int j = 0; j < model.num_variables(); ++j) {
    const Variable& var = model.variable(j);
    if (var.integral != in_int_block) {
      os << "    MARKER" << marker++ << "  'MARKER'  "
         << (var.integral ? "'INTORG'" : "'INTEND'") << '\n';
      in_int_block = var.integral;
    }
    const std::string cname = sanitize(var.name, "C" + std::to_string(j));
    if (var.objective != 0.0) {
      os << "    " << cname << "  OBJ  " << var.objective << '\n';
    }
    for (const auto& [r, coeff] : columns[static_cast<std::size_t>(j)]) {
      os << "    " << cname << "  "
         << sanitize(model.row(r).name, "R" + std::to_string(r)) << "  "
         << coeff << '\n';
    }
    if (var.objective == 0.0 &&
        columns[static_cast<std::size_t>(j)].empty()) {
      // Keep empty columns visible so the reader reconstructs them.
      os << "    " << cname << "  OBJ  0\n";
    }
  }
  if (in_int_block) {
    os << "    MARKER" << marker++ << "  'MARKER'  'INTEND'\n";
  }

  os << "RHS\n";
  for (int r = 0; r < model.num_constraints(); ++r) {
    const Row& row = model.row(r);
    if (row.rhs != 0.0) {
      os << "    RHS1  " << sanitize(row.name, "R" + std::to_string(r))
         << "  " << row.rhs << '\n';
    }
  }

  os << "BOUNDS\n";
  for (int j = 0; j < model.num_variables(); ++j) {
    const Variable& var = model.variable(j);
    const std::string cname = sanitize(var.name, "C" + std::to_string(j));
    if (model.is_fixed(j)) {
      // A with_fixed column re-reads as the same fixed value (the
      // objective constant itself has no MPS record and is lost).
      os << " FX BND1  " << cname << "  "
         << model.fixed_values()[static_cast<std::size_t>(j)] << '\n';
    } else if (std::isfinite(var.upper)) {
      os << " UP BND1  " << cname << "  " << var.upper << '\n';
    }
  }
  os << "ENDATA\n";
  os.precision(old_precision);
}

Model read_mps(std::istream& is) {
  enum class Section { kNone, kRows, kColumns, kRhs, kRanges, kBounds, kDone };
  Section section = Section::kNone;
  int line_no = 0;
  // Strict numeric field: the whole token must parse (no trailing junk).
  const auto numeric = [&line_no](const std::string& tok,
                                  const char* field) -> double {
    if (const auto v = util::parse_double(tok)) return *v;
    throw MpsParseError(line_no, std::string("bad ") + field + " value '" +
                                     tok + "'");
  };
  Model model;
  std::map<std::string, int> row_ids;        // name -> constraint index
  std::map<std::string, Sense> row_sense;    // staged before creation
  std::vector<std::string> row_order;
  std::map<std::string, int> col_ids;
  std::map<std::string, double> objective;   // column -> obj coefficient
  std::map<std::string, std::map<std::string, double>> matrix;  // row->col
  std::map<std::string, double> rhs;
  std::map<std::string, double> ranges;  // row -> RANGES value
  std::map<std::string, double> uppers;
  std::map<std::string, double> fixed;   // column -> FX value
  std::map<std::string, bool> integral;
  std::vector<std::string> col_order;
  bool in_int_block = false;
  std::string objective_row;

  std::string line;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '*') continue;  // comment (incl. OBJSENSE)
    const auto toks = tokens(line);
    if (toks.empty()) continue;
    if (line[0] != ' ' && line[0] != '\t') {
      const std::string& head = toks[0];
      if (head == "NAME") continue;
      if (head == "ROWS") { section = Section::kRows; continue; }
      if (head == "COLUMNS") { section = Section::kColumns; continue; }
      if (head == "RHS") { section = Section::kRhs; continue; }
      if (head == "BOUNDS") { section = Section::kBounds; continue; }
      if (head == "RANGES") { section = Section::kRanges; continue; }
      if (head == "ENDATA") { section = Section::kDone; break; }
      throw MpsParseError(line_no, "unknown section " + head);
    }
    switch (section) {
      case Section::kRows: {
        if (toks.size() != 2) {
          throw MpsParseError(line_no,
                              "malformed ROWS line (want 'SENSE NAME')");
        }
        if (toks[0] == "N") {
          objective_row = toks[1];
        } else if (toks[0] == "L" || toks[0] == "G" || toks[0] == "E") {
          row_sense[toks[1]] = toks[0] == "L"   ? Sense::kLe
                               : toks[0] == "G" ? Sense::kGe
                                                : Sense::kEq;
          row_order.push_back(toks[1]);
        } else {
          throw MpsParseError(line_no, "bad row sense " + toks[0]);
        }
        break;
      }
      case Section::kColumns: {
        if (toks.size() >= 3 && toks[1] == "'MARKER'") {
          in_int_block = (toks[2] == "'INTORG'");
          break;
        }
        if (toks.size() < 3 || toks.size() % 2 == 0) {
          throw MpsParseError(
              line_no, "malformed COLUMNS line (want 'COL ROW VAL ...')");
        }
        const std::string& col = toks[0];
        if (!col_ids.contains(col)) {
          col_ids[col] = static_cast<int>(col_order.size());
          col_order.push_back(col);
          integral[col] = in_int_block;
        }
        for (std::size_t k = 1; k + 1 < toks.size(); k += 2) {
          const std::string& row = toks[k];
          const double value = numeric(toks[k + 1], "coefficient");
          if (row == objective_row) {
            objective[col] += value;
          } else if (row_sense.contains(row)) {
            matrix[row][col] += value;
          } else {
            throw MpsParseError(line_no, "unknown row " + row);
          }
        }
        break;
      }
      case Section::kRhs: {
        if (toks.size() < 3 || toks.size() % 2 == 0) {
          throw MpsParseError(line_no,
                              "malformed RHS line (want 'SET ROW VAL ...')");
        }
        for (std::size_t k = 1; k + 1 < toks.size(); k += 2) {
          rhs[toks[k]] = numeric(toks[k + 1], "RHS");
        }
        break;
      }
      case Section::kRanges: {
        if (toks.size() < 3 || toks.size() % 2 == 0) {
          throw MpsParseError(
              line_no, "malformed RANGES line (want 'SET ROW VAL ...')");
        }
        for (std::size_t k = 1; k + 1 < toks.size(); k += 2) {
          if (!row_sense.contains(toks[k])) {
            throw MpsParseError(line_no, "unknown row " + toks[k]);
          }
          ranges[toks[k]] = numeric(toks[k + 1], "range");
        }
        break;
      }
      case Section::kBounds: {
        if (toks.size() < 3) {
          throw MpsParseError(line_no, "malformed BOUNDS line");
        }
        const std::string& type = toks[0];
        const std::string& col = toks[2];
        if (!col_ids.contains(col)) {
          throw MpsParseError(line_no, "bound on unknown column " + col);
        }
        const auto bound_value = [&](const char* kind) -> double {
          if (toks.size() != 4) {
            throw MpsParseError(line_no, std::string("malformed ") + kind +
                                             " bound (want '" + kind +
                                             " SET COL VAL')");
          }
          return numeric(toks[3], (std::string(kind) + " bound").c_str());
        };
        if (type == "UP") {
          const double v = bound_value("UP");
          if (v < 0.0) {
            throw MpsParseError(
                line_no, "negative UP bound (lower bounds are fixed at 0)");
          }
          uppers[col] = v;
        } else if (type == "LO") {
          // The model's lower bound is structurally 0; only a redundant
          // LO 0 can be represented.
          if (bound_value("LO") != 0.0) {
            throw MpsParseError(line_no,
                                "nonzero LO bound unsupported (variables "
                                "have a fixed lower bound of 0)");
          }
        } else if (type == "FX") {
          const double v = bound_value("FX");
          if (v < 0.0) {
            throw MpsParseError(
                line_no, "negative FX bound (lower bounds are fixed at 0)");
          }
          fixed[col] = v;
          uppers[col] = v;
        } else if (type == "PL") {
          if (toks.size() != 3) {
            throw MpsParseError(line_no,
                                "malformed PL bound (want 'PL SET COL')");
          }
          // +infinity upper bound: the default; nothing to record.
        } else if (type == "BV") {
          integral[col] = true;
          uppers[col] = 1.0;
        } else if (type == "FR" || type == "MI") {
          throw MpsParseError(line_no, "unsupported bound " + type +
                                           " (free/negative lower bounds "
                                           "are not representable)");
        } else {
          throw MpsParseError(line_no, "unsupported bound " + type);
        }
        break;
      }
      default:
        throw MpsParseError(line_no, "data before a section");
    }
  }

  for (const std::string& col : col_order) {
    const double upper =
        uppers.contains(col) ? uppers.at(col) : kInf;
    model.add_variable(col, objective.contains(col) ? objective.at(col) : 0.0,
                       upper, integral.at(col));
  }
  for (const std::string& row : row_order) {
    std::vector<Term> terms;
    if (matrix.contains(row)) {
      for (const auto& [col, value] : matrix.at(row)) {
        terms.push_back(Term{col_ids.at(col), value});
      }
    }
    const Sense sense = row_sense.at(row);
    const double b = rhs.contains(row) ? rhs.at(row) : 0.0;
    const auto range = ranges.find(row);
    if (range == ranges.end()) {
      model.add_constraint(row, sense, b, std::move(terms));
      continue;
    }
    // RANGES turns a row into a two-sided constraint; the model has no
    // native row ranges, so the second side becomes a companion row
    // (name suffixed "~rng"). Standard interpretation: an L row b gets
    // lower bound b-|r|, a G row b gets upper bound b+|r|, an E row b
    // spans [b, b+r] for r >= 0 and [b+r, b] otherwise.
    const double r = range->second;
    double lower, upper;
    switch (sense) {
      case Sense::kLe: lower = b - std::abs(r); upper = b; break;
      case Sense::kGe: lower = b; upper = b + std::abs(r); break;
      case Sense::kEq:
      default:
        lower = r >= 0.0 ? b : b + r;
        upper = r >= 0.0 ? b + r : b;
        break;
    }
    model.add_constraint(row + "~rng", Sense::kLe, upper, terms);
    model.add_constraint(row, Sense::kGe, lower, std::move(terms));
  }
  for (const auto& [col, value] : fixed) {
    model = model.with_fixed(col_ids.at(col), value);
  }
  return model;
}

}  // namespace mecar::lp
