// Revised simplex with a dense explicit basis inverse and sparse columns.
//
// A second, faster engine for the slot-indexed LPs, which are extremely
// sparse (~4 nonzeros per column): per-iteration cost is O(m^2) for the
// pricing vector and inverse update instead of the dense tableau's O(m n).
// Same model class, same result type, same two-phase scheme as
// SimplexSolver; the basis inverse is refactorized periodically for
// numerical stability. `solve_lp` picks the engine by model shape.
#pragma once

#include "lp/model.h"
#include "lp/simplex.h"

namespace mecar::lp {

struct RevisedSimplexOptions {
  double pivot_tol = 1e-9;
  double opt_tol = 1e-9;
  double feas_tol = 1e-7;
  int max_iterations = 0;  // 0 = automatic
  /// Rebuild the basis inverse from scratch every this many pivots.
  int refactor_interval = 96;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  int stall_threshold = 128;
};

/// Sparse revised simplex. Stateless between solves.
class RevisedSimplexSolver {
 public:
  explicit RevisedSimplexSolver(RevisedSimplexOptions options = {})
      : options_(options) {}

  /// Solves the LP relaxation of `model` (integrality flags ignored).
  SolveResult solve(const Model& model) const;

  const RevisedSimplexOptions& options() const noexcept { return options_; }

 private:
  RevisedSimplexOptions options_;
};

/// Convenience front-end: revised simplex for large sparse models, dense
/// tableau for small ones (lower constant factor).
SolveResult solve_lp(const Model& model);

}  // namespace mecar::lp
