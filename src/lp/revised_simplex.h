// Revised simplex over a sparse LU basis factorization with eta-file
// updates, steepest-edge pricing, and bounded-variable columns.
//
// A second, faster engine for the slot-indexed LPs, which are extremely
// sparse (~4 nonzeros per column). The basis is kept as B = L U plus a
// short eta file of product-form updates (see lp/lu_factor.h): a pivot
// costs two sparse triangular solves plus one appended eta vector, not the
// O(m^2) explicit-inverse update of the previous engine, and the factors
// are rebuilt from scratch every `refactor_interval` pivots for numerical
// stability. Finite variable upper bounds are handled natively (nonbasic
// columns sit at either bound, bound-to-bound flips skip the basis change
// entirely) instead of being expanded into explicit rows, so the basis
// dimension is the true row count. Same model class, same result type,
// same two-phase scheme as SimplexSolver; `solve_lp` picks the engine by
// model shape.
#pragma once

#include "lp/model.h"
#include "lp/simplex.h"

namespace mecar::lp {

/// Entering-column selection rule. Steepest-edge maximizes the objective
/// change per unit step in the edge direction (fewest pivots, two extra
/// BTRANs per pivot to maintain the norms); devex approximates the same
/// norms with one BTRAN; Dantzig is the classic most-negative reduced
/// cost. All three fall back to Bland's rule during a degenerate stall.
enum class PricingMode {
  kDantzig = 0,
  kDevex = 1,
  kSteepestEdge = 2,
};

struct RevisedSimplexOptions {
  double pivot_tol = 1e-9;
  double opt_tol = 1e-9;
  double feas_tol = 1e-7;
  int max_iterations = 0;  // 0 = automatic
  /// Refactorize B = LU once the eta file reaches this many updates (or
  /// earlier, when an update pivot is too small to be stable).
  int refactor_interval = 64;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  int stall_threshold = 128;
  /// Entering-column rule. Steepest-edge self-monitors its reference
  /// weights against the exact edge norm of each entering column and
  /// drops to devex for the rest of the solve after repeated drift.
  PricingMode pricing = PricingMode::kSteepestEdge;
  /// Anytime work budget (pivots and/or wall clock); see lp::SolveBudget.
  /// Unlimited by default — the budget path costs nothing when unset.
  SolveBudget budget;
  /// Relative tolerance of the post-factorization residual check
  /// ‖B·x_B − b_eff‖∞ ≤ residual_tol · (1 + max|rhs|). A violation marks
  /// the factorization untrustworthy and engages the recovery ladder.
  double residual_tol = 1e-6;
  /// Eta-file growth ceiling: an update column whose max|w| / |pivot|
  /// exceeds this triggers a refactorization instead of an eta append
  /// (classic product-form element-growth monitor).
  double eta_growth_limit = 1e12;
  /// Test/fuzzer fault injection: poison the k-th entering-column FTRAN
  /// of this solve with a NaN (1-based; 0 = no injection). A transient
  /// fault the recovery ladder must contain.
  int inject_nan_at_pivot = 0;
  /// Poison EVERY entering-column FTRAN: a persistent fault that forces
  /// the ladder all the way to the dense cross-solve rung.
  bool inject_nan_every_pivot = false;
  /// Opt-in warm-basis repair across tableau-shape changes (see
  /// WarmStartBasis::model_cols). OFF by default: a repaired start reaches
  /// the same optimum through a different pivot path, and vertex
  /// tie-breaks may differ from the cold start a shape change used to
  /// force — callers that must stay bit-identical to historical runs
  /// (the golden suite) keep the cold-start behavior unless they opted
  /// into the incremental-LP pipeline.
  bool repair_warm_basis = false;
};

/// Optimal basis exported by one solve and fed to the next. The slot LPs of
/// consecutive simulator slots usually share their shape (same pending
/// batch, slightly different data), so re-entering the simplex at the
/// previous optimum takes a handful of pivots instead of a full two-phase
/// cold start. A mismatch in tableau dimensions — the batch changed — makes
/// the state unusable and the solve silently falls back to a cold start.
struct WarmStartBasis {
  int m = 0;           // tableau rows at export time
  int total_cols = 0;  // structural + slack + artificial columns
  std::vector<int> basis;
  /// Per-column nonbasic rest point: 1 = at upper bound, 0 = at lower.
  /// Entries for basic columns are ignored. Empty means "all at lower"
  /// (the pre-bounded-variable export format).
  std::vector<char> at_upper;
  /// Model-column index behind each structural tableau column at export
  /// time (a snapshot of the engine's live-column map). When the next
  /// model mutated columns through the Model incremental API — so the
  /// tableau dimensions no longer match — this lets the solver remap the
  /// basis onto the new layout (warm-basis repair) instead of discarding
  /// it. Empty disables repair (the pre-incremental export format).
  std::vector<int> model_cols;

  bool empty() const noexcept { return basis.empty(); }
  void clear() {
    m = 0;
    total_cols = 0;
    basis.clear();
    at_upper.clear();
    model_cols.clear();
  }
};

/// Sparse revised simplex. Stateless between solves unless the caller
/// threads a WarmStartBasis through consecutive calls.
class RevisedSimplexSolver {
 public:
  explicit RevisedSimplexSolver(RevisedSimplexOptions options = {})
      : options_(options) {}

  /// Solves the LP relaxation of `model` (integrality flags ignored).
  SolveResult solve(const Model& model) const;

  /// Warm-started solve: seeds the engine from `warm` when its dimensions
  /// match the model's tableau and the stored basis factorizes and is
  /// still feasible for the bounds; otherwise cold-starts. On an optimal
  /// exit `warm` is updated to this solve's basis, ready for the next
  /// slot. The result is the same optimum as a cold solve (the warm start
  /// changes the path, not the destination); `SolveResult::warm_started`
  /// reports which path ran.
  SolveResult solve(const Model& model, WarmStartBasis& warm) const;

  const RevisedSimplexOptions& options() const noexcept { return options_; }

 private:
  RevisedSimplexOptions options_;
};

/// Convenience front-end: revised simplex for large sparse models, dense
/// tableau for small ones (lower constant factor).
SolveResult solve_lp(const Model& model);

}  // namespace mecar::lp
