// Revised simplex with a dense explicit basis inverse and sparse columns.
//
// A second, faster engine for the slot-indexed LPs, which are extremely
// sparse (~4 nonzeros per column): per-iteration cost is O(m^2) for the
// pricing vector and inverse update instead of the dense tableau's O(m n).
// Same model class, same result type, same two-phase scheme as
// SimplexSolver; the basis inverse is refactorized periodically for
// numerical stability. `solve_lp` picks the engine by model shape.
#pragma once

#include "lp/model.h"
#include "lp/simplex.h"

namespace mecar::lp {

struct RevisedSimplexOptions {
  double pivot_tol = 1e-9;
  double opt_tol = 1e-9;
  double feas_tol = 1e-7;
  int max_iterations = 0;  // 0 = automatic
  /// Rebuild the basis inverse from scratch every this many pivots.
  int refactor_interval = 96;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  int stall_threshold = 128;
};

/// Optimal basis exported by one solve and fed to the next. The slot LPs of
/// consecutive simulator slots usually share their shape (same pending
/// batch, slightly different data), so re-entering the simplex at the
/// previous optimum takes a handful of pivots instead of a full two-phase
/// cold start. A mismatch in tableau dimensions — the batch changed — makes
/// the state unusable and the solve silently falls back to a cold start.
struct WarmStartBasis {
  int m = 0;           // tableau rows at export time
  int total_cols = 0;  // structural + slack + artificial columns
  std::vector<int> basis;

  bool empty() const noexcept { return basis.empty(); }
  void clear() {
    m = 0;
    total_cols = 0;
    basis.clear();
  }
};

/// Sparse revised simplex. Stateless between solves unless the caller
/// threads a WarmStartBasis through consecutive calls.
class RevisedSimplexSolver {
 public:
  explicit RevisedSimplexSolver(RevisedSimplexOptions options = {})
      : options_(options) {}

  /// Solves the LP relaxation of `model` (integrality flags ignored).
  SolveResult solve(const Model& model) const;

  /// Warm-started solve: seeds the engine from `warm` when its dimensions
  /// match the model's tableau and the stored basis is still primal
  /// feasible; otherwise cold-starts. On an optimal exit `warm` is updated
  /// to this solve's basis, ready for the next slot. The result is the
  /// same optimum as a cold solve (the warm start changes the path, not
  /// the destination); `SolveResult::warm_started` reports which path ran.
  SolveResult solve(const Model& model, WarmStartBasis& warm) const;

  const RevisedSimplexOptions& options() const noexcept { return options_; }

 private:
  RevisedSimplexOptions options_;
};

/// Convenience front-end: revised simplex for large sparse models, dense
/// tableau for small ones (lower constant factor).
SolveResult solve_lp(const Model& model);

}  // namespace mecar::lp
