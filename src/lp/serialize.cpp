#include "lp/serialize.h"

#include <cstdint>
#include <stdexcept>

#include "lp/model.h"
#include "lp/revised_simplex.h"
#include "util/snapshot.h"

namespace mecar::lp {

void save_basis(const WarmStartBasis& basis, util::SnapshotWriter& w) {
  w.i32(basis.m);
  w.i32(basis.total_cols);
  w.vec(basis.basis, [&](int b) { w.i32(b); });
  w.vec(basis.at_upper, [&](char u) { w.boolean(u != 0); });
  w.vec(basis.model_cols, [&](int c) { w.i32(c); });
}

WarmStartBasis load_basis(util::SnapshotReader& r) {
  WarmStartBasis basis;
  basis.m = r.i32();
  basis.total_cols = r.i32();
  basis.basis = r.vec<int>([&] { return r.i32(); });
  basis.at_upper =
      r.vec<char>([&] { return static_cast<char>(r.boolean() ? 1 : 0); });
  basis.model_cols = r.vec<int>([&] { return r.i32(); });
  return basis;
}

void save_model(const Model& model, util::SnapshotWriter& w) {
  for (int col = 0; col < model.num_variables(); ++col) {
    if (model.is_fixed(col)) {
      throw std::logic_error("save_model: fixed variables unsupported");
    }
  }
  if (model.fixed_objective() != 0.0) {
    throw std::logic_error("save_model: fixed objective unsupported");
  }
  w.vec(model.variables(), [&](const Variable& v) {
    w.str(v.name);
    w.f64(v.objective);
    w.f64(v.upper);
    w.boolean(v.integral);
  });
  w.vec(model.rows(), [&](const Row& row) {
    w.str(row.name);
    w.u8(static_cast<std::uint8_t>(row.sense));
    w.f64(row.rhs);
    w.vec(row.terms, [&](const Term& t) {
      w.i32(t.col);
      w.f64(t.coeff);
    });
  });
}

Model load_model(util::SnapshotReader& r) {
  Model model;
  const std::uint64_t num_vars = r.u64();
  for (std::uint64_t i = 0; i < num_vars; ++i) {
    std::string name = r.str();
    const double objective = r.f64();
    const double upper = r.f64();
    const bool integral = r.boolean();
    model.add_variable(std::move(name), objective, upper, integral);
  }
  const std::uint64_t num_rows = r.u64();
  for (std::uint64_t i = 0; i < num_rows; ++i) {
    std::string name = r.str();
    const std::uint8_t sense = r.u8();
    if (sense > static_cast<std::uint8_t>(Sense::kGe)) {
      throw util::SnapshotParseError(r.offset(), "load_model: bad row sense");
    }
    const double rhs = r.f64();
    std::vector<Term> terms = r.vec<Term>([&] {
      Term t;
      t.col = r.i32();
      t.coeff = r.f64();
      if (t.col < 0 || t.col >= model.num_variables()) {
        throw util::SnapshotParseError(r.offset(),
                                       "load_model: term column out of range");
      }
      return t;
    });
    model.add_constraint(std::move(name), static_cast<Sense>(sense), rhs,
                         std::move(terms));
  }
  return model;
}

}  // namespace mecar::lp
