// Linear/integer program model builder.
//
// The paper's formulations (ILP-RM, LP, LP-PT) are instances of
//   max  c'x
//   s.t. a_i'x {<=,=,>=} b_i          for each row i
//        0 <= x_j <= u_j              (u_j may be +infinity)
//        x_j integral                 for flagged variables
//
// `Model` stores rows sparsely (the slot-indexed LP has ~4 nonzeros per
// column) and is consumed by `SimplexSolver` (LP relaxation) and
// `BranchAndBound` (integral models).
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace mecar::lp {

/// Constraint sense.
enum class Sense { kLe, kEq, kGe };

/// One nonzero of a constraint row.
struct Term {
  int col = 0;
  double coeff = 0.0;
};

/// Sparse constraint row.
struct Row {
  std::string name;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  std::vector<Term> terms;
};

/// Variable metadata. Lower bound is always 0 (shift externally if needed).
struct Variable {
  std::string name;
  double objective = 0.0;
  double upper = std::numeric_limits<double>::infinity();
  bool integral = false;
};

/// One nonzero of a column, used by `Model::add_column` (the transpose of
/// `Term`: names a row instead of a column).
struct ColumnEntry {
  int row = 0;
  double coeff = 0.0;
};

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A mutable LP/MIP model. Column and row indices are stable and returned
/// from the add_* calls.
class Model {
 public:
  /// Adds a variable; returns its column index.
  int add_variable(std::string name, double objective,
                   double upper = kInf, bool integral = false);

  /// Adds a constraint row; returns its row index. Terms with duplicate
  /// columns are merged; zero coefficients are dropped.
  int add_constraint(std::string name, Sense sense, double rhs,
                     std::vector<Term> terms);

  // --- Incremental mutation API -------------------------------------------
  // The slot LPs of consecutive simulator slots differ by a handful of
  // arrivals/completions/displacements; these edits let core rewrite just
  // the delta instead of rebuilding every ER_jil column. Column and row
  // indices stay stable across every mutation.

  /// Appends a variable together with its coefficients in existing rows
  /// (the column-wise transpose of add_variable + add_constraint edits).
  /// Duplicate rows are merged; zero coefficients dropped. O(nnz(column)
  /// amortized. Returns the new column index.
  int add_column(std::string name, double objective, double upper,
                 const std::vector<ColumnEntry>& entries);

  /// Removes column `col` from the model: its upper bound and objective
  /// drop to 0 and its terms are struck from every row it appears in, so
  /// solvers treat it as absent (its solution value reports 0). The index
  /// stays valid — later columns do not shift. O(nnz(col) + touched row
  /// sizes) via the per-column row index, not O(model).
  void remove_column(int col);

  /// Rewrites the upper bound of `col` (must be >= 0). Setting 0 freezes
  /// the variable without touching rows; a later positive bound revives it
  /// only if its terms were never struck (i.e. prefer this over
  /// remove_column for temporary freezes).
  void update_bound(int col, double upper);

  /// Rewrites the objective coefficient of `col`.
  void update_objective(int col, double objective);

  /// Rewrites the right-hand side of row `r`.
  void update_rhs(int row, double rhs);

  int num_variables() const noexcept { return static_cast<int>(vars_.size()); }
  int num_constraints() const noexcept {
    return static_cast<int>(rows_.size());
  }

  const Variable& variable(int col) const { return vars_.at(col); }
  const Row& row(int r) const { return rows_.at(r); }
  const std::vector<Variable>& variables() const noexcept { return vars_; }
  const std::vector<Row>& rows() const noexcept { return rows_; }

  bool has_integrality() const noexcept;

  /// Evaluates the objective at a point (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  /// Maximum constraint violation of `x` (0 when feasible within `tol`);
  /// also checks variable bounds. Used by tests and the feasibility checker.
  double max_violation(const std::vector<double>& x) const;

  /// Returns a copy of the model with variable `col` fixed to `value`:
  /// the column is removed from rows (its contribution moved into rhs) and
  /// its objective contribution is accumulated into `fixed_objective`.
  /// Column indices of the returned model are unchanged (the fixed variable
  /// becomes a zero-cost, zero-column variable clamped to [value, value]
  /// conceptually; its reported solution value is `value`).
  Model with_fixed(int col, double value) const;

  /// Objective constant accumulated by `with_fixed`.
  double fixed_objective() const noexcept { return fixed_objective_; }

  /// Values of fixed variables (NaN when not fixed).
  const std::vector<double>& fixed_values() const noexcept {
    return fixed_values_;
  }
  bool is_fixed(int col) const;

 private:
  std::vector<Variable> vars_;
  std::vector<Row> rows_;
  std::vector<double> fixed_values_;  // NaN = free
  double fixed_objective_ = 0.0;
  /// Rows each column appears in (ascending), maintained by every term
  /// edit — the index that makes remove_column O(nnz) instead of O(rows).
  std::vector<std::vector<int>> col_rows_;
};

}  // namespace mecar::lp
