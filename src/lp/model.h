// Linear/integer program model builder.
//
// The paper's formulations (ILP-RM, LP, LP-PT) are instances of
//   max  c'x
//   s.t. a_i'x {<=,=,>=} b_i          for each row i
//        0 <= x_j <= u_j              (u_j may be +infinity)
//        x_j integral                 for flagged variables
//
// `Model` stores rows sparsely (the slot-indexed LP has ~4 nonzeros per
// column) and is consumed by `SimplexSolver` (LP relaxation) and
// `BranchAndBound` (integral models).
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace mecar::lp {

/// Constraint sense.
enum class Sense { kLe, kEq, kGe };

/// One nonzero of a constraint row.
struct Term {
  int col = 0;
  double coeff = 0.0;
};

/// Sparse constraint row.
struct Row {
  std::string name;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  std::vector<Term> terms;
};

/// Variable metadata. Lower bound is always 0 (shift externally if needed).
struct Variable {
  std::string name;
  double objective = 0.0;
  double upper = std::numeric_limits<double>::infinity();
  bool integral = false;
};

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A mutable LP/MIP model. Column and row indices are stable and returned
/// from the add_* calls.
class Model {
 public:
  /// Adds a variable; returns its column index.
  int add_variable(std::string name, double objective,
                   double upper = kInf, bool integral = false);

  /// Adds a constraint row; returns its row index. Terms with duplicate
  /// columns are merged; zero coefficients are dropped.
  int add_constraint(std::string name, Sense sense, double rhs,
                     std::vector<Term> terms);

  int num_variables() const noexcept { return static_cast<int>(vars_.size()); }
  int num_constraints() const noexcept {
    return static_cast<int>(rows_.size());
  }

  const Variable& variable(int col) const { return vars_.at(col); }
  const Row& row(int r) const { return rows_.at(r); }
  const std::vector<Variable>& variables() const noexcept { return vars_; }
  const std::vector<Row>& rows() const noexcept { return rows_; }

  bool has_integrality() const noexcept;

  /// Evaluates the objective at a point (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  /// Maximum constraint violation of `x` (0 when feasible within `tol`);
  /// also checks variable bounds. Used by tests and the feasibility checker.
  double max_violation(const std::vector<double>& x) const;

  /// Returns a copy of the model with variable `col` fixed to `value`:
  /// the column is removed from rows (its contribution moved into rhs) and
  /// its objective contribution is accumulated into `fixed_objective`.
  /// Column indices of the returned model are unchanged (the fixed variable
  /// becomes a zero-cost, zero-column variable clamped to [value, value]
  /// conceptually; its reported solution value is `value`).
  Model with_fixed(int col, double value) const;

  /// Objective constant accumulated by `with_fixed`.
  double fixed_objective() const noexcept { return fixed_objective_; }

  /// Values of fixed variables (NaN when not fixed).
  const std::vector<double>& fixed_values() const noexcept {
    return fixed_values_;
  }
  bool is_fixed(int col) const;

 private:
  std::vector<Variable> vars_;
  std::vector<Row> rows_;
  std::vector<double> fixed_values_;  // NaN = free
  double fixed_objective_ = 0.0;
};

}  // namespace mecar::lp
