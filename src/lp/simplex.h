// Two-phase primal simplex for the LP relaxations of the paper's programs.
//
// The paper assumes an LP oracle but never names one; this is a from-scratch
// dense-tableau implementation sized for the slot-indexed relaxations
// (hundreds of rows, a few thousand columns):
//   * rows of any sense (<=, =, >=), rhs normalized non-negative,
//   * non-negative variables with optional finite upper bounds
//     (finite bounds become internal rows),
//   * phase 1 with artificials, phase 2 with Dantzig pricing and a Bland's
//     rule fallback after a degenerate stall (anti-cycling).
#pragma once

#include <string>
#include <vector>

#include "lp/model.h"

namespace mecar::lp {

enum class SolveStatus {
  /// Default of a freshly constructed result: no solve has run (or the
  /// solve died before reaching any terminal classification). Callers that
  /// branch on a specific failure can no longer mistake "never ran" for
  /// "ran out of iterations".
  kNotSolved,
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  /// A SolveBudget (pivots and/or wall clock) ran out. The result may
  /// still carry the best primal-feasible iterate seen (x non-empty):
  /// budgeted solves are *anytime*.
  kDeadline,
  /// NaN/Inf in the model input, or an unrecoverable numerical failure
  /// (singular basis, factorization residual, eta-file blow-up) that the
  /// in-engine recovery ladder could not contain.
  kNumericalError,
};

std::string to_string(SolveStatus status);

/// Work budget making a solve *anytime*: when either limit is hit the
/// engine stops and reports kDeadline with the best primal-feasible
/// iterate found so far (empty x when none was reached). Distinct from
/// SimplexOptions::max_iterations, which keeps its legacy semantics
/// (kIterationLimit, no partial solution). `deadline_ms` consults the
/// wall clock, so deterministic runs should leave it at 0 and budget
/// pivots only.
struct SolveBudget {
  /// Maximum pivots across both phases; 0 = unlimited.
  int max_pivots = 0;
  /// Wall-clock ceiling in milliseconds; 0 = unlimited.
  double deadline_ms = 0.0;

  bool limited() const noexcept {
    return max_pivots > 0 || deadline_ms > 0.0;
  }
};

/// True when every objective coefficient, bound, row coefficient, and rhs
/// of `model` is non-NaN (infinite uppers are legal). Both solvers check
/// this up front and return kNumericalError instead of iterating on
/// garbage.
bool model_input_finite(const Model& model);

struct SimplexOptions {
  /// Pivot tolerance: entries smaller in magnitude are treated as zero.
  double pivot_tol = 1e-9;
  /// Reduced-cost optimality tolerance.
  double opt_tol = 1e-9;
  /// Phase-1 residual above which the model is declared infeasible.
  double feas_tol = 1e-7;
  /// 0 means "choose automatically from the model size".
  int max_iterations = 0;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  int stall_threshold = 128;
};

/// Per-solve work counters, filled by both solvers. `iterations` on
/// SolveResult remains the total; this struct breaks it down so callers
/// (telemetry, warm-start tests) can see where the work went.
struct SolveStats {
  int phase1_iterations = 0;
  int phase2_iterations = 0;
  /// Basis refactorizations (revised simplex only; 0 for the dense
  /// tableau, which has no factorized basis).
  int refactorizations = 0;
  /// A warm basis was offered by the caller.
  bool warm_start_attempted = false;
  /// The offered basis was adopted (phase 1 skipped).
  bool warm_start_used = false;
  /// The offered basis came from a different tableau shape and was
  /// remapped onto this model's layout (warm-basis repair after the
  /// incremental mutation API changed columns/rows) before adoption.
  bool warm_start_repaired = false;
  /// Pivots absorbed as eta-file updates, i.e. without refactorizing
  /// (revised simplex only). Nonzero means the factorization was reused
  /// across pivots, the whole point of the eta scheme.
  int eta_pivots = 0;
  /// Peak eta-file length reached between refactorizations.
  int eta_len_max = 0;
  /// Bound-to-bound moves of a nonbasic column (no basis change; counted
  /// in the phase iteration totals like any other pivot).
  int bound_flips = 0;
  /// PricingMode the solve finished with, as its integer value (steepest
  /// edge may drop to devex mid-solve after weight drift).
  int pricing_mode = 0;
  /// Recovery ladder engagements (revised simplex only; all zero on a
  /// numerically clean solve). Rung 1: forced refactorizations triggered
  /// by a NaN/Inf scan or a factorization residual check.
  int recovery_refactorizations = 0;
  /// Rung 2: full restarts from the slack/bound cold basis after rung 1
  /// failed to contain the corruption.
  int recovery_basis_resets = 0;
  /// Rung 3: one-shot dense-Tableau cross-solves after the sparse engine
  /// gave up entirely.
  int recovery_dense_solves = 0;
  /// Total ladder engagements of this solve.
  int recoveries() const noexcept {
    return recovery_refactorizations + recovery_basis_resets +
           recovery_dense_solves;
  }
  /// Total pivots across both phases.
  int pivots() const noexcept {
    return phase1_iterations + phase2_iterations;
  }
};

struct SolveResult {
  SolveStatus status = SolveStatus::kNotSolved;
  /// Objective value (includes any Model::fixed_objective constant).
  double objective = 0.0;
  /// Values for all model columns, including fixed ones.
  std::vector<double> x;
  int iterations = 0;
  /// True when the solve was seeded from a caller-provided basis (revised
  /// simplex warm start) rather than the slack/artificial cold basis.
  bool warm_started = false;
  /// Work breakdown (stats.pivots() == iterations).
  SolveStats stats;
  bool optimal() const noexcept { return status == SolveStatus::kOptimal; }
};

/// Dense two-phase tableau simplex. Stateless between solves.
class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves the LP relaxation of `model` (integrality flags are ignored).
  SolveResult solve(const Model& model) const;

  const SimplexOptions& options() const noexcept { return options_; }

 private:
  SimplexOptions options_;
};

}  // namespace mecar::lp
