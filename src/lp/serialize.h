// Snapshot serialization for LP objects (DESIGN.md §14).
//
// DynamicRR's checkpoint embeds its warm-start basis and the incremental
// slot-LP's live Model so a resumed run re-enters the solver with the
// exact tableau history an uninterrupted run would have — vertex
// selection under degeneracy depends on the starting basis, so dropping
// it would still be *correct* but not bit-identical.
//
// Models are rebuilt through the public builder API (add_variable /
// add_constraint), which reproduces the internal column-row index
// exactly. Fixed-variable state (Model::with_fixed) is not supported:
// slot LPs never fix columns, and save_model throws std::logic_error if
// one does.
#pragma once

namespace mecar::util {
class SnapshotWriter;
class SnapshotReader;
}  // namespace mecar::util

namespace mecar::lp {

class Model;
struct WarmStartBasis;

/// Serializes a warm-start basis (possibly empty).
void save_basis(const WarmStartBasis& basis, util::SnapshotWriter& w);
WarmStartBasis load_basis(util::SnapshotReader& r);

/// Serializes a model's variables and rows. Throws std::logic_error when
/// the model carries fixed-variable state (not used by slot LPs).
void save_model(const Model& model, util::SnapshotWriter& w);
Model load_model(util::SnapshotReader& r);

}  // namespace mecar::lp
