// Full-solution validation: checks every invariant an OffloadResult must
// satisfy against the instance it was computed for. Used by the test suite
// and available to adopters as a safety net around custom algorithms.
#pragma once

#include <string>
#include <vector>

#include "core/types.h"
#include "mec/topology.h"

namespace mecar::core {

/// One detected violation.
struct Violation {
  enum class Kind {
    kShape,            // result/outcome structure inconsistent with input
    kStation,          // station id out of range
    kLatency,          // latency budget exceeded or misreported
    kRealization,      // realized level/rate inconsistent with the demand
    kReward,           // reward inconsistent with the realized level
    kCapacity,         // station capacity exceeded by rewarded demand
    kEq8,              // reward granted although Eq. (8) cannot hold
  };
  Kind kind;
  int request_id = -1;  // -1 for aggregate violations
  std::string message;
};

std::string to_string(Violation::Kind kind);

/// Validation knobs; defaults match the algorithms in this library.
struct ValidateOptions {
  AlgorithmParams params;
  /// Numerical slack for capacity/latency comparisons.
  double tol = 1e-6;
  /// Check the per-station capacity aggregate over rewarded requests.
  /// (Heu splits tasks across stations, so the per-station aggregate is
  /// checked at task-share granularity.)
  bool check_capacity = true;
};

/// Validates `result` against its instance; returns all violations found
/// (empty = the solution satisfies every checked invariant).
std::vector<Violation> validate_offload(
    const mec::Topology& topo, const std::vector<mec::ARRequest>& requests,
    const std::vector<std::size_t>& realized, const OffloadResult& result,
    const ValidateOptions& options = {});

}  // namespace mecar::core
