// Builder for the paper's resource-slot-indexed relaxation (section IV-A).
//
//   LP:    max sum y_jil * ER_jil
//          (9)  sum_{i,l} y_jil <= 1                          per request
//          (10) sum_{j, l'<l} y_jil' * E[min(rho_j, lC_l/C_unit)]
//                 <= 2 l C_l / C_unit                          per (i, l>=1)
//          (11) latency: enforced exactly by excluding variables whose
//               placement latency exceeds the request budget
//          (12) 0 <= y <= 1 (the <=1 side is implied by (9))
//
//   LP-PT (section V): identical except the truncation of (23) additionally
//   caps by the round-robin share C(bs_i)/|R_t|.
//
// The same builder emits the ILP-RM of section IV-A when `integral` is set
// (one binary x_ji per feasible pair, expected-demand capacity rows).
#pragma once

#include <optional>
#include <vector>

#include "core/types.h"
#include "lp/model.h"
#include "mec/request.h"
#include "mec/topology.h"

namespace mecar::core {

/// Metadata of one LP column y_jil (or ILP column x_ji with slot = 0).
struct SlotVar {
  int request_index = 0;  // index into the requests vector
  int station = 0;
  int slot = 0;
  /// Expected reward ER_jil of Eq. (8).
  double expected_reward = 0.0;
  /// Placement latency (no waiting term), ms.
  double latency_ms = 0.0;
};

/// A built model plus the column metadata needed to interpret solutions.
struct SlotLpInstance {
  lp::Model model;
  std::vector<SlotVar> vars;               // per model column
  std::vector<std::vector<int>> request_columns;  // request -> column ids
  /// Number of resource slots per station.
  std::vector<int> slots_per_station;
};

/// Options for `build_slot_lp`.
struct SlotLpOptions {
  /// Extra per-request share cap of LP-PT constraint (23):
  /// E[min(share_cap_mhz(bs)/C_unit, rho, l C_l/C_unit)]. Disabled when
  /// empty. The value is the per-request capacity share C(bs_i)/|R_t|.
  std::optional<double> share_cap_mhz;
  /// Additional waiting delay already incurred (online problem); counts
  /// against the latency budget when filtering placements.
  double waiting_ms = 0.0;
  /// Per-request waiting delays overriding `waiting_ms` (same order as the
  /// requests vector; empty = use waiting_ms for all).
  std::vector<double> waiting_ms_per_request;
  /// Residual station capacities in MHz (online problem: capacity already
  /// occupied by resident streams is unavailable). Empty = full capacity.
  std::vector<double> capacity_override_mhz;
};

/// Builds the slot-indexed LP over `requests`.
SlotLpInstance build_slot_lp(const mec::Topology& topo,
                             const std::vector<mec::ARRequest>& requests,
                             const AlgorithmParams& params,
                             const SlotLpOptions& options = {});

/// Builds the ILP-RM of section IV-A: binary x_ji, objective E[RD_j],
/// expected-demand capacity rows (4), latency filter (5).
SlotLpInstance build_ilp_rm(const mec::Topology& topo,
                            const std::vector<mec::ARRequest>& requests,
                            const AlgorithmParams& params);

/// One feasible placement for a request, with the placement latency that
/// proved it feasible. Returning the latency alongside the station id lets
/// callers (the LP builders, the rounding passes, every baseline) reuse it
/// instead of recomputing placement_latency_ms per (request, station).
struct CandidateStation {
  int station = 0;
  double latency_ms = 0.0;
};

/// Candidate stations for a request: all stations whose placement latency
/// (plus `waiting_ms`) meets the budget, nearest-latency first, truncated to
/// `params.max_candidate_stations` when positive.
std::vector<CandidateStation> candidate_stations(const mec::Topology& topo,
                                                 const mec::ARRequest& req,
                                                 const AlgorithmParams& params,
                                                 double waiting_ms = 0.0);

}  // namespace mecar::core
