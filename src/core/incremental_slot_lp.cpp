#include "core/incremental_slot_lp.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>

#include "lp/serialize.h"
#include "obs/catalog.h"
#include "util/snapshot.h"

namespace mecar::core {

namespace {

/// Capacity-row map key for (station, l). l is bounded by the slot count
/// of one station (a few dozen), far below the shift width.
long long cap_key(int bs, int l) {
  return (static_cast<long long>(bs) << 20) | static_cast<long long>(l);
}

bool same_share_cap(const std::optional<double>& a,
                    const std::optional<double>& b) {
  if (a.has_value() != b.has_value()) return false;
  return !a.has_value() || *a == *b;
}

}  // namespace

void IncrementalSlotLp::invalidate() {
  valid_ = false;
  entries_.clear();
  capacity_rows_.clear();
  candidate_cache_.clear();
  topo_ = nullptr;
  dead_columns_ = 0;
}

bool IncrementalSlotLp::preconditions_hold(const mec::Topology& topo,
                                           const AlgorithmParams& params,
                                           const SlotLpOptions& options) const {
  // Everything a column objective or capacity coefficient depends on must
  // be unchanged; waiting times are deliberately absent (they only gate
  // the candidate prefix, which the per-entry signature tracks). The
  // capacity override is also absent: a moved override only shifts column
  // objectives, which build() reconciles in place.
  return valid_ && topo_ == &topo && num_stations_ == topo.num_stations() &&
         params_.slot_capacity_mhz == params.slot_capacity_mhz &&
         params_.c_unit == params.c_unit &&
         params_.max_candidate_stations == params.max_candidate_stations &&
         same_share_cap(options_.share_cap_mhz, options.share_cap_mhz);
}

bool IncrementalSlotLp::override_preserves_slot_counts(
    const SlotLpOptions& options) const {
  for (int bs = 0; bs < num_stations_; ++bs) {
    const double cap =
        options.capacity_override_mhz.empty()
            ? topo_->station(bs).capacity_mhz
            : options.capacity_override_mhz[static_cast<std::size_t>(bs)];
    const int L = std::max(
        1, static_cast<int>(std::floor(cap / params_.slot_capacity_mhz)));
    if (L != inst_.slots_per_station[static_cast<std::size_t>(bs)]) {
      return false;
    }
  }
  return true;
}

bool IncrementalSlotLp::reconcile_entry(const mec::ARRequest& req,
                                        const Entry& e, bool& mutated) {
  const auto& cands = candidate_cache_.find(req.id)->second;
  auto station_capacity = [&](int bs) {
    return options_.capacity_override_mhz.empty()
               ? topo_->station(bs).capacity_mhz
               : options_.capacity_override_mhz[static_cast<std::size_t>(bs)];
  };
  // e.columns is the subsequence of the (candidate, l) lattice whose
  // expected reward was positive when the entry was materialized; walk
  // both in step. A lattice position with er > 0 but no column means the
  // old override had pruned it — only then is in-place repair impossible.
  std::size_t cursor = 0;
  for (int c = 0; c < e.candidate_count; ++c) {
    const int bs = cands[static_cast<std::size_t>(c) + 1].station;
    const int L = inst_.slots_per_station[static_cast<std::size_t>(bs)];
    for (int l = 0; l < L; ++l) {
      const double rate_cap =
          (station_capacity(bs) - l * params_.slot_capacity_mhz) /
          params_.c_unit;
      const double er = req.demand.expected_reward_within(rate_cap);
      const bool have =
          cursor < e.columns.size() &&
          inst_.vars[static_cast<std::size_t>(e.columns[cursor])].station ==
              bs &&
          inst_.vars[static_cast<std::size_t>(e.columns[cursor])].slot == l;
      if (!have) {
        if (er > 0.0) return false;
        continue;
      }
      const int col = e.columns[cursor++];
      SlotVar& var = inst_.vars[static_cast<std::size_t>(col)];
      if (var.expected_reward != er) {
        inst_.model.update_objective(col, er);
        var.expected_reward = er;
        mutated = true;
      }
      const double upper = er > 0.0 ? 1.0 : 0.0;
      if (inst_.model.variable(col).upper != upper) {
        inst_.model.update_bound(col, upper);
        mutated = true;
      }
    }
  }
  return cursor == e.columns.size();
}

const std::vector<CandidateStation>& IncrementalSlotLp::candidates_of(
    const mec::ARRequest& req) {
  auto [it, inserted] = candidate_cache_.try_emplace(req.id);
  // Mobility can re-home a request between slots without changing its id;
  // the cached latency list is keyed on the home station via recompute.
  if (!inserted && !it->second.empty() &&
      it->second.front().station == -1 - req.home_station) {
    return it->second;
  }
  std::vector<CandidateStation>& list = it->second;
  list.clear();
  // Slot 0 is a sentinel recording the home station the list was computed
  // for (station = -1 - home, never a valid candidate index).
  list.push_back(CandidateStation{-1 - req.home_station, 0.0});
  std::vector<CandidateStation> all;
  all.reserve(static_cast<std::size_t>(num_stations_));
  for (int bs = 0; bs < num_stations_; ++bs) {
    all.push_back(
        CandidateStation{bs, mec::placement_latency_ms(*topo_, req, bs)});
  }
  std::sort(all.begin(), all.end(),
            [](const CandidateStation& a, const CandidateStation& b) {
              if (a.latency_ms != b.latency_ms) {
                return a.latency_ms < b.latency_ms;
              }
              return a.station < b.station;
            });
  list.insert(list.end(), all.begin(), all.end());
  return list;
}

int IncrementalSlotLp::candidate_count(const mec::ARRequest& req,
                                       double waiting_ms) const {
  // const_cast-free variant: candidates_of is non-const because it fills
  // the cache; count is only called after the cache was primed.
  auto it = candidate_cache_.find(req.id);
  const auto& list = it->second;
  // The feasibility filter `waiting + lat <= budget` admits a prefix of
  // the latency-sorted list (addition is monotone in lat), so the
  // canonical filtered-then-sorted set is exactly this prefix.
  const auto begin = list.begin() + 1;  // skip the home-station sentinel
  const auto split = std::partition_point(
      begin, list.end(), [&](const CandidateStation& c) {
        return waiting_ms + c.latency_ms <= req.latency_budget_ms;
      });
  int count = static_cast<int>(split - begin);
  if (params_.max_candidate_stations > 0) {
    count = std::min(count, params_.max_candidate_stations);
  }
  return count;
}

IncrementalSlotLp::Entry IncrementalSlotLp::make_signature(
    const mec::ARRequest& req, int count) {
  Entry e;
  e.id = req.id;
  e.candidate_count = count;
  e.latency_budget_ms = req.latency_budget_ms;
  e.demand_levels = req.demand.size();
  e.demand_min_rate = req.demand.min_rate();
  e.demand_expected_reward = req.demand.expected_reward();
  return e;
}

bool IncrementalSlotLp::signature_matches(const Entry& a, const Entry& b) {
  // Same id, same candidate prefix, same demand identity: the entry's
  // columns are bit-identical, so nothing needs rewriting. The demand
  // fields distinguish a displaced "ghost" (degenerate single-level
  // distribution, effectively unbounded budget) from the original request
  // it shadows.
  return a.id == b.id && a.candidate_count == b.candidate_count &&
         a.latency_budget_ms == b.latency_budget_ms &&
         a.demand_levels == b.demand_levels &&
         a.demand_min_rate == b.demand_min_rate &&
         a.demand_expected_reward == b.demand_expected_reward;
}

IncrementalSlotLp::Entry IncrementalSlotLp::add_entry(const mec::ARRequest& req,
                                                      double waiting_ms,
                                                      int count) {
  Entry e = make_signature(req, count);
  const auto& cands = candidates_of(req);
  auto station_capacity = [&](int bs) {
    return options_.capacity_override_mhz.empty()
               ? topo_->station(bs).capacity_mhz
               : options_.capacity_override_mhz[static_cast<std::size_t>(bs)];
  };
  // New capacity rows this entry forces into existence, in deterministic
  // (station, l) order. A row is missing exactly when no live column ever
  // needed it, so its initial terms are all from this entry.
  std::map<long long, std::vector<lp::Term>> pending_rows;
  std::vector<lp::ColumnEntry> row_entries;
  std::vector<std::pair<long long, double>> missing;  // (row key, coeff)
  (void)waiting_ms;  // the filter is already folded into `count`

  for (int c = 0; c < count; ++c) {
    const CandidateStation& cand = cands[static_cast<std::size_t>(c) + 1];
    const int bs = cand.station;
    const int L = inst_.slots_per_station[static_cast<std::size_t>(bs)];
    for (int l = 0; l < L; ++l) {
      const double rate_cap =
          (station_capacity(bs) - l * params_.slot_capacity_mhz) /
          params_.c_unit;
      const double er = req.demand.expected_reward_within(rate_cap);
      if (er <= 0.0) continue;
      row_entries.clear();
      missing.clear();
      for (int lr = l + 1; lr <= L; ++lr) {
        double cap = lr * params_.slot_capacity_mhz / params_.c_unit;
        if (options_.share_cap_mhz) {
          cap = std::min(cap, *options_.share_cap_mhz / params_.c_unit);
        }
        const double truncated = req.demand.expected_truncated_rate(cap);
        if (truncated <= 0.0) continue;
        const auto row_it = capacity_rows_.find(cap_key(bs, lr));
        if (row_it != capacity_rows_.end()) {
          row_entries.push_back(lp::ColumnEntry{row_it->second, truncated});
        } else {
          missing.emplace_back(cap_key(bs, lr), truncated);
        }
      }
      const int col = inst_.model.add_column(
          "y_" + std::to_string(req.id) + "_" + std::to_string(bs) + "_" +
              std::to_string(l),
          er, 1.0, row_entries);
      for (const auto& [key, coeff] : missing) {
        pending_rows[key].push_back(lp::Term{col, coeff});
      }
      // request_index is patched per slot once the batch order is known.
      inst_.vars.push_back(SlotVar{-1, bs, l, er, cand.latency_ms});
      e.columns.push_back(col);
      ++stats_.columns_added;
    }
  }
  if (e.columns.size() >= 2) {
    std::vector<lp::Term> terms;
    terms.reserve(e.columns.size());
    for (int col : e.columns) terms.push_back(lp::Term{col, 1.0});
    inst_.model.add_constraint("assign_" + std::to_string(req.id),
                               lp::Sense::kLe, 1.0, std::move(terms));
  }
  for (auto& [key, terms] : pending_rows) {
    const int bs = static_cast<int>(key >> 20);
    const int l = static_cast<int>(key & ((1 << 20) - 1));
    const double rate_cap = l * params_.slot_capacity_mhz / params_.c_unit;
    capacity_rows_[key] = inst_.model.add_constraint(
        "slots_" + std::to_string(bs) + "_" + std::to_string(l), lp::Sense::kLe,
        2.0 * rate_cap, std::move(terms));
  }
  return e;
}

void IncrementalSlotLp::full_build(const mec::Topology& topo,
                                   const std::vector<mec::ARRequest>& requests,
                                   const AlgorithmParams& params,
                                   const SlotLpOptions& options) {
  ++stats_.full_builds;
  obs::metrics().lp_incremental_rebuilds.add();
  if (topo_ != &topo) candidate_cache_.clear();
  topo_ = &topo;
  num_stations_ = topo.num_stations();
  params_ = params;
  options_ = options;
  dead_columns_ = 0;
  capacity_rows_.clear();

  // The canonical builder stays the single source of truth for the scratch
  // path; bookkeeping is derived from its deterministic row naming.
  inst_ = build_slot_lp(topo, requests, params, options);
  for (int r = 0; r < inst_.model.num_constraints(); ++r) {
    const std::string& name = inst_.model.row(r).name;
    if (name.rfind("slots_", 0) != 0) continue;
    const std::size_t sep = name.find('_', 6);
    const int bs = std::stoi(name.substr(6, sep - 6));
    const int l = std::stoi(name.substr(sep + 1));
    capacity_rows_[cap_key(bs, l)] = r;
  }

  auto waiting_of = [&](std::size_t j) {
    return options.waiting_ms_per_request.empty()
               ? options.waiting_ms
               : options.waiting_ms_per_request[j];
  };
  entries_.clear();
  entries_.reserve(requests.size());
  for (std::size_t b = 0; b < requests.size(); ++b) {
    (void)candidates_of(requests[b]);  // prime the cache
    Entry e = make_signature(requests[b],
                             candidate_count(requests[b], waiting_of(b)));
    e.columns = inst_.request_columns[b];
    entries_.push_back(std::move(e));
  }
  valid_ = true;
}

const SlotLpInstance& IncrementalSlotLp::build(
    const mec::Topology& topo, const std::vector<mec::ARRequest>& requests,
    const AlgorithmParams& params, const SlotLpOptions& options) {
  const long long live_columns =
      static_cast<long long>(inst_.model.num_variables()) - dead_columns_;
  if (!preconditions_hold(topo, params, options) ||
      dead_columns_ > std::max<long long>(64, live_columns)) {
    full_build(topo, requests, params, options);
    return inst_;
  }

  // Residual-capacity churn: objectives move but the lattice shape only
  // changes when a station's slot count does.
  const bool override_moved =
      options_.capacity_override_mhz != options.capacity_override_mhz;
  if (override_moved) {
    if (!override_preserves_slot_counts(options)) {
      full_build(topo, requests, params, options);
      return inst_;
    }
    options_.capacity_override_mhz = options.capacity_override_mhz;
  }

  auto waiting_of = [&](std::size_t j) {
    return options.waiting_ms_per_request.empty()
               ? options.waiting_ms
               : options.waiting_ms_per_request[j];
  };

  // Match the new batch against the materialized entries by request id.
  std::unordered_map<int, std::size_t> prev_by_id;
  prev_by_id.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    prev_by_id.emplace(entries_[i].id, i);
  }

  std::vector<Entry> next;
  next.reserve(requests.size());
  std::vector<char> prev_used(entries_.size(), 0);
  bool mutated = false;
  for (std::size_t b = 0; b < requests.size(); ++b) {
    const mec::ARRequest& req = requests[b];
    (void)candidates_of(req);
    const Entry sig = make_signature(req, candidate_count(req, waiting_of(b)));
    const auto it = prev_by_id.find(req.id);
    if (it != prev_by_id.end() &&
        signature_matches(entries_[it->second], sig) &&
        (!override_moved ||
         reconcile_entry(req, entries_[it->second], mutated))) {
      prev_used[it->second] = 1;
      next.push_back(std::move(entries_[it->second]));
    } else {
      // Joined, or the candidate prefix / demand identity moved: fresh
      // columns (a changed predecessor is struck below as unused).
      mutated = true;
      next.push_back(add_entry(req, waiting_of(b), sig.candidate_count));
    }
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (prev_used[i]) continue;
    mutated = true;
    for (int col : entries_[i].columns) {
      inst_.model.remove_column(col);
      ++dead_columns_;
      ++stats_.columns_removed;
    }
  }
  entries_ = std::move(next);

  // Rewire the per-batch views: the batch order can shift even when no
  // entry changed (the waiting queue is re-sorted by density every slot).
  inst_.request_columns.assign(requests.size(), {});
  for (std::size_t b = 0; b < entries_.size(); ++b) {
    inst_.request_columns[b] = entries_[b].columns;
    for (int col : entries_[b].columns) {
      inst_.vars[static_cast<std::size_t>(col)].request_index =
          static_cast<int>(b);
    }
  }

  if (mutated) {
    ++stats_.delta_builds;
    obs::metrics().lp_incremental_deltas.add();
  } else {
    ++stats_.reuses;
    obs::metrics().lp_incremental_reuses.add();
  }
  return inst_;
}

void IncrementalSlotLp::save(util::SnapshotWriter& w) const {
  w.boolean(valid_);
  if (!valid_) return;
  lp::save_model(inst_.model, w);
  w.vec(inst_.vars, [&](const SlotVar& v) {
    w.i32(v.request_index);
    w.i32(v.station);
    w.i32(v.slot);
    w.f64(v.expected_reward);
    w.f64(v.latency_ms);
  });
  w.vec(inst_.request_columns, [&](const std::vector<int>& cols) {
    w.vec(cols, [&](int c) { w.i32(c); });
  });
  w.vec(inst_.slots_per_station, [&](int n) { w.i32(n); });
  w.vec(entries_, [&](const Entry& e) {
    w.i32(e.id);
    w.i32(e.candidate_count);
    w.f64(e.latency_budget_ms);
    w.u64(static_cast<std::uint64_t>(e.demand_levels));
    w.f64(e.demand_min_rate);
    w.f64(e.demand_expected_reward);
    w.vec(e.columns, [&](int c) { w.i32(c); });
  });
  w.i32(num_stations_);
  w.f64(params_.slot_capacity_mhz);
  w.f64(params_.c_unit);
  w.i32(params_.max_candidate_stations);
  w.f64(params_.rounding_divisor);
  w.boolean(params_.backfill);
  w.boolean(params_.enforce_backhaul);
  w.boolean(options_.share_cap_mhz.has_value());
  if (options_.share_cap_mhz) w.f64(*options_.share_cap_mhz);
  w.f64(options_.waiting_ms);
  w.vec(options_.waiting_ms_per_request, [&](double v) { w.f64(v); });
  w.vec(options_.capacity_override_mhz, [&](double v) { w.f64(v); });
  w.i64(dead_columns_);
  w.i64(stats_.full_builds);
  w.i64(stats_.reuses);
  w.i64(stats_.delta_builds);
  w.i64(stats_.columns_added);
  w.i64(stats_.columns_removed);
}

void IncrementalSlotLp::load(util::SnapshotReader& r,
                             const mec::Topology& topo) {
  invalidate();
  if (!r.boolean()) return;
  inst_.model = lp::load_model(r);
  inst_.vars = r.vec<SlotVar>([&] {
    SlotVar v;
    v.request_index = r.i32();
    v.station = r.i32();
    v.slot = r.i32();
    v.expected_reward = r.f64();
    v.latency_ms = r.f64();
    return v;
  });
  inst_.request_columns = r.vec<std::vector<int>>(
      [&] { return r.vec<int>([&] { return r.i32(); }); });
  inst_.slots_per_station = r.vec<int>([&] { return r.i32(); });
  entries_ = r.vec<Entry>([&] {
    Entry e;
    e.id = r.i32();
    e.candidate_count = r.i32();
    e.latency_budget_ms = r.f64();
    e.demand_levels = static_cast<std::size_t>(r.u64());
    e.demand_min_rate = r.f64();
    e.demand_expected_reward = r.f64();
    e.columns = r.vec<int>([&] { return r.i32(); });
    return e;
  });
  num_stations_ = r.i32();
  params_.slot_capacity_mhz = r.f64();
  params_.c_unit = r.f64();
  params_.max_candidate_stations = r.i32();
  params_.rounding_divisor = r.f64();
  params_.backfill = r.boolean();
  params_.enforce_backhaul = r.boolean();
  if (r.boolean()) {
    options_.share_cap_mhz = r.f64();
  } else {
    options_.share_cap_mhz.reset();
  }
  options_.waiting_ms = r.f64();
  options_.waiting_ms_per_request = r.vec<double>([&] { return r.f64(); });
  options_.capacity_override_mhz = r.vec<double>([&] { return r.f64(); });
  dead_columns_ = r.i64();
  stats_.full_builds = r.i64();
  stats_.reuses = r.i64();
  stats_.delta_builds = r.i64();
  stats_.columns_added = r.i64();
  stats_.columns_removed = r.i64();

  // The capacity-row map and candidate cache are derived state: rows come
  // back from the canonical "slots_<bs>_<l>" naming, candidates reprime
  // lazily on the next build().
  topo_ = &topo;
  for (int row = 0; row < inst_.model.num_constraints(); ++row) {
    const std::string& name = inst_.model.row(row).name;
    if (name.rfind("slots_", 0) != 0) continue;
    const std::size_t sep = name.find('_', 6);
    const int bs = std::stoi(name.substr(6, sep - 6));
    const int l = std::stoi(name.substr(sep + 1));
    capacity_rows_[cap_key(bs, l)] = row;
  }
  if (num_stations_ != topo.num_stations()) {
    throw util::SnapshotParseError(r.offset(),
                                   "IncrementalSlotLp: station count mismatch");
  }
  valid_ = true;
}

}  // namespace mecar::core
