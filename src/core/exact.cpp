#include "core/exact.h"

#include <algorithm>

#include "core/slot_lp.h"

namespace mecar::core {

ExactResult run_exact(const mec::Topology& topo,
                      const std::vector<mec::ARRequest>& requests,
                      const std::vector<std::size_t>& realized,
                      const ExactOptions& options) {
  if (realized.size() != requests.size()) {
    throw std::invalid_argument(
        "run_exact: one realized level per request required");
  }
  ExactResult result;
  result.offload.outcomes.resize(requests.size());
  for (std::size_t j = 0; j < requests.size(); ++j) {
    result.offload.outcomes[j].request_id = requests[j].id;
  }
  if (requests.empty()) {
    result.status = lp::SolveStatus::kOptimal;
    return result;
  }

  const SlotLpInstance inst = build_ilp_rm(topo, requests, options.params);
  if (inst.model.num_variables() == 0) {
    result.status = lp::SolveStatus::kOptimal;
    return result;
  }
  const lp::MipResult mip = lp::BranchAndBound(options.bnb).solve(inst.model);
  result.status = mip.status;
  result.nodes_explored = mip.nodes_explored;
  if (mip.status != lp::SolveStatus::kOptimal &&
      mip.status != lp::SolveStatus::kIterationLimit) {
    return result;
  }
  if (mip.x.empty()) return result;
  result.offload.lp_bound = mip.objective;

  // Group the chosen assignments per station, schedule smallest expected
  // rate first, realize, apply Eq. (8) reward semantics.
  std::vector<std::vector<int>> per_station(
      static_cast<std::size_t>(topo.num_stations()));
  for (std::size_t col = 0; col < inst.vars.size(); ++col) {
    if (mip.x[col] > 0.5) {
      per_station[static_cast<std::size_t>(inst.vars[col].station)].push_back(
          static_cast<int>(col));
    }
  }

  StationLoad load(topo);
  for (int bs = 0; bs < topo.num_stations(); ++bs) {
    auto& cols = per_station[static_cast<std::size_t>(bs)];
    std::sort(cols.begin(), cols.end(), [&](int a, int b) {
      const auto& ra = requests[static_cast<std::size_t>(
          inst.vars[static_cast<std::size_t>(a)].request_index)];
      const auto& rb = requests[static_cast<std::size_t>(
          inst.vars[static_cast<std::size_t>(b)].request_index)];
      if (ra.demand.expected_rate() != rb.demand.expected_rate()) {
        return ra.demand.expected_rate() < rb.demand.expected_rate();
      }
      return a < b;
    });
    for (int col : cols) {
      const SlotVar& var = inst.vars[static_cast<std::size_t>(col)];
      const int j = var.request_index;
      const mec::ARRequest& req = requests[static_cast<std::size_t>(j)];
      const std::size_t level = realized[static_cast<std::size_t>(j)];
      const double rate = req.demand.level(level).rate;
      const double demand_mhz = rate * options.params.c_unit;

      RequestOutcome& outcome =
          result.offload.outcomes[static_cast<std::size_t>(j)];
      outcome.admitted = true;
      outcome.station = bs;
      outcome.realized_level = level;
      outcome.realized_rate = rate;
      outcome.latency_ms = var.latency_ms;
      outcome.task_stations.assign(req.tasks.size(), bs);
      const double remaining = load.remaining_mhz(bs);
      load.occupy(bs, demand_mhz);
      if (demand_mhz <= remaining + 1e-9) {
        outcome.rewarded = true;
        outcome.reward = req.demand.level(level).reward;
      }
    }
  }
  return result;
}

}  // namespace mecar::core
