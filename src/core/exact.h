// Exact solution of the reward maximization problem (section IV-A): the
// ILP-RM solved with branch-and-bound. Practical for small instances only
// (the paper: "we devise an exact solution for the problem if the problem
// size is small").
#pragma once

#include "core/types.h"
#include "lp/branch_and_bound.h"

namespace mecar::core {

struct ExactOptions {
  AlgorithmParams params;
  lp::BranchAndBoundOptions bnb;
};

/// Result of the exact algorithm: the realized outcomes plus the ILP's
/// expected-reward optimum (stored in OffloadResult::lp_bound) and the
/// solver status.
struct ExactResult {
  OffloadResult offload;
  lp::SolveStatus status = lp::SolveStatus::kNotSolved;
  std::int64_t nodes_explored = 0;
};

/// Solves ILP-RM exactly and realizes the assignment. Requests are
/// scheduled per station in increasing expected-rate order; Eq. (8) reward
/// semantics apply as in the other algorithms.
ExactResult run_exact(const mec::Topology& topo,
                      const std::vector<mec::ARRequest>& requests,
                      const std::vector<std::size_t>& realized,
                      const ExactOptions& options = {});

}  // namespace mecar::core
