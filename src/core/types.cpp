#include "core/types.h"

#include <algorithm>
#include <stdexcept>

namespace mecar::core {

double OffloadResult::total_reward() const noexcept {
  double total = 0.0;
  for (const RequestOutcome& o : outcomes) total += o.reward;
  return total;
}

int OffloadResult::num_admitted() const noexcept {
  int n = 0;
  for (const RequestOutcome& o : outcomes) n += o.admitted;
  return n;
}

int OffloadResult::num_rewarded() const noexcept {
  int n = 0;
  for (const RequestOutcome& o : outcomes) n += o.rewarded;
  return n;
}

double OffloadResult::average_latency_ms() const noexcept {
  double total = 0.0;
  int n = 0;
  for (const RequestOutcome& o : outcomes) {
    if (o.rewarded) {
      total += o.latency_ms;
      ++n;
    }
  }
  return n == 0 ? 0.0 : total / n;
}

std::vector<std::size_t> realize_demand_levels(
    const std::vector<mec::ARRequest>& requests, util::Rng& rng) {
  std::vector<std::size_t> levels;
  levels.reserve(requests.size());
  for (const mec::ARRequest& req : requests) {
    levels.push_back(req.demand.sample(rng));
  }
  return levels;
}

StationLoad::StationLoad(const mec::Topology& topo) {
  used_.assign(static_cast<std::size_t>(topo.num_stations()), 0.0);
  capacity_.reserve(static_cast<std::size_t>(topo.num_stations()));
  for (const mec::BaseStation& bs : topo.stations()) {
    capacity_.push_back(bs.capacity_mhz);
  }
}

double StationLoad::occupy(int bs, double demand_mhz) {
  if (demand_mhz < 0.0) {
    throw std::invalid_argument("StationLoad::occupy: negative demand");
  }
  const double granted =
      std::min(demand_mhz, remaining_mhz(bs));
  used_.at(bs) += granted;
  return granted;
}

void StationLoad::release(int bs, double amount_mhz) {
  if (amount_mhz < 0.0 || amount_mhz > used_.at(bs) + 1e-9) {
    throw std::invalid_argument("StationLoad::release: bad amount");
  }
  used_.at(bs) = std::max(0.0, used_.at(bs) - amount_mhz);
}

}  // namespace mecar::core
