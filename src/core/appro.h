// Algorithm Appro (paper Alg. 1): approximation algorithm for the reward
// maximization problem with the tasks of each request consolidated into a
// single base station. Expected reward is at least Opt/8 (Theorem 1) for the
// bare scheme (params.backfill = false); backfill only adds reward, so the
// guarantee carries over to the default configuration.
#pragma once

#include "core/types.h"

namespace mecar::core {

/// Runs Appro. `realized` holds the demand level each request instantiates
/// when scheduled (see realize_demand_levels); `rng` drives the randomized
/// rounding only.
OffloadResult run_appro(const mec::Topology& topo,
                        const std::vector<mec::ARRequest>& requests,
                        const std::vector<std::size_t>& realized,
                        const AlgorithmParams& params, util::Rng& rng);

}  // namespace mecar::core
