#include "core/rounding.h"

#include "core/backhaul.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "lp/revised_simplex.h"
#include "util/log.h"

namespace mecar::core {

std::vector<int> randomized_round(const SlotLpInstance& inst,
                                  const std::vector<double>& y,
                                  double divisor, std::size_t num_requests,
                                  util::Rng& rng) {
  if (divisor < 1.0) {
    throw std::invalid_argument("randomized_round: divisor must be >= 1");
  }
  std::vector<int> picks(num_requests, -1);
  for (std::size_t j = 0; j < num_requests; ++j) {
    const auto& cols = inst.request_columns[j];
    if (cols.empty()) continue;
    std::vector<double> weights;
    weights.reserve(cols.size());
    for (int col : cols) {
      weights.push_back(
          std::max(0.0, y[static_cast<std::size_t>(col)]) / divisor);
    }
    const std::size_t pick = rng.categorical_or_none(weights, 1.0);
    if (pick < cols.size()) picks[j] = cols[pick];
  }
  return picks;
}

namespace {

/// Bookkeeping for one admitted request during the admission stage.
struct Admitted {
  int request_index;
  int station;  // consolidated/home execution station
  double realized_mhz;
  /// Remaining demand share per task still at `station` (MHz); migrated
  /// tasks are removed. Used by the Heu migration step.
  std::vector<double> task_share_mhz;
  std::vector<int> task_stations;
};

/// Attempts Alg. 2's migration: move one task of the admitted request with
/// the largest realized usage at `bs` to a nearby station so that
/// used(bs) drops. Returns true when a migration happened.
bool migrate_one_task(const mec::Topology& topo,
                      const std::vector<mec::ARRequest>& requests,
                      std::vector<Admitted>& admitted, StationLoad& load,
                      std::vector<RequestOutcome>& outcomes, int bs) {
  // Donor: admitted request at bs with the maximum realized usage still
  // resident (Alg. 2 step 11).
  int donor = -1;
  double donor_usage = 0.0;
  for (std::size_t a = 0; a < admitted.size(); ++a) {
    if (admitted[a].station != bs) continue;
    double resident = 0.0;
    for (std::size_t k = 0; k < admitted[a].task_stations.size(); ++k) {
      if (admitted[a].task_stations[k] == bs) {
        resident += admitted[a].task_share_mhz[k];
      }
    }
    if (resident > donor_usage) {
      donor_usage = resident;
      donor = static_cast<int>(a);
    }
  }
  if (donor < 0) return false;

  Admitted& d = admitted[static_cast<std::size_t>(donor)];
  const mec::ARRequest& req =
      requests[static_cast<std::size_t>(d.request_index)];

  // Candidate task: the largest share still at bs (frees the most room).
  int task = -1;
  double best_share = 0.0;
  for (std::size_t k = 0; k < d.task_stations.size(); ++k) {
    if (d.task_stations[k] == bs && d.task_share_mhz[k] > best_share) {
      best_share = d.task_share_mhz[k];
      task = static_cast<int>(k);
    }
  }
  if (task < 0) return false;

  // Nearest station with room that keeps the donor within its latency
  // budget (Alg. 2 step 13: "the closest base station of bs_i").
  for (int target : topo.stations_by_distance(bs)) {
    if (target == bs) continue;
    if (load.remaining_mhz(target) < best_share) continue;
    auto trial_stations = d.task_stations;
    trial_stations[static_cast<std::size_t>(task)] = target;
    const double latency =
        mec::split_placement_latency_ms(topo, req, trial_stations);
    if (latency > req.latency_budget_ms) continue;

    load.release(bs, best_share);
    load.occupy(target, best_share);
    d.task_stations = std::move(trial_stations);
    d.task_share_mhz[static_cast<std::size_t>(task)] = best_share;
    RequestOutcome& outcome =
        outcomes[static_cast<std::size_t>(d.request_index)];
    outcome.task_stations = d.task_stations;
    outcome.latency_ms = latency;
    return true;
  }
  return false;
}

}  // namespace

OffloadResult run_slot_rounding(const mec::Topology& topo,
                                const std::vector<mec::ARRequest>& requests,
                                const std::vector<std::size_t>& realized,
                                const AlgorithmParams& params,
                                util::Rng& rng, bool enable_migration) {
  if (realized.size() != requests.size()) {
    throw std::invalid_argument(
        "run_slot_rounding: one realized level per request required");
  }

  OffloadResult result;
  result.outcomes.resize(requests.size());
  for (std::size_t j = 0; j < requests.size(); ++j) {
    result.outcomes[j].request_id = requests[j].id;
  }
  if (requests.empty()) return result;

  // Stage 1: solve the LP relaxation.
  const SlotLpInstance inst = build_slot_lp(topo, requests, params);
  if (inst.model.num_variables() == 0) return result;
  const lp::SolveResult lp_res = lp::solve_lp(inst.model);
  if (!lp_res.optimal()) {
    util::log_warn() << "slot LP did not solve to optimality: "
                     << lp::to_string(lp_res.status);
    return result;
  }
  result.lp_bound = lp_res.objective;

  // Stage 2: y/4 randomized pre-assignment.
  const std::vector<int> picks = randomized_round(
      inst, lp_res.x, params.rounding_divisor, requests.size(), rng);

  // Group tentative requests by (station, slot).
  int max_slots = 0;
  for (int L : inst.slots_per_station) max_slots = std::max(max_slots, L);
  // candidates[bs][l] -> request indices.
  std::vector<std::vector<std::vector<int>>> candidates(
      static_cast<std::size_t>(topo.num_stations()),
      std::vector<std::vector<int>>(static_cast<std::size_t>(max_slots)));
  for (std::size_t j = 0; j < requests.size(); ++j) {
    if (picks[j] < 0) continue;
    const SlotVar& var = inst.vars[static_cast<std::size_t>(picks[j])];
    candidates[static_cast<std::size_t>(var.station)]
              [static_cast<std::size_t>(var.slot)]
                  .push_back(static_cast<int>(j));
  }

  StationLoad load(topo);
  BackhaulLoad backhaul(topo);
  std::vector<Admitted> admitted;

  // With backhaul enforcement, a remote placement must be able to carry
  // the request's expected stream; checked before admission.
  auto backhaul_ok = [&](int j, int bs) {
    if (!params.enforce_backhaul) return true;
    const mec::ARRequest& req = requests[static_cast<std::size_t>(j)];
    if (req.home_station == bs) return true;
    const auto path = topo.shortest_path_links(req.home_station, bs);
    return backhaul.fits(path, req.demand.expected_rate());
  };

  auto admit = [&](int j, int bs, int slot, double latency) {
    const mec::ARRequest& req = requests[static_cast<std::size_t>(j)];
    const std::size_t level = realized[static_cast<std::size_t>(j)];
    const double rate = req.demand.level(level).rate;
    const double demand_mhz = rate * params.c_unit;
    const double reserve_mhz =
        topo.station(bs).capacity_mhz - slot * params.slot_capacity_mhz;

    RequestOutcome& outcome = result.outcomes[static_cast<std::size_t>(j)];
    outcome.admitted = true;
    outcome.station = bs;
    outcome.start_slot = slot;
    outcome.realized_level = level;
    outcome.realized_rate = rate;
    outcome.latency_ms = latency;
    outcome.task_stations.assign(req.tasks.size(), bs);

    // Eq. (8): reward iff the realized demand fits the resources from the
    // starting slot onward; the request occupies what is available either
    // way (it streams, the surplus is simply not served). Under backhaul
    // enforcement, the realized stream must also fit the path.
    const double granted = load.occupy(bs, demand_mhz);
    bool stream_fits = true;
    if (params.enforce_backhaul && req.home_station != bs) {
      stream_fits = backhaul.consume(
          topo.shortest_path_links(req.home_station, bs), rate);
    }
    if (demand_mhz <= reserve_mhz + 1e-9 && granted >= demand_mhz - 1e-9 &&
        stream_fits) {
      outcome.rewarded = true;
      outcome.reward = req.demand.level(level).reward;
    }

    Admitted adm;
    adm.request_index = j;
    adm.station = bs;
    adm.realized_mhz = granted;
    const double total_w = req.total_proc_weight();
    adm.task_share_mhz.reserve(req.tasks.size());
    adm.task_stations.assign(req.tasks.size(), bs);
    for (const mec::TaskSpec& task : req.tasks) {
      adm.task_share_mhz.push_back(granted * task.proc_weight / total_w);
    }
    admitted.push_back(std::move(adm));
  };

  // Stage 3: slot-by-slot admission (Alg. 1 steps 3-7 / Alg. 2 steps 4-15).
  for (int l = 0; l < max_slots; ++l) {
    for (int bs = 0; bs < topo.num_stations(); ++bs) {
      if (l >= inst.slots_per_station[static_cast<std::size_t>(bs)]) continue;
      auto& slot_candidates =
          candidates[static_cast<std::size_t>(bs)][static_cast<std::size_t>(l)];
      // "Consider the request with the (next) smallest data rate": expected
      // rate — actual rates are unknown until scheduling.
      std::sort(slot_candidates.begin(), slot_candidates.end(),
                [&](int a, int b) {
                  const double ra =
                      requests[static_cast<std::size_t>(a)].demand.expected_rate();
                  const double rb =
                      requests[static_cast<std::size_t>(b)].demand.expected_rate();
                  if (ra != rb) return ra < rb;
                  return a < b;
                });
      const double threshold = l * params.slot_capacity_mhz;
      for (int j : slot_candidates) {
        bool fits = load.used_mhz(bs) <= threshold + 1e-9;
        if (!fits && enable_migration) {
          // Alg. 2: migrate tasks of resident requests until the candidate
          // fits or no migration applies.
          while (load.used_mhz(bs) > threshold + 1e-9) {
            if (!migrate_one_task(topo, requests, admitted, load,
                                  result.outcomes, bs)) {
              break;
            }
          }
          fits = load.used_mhz(bs) <= threshold + 1e-9;
        }
        if (!fits) continue;
        if (!backhaul_ok(j, bs)) continue;
        const SlotVar& var =
            inst.vars[static_cast<std::size_t>(picks[static_cast<std::size_t>(j)])];
        admit(j, bs, l, var.latency_ms);
      }
    }
  }

  // Stage 4 (optional): greedy backfill of leftovers into residual
  // capacity, highest expected reward first, uncertainty-aware (admit only
  // where the expected demand fits the remaining capacity).
  if (params.backfill) {
    std::vector<int> leftovers;
    for (std::size_t j = 0; j < requests.size(); ++j) {
      if (!result.outcomes[j].admitted) {
        leftovers.push_back(static_cast<int>(j));
      }
    }
    // Highest reward density first: with demand-independent rewards the
    // scarce resource is rate mass, so pack by expected reward per unit of
    // expected demand.
    auto density = [&](int j) {
      const auto& demand = requests[static_cast<std::size_t>(j)].demand;
      return demand.expected_reward() / std::max(1e-9, demand.expected_rate());
    };
    std::sort(leftovers.begin(), leftovers.end(), [&](int a, int b) {
      const double da = density(a);
      const double db = density(b);
      if (da != db) return da > db;
      return a < b;
    });
    for (int j : leftovers) {
      const mec::ARRequest& req = requests[static_cast<std::size_t>(j)];
      const double expected_mhz = req.demand.expected_rate() * params.c_unit;
      int best_bs = -1;
      double best_er = 0.0;
      double best_latency = 0.0;
      for (const auto& cand : candidate_stations(topo, req, params)) {
        const int bs = cand.station;
        if (load.remaining_mhz(bs) < expected_mhz) continue;
        if (!backhaul_ok(j, bs)) continue;
        const double er = req.demand.expected_reward_within(
            load.remaining_mhz(bs) / params.c_unit);
        if (er > best_er) {
          best_er = er;
          best_bs = bs;
          best_latency = cand.latency_ms;
        }
      }
      if (best_bs < 0) continue;
      const int slot = static_cast<int>(
          std::floor(load.used_mhz(best_bs) / params.slot_capacity_mhz));
      // Reward condition for backfill: fits the actual remaining capacity.
      const std::size_t level = realized[static_cast<std::size_t>(j)];
      const double rate = req.demand.level(level).rate;
      const double demand_mhz = rate * params.c_unit;
      RequestOutcome& outcome = result.outcomes[static_cast<std::size_t>(j)];
      outcome.admitted = true;
      outcome.station = best_bs;
      outcome.start_slot = slot;
      outcome.realized_level = level;
      outcome.realized_rate = rate;
      outcome.latency_ms = best_latency;
      outcome.task_stations.assign(req.tasks.size(), best_bs);
      const double remaining = load.remaining_mhz(best_bs);
      load.occupy(best_bs, demand_mhz);
      bool stream_fits = true;
      if (params.enforce_backhaul && req.home_station != best_bs) {
        stream_fits = backhaul.consume(
            topo.shortest_path_links(req.home_station, best_bs), rate);
      }
      if (demand_mhz <= remaining + 1e-9 && stream_fits) {
        outcome.rewarded = true;
        outcome.reward = req.demand.level(level).reward;
      }
    }
  }

  return result;
}

}  // namespace mecar::core
