// Backhaul bandwidth accounting (extension beyond the paper's base model).
//
// The paper's related-work section criticizes Chang et al. for "ignoring
// the backhaul wired bandwidth consumption"; this module supplies the
// missing constraint. A request served away from its home station streams
// its realized data rate across every link of the delay-shortest path;
// `BackhaulLoad` tracks the per-link load, and `apply_backhaul_audit`
// post-processes any OffloadResult, voiding the reward of requests whose
// stream the backhaul cannot actually carry (bandwidth-blind algorithms
// pay here). Appro/Heu enforce the constraint at admission when
// AlgorithmParams::enforce_backhaul is set.
#pragma once

#include <vector>

#include "core/types.h"
#include "mec/topology.h"

namespace mecar::core {

/// Per-link bandwidth tracker (MB/s).
class BackhaulLoad {
 public:
  explicit BackhaulLoad(const mec::Topology& topo);

  /// Free capacity along the whole path (min over links; +inf for an
  /// empty path, i.e. local execution).
  double available_mbps(const std::vector<int>& path) const;

  /// True when every link of the path still carries `rate_mbps` more.
  bool fits(const std::vector<int>& path, double rate_mbps) const;

  /// Consumes `rate_mbps` on every path link. Returns false (and consumes
  /// nothing) when the path cannot carry it.
  bool consume(const std::vector<int>& path, double rate_mbps);

  /// Releases previously consumed bandwidth.
  void release(const std::vector<int>& path, double rate_mbps);

  double used_mbps(int link) const { return used_.at(link); }
  double capacity_mbps(int link) const { return capacity_.at(link); }

 private:
  const mec::Topology* topo_;
  std::vector<double> used_;
  std::vector<double> capacity_;
};

/// Result of auditing one offloading solution against the backhaul.
struct BackhaulAudit {
  /// Requests whose reward was voided (stream did not fit the backhaul).
  int voided = 0;
  /// Reward lost to the backhaul bottleneck.
  double reward_lost = 0.0;
  /// Peak link utilization in [0, 1] after the audit (0 when all links
  /// are infinite).
  double peak_link_utilization = 0.0;
};

/// Replays `result` against finite link capacities: rewarded requests are
/// processed in increasing request id; a request whose home->station path
/// cannot carry its realized rate loses its reward (admitted stays true —
/// the stream runs degraded). Local executions (station == home) consume
/// nothing. Mutates `result` and returns the audit summary.
BackhaulAudit apply_backhaul_audit(const mec::Topology& topo,
                                   const std::vector<mec::ARRequest>& requests,
                                   OffloadResult& result);

}  // namespace mecar::core
