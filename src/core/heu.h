// Algorithm Heu (paper Alg. 2): efficient heuristic for the reward
// maximization problem without the single-station consolidation assumption.
// Identical to Appro up to the admission stage; on an admission failure it
// migrates tasks of already-admitted requests to nearby stations (keeping
// their latency budgets) to make room for the new request.
#pragma once

#include "core/types.h"

namespace mecar::core {

/// Runs Heu; arguments as in run_appro.
OffloadResult run_heu(const mec::Topology& topo,
                      const std::vector<mec::ARRequest>& requests,
                      const std::vector<std::size_t>& realized,
                      const AlgorithmParams& params, util::Rng& rng);

}  // namespace mecar::core
