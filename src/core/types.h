// Shared result types and evaluation conventions for all offloading
// algorithms (Appro, Heu, Exact, and the baselines).
//
// Evaluation semantics (DESIGN.md section 3):
//  * A request's data rate is UNKNOWN until the moment it is scheduled; it
//    then realizes one level of its (rate, reward) distribution.
//  * The realized levels for a run are drawn once, up front, and shared by
//    every algorithm under comparison (common random numbers) — algorithms
//    must not peek before admission.
//  * A scheduled request collects its reward iff its realized demand fits
//    the resources the algorithm reserved for it (Eq. (8) semantics);
//    otherwise it occupies what is available but earns nothing.
#pragma once

#include <vector>

#include "mec/request.h"
#include "mec/topology.h"
#include "mec/workload.h"
#include "util/rng.h"

namespace mecar::core {

/// Parameters shared by every algorithm in this module.
struct AlgorithmParams {
  /// Resource-slot size C_l, MHz (section VI-A: 1000 MHz).
  double slot_capacity_mhz = 1000.0;
  /// Computing resource per unit data rate C_unit, MHz per MB/s.
  double c_unit = mec::kCUnitMhzPerMbps;
  /// Candidate stations per request in the LP (nearest feasible first);
  /// bounds the LP size. <= 0 means all stations.
  int max_candidate_stations = 10;
  /// The randomized-rounding divisor of algorithm Appro (paper: 4).
  double rounding_divisor = 4.0;
  /// After the randomized slot-by-slot stage, greedily admit leftover
  /// requests into residual capacity (keeps the 1/8 guarantee — backfill
  /// only adds reward — and matches the utilization the paper's figures
  /// imply). Disable to study the bare rounding scheme.
  bool backfill = true;
  /// Respect finite backhaul link bandwidths at admission (extension; see
  /// core/backhaul.h). Off by default — the paper's base model assumes an
  /// unconstrained backhaul.
  bool enforce_backhaul = false;
};

/// Per-request outcome of one algorithm run.
struct RequestOutcome {
  int request_id = -1;
  /// The request was scheduled onto a station (its rate then realized).
  bool admitted = false;
  /// The realized demand fit the reserved resources -> reward collected.
  bool rewarded = false;
  /// Station executing the (consolidated) tasks; -1 when not admitted.
  int station = -1;
  /// Starting resource slot index (slot-indexed algorithms; else 0).
  int start_slot = 0;
  /// Index into the request's demand levels realized at scheduling time.
  std::size_t realized_level = 0;
  double realized_rate = 0.0;
  double reward = 0.0;
  /// Experienced latency (waiting + 2x transmission + processing), ms.
  double latency_ms = 0.0;
  /// Station per task (Heu may split a pipeline across stations).
  std::vector<int> task_stations;
};

/// Aggregate result of a run.
struct OffloadResult {
  std::vector<RequestOutcome> outcomes;
  /// LP upper bound on the expected reward (slot-indexed algorithms; 0
  /// otherwise). Useful for approximation-gap reporting.
  double lp_bound = 0.0;

  double total_reward() const noexcept;
  int num_admitted() const noexcept;
  int num_rewarded() const noexcept;
  /// Mean experienced latency over rewarded requests (0 when none).
  double average_latency_ms() const noexcept;
};

/// Draws the realized demand level of every request once (common random
/// numbers across compared algorithms).
std::vector<std::size_t> realize_demand_levels(
    const std::vector<mec::ARRequest>& requests, util::Rng& rng);

/// Tracks per-station occupied computing resource during admission.
class StationLoad {
 public:
  explicit StationLoad(const mec::Topology& topo);

  double used_mhz(int bs) const { return used_.at(bs); }
  double capacity_mhz(int bs) const { return capacity_.at(bs); }
  double remaining_mhz(int bs) const {
    return capacity_.at(bs) - used_.at(bs);
  }

  /// Adds `demand_mhz`, truncated to the station's remaining capacity;
  /// returns the amount actually occupied.
  double occupy(int bs, double demand_mhz);

  /// Releases previously occupied resource (migration bookkeeping).
  void release(int bs, double amount_mhz);

 private:
  std::vector<double> used_;
  std::vector<double> capacity_;
};

}  // namespace mecar::core
