#include "core/validate.h"

#include <cmath>
#include <sstream>

namespace mecar::core {

std::string to_string(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kShape: return "shape";
    case Violation::Kind::kStation: return "station";
    case Violation::Kind::kLatency: return "latency";
    case Violation::Kind::kRealization: return "realization";
    case Violation::Kind::kReward: return "reward";
    case Violation::Kind::kCapacity: return "capacity";
    case Violation::Kind::kEq8: return "eq8";
  }
  return "?";
}

namespace {

void add(std::vector<Violation>& out, Violation::Kind kind, int request_id,
         std::string message) {
  out.push_back(Violation{kind, request_id, std::move(message)});
}

}  // namespace

std::vector<Violation> validate_offload(
    const mec::Topology& topo, const std::vector<mec::ARRequest>& requests,
    const std::vector<std::size_t>& realized, const OffloadResult& result,
    const ValidateOptions& options) {
  std::vector<Violation> out;
  if (result.outcomes.size() != requests.size() ||
      realized.size() != requests.size()) {
    add(out, Violation::Kind::kShape, -1,
        "outcomes/realized size does not match the request set");
    return out;
  }

  std::vector<double> station_usage(
      static_cast<std::size_t>(topo.num_stations()), 0.0);

  for (std::size_t j = 0; j < requests.size(); ++j) {
    const mec::ARRequest& req = requests[j];
    const RequestOutcome& o = result.outcomes[j];
    if (o.request_id != req.id) {
      add(out, Violation::Kind::kShape, req.id,
          "outcome request_id does not match the request order");
    }
    if (!o.admitted) {
      if (o.rewarded || o.reward != 0.0) {
        add(out, Violation::Kind::kReward, req.id,
            "reward granted to a non-admitted request");
      }
      continue;
    }
    if (o.station < 0 || o.station >= topo.num_stations()) {
      add(out, Violation::Kind::kStation, req.id,
          "execution station out of range");
      continue;
    }
    // Realization consistency.
    if (o.realized_level != realized[j]) {
      add(out, Violation::Kind::kRealization, req.id,
          "realized level differs from the shared realization");
    } else if (std::abs(o.realized_rate -
                        req.demand.level(realized[j]).rate) > options.tol) {
      add(out, Violation::Kind::kRealization, req.id,
          "realized rate differs from the level's rate");
    }
    // Latency: recompute from the reported task placement.
    if (o.task_stations.size() != req.tasks.size()) {
      add(out, Violation::Kind::kShape, req.id,
          "task placement size does not match the pipeline");
    } else {
      const double lat =
          mec::split_placement_latency_ms(topo, req, o.task_stations);
      // Online runs add waiting time on top of the placement latency, so
      // the reported value may exceed the recomputed one — never the
      // budget, though.
      if (o.latency_ms + options.tol < lat) {
        add(out, Violation::Kind::kLatency, req.id,
            "reported latency below the placement latency");
      }
      if (o.rewarded && o.latency_ms > req.latency_budget_ms + options.tol) {
        add(out, Violation::Kind::kLatency, req.id,
            "rewarded request exceeds its latency budget");
      }
    }
    // Reward consistency + Eq. (8).
    if (o.rewarded) {
      const double expected_reward = req.demand.level(realized[j]).reward;
      if (std::abs(o.reward - expected_reward) > options.tol) {
        std::ostringstream msg;
        msg << "reward " << o.reward << " != level reward "
            << expected_reward;
        add(out, Violation::Kind::kReward, req.id, msg.str());
      }
      const double demand_mhz = o.realized_rate * options.params.c_unit;
      const double reserve =
          topo.station(o.station).capacity_mhz -
          o.start_slot * options.params.slot_capacity_mhz;
      if (demand_mhz > reserve + options.tol) {
        add(out, Violation::Kind::kEq8, req.id,
            "reward granted although the realized demand cannot fit from "
            "the starting slot (Eq. 8)");
      }
      if (o.task_stations.size() == req.tasks.size()) {
        const double total_w = req.total_proc_weight();
        for (std::size_t k = 0; k < req.tasks.size(); ++k) {
          const int bs = o.task_stations[k];
          if (bs >= 0 && bs < topo.num_stations()) {
            station_usage[static_cast<std::size_t>(bs)] +=
                demand_mhz * req.tasks[k].proc_weight / total_w;
          }
        }
      }
    } else if (o.reward != 0.0) {
      add(out, Violation::Kind::kReward, req.id,
          "non-rewarded request carries a reward");
    }
  }

  if (options.check_capacity) {
    for (int bs = 0; bs < topo.num_stations(); ++bs) {
      const double cap = topo.station(bs).capacity_mhz;
      if (station_usage[static_cast<std::size_t>(bs)] > cap + options.tol) {
        std::ostringstream msg;
        msg << "station " << bs << " rewarded demand "
            << station_usage[static_cast<std::size_t>(bs)]
            << " MHz exceeds capacity " << cap;
        add(out, Violation::Kind::kCapacity, -1, msg.str());
      }
    }
  }
  return out;
}

}  // namespace mecar::core
