#include "core/slot_lp.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/catalog.h"

namespace mecar::core {

std::vector<CandidateStation> candidate_stations(const mec::Topology& topo,
                                                 const mec::ARRequest& req,
                                                 const AlgorithmParams& params,
                                                 double waiting_ms) {
  std::vector<CandidateStation> feasible;
  for (int bs = 0; bs < topo.num_stations(); ++bs) {
    const double lat = mec::placement_latency_ms(topo, req, bs);
    if (waiting_ms + lat <= req.latency_budget_ms) {
      feasible.push_back(CandidateStation{bs, lat});
    }
  }
  std::sort(feasible.begin(), feasible.end(),
            [](const CandidateStation& a, const CandidateStation& b) {
              if (a.latency_ms != b.latency_ms) {
                return a.latency_ms < b.latency_ms;
              }
              return a.station < b.station;
            });
  if (params.max_candidate_stations > 0 &&
      static_cast<int>(feasible.size()) > params.max_candidate_stations) {
    feasible.resize(static_cast<std::size_t>(params.max_candidate_stations));
  }
  return feasible;
}

SlotLpInstance build_slot_lp(const mec::Topology& topo,
                             const std::vector<mec::ARRequest>& requests,
                             const AlgorithmParams& params,
                             const SlotLpOptions& options) {
  obs::metrics().lp_slot_models.add();
  SlotLpInstance inst;
  const int num_stations = topo.num_stations();
  if (!options.capacity_override_mhz.empty() &&
      options.capacity_override_mhz.size() !=
          static_cast<std::size_t>(num_stations)) {
    throw std::invalid_argument(
        "build_slot_lp: capacity_override_mhz size mismatch");
  }
  if (!options.waiting_ms_per_request.empty() &&
      options.waiting_ms_per_request.size() != requests.size()) {
    throw std::invalid_argument(
        "build_slot_lp: waiting_ms_per_request size mismatch");
  }
  auto station_capacity = [&](int bs) {
    return options.capacity_override_mhz.empty()
               ? topo.station(bs).capacity_mhz
               : options.capacity_override_mhz[static_cast<std::size_t>(bs)];
  };
  auto waiting_of = [&](std::size_t j) {
    return options.waiting_ms_per_request.empty()
               ? options.waiting_ms
               : options.waiting_ms_per_request[j];
  };
  inst.slots_per_station.resize(static_cast<std::size_t>(num_stations));
  for (int bs = 0; bs < num_stations; ++bs) {
    inst.slots_per_station[static_cast<std::size_t>(bs)] = std::max(
        1, static_cast<int>(
               std::floor(station_capacity(bs) / params.slot_capacity_mhz)));
  }
  inst.request_columns.resize(requests.size());

  // Columns y_jil with ER_jil objective. The candidate list carries the
  // placement latency it computed for the feasibility filter, so each
  // (request, station) latency is evaluated exactly once.
  for (std::size_t j = 0; j < requests.size(); ++j) {
    const mec::ARRequest& req = requests[j];
    for (const CandidateStation& cand :
         candidate_stations(topo, req, params, waiting_of(j))) {
      const int bs = cand.station;
      const double latency = cand.latency_ms;
      const int L = inst.slots_per_station[static_cast<std::size_t>(bs)];
      for (int l = 0; l < L; ++l) {
        const double rate_cap =
            (station_capacity(bs) - l * params.slot_capacity_mhz) /
            params.c_unit;
        const double er = req.demand.expected_reward_within(rate_cap);
        if (er <= 0.0) continue;  // no level fits from this slot onward
        // The per-stream share is a true column bound (0 <= y <= 1), not a
        // row: the revised simplex handles it natively and the basis stays
        // at the real constraint count.
        const int col = inst.model.add_variable(
            "y_" + std::to_string(req.id) + "_" + std::to_string(bs) + "_" +
                std::to_string(l),
            er, 1.0);
        inst.vars.push_back(SlotVar{static_cast<int>(j), bs, l, er, latency});
        inst.request_columns[j].push_back(col);
      }
    }
  }

  // (9): per-request assignment rows. A request with a single candidate
  // column needs no row at all — its constraint is exactly the column's
  // upper bound, so the polytope is unchanged with one row fewer.
  for (std::size_t j = 0; j < requests.size(); ++j) {
    if (inst.request_columns[j].size() < 2) continue;
    std::vector<lp::Term> terms;
    terms.reserve(inst.request_columns[j].size());
    for (int col : inst.request_columns[j]) {
      terms.push_back(lp::Term{col, 1.0});
    }
    inst.model.add_constraint("assign_" + std::to_string(requests[j].id),
                              lp::Sense::kLe, 1.0, std::move(terms));
  }

  // (10)/(23): slot-prefix capacity rows per (station, l), l = 1..L.
  for (int bs = 0; bs < num_stations; ++bs) {
    const int L = inst.slots_per_station[static_cast<std::size_t>(bs)];
    for (int l = 1; l <= L; ++l) {
      const double rate_cap = l * params.slot_capacity_mhz / params.c_unit;
      std::vector<lp::Term> terms;
      for (std::size_t col = 0; col < inst.vars.size(); ++col) {
        const SlotVar& var = inst.vars[col];
        if (var.station != bs || var.slot >= l) continue;
        double cap = rate_cap;
        if (options.share_cap_mhz) {
          cap = std::min(cap, *options.share_cap_mhz / params.c_unit);
        }
        const double truncated =
            requests[static_cast<std::size_t>(var.request_index)]
                .demand.expected_truncated_rate(cap);
        if (truncated > 0.0) {
          terms.push_back(lp::Term{static_cast<int>(col), truncated});
        }
      }
      if (terms.empty()) continue;
      inst.model.add_constraint(
          "slots_" + std::to_string(bs) + "_" + std::to_string(l),
          lp::Sense::kLe, 2.0 * rate_cap, std::move(terms));
    }
  }

  return inst;
}

SlotLpInstance build_ilp_rm(const mec::Topology& topo,
                            const std::vector<mec::ARRequest>& requests,
                            const AlgorithmParams& params) {
  SlotLpInstance inst;
  const int num_stations = topo.num_stations();
  inst.slots_per_station.assign(static_cast<std::size_t>(num_stations), 1);
  inst.request_columns.resize(requests.size());

  for (std::size_t j = 0; j < requests.size(); ++j) {
    const mec::ARRequest& req = requests[j];
    for (const CandidateStation& cand : candidate_stations(topo, req, params)) {
      const int bs = cand.station;
      const double latency = cand.latency_ms;
      // Expected reward restricted to rates the station can hold at all
      // (consistent with Eq. (8) at slot 0).
      const double rate_cap = topo.station(bs).capacity_mhz / params.c_unit;
      const double er = req.demand.expected_reward_within(rate_cap);
      if (er <= 0.0) continue;
      const int col = inst.model.add_variable(
          "x_" + std::to_string(req.id) + "_" + std::to_string(bs), er, 1.0,
          /*integral=*/true);
      inst.vars.push_back(SlotVar{static_cast<int>(j), bs, 0, er, latency});
      inst.request_columns[j].push_back(col);
    }
  }

  // (3): each request to at most one station.
  for (std::size_t j = 0; j < requests.size(); ++j) {
    if (inst.request_columns[j].empty()) continue;
    std::vector<lp::Term> terms;
    for (int col : inst.request_columns[j]) {
      terms.push_back(lp::Term{col, 1.0});
    }
    inst.model.add_constraint("assign_" + std::to_string(requests[j].id),
                              lp::Sense::kLe, 1.0, std::move(terms));
  }

  // (4): expected-demand capacity per station.
  for (int bs = 0; bs < num_stations; ++bs) {
    std::vector<lp::Term> terms;
    for (std::size_t col = 0; col < inst.vars.size(); ++col) {
      const SlotVar& var = inst.vars[col];
      if (var.station != bs) continue;
      const double demand =
          requests[static_cast<std::size_t>(var.request_index)]
              .demand.expected_rate() *
          params.c_unit;
      terms.push_back(lp::Term{static_cast<int>(col), demand});
    }
    if (terms.empty()) continue;
    inst.model.add_constraint("cap_" + std::to_string(bs), lp::Sense::kLe,
                              topo.station(bs).capacity_mhz, std::move(terms));
  }

  return inst;
}

}  // namespace mecar::core
