// Shared machinery of algorithms Appro (Alg. 1) and Heu (Alg. 2):
// LP solve -> y/4 randomized pre-assignment -> slot-by-slot admission with
// rate realization; Heu additionally migrates tasks of already-admitted
// requests to make room (Alg. 2 steps 11-14); an optional backfill pass
// greedily admits leftovers into residual capacity (DESIGN.md section 3).
#pragma once

#include <vector>

#include "core/slot_lp.h"
#include "core/types.h"

namespace mecar::core {

/// One candidate produced by the randomized rounding: request j was
/// tentatively assigned to start slot `slot` of `station`.
struct PreAssignment {
  int request_index = -1;
  int column = -1;  // LP column (for ER/latency lookup)
};

/// Samples the paper's categorical rounding: request j picks column c with
/// probability y_c / divisor, or no column at all with the residual
/// probability. Returns the picked column per request (-1 = ignored).
std::vector<int> randomized_round(const SlotLpInstance& inst,
                                  const std::vector<double>& y,
                                  double divisor, std::size_t num_requests,
                                  util::Rng& rng);

/// Full Appro/Heu pipeline; `enable_migration` switches Alg. 1 vs Alg. 2.
OffloadResult run_slot_rounding(const mec::Topology& topo,
                                const std::vector<mec::ARRequest>& requests,
                                const std::vector<std::size_t>& realized,
                                const AlgorithmParams& params,
                                util::Rng& rng, bool enable_migration);

}  // namespace mecar::core
