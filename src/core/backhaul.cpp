#include "core/backhaul.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mecar::core {

BackhaulLoad::BackhaulLoad(const mec::Topology& topo) : topo_(&topo) {
  used_.assign(topo.links().size(), 0.0);
  capacity_.reserve(topo.links().size());
  for (const mec::Link& link : topo.links()) {
    capacity_.push_back(link.bandwidth_mbps);
  }
}

double BackhaulLoad::available_mbps(const std::vector<int>& path) const {
  double avail = std::numeric_limits<double>::infinity();
  for (int link : path) {
    avail = std::min(avail, capacity_.at(link) - used_.at(link));
  }
  return avail;
}

bool BackhaulLoad::fits(const std::vector<int>& path,
                        double rate_mbps) const {
  return available_mbps(path) >= rate_mbps - 1e-9;
}

bool BackhaulLoad::consume(const std::vector<int>& path, double rate_mbps) {
  if (rate_mbps < 0.0) {
    throw std::invalid_argument("BackhaulLoad::consume: negative rate");
  }
  if (!fits(path, rate_mbps)) return false;
  for (int link : path) used_.at(link) += rate_mbps;
  return true;
}

void BackhaulLoad::release(const std::vector<int>& path, double rate_mbps) {
  for (int link : path) {
    if (used_.at(link) < rate_mbps - 1e-9) {
      throw std::invalid_argument("BackhaulLoad::release: underflow");
    }
    used_.at(link) = std::max(0.0, used_.at(link) - rate_mbps);
  }
}

BackhaulAudit apply_backhaul_audit(const mec::Topology& topo,
                                   const std::vector<mec::ARRequest>& requests,
                                   OffloadResult& result) {
  if (result.outcomes.size() != requests.size()) {
    throw std::invalid_argument("apply_backhaul_audit: size mismatch");
  }
  BackhaulLoad load(topo);
  BackhaulAudit audit;
  for (std::size_t j = 0; j < result.outcomes.size(); ++j) {
    RequestOutcome& outcome = result.outcomes[j];
    if (!outcome.rewarded) continue;
    const int home = requests[j].home_station;
    if (outcome.station == home) continue;  // local: no backhaul use
    const auto path = topo.shortest_path_links(home, outcome.station);
    if (!load.consume(path, outcome.realized_rate)) {
      outcome.rewarded = false;
      audit.reward_lost += outcome.reward;
      outcome.reward = 0.0;
      ++audit.voided;
    }
  }
  for (std::size_t li = 0; li < topo.links().size(); ++li) {
    const double cap = load.capacity_mbps(static_cast<int>(li));
    if (std::isfinite(cap) && cap > 0.0) {
      audit.peak_link_utilization =
          std::max(audit.peak_link_utilization,
                   load.used_mbps(static_cast<int>(li)) / cap);
    }
  }
  return audit;
}

}  // namespace mecar::core
