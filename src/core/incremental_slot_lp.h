// Incremental builder for the per-slot LP of Sec. IV-A/V.
//
// `build_slot_lp` reconstructs every ER_jil column from scratch each slot
// even though consecutive slot batches differ by a handful of arrivals,
// completions, and displaced streams. `IncrementalSlotLp` keeps the
// previous slot's `SlotLpInstance` alive and rewrites only the delta
// through the `lp::Model` mutation API:
//
//   * unchanged batch -> the cached model is returned as-is (reuse);
//   * entries that left -> their columns are struck (`remove_column`),
//     leaving their assignment row empty and inert;
//   * entries that joined (or whose candidate-station prefix changed) ->
//     fresh columns are appended into the existing capacity rows, plus a
//     new assignment row and any capacity row that had been empty so far.
//
// Delta soundness rests on two properties of the canonical builder:
// column objectives/coefficients depend only on (station, l, residual
// capacity, share cap) — never on waiting time (`SlotVar::latency_ms` has
// no waiting term) — and the per-request candidate set is a prefix of the
// stations sorted by (latency, id), so a request's columns are a pure
// function of its candidate COUNT. Anything that breaks those preconditions
// (the round-robin share changed, the topology pointer changed, params
// changed) forces a full rebuild, as does compaction once struck columns
// outnumber live ones.
//
// A moved `capacity_override_mhz` (residual capacities shift every slot
// as residents come and go) is cheaper than that: capacity-row
// coefficients and RHS depend only on l * slot_capacity, so as long as no
// station's slot count L changed, only column OBJECTIVES move. Those are
// reconciled in place per entry (update_objective, plus update_bound
// freezing columns whose expected reward dropped to 0); only an entry
// that needs a column the old override never materialized falls back to
// strike-and-readd, and only an L change forces the full rebuild.
//
// Contract: the produced model is OBJECTIVE-equivalent to a scratch
// `build_slot_lp` of the same inputs (same polytope over live columns,
// possibly different column order and inert rows) — not byte-identical.
// Callers that need bit-for-bit golden output keep using the scratch
// builder; DynamicRR gates this path behind `DynamicRrParams::
// incremental_lp` (default off).
//
// Topology identity is tracked by POINTER: mutating the pointed-to object
// in place (a chaos overlay advancing its fault epoch) is invisible here,
// so such callers must invalidate() — or bypass the incremental path, as
// DynamicRR does whenever the view carries an overlay topology. A mobility
// re-home of a request IS detected (the candidate cache records the home
// station it was computed for).
#pragma once

#include <unordered_map>
#include <vector>

#include "core/slot_lp.h"

namespace mecar::util {
class SnapshotWriter;
class SnapshotReader;
}  // namespace mecar::util

namespace mecar::core {

class IncrementalSlotLp {
 public:
  struct Stats {
    long long full_builds = 0;
    long long reuses = 0;
    long long delta_builds = 0;
    long long columns_added = 0;
    long long columns_removed = 0;
  };

  /// Returns the slot LP for `requests` under `options`, rebuilding as
  /// little as the mutation contract allows. The reference stays valid
  /// until the next build() or invalidate().
  const SlotLpInstance& build(const mec::Topology& topo,
                              const std::vector<mec::ARRequest>& requests,
                              const AlgorithmParams& params,
                              const SlotLpOptions& options);

  /// Drops every cached structure; the next build() starts from scratch.
  void invalidate();

  const Stats& stats() const noexcept { return stats_; }

  /// Checkpoint support: serializes the cached model, entries and build
  /// context so a resumed run re-enters build() with the same reuse/delta
  /// decisions (and the same column order, which the warm basis depends
  /// on). The candidate cache is dropped — it reprimes lazily. load()
  /// re-points the topology at `topo`, which must be the same topology
  /// object the resumed simulation passes to build().
  void save(util::SnapshotWriter& w) const;
  void load(util::SnapshotReader& r, const mec::Topology& topo);

 private:
  /// Bookkeeping for one batch entry currently materialized in the model.
  struct Entry {
    int id = 0;
    /// Signature guarding column reuse: the candidate-station prefix
    /// length plus the demand/budget identity (a displaced stream enters
    /// as a "ghost" with the same id but a degenerate demand).
    int candidate_count = 0;
    double latency_budget_ms = 0.0;
    std::size_t demand_levels = 0;
    double demand_min_rate = 0.0;
    double demand_expected_reward = 0.0;
    std::vector<int> columns;  // model column ids, builder order
  };

  bool preconditions_hold(const mec::Topology& topo,
                          const AlgorithmParams& params,
                          const SlotLpOptions& options) const;
  /// True when the new capacity override leaves every station's slot
  /// count unchanged (the gate for in-place objective reconciliation).
  bool override_preserves_slot_counts(const SlotLpOptions& options) const;
  /// Rewrites the objectives (and freeze bounds) of a signature-matched
  /// entry under the NEW capacity override (already stored in options_).
  /// Returns false when the entry needs a column the old override never
  /// materialized — the caller then strikes and re-adds the entry.
  bool reconcile_entry(const mec::ARRequest& req, const Entry& e,
                       bool& mutated);
  void full_build(const mec::Topology& topo,
                  const std::vector<mec::ARRequest>& requests,
                  const AlgorithmParams& params, const SlotLpOptions& options);
  /// Candidate prefix length of `req` at `waiting_ms` (the count the
  /// canonical builder would produce).
  int candidate_count(const mec::ARRequest& req, double waiting_ms) const;
  /// Appends the columns (+ assignment row + missing capacity rows) of one
  /// joining entry; returns its bookkeeping record.
  Entry add_entry(const mec::ARRequest& req, double waiting_ms, int count);
  const std::vector<CandidateStation>& candidates_of(const mec::ARRequest& req);
  static Entry make_signature(const mec::ARRequest& req, int count);
  static bool signature_matches(const Entry& a, const Entry& b);

  SlotLpInstance inst_;
  std::vector<Entry> entries_;  // parallels the current batch
  /// Full (unfiltered) candidate lists per request id, sorted by
  /// (latency, station) — the per-slot filter is a prefix of this.
  std::unordered_map<int, std::vector<CandidateStation>> candidate_cache_;
  /// Capacity row "slots_<bs>_<l>" indices, key = bs * (L_max + 1) + l.
  std::unordered_map<long long, int> capacity_rows_;
  /// Cached build context guarding reuse.
  const mec::Topology* topo_ = nullptr;
  int num_stations_ = 0;
  AlgorithmParams params_;
  SlotLpOptions options_;  // share cap + capacity override snapshot
  bool valid_ = false;
  long long dead_columns_ = 0;
  Stats stats_;
};

}  // namespace mecar::core
