#include "core/appro.h"

#include "core/rounding.h"

namespace mecar::core {

OffloadResult run_appro(const mec::Topology& topo,
                        const std::vector<mec::ARRequest>& requests,
                        const std::vector<std::size_t>& realized,
                        const AlgorithmParams& params, util::Rng& rng) {
  return run_slot_rounding(topo, requests, realized, params, rng,
                           /*enable_migration=*/false);
}

}  // namespace mecar::core
