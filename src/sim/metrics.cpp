#include "sim/metrics.h"

#include <algorithm>

#include "util/stats.h"

namespace mecar::sim {

double jain_index(std::span<const double> values) {
  if (values.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

DetailedSummary summarize(const OnlineMetrics& metrics) {
  DetailedSummary out;
  if (!metrics.completed_latencies_ms.empty()) {
    std::vector<double> sorted = metrics.completed_latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    out.latency_p50_ms = util::percentile(sorted, 50.0);
    out.latency_p95_ms = util::percentile(sorted, 95.0);
    out.latency_max_ms = sorted.back();
  }
  out.service_fairness = jain_index(metrics.service_ratios);
  if (!metrics.per_slot_utilization.empty()) {
    util::RunningStats stats;
    for (double u : metrics.per_slot_utilization) stats.add(u);
    out.mean_utilization = stats.mean();
    out.peak_utilization = stats.max();
  }
  return out;
}

}  // namespace mecar::sim
