#include "sim/online_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "mec/topology_overlay.h"
#include "obs/catalog.h"
#include "obs/event_trace.h"
#include "sim/checkpoint.h"
#include "sim/shard.h"
#include "util/log.h"
#include "util/snapshot.h"
#include "util/timer.h"

namespace mecar::sim {

void OnlinePolicy::feedback(const SlotFeedback& /*fb*/) {}

void OnlinePolicy::save_state(util::SnapshotWriter& /*w*/) const {}

void OnlinePolicy::load_state(util::SnapshotReader& /*r*/) {}

double SlotView::waiting_ms(int request_index) const {
  const auto& req = (*requests)[static_cast<std::size_t>(request_index)];
  return (slot - req.arrival_slot) * slot_ms;
}

std::vector<double> SlotView::resident_demand_mhz() const {
  if (resident_demand != nullptr) return *resident_demand;
  std::vector<double> demand(static_cast<std::size_t>(topo->num_stations()),
                             0.0);
  for (std::size_t j = 0; j < states->size(); ++j) {
    const RequestState& st = (*states)[j];
    if (st.phase == Phase::kServed && st.station >= 0) {
      demand[static_cast<std::size_t>(st.station)] += st.demand_mhz;
    }
  }
  return demand;
}

std::vector<double> waterfill(double capacity,
                              const std::vector<double>& demands) {
  std::vector<double> alloc(demands.size(), 0.0);
  if (demands.empty() || capacity <= 0.0) return alloc;
  for (double d : demands) {
    if (d < 0.0) throw std::invalid_argument("waterfill: negative demand");
  }
  std::vector<std::size_t> open(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) open[i] = i;
  double remaining = capacity;
  while (!open.empty() && remaining > 1e-12) {
    const double share = remaining / static_cast<double>(open.size());
    std::vector<std::size_t> still_open;
    bool saturated_any = false;
    for (std::size_t i : open) {
      const double need = demands[i] - alloc[i];
      if (need <= share + 1e-12) {
        alloc[i] += need;
        remaining -= need;
        saturated_any = true;
      } else {
        still_open.push_back(i);
      }
    }
    if (!saturated_any) {
      // Everyone open wants more than the share: split evenly and stop.
      for (std::size_t i : still_open) {
        alloc[i] += share;
      }
      remaining = 0.0;
      break;
    }
    open = std::move(still_open);
  }
  return alloc;
}

OnlineSimulator::OnlineSimulator(const mec::Topology& topo,
                                 std::vector<mec::ARRequest> requests,
                                 std::vector<std::size_t> realized,
                                 OnlineParams params)
    : topo_(topo),
      requests_(std::move(requests)),
      realized_(std::move(realized)),
      params_(params) {
  if (realized_.size() != requests_.size()) {
    throw std::invalid_argument("OnlineSimulator: realized size mismatch");
  }
  if (params_.horizon_slots <= 0 || params_.slot_ms <= 0.0) {
    throw std::invalid_argument("OnlineSimulator: bad horizon/slot length");
  }
  min_latency_ms_.reserve(requests_.size());
  for (const mec::ARRequest& req : requests_) {
    double best = std::numeric_limits<double>::infinity();
    for (int bs = 0; bs < topo_.num_stations(); ++bs) {
      best = std::min(best, mec::placement_latency_ms(topo_, req, bs));
    }
    min_latency_ms_.push_back(best);
  }
}

OnlineMetrics OnlineSimulator::run(OnlinePolicy& policy, SlotHook* hook,
                                   const SimSnapshot* resume) {
  // Sharded O(live + changes) engine (sim/shard.h); bit-identical to the
  // legacy loop below at any shard count. Selection: explicit
  // params_.num_shards, else the MECAR_SHARDS environment variable.
  const int shards = resolve_num_shards(params_, topo_.num_stations());
  if (shards > 0) {
    ShardEngine engine(topo_, requests_, realized_, params_, min_latency_ms_,
                       shards);
    return engine.run(policy, hook, resume);
  }

  // Mobility mutates request attachments; work on a copy so runs stay
  // independent and repeatable.
  std::vector<mec::ARRequest> requests = requests_;
  std::vector<double> min_latency = min_latency_ms_;
  const double kInf = std::numeric_limits<double>::infinity();

  // Fault machinery. The legacy `outages` list merges into the plan; when
  // the merged plan is empty the whole chaos path is skipped and the run
  // is bit-identical to the pre-fault-engine simulator.
  FaultPlan plan = params_.faults;
  plan.station_outages.insert(plan.station_outages.end(),
                              params_.outages.begin(),
                              params_.outages.end());
  const bool chaos = !plan.empty();
  if (chaos) plan.validate(topo_);
  std::optional<mec::TopologyOverlay> overlay;
  if (chaos) overlay.emplace(topo_);
  // The network every placement decision sees this slot: the base topology
  // when healthy, the overlay's effective topology under faults.
  const mec::Topology* active = &topo_;

  std::vector<RequestState> states(requests.size());
  OnlineMetrics metrics;
  metrics.per_slot_reward.assign(
      static_cast<std::size_t>(params_.horizon_slots), 0.0);

  // Telemetry. Counters are always cheap; the event trace is armed only
  // when an export was requested (exp::run_with_telemetry), so default
  // runs pay one relaxed load per slot.
  const obs::Metrics& om = obs::metrics();
  obs::EventTrace& tr = obs::trace();
  const bool tracing = tr.enabled();
  if (tracing) tr.begin_run(policy.name(), params_.slot_ms);
  // Preemption = a served, placed stream that was active last slot but not
  // re-activated this slot (transition-counted, not per-idle-slot).
  std::vector<char> was_active(states.size(), 0);
  // Fault-epoch trace bookkeeping: the slot the current epoch began.
  int epoch_index = -1;
  int epoch_begin_slot = 0;

  // Fault attribution state (see DropCause): per request, the minimal
  // placement latency over live stations of the *faulted* network, the
  // number of slots in which only faults blocked a budget-feasible
  // placement, whether it was ever fully cut off, and — for displaced
  // streams — the slot the displacement happened.
  std::vector<double> eff_min = min_latency;
  std::vector<int> fault_blocked(requests.size(), 0);
  std::vector<char> cut_off(requests.size(), 0);
  std::vector<int> displaced_at(requests.size(), -1);
  double recovery_slots_total = 0.0;
  std::vector<char> up(static_cast<std::size_t>(topo_.num_stations()), 1);
  std::vector<char> prev_up;

  const auto eff_min_of = [&](const mec::ARRequest& req) {
    double best = kInf;
    for (int bs = 0; bs < topo_.num_stations(); ++bs) {
      if (up[static_cast<std::size_t>(bs)] == 0) continue;
      best = std::min(best, mec::placement_latency_ms(*active, req, bs));
    }
    return best;
  };
  const auto drop_cause_of = [&](std::size_t j) {
    if (!chaos) return DropCause::kStarvation;
    if (cut_off[j] != 0) return DropCause::kPartition;
    if (fault_blocked[j] > 0) return DropCause::kFault;
    return DropCause::kStarvation;
  };
  const auto account_drop = [&](std::size_t j) {
    const DropCause cause = drop_cause_of(j);
    states[j].drop_cause = cause;
    switch (cause) {
      case DropCause::kStarvation:
        ++metrics.resilience.dropped_starvation;
        break;
      case DropCause::kFault:
        ++metrics.resilience.dropped_fault;
        break;
      case DropCause::kPartition:
        ++metrics.resilience.dropped_partition;
        break;
      case DropCause::kNone:
        break;
    }
    if (cause == DropCause::kFault || cause == DropCause::kPartition) {
      metrics.resilience.fault_dropped_expected_reward +=
          requests[j].demand.expected_reward();
    }
  };

  // Resume: overwrite the canonical state with the snapshot, then
  // re-derive everything else exactly as the uninterrupted run would have
  // computed it (same formulas over the same inputs -> same bits).
  int start_slot = 0;
  if (resume != nullptr) {
    if (resume->states.size() != requests.size()) {
      throw std::invalid_argument(
          "OnlineSimulator: resume snapshot request-count mismatch");
    }
    start_slot = resume->next_slot;
    for (std::size_t j = 0; j < requests.size(); ++j) {
      requests[j].home_station = resume->home_station[j];
      double best = kInf;
      for (int bs = 0; bs < topo_.num_stations(); ++bs) {
        best = std::min(best,
                        mec::placement_latency_ms(topo_, requests[j], bs));
      }
      min_latency[j] = best;
    }
    states = resume->states;
    metrics = resume->metrics;
    fault_blocked = resume->fault_blocked;
    cut_off = resume->cut_off;
    displaced_at = resume->displaced_at;
    recovery_slots_total = resume->recovery_slots_total;
    up = resume->up;
    prev_up = resume->prev_up;
    epoch_index = resume->epoch_index;
    epoch_begin_slot = resume->epoch_begin_slot;
    for (std::size_t j = 0; j < states.size(); ++j) {
      was_active[j] = states[j].active_this_slot &&
                              states[j].phase == Phase::kServed
                          ? 1
                          : 0;
    }
    if (chaos && start_slot > 0) {
      // Prime the overlay with the perturbation active at the last
      // completed slot: the loop's slot-start apply() then sees the same
      // epoch transition (or none) as the uninterrupted run.
      overlay->apply(plan.snapshot(topo_, start_slot - 1).perturbation);
      overlay->set_epochs(resume->overlay_epochs);
      active = &overlay->effective();
      for (std::size_t j = 0; j < requests.size(); ++j) {
        eff_min[j] = eff_min_of(requests[j]);
      }
    }
    util::SnapshotReader pr = util::SnapshotReader::unframed(
        resume->policy_state);
    policy.load_state(pr);
  }

  for (int t = start_slot; t < params_.horizon_slots; ++t) {
    if (hook != nullptr && hook->want_snapshot(t)) {
      SimSnapshot snap;
      snap.next_slot = t;
      snap.home_station.reserve(requests.size());
      for (const mec::ARRequest& req : requests) {
        snap.home_station.push_back(req.home_station);
      }
      snap.states = states;
      snap.metrics = metrics;
      snap.fault_blocked = fault_blocked;
      snap.cut_off = cut_off;
      snap.displaced_at = displaced_at;
      snap.recovery_slots_total = recovery_slots_total;
      snap.up = up;
      snap.prev_up = prev_up;
      snap.overlay_epochs = overlay ? overlay->epochs() : 0;
      snap.epoch_index = epoch_index;
      snap.epoch_begin_slot = epoch_begin_slot;
      util::SnapshotWriter pw;
      policy.save_state(pw);
      snap.policy_state = pw.payload();
      hook->on_snapshot(t, std::move(snap));
    }
    crash_point(t, plan.crash_at(t));
    const util::Timer slot_timer;
    om.sim_slots.add();
    if (tracing) tr.set_slot(t);
    // Mobility: re-attach moved users (before drop checks, so a move into
    // better coverage can save a request from starvation this very slot).
    for (const MobilityEvent& move : params_.mobility) {
      if (move.slot != t) continue;
      if (move.request_index < 0 ||
          move.request_index >= static_cast<int>(requests.size()) ||
          move.new_home < 0 || move.new_home >= topo_.num_stations()) {
        throw std::out_of_range("OnlineSimulator: bad mobility event");
      }
      auto& req = requests[static_cast<std::size_t>(move.request_index)];
      if (req.home_station == move.new_home) continue;
      req.home_station = move.new_home;
      ++metrics.handovers;
      om.sim_handovers.add();
      double best = std::numeric_limits<double>::infinity();
      for (int bs = 0; bs < topo_.num_stations(); ++bs) {
        best = std::min(best, mec::placement_latency_ms(topo_, req, bs));
      }
      min_latency[static_cast<std::size_t>(move.request_index)] = best;
      if (chaos) {
        eff_min[static_cast<std::size_t>(move.request_index)] =
            eff_min_of(req);
      }
    }
    // 0. Fault bookkeeping: project the plan onto this slot, swap the
    // overlay epoch when the fault set changed, and displace resident
    // streams whose station died or whose user the backhaul cut off
    // (progress kept, placement lost).
    int slot_lp_budget = 0;
    bool slot_lp_fault = false;
    if (chaos) {
      FaultSnapshot snap = plan.snapshot(topo_, t);
      up = std::move(snap.station_up);
      slot_lp_budget = snap.solver_max_pivots;
      slot_lp_fault = snap.solver_jam;
      const bool rebuilt = overlay->apply(snap.perturbation);
      active = &overlay->effective();
      if (rebuilt || up != prev_up) {
        // New fault epoch: live-station reachability changed, so the
        // faulted minimum latencies must be re-derived.
        for (std::size_t j = 0; j < requests.size(); ++j) {
          eff_min[j] = eff_min_of(requests[j]);
        }
        om.sim_fault_epochs.add();
        if (tracing) {
          if (epoch_index >= 0) {
            tr.emit(obs::EventKind::kFaultEpochEnd, epoch_index,
                    t - epoch_begin_slot);
          }
          ++epoch_index;
          epoch_begin_slot = t;
          int stations_up = 0;
          for (char u : up) stations_up += u;
          tr.emit(obs::EventKind::kFaultEpochBegin, epoch_index,
                  stations_up);
        }
      }
      prev_up = up;
    }
    for (std::size_t j = 0; j < states.size(); ++j) {
      RequestState& st = states[j];
      if (st.phase != Phase::kServed || st.station < 0) continue;
      const bool station_down = up[static_cast<std::size_t>(st.station)] == 0;
      const bool unreachable =
          chaos && !std::isfinite(active->transmission_delay_ms(
                        requests[j].home_station, st.station));
      if (!station_down && !unreachable) continue;
      st.station = -1;  // displaced; policy must re-place
      ++metrics.displaced;
      om.sim_displacements.add();
      if (tracing) {
        tr.emit(obs::EventKind::kDisplacement, static_cast<double>(j),
                station_down ? 0.0 : 1.0);
      }
      if (station_down) {
        ++metrics.resilience.displaced_outage;
      } else {
        ++metrics.resilience.displaced_partition;
      }
      if (displaced_at[j] < 0) displaced_at[j] = t;
    }

    // 1. Arrivals and starvation drops.
    SlotView view;
    view.slot = t;
    view.slot_ms = params_.slot_ms;
    view.station_up = up;
    view.lp_pivot_budget = slot_lp_budget;
    view.lp_fault = slot_lp_fault;
    view.topo = active;
    view.requests = &requests;
    view.states = &states;
    double dropped_expected = 0.0;
    for (std::size_t j = 0; j < requests.size(); ++j) {
      const mec::ARRequest& req = requests[j];
      RequestState& st = states[j];
      if (req.arrival_slot > t) continue;
      if (req.arrival_slot == t) ++metrics.arrived;
      if (st.phase == Phase::kWaiting) {
        const double wait_ms = (t - req.arrival_slot) * params_.slot_ms;
        // The drop rule is the OPTIMISTIC bound (healthy-network minimum
        // latency): a fault may clear before the budget runs out, so a
        // request is only declared dead once waiting alone kills it.
        if (wait_ms + min_latency[j] > req.latency_budget_ms) {
          st.phase = Phase::kDropped;  // starved: deadline unmeetable
          dropped_expected += req.demand.expected_reward();
          account_drop(j);
          om.sim_drops.add();
          continue;
        }
        if (chaos && wait_ms + eff_min[j] > req.latency_budget_ms) {
          // This slot, only the faults stand between the request and a
          // budget-feasible placement — the evidence drop attribution uses.
          ++fault_blocked[j];
          if (!std::isfinite(eff_min[j])) cut_off[j] = 1;
        }
        view.pending.push_back(static_cast<int>(j));
      } else if (st.phase == Phase::kServed) {
        view.pending.push_back(static_cast<int>(j));
      }
    }

    if (tracing) {
      tr.emit(obs::EventKind::kSlotBegin,
              static_cast<double>(view.pending.size()));
    }

    // 2. Policy decision.
    const SlotDecision decision = policy.decide(view);

    // 3. Apply activations.
    for (auto& st : states) st.active_this_slot = false;
    for (const SlotDecision::Activation& act : decision.active) {
      if (act.request_index < 0 ||
          act.request_index >= static_cast<int>(requests.size())) {
        throw std::out_of_range("OnlineSimulator: activation out of range");
      }
      const auto j = static_cast<std::size_t>(act.request_index);
      RequestState& st = states[j];
      const mec::ARRequest& req = requests[j];
      if (req.arrival_slot > t || st.phase == Phase::kCompleted ||
          st.phase == Phase::kDropped) {
        continue;  // stale activation; ignore
      }
      if (st.phase == Phase::kWaiting) {
        if (act.station < 0 || act.station >= topo_.num_stations()) {
          throw std::out_of_range("OnlineSimulator: bad placement station");
        }
        if (up[static_cast<std::size_t>(act.station)] == 0) {
          continue;  // placed onto a failed station; refuse
        }
        const double wait_ms = (t - req.arrival_slot) * params_.slot_ms;
        const double lat =
            wait_ms + mec::placement_latency_ms(*active, req, act.station);
        if (lat > req.latency_budget_ms) {
          util::log_debug() << "policy " << policy.name()
                            << " placed request " << req.id
                            << " beyond its latency budget; ignoring";
          continue;
        }
        const std::size_t level = realized_[j];
        st.phase = Phase::kServed;
        om.sim_admissions.add();
        if (tracing) {
          tr.emit(obs::EventKind::kAdmission, static_cast<double>(j),
                  act.station);
        }
        st.station = act.station;
        st.first_service_slot = t;
        st.realized_level = level;
        st.demand_mhz = req.demand.level(level).rate * params_.alg.c_unit;
        st.work_total = st.demand_mhz * req.duration_slots;
        st.work_done = 0.0;
        st.latency_ms = lat;
      } else if (st.station < 0) {
        // Displaced stream: the activation re-places it (progress kept).
        if (act.station < 0 || act.station >= topo_.num_stations()) {
          throw std::out_of_range("OnlineSimulator: bad re-placement station");
        }
        if (up[static_cast<std::size_t>(act.station)] == 0) continue;
        if (chaos && !std::isfinite(active->transmission_delay_ms(
                         req.home_station, act.station))) {
          continue;  // re-placed across a partition; refuse
        }
        st.station = act.station;
        if (displaced_at[j] >= 0) {
          ++metrics.resilience.recovered;
          recovery_slots_total += t - displaced_at[j];
          displaced_at[j] = -1;
        }
      }
      st.active_this_slot = true;
    }

    // Preemptions: placed streams the policy served last slot but left
    // idle this slot (displacements already zeroed their station above).
    for (std::size_t j = 0; j < states.size(); ++j) {
      const RequestState& st = states[j];
      if (was_active[j] != 0 && !st.active_this_slot &&
          st.phase == Phase::kServed && st.station >= 0) {
        om.sim_preemptions.add();
        if (tracing) {
          tr.emit(obs::EventKind::kPreemption, static_cast<double>(j),
                  st.station);
        }
      }
    }

    // 4. Per-station max-min fair allocation among active streams.
    std::vector<std::vector<std::size_t>> residents(
        static_cast<std::size_t>(topo_.num_stations()));
    for (std::size_t j = 0; j < states.size(); ++j) {
      if (states[j].active_this_slot && states[j].phase == Phase::kServed &&
          states[j].station >= 0) {
        residents[static_cast<std::size_t>(states[j].station)].push_back(j);
      }
    }
    double slot_reward = 0.0;
    double slot_allocated = 0.0;
    for (int bs = 0; bs < topo_.num_stations(); ++bs) {
      const auto& ids = residents[static_cast<std::size_t>(bs)];
      if (ids.empty()) continue;
      std::vector<double> demands;
      demands.reserve(ids.size());
      for (std::size_t j : ids) {
        demands.push_back(
            std::min(states[j].demand_mhz,
                     states[j].work_total - states[j].work_done));
      }
      // Capacity comes from the effective topology: a brownout shrinks the
      // pool every resident stream water-fills from.
      const auto alloc =
          waterfill(active->station(bs).capacity_mhz, demands);
      for (std::size_t k = 0; k < ids.size(); ++k) {
        RequestState& st = states[ids[k]];
        st.work_done += alloc[k];
        slot_allocated += alloc[k];
        if (st.work_done >= st.work_total - 1e-9) {
          st.phase = Phase::kCompleted;
          om.sim_completions.add();
          st.reward = requests[ids[k]].demand.level(st.realized_level).reward;
          slot_reward += st.reward;
          if (params_.collect_detail) {
            metrics.completed_latencies_ms.push_back(st.latency_ms);
          }
        }
      }
    }
    metrics.per_slot_reward[static_cast<std::size_t>(t)] = slot_reward;
    metrics.total_reward += slot_reward;
    om.sim_slot_reward.observe(slot_reward);
    int active_streams = 0;
    for (std::size_t j = 0; j < states.size(); ++j) {
      const RequestState& st = states[j];
      const bool active_now =
          st.active_this_slot && st.phase == Phase::kServed;
      active_streams += active_now ? 1 : 0;
      was_active[j] = active_now ? 1 : 0;
    }
    if (tracing) {
      tr.emit(obs::EventKind::kSlotEnd, slot_reward, active_streams);
    }
    if (params_.collect_detail) {
      metrics.per_slot_utilization.push_back(
          slot_allocated / topo_.total_capacity_mhz());
    }

    // 5. Policy feedback.
    SlotFeedback fb;
    fb.slot = t;
    fb.completed_reward = slot_reward;
    fb.dropped_expected_reward = dropped_expected;
    policy.feedback(fb);
    om.sim_slot_wall_ms.observe(slot_timer.elapsed_ms());
  }

  // Final accounting.
  double latency_total = 0.0;
  for (std::size_t j = 0; j < requests.size(); ++j) {
    if (requests[j].arrival_slot >= params_.horizon_slots) continue;
    if (params_.collect_detail && states[j].work_total > 0.0) {
      metrics.service_ratios.push_back(states[j].work_done /
                                       states[j].work_total);
    }
    switch (states[j].phase) {
      case Phase::kCompleted:
        ++metrics.completed;
        latency_total += states[j].latency_ms;
        break;
      case Phase::kDropped:
        ++metrics.dropped;
        break;
      case Phase::kWaiting:
        ++metrics.dropped;  // never scheduled within the horizon
        account_drop(j);
        om.sim_drops.add();
        break;
      case Phase::kServed:
        ++metrics.unfinished;
        if (states[j].station < 0) ++metrics.resilience.unrecovered;
        break;
    }
  }
  if (metrics.completed > 0) {
    metrics.avg_latency_ms = latency_total / metrics.completed;
  }
  if (metrics.resilience.recovered > 0) {
    metrics.resilience.mean_recovery_slots =
        recovery_slots_total / metrics.resilience.recovered;
  }
  if (overlay) metrics.resilience.fault_epochs = overlay->epochs();
  if (tracing && epoch_index >= 0) {
    tr.emit(obs::EventKind::kFaultEpochEnd, epoch_index,
            params_.horizon_slots - epoch_begin_slot);
  }
  return metrics;
}

}  // namespace mecar::sim
