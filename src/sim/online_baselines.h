// Online versions of the comparison algorithms (section VI-A: "these
// benchmarks are implemented as offline and online versions").
//
// All three are NON-preemptive reservation schedulers: an admitted stream
// keeps its reservation until completion. They differ in ordering,
// placement rule, and — crucially — in the rate estimate used for
// admission (peak for Greedy/OCORP, mean for HeuKKT), mirroring their
// offline counterparts.
#pragma once

#include <vector>

#include "sim/online_sim.h"

namespace mecar::sim {

/// Greedy [32] online: per slot, unscheduled requests in decreasing
/// execution-time order; placement = minimum-latency local station whose
/// peak-rate reservation fits.
class GreedyOnlinePolicy final : public OnlinePolicy {
 public:
  GreedyOnlinePolicy(const mec::Topology& topo, core::AlgorithmParams alg);
  SlotDecision decide(const SlotView& view) override;
  std::string name() const override { return "Greedy"; }

 private:
  const mec::Topology& topo_;
  core::AlgorithmParams alg_;
};

/// OCORP [20] online: per slot, unfinished jobs in (arrival, remaining
/// data) order; placement = best-fit (smallest fitting residual) among the
/// nearest local stations, peak-rate reservations.
class OcorpOnlinePolicy final : public OnlinePolicy {
 public:
  OcorpOnlinePolicy(const mec::Topology& topo, core::AlgorithmParams alg);
  SlotDecision decide(const SlotView& view) override;
  std::string name() const override { return "OCORP"; }

 private:
  const mec::Topology& topo_;
  core::AlgorithmParams alg_;
};

/// HeuKKT [21] online: per slot, KKT water-filling at the home station with
/// mean-rate commitments; overflow to the globally most-spare feasible
/// station, else the request keeps waiting (remote cloud yields no edge
/// reward).
class HeuKktOnlinePolicy final : public OnlinePolicy {
 public:
  HeuKktOnlinePolicy(const mec::Topology& topo, core::AlgorithmParams alg);
  SlotDecision decide(const SlotView& view) override;
  std::string name() const override { return "HeuKKT"; }

 private:
  const mec::Topology& topo_;
  core::AlgorithmParams alg_;
};

}  // namespace mecar::sim
