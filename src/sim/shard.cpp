#include "sim/shard.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/catalog.h"
#include "obs/event_trace.h"
#include "sim/checkpoint.h"
#include "util/log.h"
#include "util/parallel.h"
#include "util/parse.h"
#include "util/snapshot.h"
#include "util/timer.h"

namespace mecar::sim {

namespace {

/// A cursor into one shard's sorted int list.
struct Span {
  const int* it = nullptr;
  const int* end = nullptr;
};

/// K-way merge of ascending spans into `out` (appended). Request indices
/// are globally unique across shards, so ties cannot occur and the merge
/// order is fully determined — this is what makes every cross-shard
/// reduction reproduce the legacy loop's ascending-j scan order. `heap` is
/// caller-provided scratch so steady-state slots reuse its capacity.
void merge_ascending(std::vector<Span>& spans,
                     std::vector<std::pair<int, std::size_t>>& heap,
                     std::vector<int>& out) {
  heap.clear();
  for (std::size_t s = 0; s < spans.size(); ++s) {
    if (spans[s].it != spans[s].end) heap.emplace_back(*spans[s].it++, s);
  }
  std::make_heap(heap.begin(), heap.end(), std::greater<>());
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>());
    const auto [value, s] = heap.back();
    heap.pop_back();
    out.push_back(value);
    if (spans[s].it != spans[s].end) {
      heap.emplace_back(*spans[s].it++, s);
      std::push_heap(heap.begin(), heap.end(), std::greater<>());
    }
  }
}

/// Removes the (sorted, unique) indices in `gone` from sorted `list`.
void remove_sorted(std::vector<int>& list, const std::vector<int>& gone) {
  if (gone.empty()) return;
  auto out = list.begin();
  auto g = gone.begin();
  for (auto it = list.begin(); it != list.end(); ++it) {
    while (g != gone.end() && *g < *it) ++g;
    if (g != gone.end() && *g == *it) continue;
    *out++ = *it;
  }
  list.erase(out, list.end());
}

/// Merges the (sorted, unique) indices in `add` into sorted `list`.
void insert_sorted(std::vector<int>& list, const std::vector<int>& add) {
  if (add.empty()) return;
  const auto old_size = static_cast<std::ptrdiff_t>(list.size());
  list.insert(list.end(), add.begin(), add.end());
  std::inplace_merge(list.begin(), list.begin() + old_size, list.end());
}

/// Moves one index between two sorted lists (mobility re-homing).
void move_sorted(std::vector<int>& from, std::vector<int>& to, int j) {
  from.erase(std::lower_bound(from.begin(), from.end(), j));
  to.insert(std::lower_bound(to.begin(), to.end(), j), j);
}

}  // namespace

int resolve_num_shards(const OnlineParams& params, int num_stations) {
  int n = params.num_shards;
  if (n < 0) return 0;
  if (n == 0) {
    const char* env = std::getenv("MECAR_SHARDS");
    if (env == nullptr || *env == '\0') return 0;
    const auto parsed = util::parse_int(std::string(env));
    if (!parsed || *parsed <= 0) return 0;
    n = static_cast<int>(std::min<std::int64_t>(*parsed, 1 << 20));
  }
  return std::min(n, std::max(1, num_stations));
}

struct ShardEngine::SlotScratch {
  /// kWaiting survivors of this slot's drop check, ascending.
  util::ArenaVector<int> survivors;
  /// Requests dropped this slot (phase already flipped), ascending.
  util::ArenaVector<int> drops;
  /// This shard's slice of the policy's pending list, ascending.
  util::ArenaVector<int> pending;
  /// Streams displaced this slot, encoded (j << 1) | station_down so the
  /// cross-shard merge carries the outage/partition cause with the index.
  util::ArenaVector<int> displaced;

  explicit SlotScratch(util::Arena& arena)
      : survivors(util::ArenaAllocator<int>(arena)),
        drops(util::ArenaAllocator<int>(arena)),
        pending(util::ArenaAllocator<int>(arena)),
        displaced(util::ArenaAllocator<int>(arena)) {}
};

ShardEngine::ShardEngine(const mec::Topology& topo,
                         const std::vector<mec::ARRequest>& requests,
                         const std::vector<std::size_t>& realized,
                         const OnlineParams& params,
                         const std::vector<double>& min_latency_ms,
                         int num_shards)
    : topo_(topo),
      requests_(requests),
      realized_(realized),
      params_(params),
      min_latency_(min_latency_ms) {
  const int num_stations = topo_.num_stations();
  const int count =
      std::min(std::max(num_shards, 1), std::max(1, num_stations));
  for (int i = 0; i < count; ++i) shards_.emplace_back();
  const int base = num_stations / count;
  const int rem = num_stations % count;
  int start = 0;
  for (int i = 0; i < count; ++i) {
    const int len = base + (i < rem ? 1 : 0);
    shards_[static_cast<std::size_t>(i)].first_station = start;
    shards_[static_cast<std::size_t>(i)].last_station = start + len;
    start += len;
  }
  station_shard_.assign(static_cast<std::size_t>(num_stations), 0);
  for (int i = 0; i < count; ++i) {
    const Shard& sh = shards_[static_cast<std::size_t>(i)];
    for (int s = sh.first_station; s < sh.last_station; ++s) {
      station_shard_[static_cast<std::size_t>(s)] = i;
    }
  }
  // Arrival calendar: one bucket per slot, indices ascending within each
  // bucket (we scan requests in order). Pre-horizon arrivals clamp to slot
  // 0; at-or-post-horizon arrivals are never live and never bucketed.
  arrivals_.assign(static_cast<std::size_t>(params_.horizon_slots), {});
  for (std::size_t j = 0; j < requests_.size(); ++j) {
    const int a = requests_[j].arrival_slot;
    if (a >= params_.horizon_slots) continue;
    arrivals_[static_cast<std::size_t>(std::max(a, 0))].push_back(
        static_cast<int>(j));
  }
}

int ShardEngine::shard_of_station(int station) const noexcept {
  return station_shard_[static_cast<std::size_t>(station)];
}

OnlineMetrics ShardEngine::run(OnlinePolicy& policy, SlotHook* hook,
                               const SimSnapshot* resume) {
  const double kInf = std::numeric_limits<double>::infinity();
  const int num_stations = topo_.num_stations();
  const int shard_count = num_shards();
  const std::size_t num_requests = requests_.size();

  // Fault machinery — identical to the legacy loop (online_sim.cpp).
  FaultPlan plan = params_.faults;
  plan.station_outages.insert(plan.station_outages.end(),
                              params_.outages.begin(),
                              params_.outages.end());
  const bool chaos = !plan.empty();
  if (chaos) plan.validate(topo_);
  std::optional<mec::TopologyOverlay> overlay;
  if (chaos) overlay.emplace(topo_);
  const mec::Topology* active = &topo_;

  std::vector<RequestState> states(num_requests);
  OnlineMetrics metrics;
  metrics.per_slot_reward.assign(
      static_cast<std::size_t>(params_.horizon_slots), 0.0);

  const obs::Metrics& om = obs::metrics();
  obs::EventTrace& tr = obs::trace();
  const bool tracing = tr.enabled();
  if (tracing) tr.begin_run(policy.name(), params_.slot_ms);
  om.sim_shards.set(static_cast<double>(shard_count));

  int epoch_index = -1;
  int epoch_begin_slot = 0;

  // Fault attribution state. eff_min is maintained LAZILY: instead of the
  // legacy whole-table rebuild on every epoch switch, a request's value is
  // recomputed on first use inside an epoch (eff_stamp tracks the epoch it
  // was computed in). eff_min_of is a pure function of the epoch's up-set
  // and effective topology, so the values read are identical.
  std::vector<double> eff_min = min_latency_;
  std::vector<long long> eff_stamp(num_requests, -1);
  long long eff_epoch = 0;
  std::vector<int> fault_blocked(num_requests, 0);
  std::vector<char> cut_off(num_requests, 0);
  std::vector<int> displaced_at(num_requests, -1);
  double recovery_slots_total = 0.0;
  std::vector<char> up(static_cast<std::size_t>(num_stations), 1);
  std::vector<char> prev_up;

  const auto eff_min_of = [&](const mec::ARRequest& req) {
    double best = kInf;
    for (int bs = 0; bs < topo_.num_stations(); ++bs) {
      if (up[static_cast<std::size_t>(bs)] == 0) continue;
      best = std::min(best, mec::placement_latency_ms(*active, req, bs));
    }
    return best;
  };
  const auto drop_cause_of = [&](std::size_t j) {
    if (!chaos) return DropCause::kStarvation;
    if (cut_off[j] != 0) return DropCause::kPartition;
    if (fault_blocked[j] > 0) return DropCause::kFault;
    return DropCause::kStarvation;
  };
  const auto account_drop = [&](std::size_t j) {
    const DropCause cause = drop_cause_of(j);
    states[j].drop_cause = cause;
    switch (cause) {
      case DropCause::kStarvation:
        ++metrics.resilience.dropped_starvation;
        break;
      case DropCause::kFault:
        ++metrics.resilience.dropped_fault;
        break;
      case DropCause::kPartition:
        ++metrics.resilience.dropped_partition;
        break;
      case DropCause::kNone:
        break;
    }
    if (cause == DropCause::kFault || cause == DropCause::kPartition) {
      metrics.resilience.fault_dropped_expected_reward +=
          requests_[j].demand.expected_reward();
    }
  };

  // Sharded-loop scratch, reused across slots so steady state allocates
  // only from the per-shard arenas.
  const auto sc = static_cast<std::size_t>(shard_count);
  std::vector<std::optional<SlotScratch>> scratch(sc);
  std::vector<double> resident_demand(static_cast<std::size_t>(num_stations),
                                      0.0);
  std::vector<int> prev_active;  // active && kServed after last slot, asc
  std::vector<int> last_flags;   // states with active_this_slot set, asc
  std::vector<int> flags;
  std::vector<int> pending_buf;
  std::vector<int> merge_buf;
  std::vector<Span> span_buf;
  std::vector<std::pair<int, std::size_t>> heap_buf;
  std::vector<std::vector<int>> buf_disp_add(sc), buf_disp_rem(sc);
  std::vector<std::vector<int>> buf_wait_rem(sc), buf_srv_add(sc);
  std::vector<std::vector<int>> buf_repl_rem(sc), buf_done(sc);
  std::vector<std::pair<int, int>> res_pairs;  // (station, j), sorted
  std::vector<double> res_demand, res_alloc;

  // Checkpoint restore. The snapshot holds only canonical per-request /
  // per-station state; every sharded acceleration structure (ownership
  // lists, activation flags, lazy eff_min stamps) is re-derived from it,
  // which is what makes snapshots portable across engines and shard
  // counts.
  int start_slot = 0;
  if (resume != nullptr) {
    if (resume->states.size() != num_requests) {
      throw std::invalid_argument(
          "OnlineSimulator: resume snapshot request-count mismatch");
    }
    start_slot = resume->next_slot;
    for (std::size_t j = 0; j < num_requests; ++j) {
      requests_[j].home_station = resume->home_station[j];
      double best = kInf;
      for (int bs = 0; bs < topo_.num_stations(); ++bs) {
        best =
            std::min(best, mec::placement_latency_ms(topo_, requests_[j], bs));
      }
      min_latency_[j] = best;
    }
    states = resume->states;
    metrics = resume->metrics;
    fault_blocked = resume->fault_blocked;
    cut_off = resume->cut_off;
    displaced_at = resume->displaced_at;
    recovery_slots_total = resume->recovery_slots_total;
    up = resume->up;
    prev_up = resume->prev_up;
    epoch_index = resume->epoch_index;
    epoch_begin_slot = resume->epoch_begin_slot;
    // Ownership lists: an ascending-j scan keeps every per-shard list
    // sorted. A kWaiting request is in a waiting list iff a pre-resume
    // slot already routed its arrival (routing happens at slot
    // max(arrival_slot, 0); this slot's arrivals route inside the loop).
    for (std::size_t j = 0; j < num_requests; ++j) {
      const mec::ARRequest& req = requests_[j];
      const RequestState& st = states[j];
      if (st.active_this_slot) {
        last_flags.push_back(static_cast<int>(j));
        if (st.phase == Phase::kServed) {
          prev_active.push_back(static_cast<int>(j));
        }
      }
      if (st.phase == Phase::kWaiting &&
          req.arrival_slot < params_.horizon_slots &&
          std::max(req.arrival_slot, 0) < start_slot) {
        shards_[static_cast<std::size_t>(shard_of_station(req.home_station))]
            .waiting.push_back(static_cast<int>(j));
      } else if (st.phase == Phase::kServed && st.station >= 0) {
        shards_[static_cast<std::size_t>(shard_of_station(st.station))]
            .served.push_back(static_cast<int>(j));
      } else if (st.phase == Phase::kServed && st.station < 0) {
        shards_[static_cast<std::size_t>(shard_of_station(req.home_station))]
            .displaced.push_back(static_cast<int>(j));
      }
    }
    // eff_min stays lazy: all stamps are -1, so first use inside the
    // resumed run recomputes against the then-active epoch.
    if (chaos && start_slot > 0) {
      // Prime the overlay with the pre-resume slot's perturbation so the
      // resumed slot's apply() sees the same epoch boundary (or absence of
      // one) the uninterrupted run saw, then stamp the recorded epoch
      // count so fault_epochs reporting matches bit-for-bit.
      overlay->apply(plan.snapshot(topo_, start_slot - 1).perturbation);
      overlay->set_epochs(resume->overlay_epochs);
      active = &overlay->effective();
    }
    util::SnapshotReader pr =
        util::SnapshotReader::unframed(resume->policy_state);
    policy.load_state(pr);
  }

  for (int t = start_slot; t < params_.horizon_slots; ++t) {
    if (hook != nullptr && hook->want_snapshot(t)) {
      SimSnapshot snap;
      snap.next_slot = t;
      snap.home_station.reserve(num_requests);
      for (const mec::ARRequest& req : requests_) {
        snap.home_station.push_back(req.home_station);
      }
      snap.states = states;
      snap.metrics = metrics;
      snap.fault_blocked = fault_blocked;
      snap.cut_off = cut_off;
      snap.displaced_at = displaced_at;
      snap.recovery_slots_total = recovery_slots_total;
      snap.up = up;
      snap.prev_up = prev_up;
      snap.overlay_epochs = overlay ? overlay->epochs() : 0;
      snap.epoch_index = epoch_index;
      snap.epoch_begin_slot = epoch_begin_slot;
      util::SnapshotWriter pw;
      policy.save_state(pw);
      snap.policy_state = pw.payload();
      hook->on_snapshot(t, std::move(snap));
    }
    crash_point(t, plan.crash_at(t));
    const util::Timer slot_timer;
    om.sim_slots.add();
    if (tracing) tr.set_slot(t);

    // Per-slot scratch: arenas reset (capacity kept), shard slices rebuilt.
    for (std::size_t s = 0; s < sc; ++s) {
      scratch[s].reset();
      shards_[s].arena.reset();
      scratch[s].emplace(shards_[s].arena);
      shards_[s].incoming.clear();
    }

    // Mobility (serial; legacy order). Re-homing moves the request between
    // the old and new home shard's ownership list when it is waiting or
    // displaced; placed streams stay owned by their serving shard.
    for (const MobilityEvent& move : params_.mobility) {
      if (move.slot != t) continue;
      if (move.request_index < 0 ||
          move.request_index >= static_cast<int>(num_requests) ||
          move.new_home < 0 || move.new_home >= topo_.num_stations()) {
        throw std::out_of_range("OnlineSimulator: bad mobility event");
      }
      const auto j = static_cast<std::size_t>(move.request_index);
      auto& req = requests_[j];
      if (req.home_station == move.new_home) continue;
      const int old_shard = shard_of_station(req.home_station);
      const int new_shard = shard_of_station(move.new_home);
      if (old_shard != new_shard) {
        RequestState& st = states[j];
        // In a waiting list iff already routed: arrivals route at slot
        // max(arrival_slot, 0), and mobility precedes routing in a slot.
        const bool routed = req.arrival_slot < params_.horizon_slots &&
                            std::max(req.arrival_slot, 0) < t;
        const auto si = static_cast<std::size_t>(old_shard);
        const auto di = static_cast<std::size_t>(new_shard);
        if (st.phase == Phase::kWaiting && routed) {
          move_sorted(shards_[si].waiting, shards_[di].waiting,
                      move.request_index);
        } else if (st.phase == Phase::kServed && st.station < 0) {
          move_sorted(shards_[si].displaced, shards_[di].displaced,
                      move.request_index);
        }
      }
      req.home_station = move.new_home;
      ++metrics.handovers;
      om.sim_handovers.add();
      double best = std::numeric_limits<double>::infinity();
      for (int bs = 0; bs < topo_.num_stations(); ++bs) {
        best = std::min(best, mec::placement_latency_ms(topo_, req, bs));
      }
      min_latency_[j] = best;
      if (chaos) {
        eff_min[j] = eff_min_of(req);
        eff_stamp[j] = eff_epoch;
      }
    }

    // 0. Fault bookkeeping (serial) + displacement of dead placements.
    int slot_lp_budget = 0;
    bool slot_lp_fault = false;
    if (chaos) {
      FaultSnapshot snap = plan.snapshot(topo_, t);
      up = std::move(snap.station_up);
      slot_lp_budget = snap.solver_max_pivots;
      slot_lp_fault = snap.solver_jam;
      const bool rebuilt = overlay->apply(snap.perturbation);
      active = &overlay->effective();
      if (rebuilt || up != prev_up) {
        // New fault epoch: invalidate every eff_min by bumping the epoch
        // stamp (values recompute lazily on first use).
        ++eff_epoch;
        om.sim_fault_epochs.add();
        if (tracing) {
          if (epoch_index >= 0) {
            tr.emit(obs::EventKind::kFaultEpochEnd, epoch_index,
                    t - epoch_begin_slot);
          }
          ++epoch_index;
          epoch_begin_slot = t;
          int stations_up = 0;
          for (char u : up) stations_up += u;
          tr.emit(obs::EventKind::kFaultEpochBegin, epoch_index,
                  stations_up);
        }
      }
      prev_up = up;

      // Parallel detect over each shard's placed streams; the per-shard
      // hit lists are ascending by construction.
      util::parallel_for(sc, [&](std::size_t s) {
        Shard& sh = shards_[s];
        SlotScratch& scr = *scratch[s];
        for (int j : sh.served) {
          const RequestState& st = states[static_cast<std::size_t>(j)];
          const bool station_down =
              up[static_cast<std::size_t>(st.station)] == 0;
          const bool unreachable = !std::isfinite(active->transmission_delay_ms(
              requests_[static_cast<std::size_t>(j)].home_station,
              st.station));
          if (!station_down && !unreachable) continue;
          scr.displaced.push_back((j << 1) | (station_down ? 1 : 0));
        }
      });
      // Serial apply in global ascending-j order (legacy scan order).
      span_buf.clear();
      for (std::size_t s = 0; s < sc; ++s) {
        const auto& d = scratch[s]->displaced;
        span_buf.push_back({d.data(), d.data() + d.size()});
      }
      merge_buf.clear();
      merge_ascending(span_buf, heap_buf, merge_buf);
      for (std::size_t s = 0; s < sc; ++s) {
        buf_disp_add[s].clear();
        buf_disp_rem[s].clear();
      }
      for (const int enc : merge_buf) {
        const int ji = enc >> 1;
        const bool station_down = (enc & 1) != 0;
        const auto j = static_cast<std::size_t>(ji);
        RequestState& st = states[j];
        buf_disp_rem[static_cast<std::size_t>(shard_of_station(st.station))]
            .push_back(ji);
        st.station = -1;  // displaced; policy must re-place
        ++metrics.displaced;
        om.sim_displacements.add();
        if (tracing) {
          tr.emit(obs::EventKind::kDisplacement, static_cast<double>(j),
                  station_down ? 0.0 : 1.0);
        }
        if (station_down) {
          ++metrics.resilience.displaced_outage;
        } else {
          ++metrics.resilience.displaced_partition;
        }
        if (displaced_at[j] < 0) displaced_at[j] = t;
        buf_disp_add[static_cast<std::size_t>(
                         shard_of_station(requests_[j].home_station))]
            .push_back(ji);
      }
      for (std::size_t s = 0; s < sc; ++s) {
        remove_sorted(shards_[s].served, buf_disp_rem[s]);
        insert_sorted(shards_[s].displaced, buf_disp_add[s]);
      }
    }

    // Route this slot's arrivals to their home shards (serial, ascending).
    for (const int ji : arrivals_[static_cast<std::size_t>(t)]) {
      const auto& req = requests_[static_cast<std::size_t>(ji)];
      if (req.arrival_slot == t) ++metrics.arrived;
      shards_[static_cast<std::size_t>(shard_of_station(req.home_station))]
          .incoming.push_back(ji);
    }

    // 1. Admission pass (parallel): drop checks over waiting + incoming,
    // per-shard pending slice, and the resident-demand precompute for
    // SlotView::resident_demand_mhz. Each shard touches only its own
    // state; fault attribution writes (eff_min, fault_blocked, cut_off)
    // are per-request and owned by exactly one shard.
    util::parallel_for(sc, [&](std::size_t s) {
      Shard& sh = shards_[s];
      SlotScratch& scr = *scratch[s];
      // Resident demand of this shard's stations, ascending-j per station
      // (== legacy full-scan accumulation order per station).
      std::fill(resident_demand.begin() + sh.first_station,
                resident_demand.begin() + sh.last_station, 0.0);
      for (const int ji : sh.served) {
        const RequestState& st = states[static_cast<std::size_t>(ji)];
        resident_demand[static_cast<std::size_t>(st.station)] +=
            st.demand_mhz;
      }
      // Two-pointer merge of the carried waiting list and this slot's
      // arrivals, ascending j — the same order the legacy full scan visits
      // them in.
      std::size_t wi = 0;
      std::size_t ii = 0;
      const std::size_t wn = sh.waiting.size();
      const std::size_t in = sh.incoming.size();
      scr.survivors.reserve(wn + in);
      while (wi < wn || ii < in) {
        int ji;
        if (wi < wn && (ii >= in || sh.waiting[wi] < sh.incoming[ii])) {
          ji = sh.waiting[wi++];
        } else {
          ji = sh.incoming[ii++];
        }
        const auto j = static_cast<std::size_t>(ji);
        const mec::ARRequest& req = requests_[j];
        RequestState& st = states[j];
        const double wait_ms = (t - req.arrival_slot) * params_.slot_ms;
        // Optimistic drop rule (legacy): only waiting alone kills it.
        if (wait_ms + min_latency_[j] > req.latency_budget_ms) {
          st.phase = Phase::kDropped;
          scr.drops.push_back(ji);
          continue;
        }
        if (chaos) {
          if (eff_stamp[j] != eff_epoch) {
            eff_min[j] = eff_min_of(req);
            eff_stamp[j] = eff_epoch;
          }
          if (wait_ms + eff_min[j] > req.latency_budget_ms) {
            ++fault_blocked[j];
            if (!std::isfinite(eff_min[j])) cut_off[j] = 1;
          }
        }
        scr.survivors.push_back(ji);
      }
      // Pending slice = survivors ∪ served ∪ displaced, ascending (3-way).
      scr.pending.reserve(scr.survivors.size() + sh.served.size() +
                          sh.displaced.size());
      std::size_t ai = 0;
      std::size_t bi = 0;
      std::size_t ci = 0;
      const std::size_t an = scr.survivors.size();
      const std::size_t bn = sh.served.size();
      const std::size_t cn = sh.displaced.size();
      while (ai < an || bi < bn || ci < cn) {
        int best = std::numeric_limits<int>::max();
        if (ai < an) best = std::min(best, scr.survivors[ai]);
        if (bi < bn) best = std::min(best, sh.served[bi]);
        if (ci < cn) best = std::min(best, sh.displaced[ci]);
        if (ai < an && scr.survivors[ai] == best) {
          ++ai;
        } else if (bi < bn && sh.served[bi] == best) {
          ++bi;
        } else {
          ++ci;
        }
        scr.pending.push_back(best);
      }
      // Persist the surviving waiting set.
      sh.waiting.assign(scr.survivors.begin(), scr.survivors.end());
    });

    // Drop accounting (serial, global ascending-j = legacy FP order).
    double dropped_expected = 0.0;
    span_buf.clear();
    for (std::size_t s = 0; s < sc; ++s) {
      const auto& d = scratch[s]->drops;
      span_buf.push_back({d.data(), d.data() + d.size()});
    }
    merge_buf.clear();
    merge_ascending(span_buf, heap_buf, merge_buf);
    for (const int ji : merge_buf) {
      const auto j = static_cast<std::size_t>(ji);
      dropped_expected += requests_[j].demand.expected_reward();
      account_drop(j);
      om.sim_drops.add();
    }

    // Global pending list (serial k-way merge, ascending j).
    SlotView view;
    view.slot = t;
    view.slot_ms = params_.slot_ms;
    view.station_up = up;
    view.lp_pivot_budget = slot_lp_budget;
    view.lp_fault = slot_lp_fault;
    view.topo = active;
    view.requests = &requests_;
    view.states = &states;
    view.resident_demand = &resident_demand;
    span_buf.clear();
    for (std::size_t s = 0; s < sc; ++s) {
      const auto& p = scratch[s]->pending;
      span_buf.push_back({p.data(), p.data() + p.size()});
    }
    pending_buf.clear();
    merge_ascending(span_buf, heap_buf, pending_buf);
    view.pending = std::move(pending_buf);

    if (tracing) {
      tr.emit(obs::EventKind::kSlotBegin,
              static_cast<double>(view.pending.size()));
    }

    // 2. Policy decision.
    const SlotDecision decision = policy.decide(view);
    pending_buf = std::move(view.pending);

    // 3. Apply activations (serial; decision order, legacy semantics).
    // active_this_slot resets lazily: only last slot's set flags clear.
    for (const int ji : last_flags) {
      states[static_cast<std::size_t>(ji)].active_this_slot = false;
    }
    flags.clear();
    for (std::size_t s = 0; s < sc; ++s) {
      buf_wait_rem[s].clear();
      buf_srv_add[s].clear();
      buf_repl_rem[s].clear();
    }
    for (const SlotDecision::Activation& act : decision.active) {
      if (act.request_index < 0 ||
          act.request_index >= static_cast<int>(num_requests)) {
        throw std::out_of_range("OnlineSimulator: activation out of range");
      }
      const auto j = static_cast<std::size_t>(act.request_index);
      RequestState& st = states[j];
      const mec::ARRequest& req = requests_[j];
      if (req.arrival_slot > t || st.phase == Phase::kCompleted ||
          st.phase == Phase::kDropped) {
        continue;  // stale activation; ignore
      }
      if (st.phase == Phase::kWaiting) {
        if (act.station < 0 || act.station >= topo_.num_stations()) {
          throw std::out_of_range("OnlineSimulator: bad placement station");
        }
        if (up[static_cast<std::size_t>(act.station)] == 0) {
          continue;  // placed onto a failed station; refuse
        }
        const double wait_ms = (t - req.arrival_slot) * params_.slot_ms;
        const double lat =
            wait_ms + mec::placement_latency_ms(*active, req, act.station);
        if (lat > req.latency_budget_ms) {
          util::log_debug() << "policy " << policy.name()
                            << " placed request " << req.id
                            << " beyond its latency budget; ignoring";
          continue;
        }
        const std::size_t level = realized_[j];
        st.phase = Phase::kServed;
        om.sim_admissions.add();
        if (tracing) {
          tr.emit(obs::EventKind::kAdmission, static_cast<double>(j),
                  act.station);
        }
        // Ownership: leaves the home shard's waiting list, enters the
        // serving shard's served list (applied after this loop).
        buf_wait_rem[static_cast<std::size_t>(
                         shard_of_station(req.home_station))]
            .push_back(act.request_index);
        buf_srv_add[static_cast<std::size_t>(shard_of_station(act.station))]
            .push_back(act.request_index);
        st.station = act.station;
        st.first_service_slot = t;
        st.realized_level = level;
        st.demand_mhz = req.demand.level(level).rate * params_.alg.c_unit;
        st.work_total = st.demand_mhz * req.duration_slots;
        st.work_done = 0.0;
        st.latency_ms = lat;
      } else if (st.station < 0) {
        // Displaced stream: the activation re-places it (progress kept).
        if (act.station < 0 || act.station >= topo_.num_stations()) {
          throw std::out_of_range("OnlineSimulator: bad re-placement station");
        }
        if (up[static_cast<std::size_t>(act.station)] == 0) continue;
        if (chaos && !std::isfinite(active->transmission_delay_ms(
                         req.home_station, act.station))) {
          continue;  // re-placed across a partition; refuse
        }
        buf_repl_rem[static_cast<std::size_t>(
                         shard_of_station(req.home_station))]
            .push_back(act.request_index);
        buf_srv_add[static_cast<std::size_t>(shard_of_station(act.station))]
            .push_back(act.request_index);
        st.station = act.station;
        if (displaced_at[j] >= 0) {
          ++metrics.resilience.recovered;
          recovery_slots_total += t - displaced_at[j];
          displaced_at[j] = -1;
        }
      }
      st.active_this_slot = true;
      flags.push_back(act.request_index);
    }
    std::sort(flags.begin(), flags.end());
    flags.erase(std::unique(flags.begin(), flags.end()), flags.end());
    last_flags = flags;
    for (std::size_t s = 0; s < sc; ++s) {
      std::sort(buf_wait_rem[s].begin(), buf_wait_rem[s].end());
      std::sort(buf_repl_rem[s].begin(), buf_repl_rem[s].end());
      std::sort(buf_srv_add[s].begin(), buf_srv_add[s].end());
      remove_sorted(shards_[s].waiting, buf_wait_rem[s]);
      remove_sorted(shards_[s].displaced, buf_repl_rem[s]);
      insert_sorted(shards_[s].served, buf_srv_add[s]);
    }

    // Preemptions: placed streams the policy served last slot but left
    // idle this slot (prev_active is last slot's active set, ascending).
    for (const int ji : prev_active) {
      const RequestState& st = states[static_cast<std::size_t>(ji)];
      if (!st.active_this_slot && st.phase == Phase::kServed &&
          st.station >= 0) {
        om.sim_preemptions.add();
        if (tracing) {
          tr.emit(obs::EventKind::kPreemption,
                  static_cast<double>(static_cast<std::size_t>(ji)),
                  st.station);
        }
      }
    }

    // 4. Per-station max-min fair allocation. Residents are exactly this
    // slot's flagged set; sorted by (station, j) it reproduces the legacy
    // per-station ascending-j grouping. The waterfills are independent
    // across stations (each reads only its own residents' demands), so
    // they run shard-parallel; the reward/work reduction applies serially
    // in (station, k) order — the legacy FP accumulation order.
    res_pairs.clear();
    for (const int ji : flags) {
      const RequestState& st = states[static_cast<std::size_t>(ji)];
      if (st.active_this_slot && st.phase == Phase::kServed &&
          st.station >= 0) {
        res_pairs.emplace_back(st.station, ji);
      }
    }
    std::stable_sort(res_pairs.begin(), res_pairs.end(),
                     [](const std::pair<int, int>& a,
                        const std::pair<int, int>& b) {
                       return a.first < b.first;
                     });
    res_demand.resize(res_pairs.size());
    res_alloc.assign(res_pairs.size(), 0.0);
    for (std::size_t k = 0; k < res_pairs.size(); ++k) {
      const RequestState& st =
          states[static_cast<std::size_t>(res_pairs[k].second)];
      res_demand[k] = std::min(st.demand_mhz, st.work_total - st.work_done);
    }
    util::parallel_for(sc, [&](std::size_t s) {
      const Shard& sh = shards_[s];
      const auto lo = std::lower_bound(
          res_pairs.begin(), res_pairs.end(), sh.first_station,
          [](const std::pair<int, int>& p, int bs) { return p.first < bs; });
      const auto hi = std::lower_bound(
          res_pairs.begin(), res_pairs.end(), sh.last_station,
          [](const std::pair<int, int>& p, int bs) { return p.first < bs; });
      std::size_t k = static_cast<std::size_t>(lo - res_pairs.begin());
      const std::size_t end = static_cast<std::size_t>(hi - res_pairs.begin());
      while (k < end) {
        const int bs = res_pairs[k].first;
        std::size_t e = k;
        while (e < end && res_pairs[e].first == bs) ++e;
        const std::vector<double> demands(res_demand.begin() + k,
                                          res_demand.begin() + e);
        const auto alloc =
            waterfill(active->station(bs).capacity_mhz, demands);
        std::copy(alloc.begin(), alloc.end(), res_alloc.begin() + k);
        k = e;
      }
    });
    double slot_reward = 0.0;
    double slot_allocated = 0.0;
    for (std::size_t s = 0; s < sc; ++s) buf_done[s].clear();
    for (std::size_t k = 0; k < res_pairs.size(); ++k) {
      const int ji = res_pairs[k].second;
      const auto j = static_cast<std::size_t>(ji);
      RequestState& st = states[j];
      st.work_done += res_alloc[k];
      slot_allocated += res_alloc[k];
      if (st.work_done >= st.work_total - 1e-9) {
        st.phase = Phase::kCompleted;
        om.sim_completions.add();
        st.reward = requests_[j].demand.level(st.realized_level).reward;
        slot_reward += st.reward;
        if (params_.collect_detail) {
          metrics.completed_latencies_ms.push_back(st.latency_ms);
        }
        buf_done[static_cast<std::size_t>(shard_of_station(res_pairs[k].first))]
            .push_back(ji);
      }
    }
    for (std::size_t s = 0; s < sc; ++s) {
      std::sort(buf_done[s].begin(), buf_done[s].end());
      remove_sorted(shards_[s].served, buf_done[s]);
    }
    metrics.per_slot_reward[static_cast<std::size_t>(t)] = slot_reward;
    metrics.total_reward += slot_reward;
    om.sim_slot_reward.observe(slot_reward);
    int active_streams = 0;
    prev_active.clear();
    for (const int ji : flags) {
      const RequestState& st = states[static_cast<std::size_t>(ji)];
      if (st.active_this_slot && st.phase == Phase::kServed) {
        ++active_streams;
        prev_active.push_back(ji);
      }
    }
    if (tracing) {
      tr.emit(obs::EventKind::kSlotEnd, slot_reward, active_streams);
    }
    if (params_.collect_detail) {
      metrics.per_slot_utilization.push_back(
          slot_allocated / topo_.total_capacity_mhz());
    }

    // 5. Policy feedback.
    SlotFeedback fb;
    fb.slot = t;
    fb.completed_reward = slot_reward;
    fb.dropped_expected_reward = dropped_expected;
    policy.feedback(fb);

    // Shard balance: max live set over mean live set (1.0 = perfectly
    // even or idle). Live = waiting + served + displaced.
    std::size_t total_live = 0;
    std::size_t max_live = 0;
    for (const Shard& sh : shards_) {
      const std::size_t live =
          sh.waiting.size() + sh.served.size() + sh.displaced.size();
      total_live += live;
      max_live = std::max(max_live, live);
    }
    om.sim_shard_imbalance.set(
        total_live == 0
            ? 1.0
            : static_cast<double>(max_live) *
                  static_cast<double>(shard_count) /
                  static_cast<double>(total_live));
    om.sim_slot_wall_ms.observe(slot_timer.elapsed_ms());
  }

  // Final accounting (legacy-verbatim single O(|R|) pass).
  double latency_total = 0.0;
  for (std::size_t j = 0; j < num_requests; ++j) {
    if (requests_[j].arrival_slot >= params_.horizon_slots) continue;
    if (params_.collect_detail && states[j].work_total > 0.0) {
      metrics.service_ratios.push_back(states[j].work_done /
                                       states[j].work_total);
    }
    switch (states[j].phase) {
      case Phase::kCompleted:
        ++metrics.completed;
        latency_total += states[j].latency_ms;
        break;
      case Phase::kDropped:
        ++metrics.dropped;
        break;
      case Phase::kWaiting:
        ++metrics.dropped;  // never scheduled within the horizon
        account_drop(j);
        om.sim_drops.add();
        break;
      case Phase::kServed:
        ++metrics.unfinished;
        if (states[j].station < 0) ++metrics.resilience.unrecovered;
        break;
    }
  }
  if (metrics.completed > 0) {
    metrics.avg_latency_ms = latency_total / metrics.completed;
  }
  if (metrics.resilience.recovered > 0) {
    metrics.resilience.mean_recovery_slots =
        recovery_slots_total / metrics.resilience.recovered;
  }
  if (overlay) metrics.resilience.fault_epochs = overlay->epochs();
  if (tracing && epoch_index >= 0) {
    tr.emit(obs::EventKind::kFaultEpochEnd, epoch_index,
            params_.horizon_slots - epoch_begin_slot);
  }
  return metrics;
}

}  // namespace mecar::sim
