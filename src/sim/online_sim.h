// Slotted-time simulator for the dynamic reward maximization problem
// (section V).
//
// Time is divided into slots of 0.05 s (section VI-A). AR requests arrive
// over the horizon, wait to be scheduled, and — once scheduled — stream for
// their session duration. The data rate of a request realizes at the moment
// it is first scheduled. Scheduling is PREEMPTIVE: a policy may pause a
// resident stream (it keeps its progress and placement) and resume it later.
//
// Work model (DESIGN.md section 3): a request with realized rate rho and
// duration tau holds W = rho * C_unit * tau MHz-slots of work; each slot an
// active request receives a max-min-fair share of its station's capacity,
// capped at its per-slot demand rho * C_unit. The session completes when W
// is exhausted, collecting the realized reward. A request whose waiting
// time alone makes its latency budget unmeetable is dropped (starvation —
// the failure mode DynamicRR's threshold learning avoids).
#pragma once

#include <string>
#include <vector>

#include <cstdint>

#include "core/types.h"
#include "mec/request.h"
#include "mec/topology.h"
#include "sim/fault_plan.h"

namespace mecar::util {
class SnapshotWriter;
class SnapshotReader;
}  // namespace mecar::util

namespace mecar::sim {

/// A user movement: at `slot`, the user of `request_index` re-attaches to
/// `new_home`. Waiting requests see their placement feasibility change; a
/// stream already being served keeps its service instance (the session is
/// anchored) but its user now reaches it across the new attachment point.
struct MobilityEvent {
  int request_index = 0;
  int slot = 0;
  int new_home = 0;
};

/// Simulation parameters (paper defaults).
struct OnlineParams {
  int horizon_slots = 600;
  /// Slot length: 0.05 s (section VI-A).
  double slot_ms = 50.0;
  core::AlgorithmParams alg;
  /// Failure injection (empty = no outages). Kept as the simple legacy
  /// interface; merged into `faults` at run time.
  std::vector<StationOutage> outages;
  /// Full fault scenario: brownouts, link outages/degradations, scripted
  /// or chaos-generated (see sim/fault_plan.h).
  FaultPlan faults;
  /// User mobility (empty = static users).
  std::vector<MobilityEvent> mobility;
  /// Record detailed series (per-slot utilization, latency samples,
  /// service ratios) for sim::summarize.
  bool collect_detail = false;
  /// Slot-loop engine selection (sim/shard.h). The sharded engine
  /// partitions the stations into shards owning their resident streams and
  /// runs the per-slot admission/completion/displacement passes over live
  /// requests only — O(live + changes) per slot instead of the legacy
  /// O(|R|) scans — while producing BIT-IDENTICAL results at any shard
  /// count (every floating-point reduction is merged in the legacy order).
  ///   > 0  run sharded with that many shards (clamped to |BS|);
  ///   = 0  consult the MECAR_SHARDS environment variable (unset, empty or
  ///        <= 0 keeps the legacy loop) — this is the default, and how the
  ///        golden suite re-runs unmodified binaries under sharding;
  ///   < 0  force the legacy loop regardless of the environment.
  int num_shards = 0;
};

/// Lifecycle of a request inside the simulator.
enum class Phase {
  kWaiting,    // arrived, never scheduled
  kServed,     // scheduled at least once (rate realized, placement sticky)
  kCompleted,  // all work done, reward collected
  kDropped,    // deadline unmeetable before first scheduling
};

/// Why a request was dropped (see DESIGN.md "Fault model"). Attribution
/// rule: a drop is fault-caused when the request spent at least one slot in
/// which only the active faults prevented a budget-feasible placement, and
/// partition-caused when it was at some point completely cut off from every
/// live station. Everything else is plain starvation (capacity contention).
enum class DropCause {
  kNone,        // not dropped
  kStarvation,  // contention: the policy never found room in time
  kFault,       // degraded network pushed every placement out of budget
  kPartition,   // no live station reachable at all
};

/// Mutable per-request simulation state (read-only for policies).
struct RequestState {
  Phase phase = Phase::kWaiting;
  int station = -1;             // sticky placement once served
  int first_service_slot = -1;  // b_j
  std::size_t realized_level = 0;
  double demand_mhz = 0.0;      // realized rate * C_unit (per-slot need)
  double work_total = 0.0;      // MHz-slots
  double work_done = 0.0;
  double latency_ms = 0.0;      // waiting + placement latency, set at b_j
  double reward = 0.0;          // collected at completion
  bool active_this_slot = false;
  DropCause drop_cause = DropCause::kNone;
};

/// What a policy observes each slot.
struct SlotView {
  int slot = 0;
  double slot_ms = 50.0;
  const mec::Topology* topo = nullptr;
  const std::vector<mec::ARRequest>* requests = nullptr;
  const std::vector<RequestState>* states = nullptr;
  /// Requests available for scheduling this slot: kWaiting and unfinished
  /// kServed ones (including displaced streams whose station is -1).
  std::vector<int> pending;
  /// Per-station availability this slot (outage injection).
  std::vector<char> station_up;
  /// Active solver-fault injection (sim/fault_plan.h): tightest pivot
  /// budget for the slot LP (0 = unlimited) and whether a numerical jam
  /// is scripted for this slot.
  int lp_pivot_budget = 0;
  bool lp_fault = false;
  /// Per-station demand of resident serving streams, precomputed by the
  /// sharded engine from its per-shard resident lists (null in the legacy
  /// loop, where resident_demand_mhz() derives it by scanning states).
  const std::vector<double>* resident_demand = nullptr;
  /// Waiting time (ms) a request would have accumulated if first scheduled
  /// this slot.
  double waiting_ms(int request_index) const;
  /// Residual capacity if only *resident, currently serving* streams are
  /// counted at their realized demand.
  std::vector<double> resident_demand_mhz() const;
  bool is_up(int station) const {
    return station_up.empty() ||
           station_up[static_cast<std::size_t>(station)] != 0;
  }
};

/// Scheduling decision for one slot: the set of requests that receive
/// resources this slot. For a first-time-scheduled request, `station` is
/// its placement; for resident requests the field is ignored (sticky).
struct SlotDecision {
  struct Activation {
    int request_index = -1;
    int station = -1;
  };
  std::vector<Activation> active;
};

/// End-of-slot observation handed to policies.
struct SlotFeedback {
  int slot = 0;
  /// Reward collected from sessions completing this slot.
  double completed_reward = 0.0;
  /// Expected reward of requests starved past their deadline this slot —
  /// the opportunity cost a learning policy should charge itself.
  double dropped_expected_reward = 0.0;
};

/// Interface implemented by DynamicRR and the online baselines.
class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;
  virtual SlotDecision decide(const SlotView& view) = 0;
  /// Called at the end of each slot.
  virtual void feedback(const SlotFeedback& fb);
  virtual std::string name() const = 0;

  /// Checkpoint support: (de)serializes the policy's mutable state as an
  /// opaque blob inside the engine snapshot. The defaults are no-ops —
  /// correct for the stateless baselines (Greedy, OCORP, HeuKKT);
  /// DynamicRR overrides both. load_state is called on a freshly
  /// constructed policy with the original constructor arguments.
  virtual void save_state(util::SnapshotWriter& w) const;
  virtual void load_state(util::SnapshotReader& r);
};

/// Fault-attributed accounting of one run (all zero when the fault plan is
/// empty, except dropped_starvation which is always maintained).
struct ResilienceReport {
  /// Topology-overlay rebuilds — fault epochs entered, including the
  /// return-to-healthy epoch after a fault clears.
  int fault_epochs = 0;
  /// Stream displacements by cause: the serving station died vs the
  /// backhaul no longer connects the user to its service instance.
  int displaced_outage = 0;
  int displaced_partition = 0;
  /// Displaced streams the policy re-placed, and the mean slots from
  /// displacement to re-placement (0 = same-slot failover).
  int recovered = 0;
  double mean_recovery_slots = 0.0;
  /// Displaced streams still unplaced when the horizon ended.
  int unrecovered = 0;
  /// Drop-cause breakdown (sums to OnlineMetrics::dropped).
  int dropped_starvation = 0;
  int dropped_fault = 0;
  int dropped_partition = 0;
  /// Expected reward of fault- and partition-caused drops — the demand the
  /// faults destroyed outright, independent of any policy choice.
  double fault_dropped_expected_reward = 0.0;
};

/// Aggregate metrics of one simulation run.
struct OnlineMetrics {
  double total_reward = 0.0;
  int arrived = 0;
  int completed = 0;
  int dropped = 0;
  int unfinished = 0;  // still streaming when the horizon ended
  int displaced = 0;   // stream-displacement events (outages + partitions)
  int handovers = 0;   // mobility events applied
  /// Fault-attributed accounting (drop causes, recovery times, epochs).
  ResilienceReport resilience;
  /// Mean experienced latency (waiting + placement) over completed requests.
  double avg_latency_ms = 0.0;
  std::vector<double> per_slot_reward;
  /// Detail series (populated when OnlineParams::collect_detail is set).
  std::vector<double> completed_latencies_ms;
  /// Allocated / total capacity per slot, in [0, 1].
  std::vector<double> per_slot_utilization;
  /// work_done / work_total per request that was ever scheduled.
  std::vector<double> service_ratios;
};

/// The complete canonical state of an online run at the top of one slot —
/// everything the slot loop accumulates that is not a pure function of
/// the inputs. Captured by either engine (legacy or sharded) and restored
/// by either, so a run checkpointed under one engine resumes bit-identical
/// under the other: derived structures (minimum latencies, shard resident
/// lists, effective-topology caches, preemption flags) are reconstructed
/// from these fields at restore. `sim::Checkpoint` (sim/checkpoint.h)
/// owns the byte-level framing.
struct SimSnapshot {
  /// The slot the resumed loop executes first.
  int next_slot = 0;
  /// Per-request home station (mobility mutates the request copy).
  std::vector<int> home_station;
  std::vector<RequestState> states;
  /// Metrics accumulated so far (per_slot_reward is horizon-sized with
  /// zeros beyond next_slot).
  OnlineMetrics metrics;
  /// Fault-attribution state (see the DropCause contract).
  std::vector<int> fault_blocked;
  std::vector<char> cut_off;
  std::vector<int> displaced_at;
  double recovery_slots_total = 0.0;
  /// Station availability of the previous slot (equal at the loop top).
  std::vector<char> up;
  std::vector<char> prev_up;
  /// Overlay epoch counter + trace epoch bookkeeping.
  int overlay_epochs = 0;
  int epoch_index = -1;
  int epoch_begin_slot = 0;
  /// Opaque policy state (OnlinePolicy::save_state payload).
  std::vector<std::uint8_t> policy_state;
};

/// Observer the engines call at the TOP of each slot (before any of the
/// slot's mutations), letting a checkpointing driver capture SimSnapshots
/// at its own cadence without the engines knowing about files or framing.
class SlotHook {
 public:
  virtual ~SlotHook() = default;
  /// Return true to have the engine capture a snapshot at `slot`.
  virtual bool want_snapshot(int slot) = 0;
  /// Receives the captured snapshot (only called after want_snapshot
  /// returned true for `slot`).
  virtual void on_snapshot(int slot, SimSnapshot snapshot) = 0;
};

/// Runs one policy over one workload realization.
class OnlineSimulator {
 public:
  OnlineSimulator(const mec::Topology& topo,
                  std::vector<mec::ARRequest> requests,
                  std::vector<std::size_t> realized, OnlineParams params);

  /// Runs the slot loop. `hook` (optional) observes slot tops for
  /// checkpointing; `resume` (optional) continues from a captured
  /// snapshot instead of slot 0, bit-identically to the uninterrupted
  /// run. Throws std::invalid_argument when the snapshot's request count
  /// does not match this simulator's workload.
  OnlineMetrics run(OnlinePolicy& policy, SlotHook* hook = nullptr,
                    const SimSnapshot* resume = nullptr);

  const OnlineParams& params() const noexcept { return params_; }

 private:
  const mec::Topology& topo_;
  std::vector<mec::ARRequest> requests_;
  std::vector<std::size_t> realized_;
  OnlineParams params_;
  std::vector<double> min_latency_ms_;  // per request, over all stations
};

/// Max-min fair allocation of `capacity` among demands with per-request
/// caps: every demand gets min(cap_i, fair share), water-filling the rest.
/// Exposed for tests.
std::vector<double> waterfill(double capacity,
                              const std::vector<double>& demands);

}  // namespace mecar::sim
