// Derived metrics over online simulation runs: latency percentiles, Jain
// fairness over service ratios, utilization summaries. The simulator
// records the raw series when OnlineParams::collect_detail is set; the
// helpers here turn them into report-ready numbers.
#pragma once

#include <span>
#include <vector>

#include "sim/online_sim.h"

namespace mecar::sim {

/// Jain's fairness index over non-negative allocations:
/// (sum x)^2 / (n * sum x^2), in (0, 1]; 1 = perfectly fair.
/// Returns 1 for empty or all-zero input.
double jain_index(std::span<const double> values);

/// Summary of one detailed run.
struct DetailedSummary {
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_max_ms = 0.0;
  /// Jain index over per-request service ratios (work done / work total)
  /// of every request that was ever scheduled.
  double service_fairness = 1.0;
  /// Mean fraction of total network capacity allocated per slot.
  double mean_utilization = 0.0;
  double peak_utilization = 0.0;
};

/// Computes the summary from the detail fields of `metrics` (requires a
/// run with OnlineParams::collect_detail = true; degenerates gracefully
/// otherwise).
DetailedSummary summarize(const OnlineMetrics& metrics);

}  // namespace mecar::sim
