// Checkpoint orchestration: canonical-state (de)serialization, the on-disk
// generation store, and crash injection.
//
// util/snapshot.h owns the byte-level framing (magic/version/CRC32, tagged
// primitives, atomic writes); this header owns the simulator-shaped layers
// above it:
//
//  * save_sim_snapshot / load_sim_snapshot — the engine-agnostic
//    SimSnapshot (sim/online_sim.h) as a tagged payload section, nested by
//    the experiment runner inside its checkpoint frame;
//  * save_online_metrics / load_online_metrics — a standalone OnlineMetrics
//    (the runner checkpoints reference-run results this way);
//  * CheckpointStore — a directory of numbered checkpoint generations
//    (ckpt-<gen>.snap). write() atomically lands the next generation and
//    prunes all but the newest two, so a crash DURING a checkpoint write —
//    or a corrupted latest generation — always leaves a previous good one
//    to fall back to. Readers walk generations() newest-first, treating a
//    SnapshotParseError as "try the next generation" and an empty ladder
//    as "start fresh";
//  * crash injection — arm_crash_at_slot / arm_crash_after_units raise
//    SIGKILL (no cleanup, no atexit — a real crash) at the chosen slot top
//    or completed-unit count, the kill-anywhere leg of tests/check_resume.sh.
//    FaultPlan `crash` lines route through the same crash_point(); --resume
//    runs call disarm_crashes() so a restored run replays past its scripted
//    death.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/online_sim.h"

namespace mecar::util {
class SnapshotWriter;
class SnapshotReader;
}  // namespace mecar::util

namespace mecar::sim {

/// Serializes `s` as a tagged payload section of `w` (no framing; the
/// enclosing checkpoint owns magic/version/CRC).
void save_sim_snapshot(util::SnapshotWriter& w, const SimSnapshot& s);

/// Reads a SimSnapshot section. Throws util::SnapshotParseError (with the
/// byte offset) on any tag/enum/bounds violation.
SimSnapshot load_sim_snapshot(util::SnapshotReader& r);

/// Serializes a standalone OnlineMetrics as a tagged payload section.
void save_online_metrics(util::SnapshotWriter& w, const OnlineMetrics& m);
OnlineMetrics load_online_metrics(util::SnapshotReader& r);

/// A directory of checkpoint generations (`ckpt-<gen>.snap`, gen ascending
/// over the run's lifetime). Not thread-safe; one writer per directory.
class CheckpointStore {
 public:
  /// Creates `dir` (one level) if it does not exist yet.
  explicit CheckpointStore(std::string dir);

  /// Atomically writes `framed` as the next generation and prunes every
  /// generation but the newest two. Returns the path written.
  std::string write(const std::vector<std::uint8_t>& framed);

  /// Existing checkpoint paths, newest generation first.
  std::vector<std::string> generations() const;

  const std::string& dir() const noexcept { return dir_; }

  /// Reads a checkpoint file's bytes (throws std::runtime_error on I/O
  /// failure; parse validation is the caller's SnapshotReader).
  static std::vector<std::uint8_t> read_file(const std::string& path);

 private:
  std::string dir_;
};

/// Arms a SIGKILL at the top of `slot` (any engine, any policy). CLI flag
/// --crash-at. Negative disarms.
void arm_crash_at_slot(int slot);

/// Arms a SIGKILL after `units` completed checkpoint units — the per-trial
/// granularity the runner checkpoints offline scenarios at (CLI flag
/// --crash-after-units). Non-positive disarms.
void arm_crash_after_units(int units);

/// Disarms both armed crashes AND scripted FaultPlan crash points (the
/// engines pass plan_crash=false after this). Called on --resume so a
/// restored run sails past the slot that killed it.
void disarm_crashes();

/// Crash gate at the top of slot `slot`: raises SIGKILL when an armed
/// --crash-at matches or when `plan_crash` is set (and crashes are not
/// disarmed). Writes one stderr line first so harnesses can assert the
/// death was the scripted one.
void crash_point(int slot, bool plan_crash);

/// Crash gate after a completed checkpoint unit: raises SIGKILL when an
/// armed --crash-after-units count is reached.
void unit_crash_point(int completed_units);

}  // namespace mecar::sim
