#include "sim/online_baselines.h"

#include <algorithm>
#include <cmath>

#include "core/slot_lp.h"

namespace mecar::sim {
namespace {

/// Local candidate horizon of the cluster-style baselines (section VI-B:
/// "they utilize a local strategy").
constexpr int kLocalCandidates = 3;

/// Rebuilds per-station reservations from the simulator state: every
/// unfinished admitted stream holds `estimate(request)` at its station.
template <typename EstimateFn>
core::StationLoad reservations(const mec::Topology& topo, const SlotView& view,
                               EstimateFn estimate) {
  core::StationLoad load(topo);
  for (std::size_t j = 0; j < view.states->size(); ++j) {
    const RequestState& st = (*view.states)[j];
    if (st.phase == Phase::kServed && st.station >= 0) {
      load.occupy(st.station,
                  estimate((*view.requests)[j]));
    }
  }
  return load;
}

/// Activates every resident unfinished stream (non-preemptive policies)
/// and re-places streams displaced by station outages or backhaul
/// partitions: nearest available station with reservation room for the
/// policy's estimate. On the effective (degraded) topology, stations the
/// user can no longer reach have an infinite backhaul delay and are
/// skipped — the shared failover contract of every baseline.
template <typename EstimateFn>
void activate_residents(const mec::Topology& topo, const SlotView& view,
                        core::StationLoad& reserved, EstimateFn estimate,
                        SlotDecision& decision) {
  for (int j : view.pending) {
    const RequestState& st = (*view.states)[static_cast<std::size_t>(j)];
    if (st.phase != Phase::kServed) continue;
    if (st.station >= 0) {
      decision.active.push_back({j, st.station});
      continue;
    }
    const mec::ARRequest& req = (*view.requests)[static_cast<std::size_t>(j)];
    const double reserve = estimate(req);
    for (int bs : topo.stations_by_distance(req.home_station)) {
      if (!view.is_up(bs)) continue;
      if (!std::isfinite(topo.transmission_delay_ms(req.home_station, bs))) {
        continue;
      }
      if (reserved.remaining_mhz(bs) < reserve) continue;
      reserved.occupy(bs, reserve);
      decision.active.push_back({j, bs});
      break;
    }
  }
}

std::vector<int> waiting_requests(const SlotView& view) {
  std::vector<int> waiting;
  for (int j : view.pending) {
    if ((*view.states)[static_cast<std::size_t>(j)].phase == Phase::kWaiting) {
      waiting.push_back(j);
    }
  }
  return waiting;
}

}  // namespace

GreedyOnlinePolicy::GreedyOnlinePolicy(const mec::Topology& topo,
                                       core::AlgorithmParams alg)
    : topo_(topo), alg_(alg) {}

SlotDecision GreedyOnlinePolicy::decide(const SlotView& view) {
  SlotDecision decision;
  const mec::Topology& topo = view.topo != nullptr ? *view.topo : topo_;
  auto peak = [&](const mec::ARRequest& r) {
    return r.demand.max_rate() * alg_.c_unit;
  };
  core::StationLoad reserved = reservations(topo, view, peak);
  activate_residents(topo, view, reserved, peak, decision);

  std::vector<int> waiting = waiting_requests(view);
  auto execution_time = [&](int j) {
    const auto& req = (*view.requests)[static_cast<std::size_t>(j)];
    return req.total_proc_weight() * req.demand.expected_rate();
  };
  std::sort(waiting.begin(), waiting.end(), [&](int a, int b) {
    const double ta = execution_time(a);
    const double tb = execution_time(b);
    if (ta != tb) return ta > tb;
    return a < b;
  });

  core::AlgorithmParams near = alg_;
  near.max_candidate_stations = kLocalCandidates;
  for (int j : waiting) {
    const mec::ARRequest& req = (*view.requests)[static_cast<std::size_t>(j)];
    const double reserve = peak(req);
    int best_bs = -1;
    double best_lat = 0.0;
    for (const auto& cand :
         core::candidate_stations(topo, req, near, view.waiting_ms(j))) {
      if (!view.is_up(cand.station)) continue;
      if (reserved.remaining_mhz(cand.station) < reserve) continue;
      if (best_bs < 0 || cand.latency_ms < best_lat) {
        best_bs = cand.station;
        best_lat = cand.latency_ms;
      }
    }
    if (best_bs < 0) continue;
    reserved.occupy(best_bs, reserve);
    decision.active.push_back({j, best_bs});
  }
  return decision;
}

OcorpOnlinePolicy::OcorpOnlinePolicy(const mec::Topology& topo,
                                     core::AlgorithmParams alg)
    : topo_(topo), alg_(alg) {}

SlotDecision OcorpOnlinePolicy::decide(const SlotView& view) {
  SlotDecision decision;
  const mec::Topology& topo = view.topo != nullptr ? *view.topo : topo_;
  auto peak = [&](const mec::ARRequest& r) {
    return r.demand.max_rate() * alg_.c_unit;
  };
  core::StationLoad reserved = reservations(topo, view, peak);
  activate_residents(topo, view, reserved, peak, decision);

  std::vector<int> waiting = waiting_requests(view);
  std::sort(waiting.begin(), waiting.end(), [&](int a, int b) {
    const auto& ra = (*view.requests)[static_cast<std::size_t>(a)];
    const auto& rb = (*view.requests)[static_cast<std::size_t>(b)];
    if (ra.arrival_slot != rb.arrival_slot) {
      return ra.arrival_slot < rb.arrival_slot;
    }
    const double da = ra.demand.expected_rate() * ra.duration_slots;
    const double db = rb.demand.expected_rate() * rb.duration_slots;
    if (da != db) return da < db;
    return a < b;
  });

  core::AlgorithmParams near = alg_;
  near.max_candidate_stations = kLocalCandidates;
  for (int j : waiting) {
    const mec::ARRequest& req = (*view.requests)[static_cast<std::size_t>(j)];
    const double reserve = peak(req);
    int best_bs = -1;
    double best_resid = 0.0;
    for (const auto& cand :
         core::candidate_stations(topo, req, near, view.waiting_ms(j))) {
      if (!view.is_up(cand.station)) continue;
      const double resid = reserved.remaining_mhz(cand.station);
      if (resid < reserve) continue;
      if (best_bs < 0 || resid < best_resid) {
        best_bs = cand.station;
        best_resid = resid;
      }
    }
    if (best_bs < 0) continue;
    reserved.occupy(best_bs, reserve);
    decision.active.push_back({j, best_bs});
  }
  return decision;
}

HeuKktOnlinePolicy::HeuKktOnlinePolicy(const mec::Topology& topo,
                                       core::AlgorithmParams alg)
    : topo_(topo), alg_(alg) {}

SlotDecision HeuKktOnlinePolicy::decide(const SlotView& view) {
  SlotDecision decision;
  const mec::Topology& topo = view.topo != nullptr ? *view.topo : topo_;
  auto mean = [&](const mec::ARRequest& r) {
    return r.demand.expected_rate() * alg_.c_unit;
  };
  core::StationLoad committed = reservations(topo, view, mean);
  activate_residents(topo, view, committed, mean, decision);

  std::vector<int> waiting = waiting_requests(view);
  // KKT water-filling admits the smallest expected demands first.
  std::sort(waiting.begin(), waiting.end(), [&](int a, int b) {
    const double da =
        (*view.requests)[static_cast<std::size_t>(a)].demand.expected_rate();
    const double db =
        (*view.requests)[static_cast<std::size_t>(b)].demand.expected_rate();
    if (da != db) return da < db;
    return a < b;
  });

  for (int j : waiting) {
    const mec::ARRequest& req = (*view.requests)[static_cast<std::size_t>(j)];
    const double commit = mean(req);
    const double wait = view.waiting_ms(j);
    const int home = req.home_station;
    int chosen = -1;
    if (view.is_up(home) && committed.remaining_mhz(home) >= commit &&
        wait + mec::placement_latency_ms(topo, req, home) <=
            req.latency_budget_ms) {
      chosen = home;
    } else {
      // Overflow: most spare latency-feasible NEIGHBOUR (Ma et al.'s
      // cooperation is between neighbouring edges; farther offload leaves
      // the MEC network for the cloud and earns no edge reward).
      core::AlgorithmParams neighbourhood = alg_;
      neighbourhood.max_candidate_stations = 6;
      double best_spare = 0.0;
      for (const auto& cand :
           core::candidate_stations(topo, req, neighbourhood, wait)) {
        if (!view.is_up(cand.station)) continue;
        const double spare = committed.remaining_mhz(cand.station);
        if (spare < commit) continue;
        if (chosen < 0 || spare > best_spare) {
          chosen = cand.station;
          best_spare = spare;
        }
      }
    }
    if (chosen < 0) continue;  // remote cloud: no edge reward
    committed.occupy(chosen, commit);
    decision.active.push_back({j, chosen});
  }
  return decision;
}

}  // namespace mecar::sim
