#include "sim/dynamic_rr.h"

#include <algorithm>
#include <cmath>

#include "bandit/epsilon_greedy.h"
#include "bandit/thompson.h"
#include "bandit/ucb1.h"
#include "core/slot_lp.h"
#include "lp/revised_simplex.h"
#include "util/log.h"

namespace mecar::sim {

DynamicRrPolicy::DynamicRrPolicy(const mec::Topology& topo,
                                 core::AlgorithmParams alg,
                                 DynamicRrParams params, util::Rng rng)
    : topo_(topo),
      alg_(alg),
      params_(params),
      rng_(rng),
      grid_(params.threshold_min_mhz, params.threshold_max_mhz,
            params.kappa) {
  switch (params_.learner) {
    case ThresholdLearner::kSuccessiveElimination:
      discrete_ = std::make_unique<bandit::SuccessiveElimination>(
          grid_.num_arms(), params_.confidence_range);
      break;
    case ThresholdLearner::kUcb1:
      discrete_ = std::make_unique<bandit::Ucb1>(grid_.num_arms(),
                                                 params_.confidence_range);
      break;
    case ThresholdLearner::kEpsilonGreedy:
      discrete_ = std::make_unique<bandit::EpsilonGreedy>(grid_.num_arms(),
                                                          rng_.split());
      break;
    case ThresholdLearner::kThompson:
      discrete_ = std::make_unique<bandit::ThompsonSampling>(
          grid_.num_arms(), rng_.split(), params_.confidence_range);
      break;
    case ThresholdLearner::kZooming:
      zoom_ = std::make_unique<bandit::ZoomingBandit>(
          params_.threshold_min_mhz, params_.threshold_max_mhz, rng_.split(),
          params_.confidence_range);
      break;
  }
}

DynamicRrPolicy::~DynamicRrPolicy() = default;

const bandit::SuccessiveElimination& DynamicRrPolicy::bandit() const {
  const auto* se =
      dynamic_cast<const bandit::SuccessiveElimination*>(discrete_.get());
  if (se == nullptr) {
    throw std::logic_error(
        "DynamicRrPolicy::bandit(): learner is not successive elimination");
  }
  return *se;
}

double DynamicRrPolicy::next_threshold() {
  if (zoom_) return zoom_->select_point();
  if (auto* se =
          dynamic_cast<bandit::SuccessiveElimination*>(discrete_.get())) {
    played_arm_ = se->num_active() > 1 ? se->select_arm()
                                       : se->best_active_arm();
  } else {
    played_arm_ = discrete_->select_arm();
  }
  return grid_.value(played_arm_);
}

void DynamicRrPolicy::learn(double normalized_reward) {
  if (zoom_) {
    zoom_->update(normalized_reward);
  } else {
    discrete_->update(played_arm_, normalized_reward);
  }
}

SlotDecision DynamicRrPolicy::decide(const SlotView& view) {
  SlotDecision decision;

  // 1. Arm selection, held for window_slots slots (Alg. 3 steps 5-9):
  // successive elimination explores active arms round-robin; once a single
  // arm survives it is exploited.
  if (!window_open_ || window_pos_ >= params_.window_slots) {
    if (window_open_) {
      // Close the previous window.
      const double mean_reward =
          window_reward_ / std::max(1, params_.window_slots);
      const double scale = params_.reward_scale > 0.0
                               ? params_.reward_scale
                               : std::max({adaptive_scale_, mean_reward, 1e-9});
      adaptive_scale_ = scale;
      learn(mean_reward / scale);
    }
    last_threshold_ = next_threshold();
    window_open_ = true;
    window_pos_ = 0;
    window_reward_ = 0.0;
  }
  ++window_pos_;

  if (view.pending.empty()) return decision;

  // 2. Per-station round-robin floor: with threshold C^th, a station of
  // capacity C holds at most floor(C / C^th) concurrent streams so that
  // every stream's share stays >= C^th. Older residents have priority;
  // the newest are preempted (paused) when the realized mix overflows.
  std::vector<int> allowed(static_cast<std::size_t>(topo_.num_stations()));
  for (int bs = 0; bs < topo_.num_stations(); ++bs) {
    allowed[static_cast<std::size_t>(bs)] = std::max(
        1, static_cast<int>(std::floor(topo_.station(bs).capacity_mhz /
                                       last_threshold_)));
  }

  std::vector<std::vector<int>> residents(
      static_cast<std::size_t>(topo_.num_stations()));
  std::vector<int> waiting;
  std::vector<int> displaced;  // outage victims needing re-placement
  for (int j : view.pending) {
    const RequestState& st = (*view.states)[static_cast<std::size_t>(j)];
    if (st.phase == Phase::kServed) {
      if (st.station >= 0) {
        residents[static_cast<std::size_t>(st.station)].push_back(j);
      } else {
        displaced.push_back(j);
      }
    } else {
      waiting.push_back(j);
    }
  }
  // The threshold gates ADMISSION: a station holds at most `allowed`
  // in-flight sessions, so every stream's round-robin share stays above
  // C^th. Resident streams always receive service (no systematic
  // preemption — pausing in-progress sessions only strands partial work);
  // newcomers take the quota slots residents left free.
  std::vector<int> slots_left = allowed;
  std::vector<double> residual_mhz(
      static_cast<std::size_t>(topo_.num_stations()));
  for (int bs = 0; bs < topo_.num_stations(); ++bs) {
    const auto& ids = residents[static_cast<std::size_t>(bs)];
    double used = 0.0;
    for (int j : ids) {
      decision.active.push_back({j, bs});
      used += (*view.states)[static_cast<std::size_t>(j)].demand_mhz;
    }
    slots_left[static_cast<std::size_t>(bs)] = std::max(
        0, allowed[static_cast<std::size_t>(bs)] -
               static_cast<int>(ids.size()));
    residual_mhz[static_cast<std::size_t>(bs)] =
        std::max(0.0, topo_.station(bs).capacity_mhz - used);
    if (!view.is_up(bs)) {
      slots_left[static_cast<std::size_t>(bs)] = 0;
      residual_mhz[static_cast<std::size_t>(bs)] = 0.0;
    }
  }

  // 2b. Re-place streams displaced by station outages: their realized
  // demand is known; nearest station with quota and capacity wins.
  for (int j : displaced) {
    const RequestState& st = (*view.states)[static_cast<std::size_t>(j)];
    const mec::ARRequest& req = (*view.requests)[static_cast<std::size_t>(j)];
    for (int bs : topo_.stations_by_distance(req.home_station)) {
      if (!view.is_up(bs)) continue;
      if (slots_left[static_cast<std::size_t>(bs)] <= 0) continue;
      if (residual_mhz[static_cast<std::size_t>(bs)] < st.demand_mhz) continue;
      --slots_left[static_cast<std::size_t>(bs)];
      residual_mhz[static_cast<std::size_t>(bs)] -= st.demand_mhz;
      decision.active.push_back({j, bs});
      break;
    }
  }

  // 3. New admissions: the waiting queue enters the LP-PT batch highest
  // expected-reward density first — under saturation the LP cannot see the
  // whole queue, so the batch pre-selection must already favour the
  // requests the reward-maximizing LP would pick.
  auto density = [&](int j) {
    const auto& demand = (*view.requests)[static_cast<std::size_t>(j)].demand;
    return demand.expected_reward() / std::max(1e-9, demand.expected_rate());
  };
  std::sort(waiting.begin(), waiting.end(), [&](int a, int b) {
    const double da = density(a);
    const double db = density(b);
    if (da != db) return da > db;
    return a < b;
  });
  if (static_cast<int>(waiting.size()) > params_.max_batch) {
    waiting.resize(static_cast<std::size_t>(params_.max_batch));
  }
  if (!waiting.empty()) {
    admit_new(view, waiting, slots_left, residual_mhz, decision);
  }
  return decision;
}

void DynamicRrPolicy::admit_new(const SlotView& view,
                                const std::vector<int>& waiting,
                                std::vector<int>& slots_left,
                                std::vector<double>& residual_mhz,
                                SlotDecision& decision) {
  std::vector<mec::ARRequest> batch;
  batch.reserve(waiting.size());
  core::SlotLpOptions options;
  options.share_cap_mhz = last_threshold_;
  options.capacity_override_mhz = residual_mhz;
  options.waiting_ms_per_request.reserve(waiting.size());
  for (int j : waiting) {
    batch.push_back((*view.requests)[static_cast<std::size_t>(j)]);
    options.waiting_ms_per_request.push_back(view.waiting_ms(j));
  }

  std::vector<int> placement(waiting.size(), -1);
  std::vector<double> placement_lat(waiting.size(), 0.0);
  const core::SlotLpInstance inst =
      core::build_slot_lp(topo_, batch, alg_, options);
  if (inst.model.num_variables() > 0) {
    // Warm start: consecutive slots under a saturated queue rebuild the
    // same-shaped LP, so the previous slot's optimal basis is a few pivots
    // from this slot's optimum. On a shape change the solver cold-starts.
    const lp::SolveResult res =
        params_.warm_start_lp ? lp_solver_.solve(inst.model, warm_basis_)
                              : lp::solve_lp(inst.model);
    if (res.optimal()) {
      // Deterministic rounding: request -> station with the largest
      // fractional mass sum_l y_jil; among stations within 50% of the best
      // mass (the LP is often indifferent, ER_jil varies little across
      // stations) prefer the lowest placement latency. Latencies come from
      // the column metadata the builder already computed.
      std::vector<double> mass(
          static_cast<std::size_t>(topo_.num_stations()), 0.0);
      std::vector<double> lat_of(
          static_cast<std::size_t>(topo_.num_stations()), 0.0);
      for (std::size_t b = 0; b < waiting.size(); ++b) {
        std::fill(mass.begin(), mass.end(), 0.0);
        for (int col : inst.request_columns[b]) {
          const core::SlotVar& var = inst.vars[static_cast<std::size_t>(col)];
          mass[static_cast<std::size_t>(var.station)] +=
              res.x[static_cast<std::size_t>(col)];
          lat_of[static_cast<std::size_t>(var.station)] = var.latency_ms;
        }
        double best_mass = 0.0;
        for (double m : mass) best_mass = std::max(best_mass, m);
        if (best_mass < 0.25) continue;  // no meaningful LP support
        int best_bs = -1;
        double best_lat = 0.0;
        for (std::size_t bs = 0; bs < mass.size(); ++bs) {
          if (mass[bs] < 0.5 * best_mass || mass[bs] < 0.25) continue;
          const double lat = lat_of[bs];
          if (best_bs < 0 || lat < best_lat) {
            best_bs = static_cast<int>(bs);
            best_lat = lat;
          }
        }
        placement[b] = best_bs;
        placement_lat[b] = best_lat;
      }
    } else {
      util::log_debug() << "DynamicRR: LP-PT not optimal ("
                        << lp::to_string(res.status) << "), greedy fallback";
    }
  }

  for (std::size_t b = 0; b < waiting.size(); ++b) {
    const int j = waiting[b];
    const mec::ARRequest& req = (*view.requests)[static_cast<std::size_t>(j)];
    const double expected_mhz = req.demand.expected_rate() * alg_.c_unit;
    const double wait = view.waiting_ms(j);
    // Starvation rescue (the point of the MAB threshold per section VI-B:
    // "avoid the starvation of AR requests"): a request that has already
    // waited a slot is heading toward its deadline (the budget leaves only
    // ~3 slots of slack) and may exceed the round-robin quota — its share
    // dips below C^th briefly — as long as real capacity holds.
    const bool last_chance = wait >= view.slot_ms;
    auto admissible = [&](int bs, double latency_ms) {
      return bs >= 0 &&
             (slots_left[static_cast<std::size_t>(bs)] > 0 || last_chance) &&
             residual_mhz[static_cast<std::size_t>(bs)] >= expected_mhz &&
             wait + latency_ms <= req.latency_budget_ms;
    };
    int bs = placement[b];
    if (!admissible(bs, placement_lat[b])) {
      bs = -1;
      for (const auto& cand :
           core::candidate_stations(topo_, req, alg_, wait)) {
        if (admissible(cand.station, cand.latency_ms)) {
          bs = cand.station;
          break;
        }
      }
    }
    if (bs < 0) continue;  // stays pending; may be admitted a later slot
    --slots_left[static_cast<std::size_t>(bs)];
    residual_mhz[static_cast<std::size_t>(bs)] -= expected_mhz;
    decision.active.push_back({j, bs});
  }
}

void DynamicRrPolicy::feedback(const SlotFeedback& fb) {
  // Net value of the slot: collected reward minus the opportunity cost of
  // requests the current threshold starved past their deadline.
  window_reward_ += fb.completed_reward - fb.dropped_expected_reward;
}

}  // namespace mecar::sim
