#include "sim/dynamic_rr.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "bandit/epsilon_greedy.h"
#include "bandit/thompson.h"
#include "bandit/ucb1.h"
#include "core/slot_lp.h"
#include "lp/revised_simplex.h"
#include "lp/serialize.h"
#include "obs/catalog.h"
#include "obs/event_trace.h"
#include "util/log.h"
#include "util/snapshot.h"

namespace mecar::sim {

namespace {

lp::RevisedSimplexOptions slot_lp_options(const DynamicRrParams& params) {
  lp::RevisedSimplexOptions opt;
  opt.max_iterations = params.lp_max_iterations;
  return opt;
}

}  // namespace

DynamicRrPolicy::DynamicRrPolicy(const mec::Topology& topo,
                                 core::AlgorithmParams alg,
                                 DynamicRrParams params, util::Rng rng)
    : topo_(topo),
      alg_(alg),
      params_(params),
      rng_(rng),
      grid_(params.threshold_min_mhz, params.threshold_max_mhz,
            params.kappa) {
  switch (params_.learner) {
    case ThresholdLearner::kSuccessiveElimination:
      discrete_ = std::make_unique<bandit::SuccessiveElimination>(
          grid_.num_arms(), params_.confidence_range);
      break;
    case ThresholdLearner::kUcb1:
      discrete_ = std::make_unique<bandit::Ucb1>(grid_.num_arms(),
                                                 params_.confidence_range);
      break;
    case ThresholdLearner::kEpsilonGreedy:
      discrete_ = std::make_unique<bandit::EpsilonGreedy>(grid_.num_arms(),
                                                          rng_.split());
      break;
    case ThresholdLearner::kThompson:
      discrete_ = std::make_unique<bandit::ThompsonSampling>(
          grid_.num_arms(), rng_.split(), params_.confidence_range);
      break;
    case ThresholdLearner::kZooming:
      zoom_ = std::make_unique<bandit::ZoomingBandit>(
          params_.threshold_min_mhz, params_.threshold_max_mhz, rng_.split(),
          params_.confidence_range);
      break;
  }
}

DynamicRrPolicy::~DynamicRrPolicy() = default;

const bandit::SuccessiveElimination& DynamicRrPolicy::bandit() const {
  const auto* se =
      dynamic_cast<const bandit::SuccessiveElimination*>(discrete_.get());
  if (se == nullptr) {
    throw std::logic_error(
        "DynamicRrPolicy::bandit(): learner is not successive elimination");
  }
  return *se;
}

double DynamicRrPolicy::next_threshold() {
  if (zoom_) return zoom_->select_point();
  if (auto* se =
          dynamic_cast<bandit::SuccessiveElimination*>(discrete_.get())) {
    played_arm_ = se->num_active() > 1 ? se->select_arm()
                                       : se->best_active_arm();
  } else {
    played_arm_ = discrete_->select_arm();
  }
  return grid_.value(played_arm_);
}

void DynamicRrPolicy::learn(double normalized_reward) {
  if (zoom_) {
    zoom_->update(normalized_reward);
  } else {
    discrete_->update(played_arm_, normalized_reward);
  }
}

SlotDecision DynamicRrPolicy::decide(const SlotView& view) {
  SlotDecision decision;

  // 1. Arm selection, held for window_slots slots (Alg. 3 steps 5-9):
  // successive elimination explores active arms round-robin; once a single
  // arm survives it is exploited.
  if (!window_open_ || window_pos_ >= params_.window_slots) {
    if (window_open_) {
      // Close the previous window.
      const double mean_reward =
          window_reward_ / std::max(1, params_.window_slots);
      const double scale = params_.reward_scale > 0.0
                               ? params_.reward_scale
                               : std::max({adaptive_scale_, mean_reward, 1e-9});
      adaptive_scale_ = scale;
      learn(mean_reward / scale);
    }
    last_threshold_ = next_threshold();
    obs::EventTrace& tr = obs::trace();
    if (tr.enabled()) {
      tr.emit(obs::EventKind::kArmPull, played_arm_, last_threshold_);
    }
    window_open_ = true;
    window_pos_ = 0;
    window_reward_ = 0.0;
  }
  ++window_pos_;

  if (view.pending.empty()) return decision;

  // Under faults the simulator publishes the degraded (overlay) topology
  // through the view; fault-free runs pass the construction-time topology
  // (same object), so behaviour is bit-identical.
  const mec::Topology& topo = view.topo != nullptr ? *view.topo : topo_;

  // 2. Per-station round-robin floor: with threshold C^th, a station of
  // capacity C holds at most floor(C / C^th) concurrent streams so that
  // every stream's share stays >= C^th. Older residents have priority;
  // the newest are preempted (paused) when the realized mix overflows.
  // Brownout-scaled capacities shrink the quota automatically.
  std::vector<int>& allowed = scratch_allowed_;
  allowed.assign(static_cast<std::size_t>(topo.num_stations()), 0);
  for (int bs = 0; bs < topo.num_stations(); ++bs) {
    allowed[static_cast<std::size_t>(bs)] = std::max(
        1, static_cast<int>(std::floor(topo.station(bs).capacity_mhz /
                                       last_threshold_)));
  }

  std::vector<std::vector<int>>& residents = scratch_residents_;
  residents.resize(static_cast<std::size_t>(topo.num_stations()));
  for (std::vector<int>& r : residents) r.clear();
  std::vector<int>& waiting = scratch_waiting_;
  std::vector<int>& displaced = scratch_displaced_;  // needing re-placement
  waiting.clear();
  displaced.clear();
  for (int j : view.pending) {
    const RequestState& st = (*view.states)[static_cast<std::size_t>(j)];
    if (st.phase == Phase::kServed) {
      if (st.station >= 0) {
        residents[static_cast<std::size_t>(st.station)].push_back(j);
      } else {
        displaced.push_back(j);
      }
    } else {
      waiting.push_back(j);
    }
  }
  // The threshold gates ADMISSION: a station holds at most `allowed`
  // in-flight sessions, so every stream's round-robin share stays above
  // C^th. Resident streams always receive service (no systematic
  // preemption — pausing in-progress sessions only strands partial work);
  // newcomers take the quota slots residents left free.
  std::vector<int>& slots_left = scratch_slots_left_;
  slots_left = allowed;
  std::vector<double>& residual_mhz = scratch_residual_mhz_;
  residual_mhz.assign(static_cast<std::size_t>(topo.num_stations()), 0.0);
  for (int bs = 0; bs < topo.num_stations(); ++bs) {
    const auto& ids = residents[static_cast<std::size_t>(bs)];
    double used = 0.0;
    for (int j : ids) {
      decision.active.push_back({j, bs});
      used += (*view.states)[static_cast<std::size_t>(j)].demand_mhz;
    }
    slots_left[static_cast<std::size_t>(bs)] = std::max(
        0, allowed[static_cast<std::size_t>(bs)] -
               static_cast<int>(ids.size()));
    residual_mhz[static_cast<std::size_t>(bs)] =
        std::max(0.0, topo.station(bs).capacity_mhz - used);
    if (!view.is_up(bs)) {
      slots_left[static_cast<std::size_t>(bs)] = 0;
      residual_mhz[static_cast<std::size_t>(bs)] = 0.0;
    }
  }

  // 3. New admissions: the waiting queue enters the LP-PT batch highest
  // expected-reward density first — under saturation the LP cannot see the
  // whole queue, so the batch pre-selection must already favour the
  // requests the reward-maximizing LP would pick. Displaced streams (their
  // serving station died or the backhaul to it partitioned) join the same
  // batch ahead of newcomers: their demand is realized, their reward is
  // already partially earned, and re-placing them through the LP lets the
  // batch trade them off against admissions coherently.
  auto density = [&](int j) {
    const auto& demand = (*view.requests)[static_cast<std::size_t>(j)].demand;
    return demand.expected_reward() / std::max(1e-9, demand.expected_rate());
  };
  std::sort(waiting.begin(), waiting.end(), [&](int a, int b) {
    const double da = density(a);
    const double db = density(b);
    if (da != db) return da > db;
    return a < b;
  });
  const int waiting_cap =
      std::max(0, params_.max_batch - static_cast<int>(displaced.size()));
  if (static_cast<int>(waiting.size()) > waiting_cap) {
    waiting.resize(static_cast<std::size_t>(waiting_cap));
  }
  if (!waiting.empty() || !displaced.empty()) {
    admit_new(topo, view, waiting, displaced, slots_left, residual_mhz,
              decision);
  }
  return decision;
}

void DynamicRrPolicy::admit_new(const mec::Topology& topo,
                                const SlotView& view,
                                const std::vector<int>& waiting,
                                const std::vector<int>& displaced,
                                std::vector<int>& slots_left,
                                std::vector<double>& residual_mhz,
                                SlotDecision& decision) {
  // Batch layout: displaced streams first (re-placement has priority over
  // admission — their reward is partially sunk), then the waiting queue.
  const std::size_t num_displaced = displaced.size();
  std::vector<int>& ids = scratch_ids_;
  ids.assign(displaced.begin(), displaced.end());
  ids.insert(ids.end(), waiting.begin(), waiting.end());

  std::vector<mec::ARRequest>& batch = scratch_batch_;
  batch.clear();
  batch.reserve(ids.size());
  core::SlotLpOptions options;
  options.share_cap_mhz = last_threshold_;
  options.capacity_override_mhz = residual_mhz;
  options.waiting_ms_per_request.reserve(ids.size());
  for (std::size_t b = 0; b < ids.size(); ++b) {
    const int j = ids[b];
    const mec::ARRequest& req = (*view.requests)[static_cast<std::size_t>(j)];
    if (b < num_displaced) {
      // A displaced stream's rate realized at first service, so the LP sees
      // a degenerate single-level distribution at the known demand.
      // Re-placement is not re-admission: the experienced latency locked in
      // at b_j, so the budget constraint must not re-apply — an effectively
      // unbounded budget keeps every reachable station a candidate while
      // partitioned stations stay excluded by their infinite delay.
      const RequestState& st = (*view.states)[static_cast<std::size_t>(j)];
      mec::ARRequest ghost = req;
      ghost.demand = mec::RateRewardDist(
          {{st.demand_mhz / std::max(1e-12, alg_.c_unit), 1.0,
            req.demand.level(st.realized_level).reward}});
      ghost.latency_budget_ms = 1e9;
      batch.push_back(std::move(ghost));
      options.waiting_ms_per_request.push_back(0.0);
      ++degradation_.displaced_seen;
    } else {
      batch.push_back(req);
      options.waiting_ms_per_request.push_back(view.waiting_ms(j));
    }
  }

  std::vector<int>& placement = scratch_placement_;
  placement.assign(ids.size(), -1);
  std::vector<double>& placement_lat = scratch_placement_lat_;
  placement_lat.assign(ids.size(), 0.0);
  // Incremental path: mutate the previous slot's model by the batch delta.
  // Only taken when the slot's topology IS the policy's own base topology:
  // a chaos overlay mutates the effective-topology object in place between
  // epochs, which a pointer-identity cache cannot observe — scratch-build
  // there. (The builder itself additionally falls back to a full rebuild
  // whenever the residual capacities or the share cap moved, so the delta
  // path pays off in the idle and saturated phases where consecutive slots
  // keep their residuals.)
  const bool use_incremental = params_.incremental_lp && &topo == &topo_;
  core::SlotLpInstance scratch;
  if (!use_incremental) {
    incremental_.invalidate();
    scratch = core::build_slot_lp(topo, batch, alg_, options);
  }
  const core::SlotLpInstance& inst =
      use_incremental ? incremental_.build(topo, batch, alg_, options)
                      : scratch;
  // Degradation-ladder rung of this decision; greedy until an LP solution
  // actually lands.
  int level = 3;
  if (inst.model.num_variables() > 0) {
    // Warm start: consecutive slots under a saturated queue rebuild the
    // same-shaped LP, so the previous slot's optimal basis is a few pivots
    // from this slot's optimum. On a shape change the solver cold-starts.
    ++degradation_.lp_solves;
    // Effective anytime budget: the tighter of the configured pivot
    // budget and a scripted per-slot solver squeeze (sim/fault_plan.h).
    lp::RevisedSimplexOptions ropt = slot_lp_options(params_);
    // Warm-basis repair across batch-shape changes rides with the
    // incremental pipeline: both trade the cold start's historical pivot
    // path for reuse, so they share the opt-in.
    ropt.repair_warm_basis = use_incremental;
    ropt.budget.max_pivots = params_.lp_pivot_budget;
    if (view.lp_pivot_budget > 0 &&
        (ropt.budget.max_pivots == 0 ||
         view.lp_pivot_budget < ropt.budget.max_pivots)) {
      ropt.budget.max_pivots = view.lp_pivot_budget;
    }
    ropt.budget.deadline_ms = params_.lp_deadline_ms;
    if (view.lp_fault) ropt.inject_nan_at_pivot = 1;

    lp::SolveResult res;
    if (params_.warm_start_lp) {
      res = lp::RevisedSimplexSolver(ropt).solve(inst.model, warm_basis_);
    } else if (ropt.budget.limited() || view.lp_fault) {
      // Budgets and fault injection only exist on the revised engine, so
      // they force it even where solve_lp would pick the dense one.
      res = lp::RevisedSimplexSolver(ropt).solve(inst.model);
    } else {
      res = lp::solve_lp(inst.model);
    }
    // kDeadline with a non-empty x is the anytime contract: the budget ran
    // out but the iterate is primal feasible — good enough to round.
    const bool deadline_usable =
        res.status == lp::SolveStatus::kDeadline && !res.x.empty();
    degradation_.lp_recovery_actions += res.stats.recoveries();
    if (res.status == lp::SolveStatus::kNumericalError) {
      ++degradation_.lp_numerical_errors;
      obs::metrics().lp_numerical_errors.add();
      // The solver already walked its own recovery ladder (refactorize ->
      // cold reset -> dense cross-solve) before reporting this; a stale
      // basis must not leak into the next slot.
      warm_basis_.clear();
    }
    if (res.optimal() || deadline_usable) {
      if (deadline_usable) ++degradation_.lp_deadline_used;
      if (res.warm_started) {
        level = 0;
      } else if (res.stats.recovery_dense_solves > 0) {
        level = 2;  // the dense cross-solve rung produced this solution
      } else {
        level = 1;
      }
      // Deterministic rounding: request -> station with the largest
      // fractional mass sum_l y_jil; among stations within 50% of the best
      // mass (the LP is often indifferent, ER_jil varies little across
      // stations) prefer the lowest placement latency. Latencies come from
      // the column metadata the builder already computed.
      std::vector<double>& mass = scratch_mass_;
      mass.assign(static_cast<std::size_t>(topo.num_stations()), 0.0);
      std::vector<double>& lat_of = scratch_lat_of_;
      lat_of.assign(static_cast<std::size_t>(topo.num_stations()), 0.0);
      for (std::size_t b = 0; b < ids.size(); ++b) {
        std::fill(mass.begin(), mass.end(), 0.0);
        for (int col : inst.request_columns[b]) {
          const core::SlotVar& var = inst.vars[static_cast<std::size_t>(col)];
          mass[static_cast<std::size_t>(var.station)] +=
              res.x[static_cast<std::size_t>(col)];
          lat_of[static_cast<std::size_t>(var.station)] = var.latency_ms;
        }
        double best_mass = 0.0;
        for (double m : mass) best_mass = std::max(best_mass, m);
        if (best_mass < 0.25) continue;  // no meaningful LP support
        int best_bs = -1;
        double best_lat = 0.0;
        for (std::size_t bs = 0; bs < mass.size(); ++bs) {
          if (mass[bs] < 0.5 * best_mass || mass[bs] < 0.25) continue;
          const double lat = lat_of[bs];
          if (best_bs < 0 || lat < best_lat) {
            best_bs = static_cast<int>(bs);
            best_lat = lat;
          }
        }
        placement[b] = best_bs;
        placement_lat[b] = best_lat;
      }
    } else {
      // Graceful-degradation contract: a non-optimal LP (infeasible model
      // under post-fault capacities, iteration limit, numerical error the
      // recovery ladder could not contain, ...) must never turn into an
      // empty assignment — every batch entry falls through to the
      // per-request greedy path below.
      ++degradation_.lp_fallbacks;
      obs::metrics().sim_lp_fallbacks.add();
      util::log_debug() << "DynamicRR: LP-PT not optimal ("
                        << lp::to_string(res.status) << "), greedy fallback";
    }
  }

  bool placed_any = false;
  for (std::size_t b = 0; b < ids.size(); ++b) {
    const int j = ids[b];
    const bool is_displaced = b < num_displaced;
    const mec::ARRequest& req = (*view.requests)[static_cast<std::size_t>(j)];
    const RequestState& st = (*view.states)[static_cast<std::size_t>(j)];
    const double need_mhz = is_displaced
                                ? st.demand_mhz
                                : req.demand.expected_rate() * alg_.c_unit;
    const double wait = is_displaced ? 0.0 : view.waiting_ms(j);
    // Starvation rescue (the point of the MAB threshold per section VI-B:
    // "avoid the starvation of AR requests"): a request that has already
    // waited a slot is heading toward its deadline (the budget leaves only
    // ~3 slots of slack) and may exceed the round-robin quota — its share
    // dips below C^th briefly — as long as real capacity holds. Displaced
    // streams always get the exemption: their session is in flight and its
    // quota slot was consumed at admission.
    const bool last_chance = is_displaced || wait >= view.slot_ms;
    auto admissible = [&](int bs, double latency_ms) {
      return bs >= 0 && view.is_up(bs) &&
             (slots_left[static_cast<std::size_t>(bs)] > 0 || last_chance) &&
             residual_mhz[static_cast<std::size_t>(bs)] >= need_mhz &&
             (is_displaced || wait + latency_ms <= req.latency_budget_ms);
    };
    int bs = placement[b];
    bool via_lp = bs >= 0;
    if (!admissible(bs, placement_lat[b])) {
      via_lp = false;
      bs = -1;
      if (is_displaced) {
        // Greedy nearest-fit failover over the effective topology; stations
        // the user can no longer reach (partition => infinite delay) are
        // skipped.
        for (int cand : topo.stations_by_distance(req.home_station)) {
          if (!std::isfinite(
                  topo.transmission_delay_ms(req.home_station, cand))) {
            continue;
          }
          if (admissible(cand, 0.0)) {
            bs = cand;
            break;
          }
        }
      } else {
        for (const auto& cand :
             core::candidate_stations(topo, req, alg_, wait)) {
          if (admissible(cand.station, cand.latency_ms)) {
            bs = cand.station;
            break;
          }
        }
      }
    }
    if (bs < 0) continue;  // stays pending; may be admitted a later slot
    placed_any = true;
    --slots_left[static_cast<std::size_t>(bs)];
    residual_mhz[static_cast<std::size_t>(bs)] -= need_mhz;
    decision.active.push_back({j, bs});
    if (is_displaced) {
      if (via_lp) {
        ++degradation_.displaced_replaced_lp;
      } else {
        ++degradation_.displaced_replaced_greedy;
      }
    }
  }

  // Rung 4 — carry: even the greedy pass placed nothing, so this slot's
  // decision is the residents alone (already in `decision`). A batch the
  // usable LP declined to place (no capacity anywhere) is rung 0-2 "no
  // room", not a degradation.
  if (level == 3 && !placed_any) level = 4;
  degradation_.last_level = level;
  switch (level) {
    case 0: ++degradation_.slots_warm_lp; break;
    case 1: ++degradation_.slots_cold_lp; break;
    case 2: ++degradation_.slots_dense_lp; break;
    case 3: ++degradation_.slots_greedy; break;
    default: ++degradation_.slots_carry; break;
  }
  obs::metrics().sim_degradation_level.set(level);
}

void DynamicRrPolicy::feedback(const SlotFeedback& fb) {
  // Net value of the slot: collected reward minus the opportunity cost of
  // requests the current threshold starved past their deadline.
  window_reward_ += fb.completed_reward - fb.dropped_expected_reward;
}

void DynamicRrPolicy::save_state(util::SnapshotWriter& w) const {
  for (std::uint64_t s : rng_.state()) w.u64(s);
  w.i32(played_arm_);
  w.boolean(window_open_);
  w.f64(last_threshold_);
  w.f64(adaptive_scale_);
  w.i32(window_pos_);
  w.f64(window_reward_);
  w.i64(degradation_.lp_solves);
  w.i64(degradation_.lp_fallbacks);
  w.i64(degradation_.displaced_seen);
  w.i64(degradation_.displaced_replaced_lp);
  w.i64(degradation_.displaced_replaced_greedy);
  w.i64(degradation_.slots_warm_lp);
  w.i64(degradation_.slots_cold_lp);
  w.i64(degradation_.slots_dense_lp);
  w.i64(degradation_.slots_greedy);
  w.i64(degradation_.slots_carry);
  w.i64(degradation_.lp_deadline_used);
  w.i64(degradation_.lp_recovery_actions);
  w.i64(degradation_.lp_numerical_errors);
  w.i32(degradation_.last_level);
  if (discrete_) {
    discrete_->save(w);
  } else {
    zoom_->save(w);
  }
  lp::save_basis(warm_basis_, w);
  incremental_.save(w);
}

void DynamicRrPolicy::load_state(util::SnapshotReader& r) {
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& s : state) s = r.u64();
  rng_.set_state(state);
  played_arm_ = r.i32();
  window_open_ = r.boolean();
  last_threshold_ = r.f64();
  adaptive_scale_ = r.f64();
  window_pos_ = r.i32();
  window_reward_ = r.f64();
  degradation_.lp_solves = r.i64();
  degradation_.lp_fallbacks = r.i64();
  degradation_.displaced_seen = r.i64();
  degradation_.displaced_replaced_lp = r.i64();
  degradation_.displaced_replaced_greedy = r.i64();
  degradation_.slots_warm_lp = r.i64();
  degradation_.slots_cold_lp = r.i64();
  degradation_.slots_dense_lp = r.i64();
  degradation_.slots_greedy = r.i64();
  degradation_.slots_carry = r.i64();
  degradation_.lp_deadline_used = r.i64();
  degradation_.lp_recovery_actions = r.i64();
  degradation_.lp_numerical_errors = r.i64();
  degradation_.last_level = r.i32();
  if (discrete_) {
    discrete_->load(r);
  } else {
    zoom_->load(r);
  }
  warm_basis_ = lp::load_basis(r);
  incremental_.load(r, topo_);
}

}  // namespace mecar::sim
