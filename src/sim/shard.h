// Sharded O(live + changes) slot loop.
//
// The legacy OnlineSimulator::run loop touches every request every slot —
// the arrival scan, the activation reset, the preemption scan, the resident
// grouping and the was_active update are all O(|R|) — which is fine at the
// paper's |R| = 150 but dominates wall time at 10^5..10^6 requests, where
// only a few thousand are ever live at once. ShardEngine re-implements the
// same slot loop over live sets:
//
//   * the stations are partitioned into `num_shards` contiguous shards;
//     each sim::Shard owns its stations plus the live requests anchored to
//     them: kWaiting requests of its home stations, placed kServed streams
//     of its serving stations, and displaced streams (station == -1) of
//     their home stations — every request is owned by exactly one shard;
//   * arrivals come from a per-slot calendar built once up front, so a slot
//     only ever sees the requests that actually arrive in it;
//   * the per-slot admission (drop checks + pending), completion
//     (waterfill) and displacement passes run shard-parallel on the
//     process util::ThreadPool, each pass writing only its own shard's
//     state and scratch; per-slot scratch draws from a per-shard
//     util::Arena that is reset() every slot, so steady-state slots do not
//     touch the heap;
//   * every result that crosses shards — the pending list handed to the
//     policy, drop accounting, displacement accounting, the waterfill
//     reward reduction — is merged SERIALLY in ascending request-index /
//     ascending station order, i.e. exactly the order the legacy loop's
//     full scans produce. Floating-point accumulation order is therefore
//     identical, which makes the engine bit-for-bit equal to the legacy
//     loop at ANY shard count and ANY MECAR_THREADS value (the golden
//     suite re-runs under MECAR_SHARDS to prove it).
//
// Chaos-specific costs are made lazy rather than approximate: the faulted
// minimum latency eff_min is recomputed per request on first use inside a
// fault epoch (it is a pure function of the epoch's up-set and effective
// topology, so laziness cannot change its value), instead of the legacy
// whole-table rebuild on every epoch switch.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "mec/topology_overlay.h"
#include "sim/online_sim.h"
#include "util/arena.h"

namespace mecar::sim {

/// Effective shard count for a run: `params.num_shards` when positive
/// (clamped to the station count), the MECAR_SHARDS environment variable
/// when num_shards == 0 (unset / non-positive -> 0), and 0 — meaning "use
/// the legacy loop" — when num_shards < 0.
int resolve_num_shards(const OnlineParams& params, int num_stations);

/// One station partition and the live requests anchored to it. All three
/// membership lists are kept sorted by request index; the k-way merge
/// across shards therefore reproduces the legacy loop's ascending-j scans.
struct Shard {
  int first_station = 0;  // [first_station, last_station)
  int last_station = 0;
  /// kWaiting requests whose home station lies in this shard.
  std::vector<int> waiting;
  /// Placed kServed streams whose serving station lies in this shard.
  std::vector<int> served;
  /// Displaced kServed streams (station == -1) of this shard's homes.
  std::vector<int> displaced;
  /// This slot's arrivals routed to this shard (rebuilt each slot).
  std::vector<int> incoming;
  /// Per-slot transient storage (reset every slot).
  util::Arena arena;
};

/// Runs one policy over one workload with the sharded slot loop. One
/// engine instance performs one run; OnlineSimulator::run constructs it
/// per call when shard dispatch selects it.
class ShardEngine {
 public:
  ShardEngine(const mec::Topology& topo,
              const std::vector<mec::ARRequest>& requests,
              const std::vector<std::size_t>& realized,
              const OnlineParams& params,
              const std::vector<double>& min_latency_ms, int num_shards);

  /// `hook` (optional) captures a canonical SimSnapshot at the top of any
  /// slot it asks for; `resume` (optional) rebuilds mid-run state from one
  /// such snapshot and continues from its next_slot. Snapshots are
  /// engine-agnostic: a snapshot captured here restores into the legacy
  /// loop (and vice versa) bit-identically at any shard count.
  OnlineMetrics run(OnlinePolicy& policy, SlotHook* hook = nullptr,
                    const SimSnapshot* resume = nullptr);

  int num_shards() const noexcept {
    return static_cast<int>(shards_.size());
  }
  int shard_of_station(int station) const noexcept;

 private:
  /// Per-shard scratch of one slot, arena-backed (see Shard::arena).
  struct SlotScratch;

  const mec::Topology& topo_;
  std::vector<mec::ARRequest> requests_;  // mobility mutates home stations
  std::vector<std::size_t> realized_;
  OnlineParams params_;
  std::vector<double> min_latency_;
  /// deque: Shard owns a util::Arena and is neither copyable nor movable.
  std::deque<Shard> shards_;
  std::vector<int> station_shard_;  // station -> owning shard
  /// Arrival calendar: request indices by arrival slot, ascending within a
  /// bucket (requests arriving at or after the horizon are never live).
  std::vector<std::vector<int>> arrivals_;
};

}  // namespace mecar::sim
