// Algorithm DynamicRR (paper Alg. 3): online learning for the dynamic
// reward maximization problem.
//
// Per time slot:
//   1. A Lipschitz bandit (uniform discretization of [C^th_min, C^th_max]
//      into kappa arms + successive elimination) picks the round-robin
//      threshold C^th_t. The observed per-slot reward (normalized) feeds
//      the played arm.
//   2. Pending requests are sorted by expected data rate and admitted into
//      R_t while the average capacity share stays >= C^th_t (Alg. 3 steps
//      10-11).
//   3. Newly admitted requests are placed by solving LP-PT over the batch
//      against the residual capacities and rounding the fractional
//      assignment (the Heu invocation of Alg. 3 step 12); placements are
//      sticky thereafter (a service instance is created at the station).
//   4. Requests in R_t stream this slot; the rest are preempted (paused).
#pragma once

#include <memory>
#include <vector>

#include "bandit/bandit.h"
#include "bandit/lipschitz.h"
#include "bandit/successive_elimination.h"
#include "bandit/zooming.h"
#include "core/incremental_slot_lp.h"
#include "lp/revised_simplex.h"
#include "sim/online_sim.h"
#include "util/rng.h"

namespace mecar::sim {

/// Which learner drives the threshold (successive elimination is the
/// paper's choice; the rest are ablations, zooming being the adaptive
/// continuum alternative to the fixed kappa grid).
enum class ThresholdLearner {
  kSuccessiveElimination,
  kUcb1,
  kEpsilonGreedy,
  kThompson,
  kZooming,
};

struct DynamicRrParams {
  /// Threshold range Z = [C^th_min, C^th_max] in MHz. The provider knows
  /// the demand support (DR x C_unit, 600-1000 MHz at the paper defaults),
  /// so the range brackets it: from mild oversubscription to full peak
  /// reservation with headroom.
  double threshold_min_mhz = 500.0;
  double threshold_max_mhz = 1100.0;
  /// Number of arms kappa the interval is discretized into.
  int kappa = 4;
  /// Normalization scale for per-slot rewards fed to the bandit; <= 0
  /// derives a scale from the observed rewards adaptively.
  double reward_scale = 0.0;
  /// Cap on the per-slot LP-PT batch (placement of new requests).
  int max_batch = 48;
  /// The chosen arm is held for this many consecutive slots and the bandit
  /// is fed the window's mean reward ("try all active arms in possibly
  /// multiple rounds", Alg. 3 step 5). Windowing de-noises the lumpy
  /// per-slot completion rewards.
  int window_slots = 10;
  /// Confidence-radius scale of the successive elimination policy on the
  /// normalized (windowed) rewards.
  double confidence_range = 0.5;
  /// Arm-selection rule (ablations; the paper uses successive elimination).
  ThresholdLearner learner = ThresholdLearner::kSuccessiveElimination;
  /// Carry the revised-simplex basis of the per-slot LP-PT solve into the
  /// next slot's solve (cold start on dimension change). The optimum is
  /// unchanged — only the pivot count drops when consecutive batches keep
  /// their shape, which is the common case under a saturated queue.
  bool warm_start_lp = true;
  /// Pivot budget handed to the per-slot LP solver; 0 picks the solver's
  /// automatic limit. A solve that exhausts the budget returns
  /// kIterationLimit and the batch falls back to greedy placement
  /// (counted in DegradationStats::lp_fallbacks) — a latency guard for
  /// deployments where a slot deadline beats an exact placement.
  int lp_max_iterations = 0;
  /// Anytime pivot budget (lp::SolveBudget::max_pivots): unlike
  /// lp_max_iterations, exhausting it returns the best primal-feasible
  /// iterate found so far (kDeadline), which still drives placement. 0 =
  /// unlimited. A scripted SolverBudgetSqueeze tightens it further.
  int lp_pivot_budget = 0;
  /// Wall-clock deadline for the per-slot LP in milliseconds (0 = none).
  /// Non-deterministic by nature — keep it 0 in reproducible experiments
  /// and let lp_pivot_budget bound the work instead.
  double lp_deadline_ms = 0.0;
  /// Build the per-slot LP-PT through core::IncrementalSlotLp: consecutive
  /// slots mutate the previous slot's model (column deltas for batch churn)
  /// instead of rebuilding every ER_jil column, and the solver repairs the
  /// carried basis across the shape change. The optimum is the same but
  /// column order — and therefore rounding tie-breaks — may differ from the
  /// scratch builder, so this is opt-in and OFF by default to keep golden
  /// outputs bit-identical. Chaos runs (overlay topologies mutate in place)
  /// fall back to the scratch builder automatically.
  bool incremental_lp = false;
};

/// Graceful-degradation accounting of one DynamicRrPolicy instance: how
/// often the slot LP actually drove placement, how often a non-optimal LP
/// status forced the greedy fallback (the failover contract: a failed LP
/// must never turn into an empty assignment), and how displaced streams
/// were recovered.
struct DegradationStats {
  long long lp_solves = 0;
  /// LP returned kInfeasible/kIterationLimit/...: the whole batch fell
  /// back to per-request greedy placement.
  long long lp_fallbacks = 0;
  /// Displaced streams that entered the slot LP for re-placement.
  long long displaced_seen = 0;
  /// ... and were re-placed through the LP's fractional support.
  long long displaced_replaced_lp = 0;
  /// ... and were re-placed by the greedy nearest-fit failover.
  long long displaced_replaced_greedy = 0;
  /// Degradation-ladder attribution: which rung produced each slot's
  /// placement. Rung 0 — warm-started sparse LP; rung 1 — cold sparse LP
  /// (includes the dense engine solve_lp picks for small models); rung 2
  /// — the solver's dense cross-solve after a numerical fault; rung 3 —
  /// per-request greedy (no usable LP solution); rung 4 — carry: even
  /// greedy placed nothing, residents alone stream on.
  long long slots_warm_lp = 0;
  long long slots_cold_lp = 0;
  long long slots_dense_lp = 0;
  long long slots_greedy = 0;
  long long slots_carry = 0;
  /// Budgeted solves whose best-so-far (kDeadline) iterate drove placement.
  long long lp_deadline_used = 0;
  /// Recovery-ladder actions the solver took across all slot LPs
  /// (in-place refactorizations + cold resets + dense cross-solves) —
  /// nonzero whenever a numerical fault was contained, even when the
  /// contained solve still came back optimal.
  long long lp_recovery_actions = 0;
  /// Solves that came back kNumericalError after the solver's own
  /// recovery ladder (refactorize -> cold reset -> dense cross-solve) was
  /// exhausted, or whose model carried non-finite input.
  long long lp_numerical_errors = 0;
  /// Rung of the most recent decision (mirrors sim.degradation_level).
  int last_level = 0;
};

class DynamicRrPolicy final : public OnlinePolicy {
 public:
  DynamicRrPolicy(const mec::Topology& topo, core::AlgorithmParams alg,
                  DynamicRrParams params, util::Rng rng);
  ~DynamicRrPolicy() override;

  SlotDecision decide(const SlotView& view) override;
  void feedback(const SlotFeedback& fb) override;
  std::string name() const override { return "DynamicRR"; }

  /// Checkpoint support (sim/checkpoint.h): every mutable field that can
  /// influence a future decision — learner posteriors, the open reward
  /// window, the warm-start basis and the incremental model (vertex
  /// selection under degeneracy depends on both), degradation counters —
  /// round-trips so a resumed run decides bit-identically. Configuration
  /// (params_, grid_) is reconstructed by the caller, not serialized;
  /// load_state expects a policy built with the original arguments.
  void save_state(util::SnapshotWriter& w) const override;
  void load_state(util::SnapshotReader& r) override;

  /// Introspection for tests/benches. `bandit()` is only meaningful for
  /// discrete learners (everything except kZooming).
  const bandit::LipschitzGrid& grid() const noexcept { return grid_; }
  const bandit::SuccessiveElimination& bandit() const;
  double last_threshold_mhz() const noexcept { return last_threshold_; }
  const DegradationStats& degradation_stats() const noexcept {
    return degradation_;
  }
  const core::IncrementalSlotLp::Stats& incremental_lp_stats() const noexcept {
    return incremental_.stats();
  }

 private:
  /// Places a batch of newly arrived requests — plus displaced streams
  /// needing re-placement — via LP-PT + rounding, falling back to greedy
  /// placement per request when the LP is not optimal.
  void admit_new(const mec::Topology& topo, const SlotView& view,
                 const std::vector<int>& waiting,
                 const std::vector<int>& displaced,
                 std::vector<int>& slots_left,
                 std::vector<double>& residual_mhz, SlotDecision& decision);

  /// Picks the threshold for the next window from the configured learner.
  double next_threshold();
  /// Feeds the closed window's normalized reward back to the learner.
  void learn(double normalized_reward);

  const mec::Topology& topo_;
  core::AlgorithmParams alg_;
  DynamicRrParams params_;
  util::Rng rng_;
  /// LP-PT basis carried across slots (warm starts). The solver itself is
  /// built per call: scripted solver faults vary its options slot to slot.
  lp::WarmStartBasis warm_basis_;
  /// Delta-maintained LP-PT model (only touched when params_.incremental_lp).
  core::IncrementalSlotLp incremental_;
  bandit::LipschitzGrid grid_;
  std::unique_ptr<bandit::Bandit> discrete_;  // null when zooming
  std::unique_ptr<bandit::ZoomingBandit> zoom_;
  int played_arm_ = -1;
  bool window_open_ = false;
  double last_threshold_ = 0.0;
  double adaptive_scale_ = 0.0;
  int window_pos_ = 0;
  double window_reward_ = 0.0;
  DegradationStats degradation_;
  /// Per-slot scratch reused across decide() calls so the steady-state
  /// slot allocates nothing (values are fully rewritten every slot).
  std::vector<int> scratch_allowed_;
  std::vector<std::vector<int>> scratch_residents_;
  std::vector<int> scratch_waiting_;
  std::vector<int> scratch_displaced_;
  std::vector<int> scratch_slots_left_;
  std::vector<double> scratch_residual_mhz_;
  std::vector<int> scratch_ids_;
  std::vector<mec::ARRequest> scratch_batch_;
  std::vector<int> scratch_placement_;
  std::vector<double> scratch_placement_lat_;
  std::vector<double> scratch_mass_;
  std::vector<double> scratch_lat_of_;
};

}  // namespace mecar::sim
