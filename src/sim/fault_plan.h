// Scripted + stochastic fault model for the online simulator — the chaos
// engine behind the resilience studies.
//
// The original simulator knew a single failure mode: the full-station
// outage. Real MEC deployments degrade partially — backhaul links fail or
// inflate their latency, stations brown out rather than die — so the fault
// taxonomy here generalizes it:
//
//  * StationOutage     — a base station serves nothing for a slot window;
//                        resident streams are displaced (progress kept).
//  * CapacityBrownout  — a station's C(bs_i) is scaled to a fraction for a
//                        window (thermal throttling, partial rack failure).
//                        A factor of 0 is a full outage.
//  * LinkOutage        — a backhaul link is removed for a window (fiber
//                        cut). Cutting enough links PARTITIONS the network:
//                        streams whose user can no longer reach their
//                        service instance are displaced.
//  * LinkDegradation   — a link's d^trans is multiplied for a window
//                        (congestion, reroute over a slower path).
//  * SolverBudgetSqueeze — the slot-LP solver's pivot budget is capped for
//                        a window (CPU contention on the orchestrator
//                        node); the anytime simplex must still yield a
//                        feasible placement each slot.
//  * SolverJam         — a numerical fault is injected into the slot-LP
//                        solver for a window, exercising the recovery /
//                        degradation ladder end to end.
//
// A FaultPlan is a static script of such events; snapshot() projects it
// onto one slot as the station availability map plus the
// mec::TopologyPerturbation the simulator feeds to mec::TopologyOverlay.
// generate_chaos samples a plan of spatially *correlated* fault bursts
// (an epicentre station plus its blast radius fails together) from a
// seeded Rng, so resilience sweeps are reproducible under MECAR_THREADS
// parallelism — every trial derives its plan from its own seed.
//
// Plans round-trip through a line-oriented text format (read_fault_plan /
// write_fault_plan) so scenarios can be versioned and replayed:
//
//   # comment
//   station_outage   <station> <from_slot> <until_slot>
//   brownout         <station> <from_slot> <until_slot> <factor>
//   link_outage      <link>    <from_slot> <until_slot>
//   link_degradation <link>    <from_slot> <until_slot> <delay_factor>
//   solver_budget    <from_slot> <until_slot> <max_pivots>
//   solver_jam       <from_slot> <until_slot>
//   crash            <slot>
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "mec/topology_overlay.h"
#include "util/rng.h"

namespace mecar::sim {

/// A base-station outage: the station serves nothing in slots
/// [from_slot, until_slot); resident streams are displaced (they keep
/// their progress but must be re-placed by the policy).
struct StationOutage {
  int station = 0;
  int from_slot = 0;
  int until_slot = 0;
};

/// A capacity brownout: the station's capacity is scaled by `factor` in
/// [0, 1] over [from_slot, until_slot). Overlapping brownouts compound
/// multiplicatively; an effective factor of ~0 behaves like an outage.
struct CapacityBrownout {
  int station = 0;
  int from_slot = 0;
  int until_slot = 0;
  double factor = 0.5;
};

/// A backhaul link outage over [from_slot, until_slot): the link carries
/// nothing; routes through it vanish (possibly partitioning the network).
struct LinkOutage {
  int link = 0;
  int from_slot = 0;
  int until_slot = 0;
};

/// Link latency inflation over [from_slot, until_slot): the link's
/// per-unit transmission delay is multiplied by `delay_factor` (>= 1).
/// Overlapping degradations compound multiplicatively.
struct LinkDegradation {
  int link = 0;
  int from_slot = 0;
  int until_slot = 0;
  double delay_factor = 2.0;
};

/// A solver budget squeeze: the per-slot LP is limited to `max_pivots`
/// simplex pivots over [from_slot, until_slot) — models CPU starvation of
/// the orchestrator. Overlapping squeezes take the tightest budget.
struct SolverBudgetSqueeze {
  int from_slot = 0;
  int until_slot = 0;
  int max_pivots = 8;
};

/// A solver jam: a transient numerical fault (NaN in the factorization
/// path) is injected into every slot LP over [from_slot, until_slot),
/// forcing the solver's recovery ladder to engage.
struct SolverJam {
  int from_slot = 0;
  int until_slot = 0;
};

/// A process crash: the simulator raises SIGKILL at the TOP of `slot`
/// (before any of the slot's work) — the kill-anywhere leg of the
/// checkpoint/restore contract. Unlike every other event this is not a
/// fault the network model absorbs, so crash points do not count as
/// events (a crash-only plan is still `empty()`) and are ignored on
/// `--resume` runs.
struct CrashPoint {
  int slot = 0;
};

/// Projection of a FaultPlan onto one slot.
struct FaultSnapshot {
  /// Per-station availability (station outages + zero-factor brownouts).
  std::vector<char> station_up;
  /// Capacity scales and link perturbations for mec::TopologyOverlay.
  mec::TopologyPerturbation perturbation;
  /// Tightest active solver pivot budget (0 = unlimited).
  int solver_max_pivots = 0;
  /// True when a solver jam is active this slot.
  bool solver_jam = false;
  /// True when anything deviates from the healthy network this slot.
  bool any_fault = false;
};

/// A scripted fault scenario over a simulation horizon.
struct FaultPlan {
  std::vector<StationOutage> station_outages;
  std::vector<CapacityBrownout> brownouts;
  std::vector<LinkOutage> link_outages;
  std::vector<LinkDegradation> link_degradations;
  std::vector<SolverBudgetSqueeze> solver_budgets;
  std::vector<SolverJam> solver_jams;
  std::vector<CrashPoint> crashes;

  /// True when no fault events are scripted. Crash points are NOT events:
  /// they must not arm the chaos machinery (overlays, fault accounting),
  /// so a crash-only plan stays empty() and the engines only consult
  /// crash_at().
  bool empty() const noexcept;
  /// Fault events, crash points excluded (see empty()).
  std::size_t num_events() const noexcept;

  /// True when a crash point is scripted at exactly `slot`.
  bool crash_at(int slot) const noexcept;

  /// Checks ids, windows, and factors against `topo`; throws
  /// std::invalid_argument naming the offending event.
  void validate(const mec::Topology& topo) const;

  /// The availability map + perturbation active at `slot`.
  FaultSnapshot snapshot(const mec::Topology& topo, int slot) const;
};

/// Knobs of the correlated-burst chaos generator. `intensity` is the one
/// sweepable dial: 0 yields an empty plan, 1 the nominal burst rate, and
/// larger values proportionally more bursts.
struct ChaosParams {
  double intensity = 0.5;
  /// Expected bursts per 100 slots at intensity 1.
  double bursts_per_100_slots = 2.0;
  /// Burst duration range, slots.
  int burst_min_slots = 20;
  int burst_max_slots = 80;
  /// Stations hit per burst: the epicentre plus its nearest neighbours.
  int blast_radius = 2;
  /// Per affected station: probability of a full outage (else brownout).
  double p_station_outage = 0.25;
  /// Brownout factor range.
  double brownout_min = 0.2;
  double brownout_max = 0.7;
  /// Per link incident to an affected station: probability the link is
  /// involved at all, and — if involved — of a cut (else degradation).
  double p_link_affected = 0.6;
  double p_link_outage = 0.5;
  /// Delay inflation range for degraded links.
  double delay_scale_min = 2.0;
  double delay_scale_max = 8.0;
  /// Per burst: probability of an accompanying solver fault (a budget
  /// squeeze or a jam over the burst window). 0 draws nothing from the
  /// rng, so existing seeds reproduce their plans bit-for-bit.
  double p_solver_fault = 0.0;
  /// If a solver fault fires: probability it is a jam (else a squeeze).
  double p_solver_jam = 0.5;
  /// Pivot budget range for solver budget squeezes.
  int squeeze_min_pivots = 4;
  int squeeze_max_pivots = 32;
};

/// Samples a fault plan of correlated bursts over `horizon_slots`. All
/// randomness comes from `rng`, so a seed fully determines the plan.
FaultPlan generate_chaos(const mec::Topology& topo, const ChaosParams& params,
                         int horizon_slots, util::Rng& rng);

/// Structured scenario-file parse failure carrying the 1-based line number.
class FaultPlanParseError : public std::invalid_argument {
 public:
  FaultPlanParseError(int line, const std::string& what)
      : std::invalid_argument(what), line_(line) {}
  int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Parses the scenario format documented above. Throws FaultPlanParseError
/// on malformed input; ids are validated later by FaultPlan::validate.
FaultPlan read_fault_plan(std::istream& is);

/// Writes a plan in the scenario format (round-trips through
/// read_fault_plan).
void write_fault_plan(const FaultPlan& plan, std::ostream& os);

}  // namespace mecar::sim
