#include "sim/checkpoint.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <csignal>
#include <cstring>
#include <stdexcept>

#include "util/parse.h"
#include "util/snapshot.h"

namespace mecar::sim {

namespace {

void save_request_state(util::SnapshotWriter& w, const RequestState& st) {
  w.u8(static_cast<std::uint8_t>(st.phase));
  w.i32(st.station);
  w.i32(st.first_service_slot);
  w.u64(static_cast<std::uint64_t>(st.realized_level));
  w.f64(st.demand_mhz);
  w.f64(st.work_total);
  w.f64(st.work_done);
  w.f64(st.latency_ms);
  w.f64(st.reward);
  w.boolean(st.active_this_slot);
  w.u8(static_cast<std::uint8_t>(st.drop_cause));
}

RequestState load_request_state(util::SnapshotReader& r) {
  RequestState st;
  const std::uint8_t phase = r.u8();
  if (phase > static_cast<std::uint8_t>(Phase::kDropped)) {
    throw util::SnapshotParseError(r.offset(),
                                   "SimSnapshot: phase out of range");
  }
  st.phase = static_cast<Phase>(phase);
  st.station = r.i32();
  st.first_service_slot = r.i32();
  st.realized_level = static_cast<std::size_t>(r.u64());
  st.demand_mhz = r.f64();
  st.work_total = r.f64();
  st.work_done = r.f64();
  st.latency_ms = r.f64();
  st.reward = r.f64();
  st.active_this_slot = r.boolean();
  const std::uint8_t cause = r.u8();
  if (cause > static_cast<std::uint8_t>(DropCause::kPartition)) {
    throw util::SnapshotParseError(r.offset(),
                                   "SimSnapshot: drop cause out of range");
  }
  st.drop_cause = static_cast<DropCause>(cause);
  return st;
}

void save_resilience(util::SnapshotWriter& w, const ResilienceReport& rr) {
  w.i32(rr.fault_epochs);
  w.i32(rr.displaced_outage);
  w.i32(rr.displaced_partition);
  w.i32(rr.recovered);
  w.f64(rr.mean_recovery_slots);
  w.i32(rr.unrecovered);
  w.i32(rr.dropped_starvation);
  w.i32(rr.dropped_fault);
  w.i32(rr.dropped_partition);
  w.f64(rr.fault_dropped_expected_reward);
}

ResilienceReport load_resilience(util::SnapshotReader& r) {
  ResilienceReport rr;
  rr.fault_epochs = r.i32();
  rr.displaced_outage = r.i32();
  rr.displaced_partition = r.i32();
  rr.recovered = r.i32();
  rr.mean_recovery_slots = r.f64();
  rr.unrecovered = r.i32();
  rr.dropped_starvation = r.i32();
  rr.dropped_fault = r.i32();
  rr.dropped_partition = r.i32();
  rr.fault_dropped_expected_reward = r.f64();
  return rr;
}

}  // namespace

void save_online_metrics(util::SnapshotWriter& w, const OnlineMetrics& m) {
  w.f64(m.total_reward);
  w.i32(m.arrived);
  w.i32(m.completed);
  w.i32(m.dropped);
  w.i32(m.unfinished);
  w.i32(m.displaced);
  w.i32(m.handovers);
  save_resilience(w, m.resilience);
  w.f64(m.avg_latency_ms);
  w.vec(m.per_slot_reward, [&](double v) { w.f64(v); });
  w.vec(m.completed_latencies_ms, [&](double v) { w.f64(v); });
  w.vec(m.per_slot_utilization, [&](double v) { w.f64(v); });
  w.vec(m.service_ratios, [&](double v) { w.f64(v); });
}

OnlineMetrics load_online_metrics(util::SnapshotReader& r) {
  OnlineMetrics m;
  m.total_reward = r.f64();
  m.arrived = r.i32();
  m.completed = r.i32();
  m.dropped = r.i32();
  m.unfinished = r.i32();
  m.displaced = r.i32();
  m.handovers = r.i32();
  m.resilience = load_resilience(r);
  m.avg_latency_ms = r.f64();
  m.per_slot_reward = r.vec<double>([&] { return r.f64(); });
  m.completed_latencies_ms = r.vec<double>([&] { return r.f64(); });
  m.per_slot_utilization = r.vec<double>([&] { return r.f64(); });
  m.service_ratios = r.vec<double>([&] { return r.f64(); });
  return m;
}

void save_sim_snapshot(util::SnapshotWriter& w, const SimSnapshot& s) {
  w.i32(s.next_slot);
  w.vec(s.home_station, [&](int v) { w.i32(v); });
  w.vec(s.states, [&](const RequestState& st) { save_request_state(w, st); });
  save_online_metrics(w, s.metrics);
  w.vec(s.fault_blocked, [&](int v) { w.i32(v); });
  w.vec(s.cut_off, [&](char v) { w.boolean(v != 0); });
  w.vec(s.displaced_at, [&](int v) { w.i32(v); });
  w.f64(s.recovery_slots_total);
  w.vec(s.up, [&](char v) { w.boolean(v != 0); });
  w.vec(s.prev_up, [&](char v) { w.boolean(v != 0); });
  w.i32(s.overlay_epochs);
  w.i32(s.epoch_index);
  w.i32(s.epoch_begin_slot);
  w.bytes(s.policy_state);
}

SimSnapshot load_sim_snapshot(util::SnapshotReader& r) {
  SimSnapshot s;
  s.next_slot = r.i32();
  s.home_station = r.vec<int>([&] { return r.i32(); });
  s.states = r.vec<RequestState>([&] { return load_request_state(r); });
  s.metrics = load_online_metrics(r);
  s.fault_blocked = r.vec<int>([&] { return r.i32(); });
  s.cut_off = r.vec<char>([&] { return char(r.boolean() ? 1 : 0); });
  s.displaced_at = r.vec<int>([&] { return r.i32(); });
  s.recovery_slots_total = r.f64();
  s.up = r.vec<char>([&] { return char(r.boolean() ? 1 : 0); });
  s.prev_up = r.vec<char>([&] { return char(r.boolean() ? 1 : 0); });
  s.overlay_epochs = r.i32();
  s.epoch_index = r.i32();
  s.epoch_begin_slot = r.i32();
  s.policy_state = r.bytes();
  if (s.home_station.size() != s.states.size() ||
      s.fault_blocked.size() != s.states.size() ||
      s.cut_off.size() != s.states.size() ||
      s.displaced_at.size() != s.states.size()) {
    throw util::SnapshotParseError(
        r.offset(), "SimSnapshot: per-request vector size mismatch");
  }
  return s;
}

namespace {

constexpr const char* kCkptPrefix = "ckpt-";
constexpr const char* kCkptSuffix = ".snap";

/// Parses "ckpt-<gen>.snap"; returns -1 for anything else.
long long parse_generation(const std::string& name) {
  const std::size_t prefix = std::strlen(kCkptPrefix);
  const std::size_t suffix = std::strlen(kCkptSuffix);
  if (name.size() <= prefix + suffix) return -1;
  if (name.compare(0, prefix, kCkptPrefix) != 0) return -1;
  if (name.compare(name.size() - suffix, suffix, kCkptSuffix) != 0) return -1;
  const auto parsed =
      util::parse_int(name.substr(prefix, name.size() - prefix - suffix));
  if (!parsed || *parsed < 0) return -1;
  return *parsed;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST) {
    throw std::runtime_error("CheckpointStore: cannot create " + dir_ + ": " +
                             std::strerror(errno));
  }
}

std::vector<std::string> CheckpointStore::generations() const {
  std::vector<std::pair<long long, std::string>> found;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) {
    throw std::runtime_error("CheckpointStore: cannot open " + dir_ + ": " +
                             std::strerror(errno));
  }
  while (dirent* e = ::readdir(d)) {
    const long long gen = parse_generation(e->d_name);
    if (gen >= 0) found.emplace_back(gen, dir_ + "/" + e->d_name);
  }
  ::closedir(d);
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [gen, path] : found) out.push_back(std::move(path));
  return out;
}

std::string CheckpointStore::write(const std::vector<std::uint8_t>& framed) {
  long long next = 0;
  std::vector<std::pair<long long, std::string>> existing;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) {
    throw std::runtime_error("CheckpointStore: cannot open " + dir_ + ": " +
                             std::strerror(errno));
  }
  while (dirent* e = ::readdir(d)) {
    const long long gen = parse_generation(e->d_name);
    if (gen < 0) continue;
    existing.emplace_back(gen, dir_ + "/" + e->d_name);
    next = std::max(next, gen + 1);
  }
  ::closedir(d);
  const std::string path =
      dir_ + "/" + kCkptPrefix + std::to_string(next) + kCkptSuffix;
  util::atomic_write_file(path, framed);
  // Keep the new generation plus the newest pre-existing one: if this
  // write's file is later found corrupted, recovery still has somewhere
  // to fall.
  std::sort(existing.begin(), existing.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 1; i < existing.size(); ++i) {
    std::remove(existing[i].second.c_str());
  }
  return path;
}

std::vector<std::uint8_t> CheckpointStore::read_file(const std::string& path) {
  return util::read_file_bytes(path);
}

namespace {

std::atomic<int> g_crash_at_slot{-1};
std::atomic<int> g_crash_after_units{0};
std::atomic<bool> g_crashes_disarmed{false};

[[noreturn]] void die(const char* kind, long long value) {
  std::fprintf(stderr, "mecar: injected crash (%s %lld): raising SIGKILL\n",
               kind, value);
  std::fflush(stderr);
  std::raise(SIGKILL);
  // SIGKILL cannot be handled; abort placates [[noreturn]] should raise
  // somehow return on an exotic platform.
  std::abort();
}

}  // namespace

void arm_crash_at_slot(int slot) {
  g_crash_at_slot.store(slot, std::memory_order_relaxed);
}

void arm_crash_after_units(int units) {
  g_crash_after_units.store(units, std::memory_order_relaxed);
}

void disarm_crashes() {
  g_crashes_disarmed.store(true, std::memory_order_relaxed);
  g_crash_at_slot.store(-1, std::memory_order_relaxed);
  g_crash_after_units.store(0, std::memory_order_relaxed);
}

void crash_point(int slot, bool plan_crash) {
  if (g_crashes_disarmed.load(std::memory_order_relaxed)) return;
  const int armed = g_crash_at_slot.load(std::memory_order_relaxed);
  if (armed >= 0 && slot == armed) die("slot", slot);
  if (plan_crash) die("plan slot", slot);
}

void unit_crash_point(int completed_units) {
  if (g_crashes_disarmed.load(std::memory_order_relaxed)) return;
  const int armed = g_crash_after_units.load(std::memory_order_relaxed);
  if (armed > 0 && completed_units >= armed) die("unit", completed_units);
}

}  // namespace mecar::sim
