#include "sim/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/parse.h"

namespace mecar::sim {

namespace {

/// Brownout factors at or below this are full outages for the window.
constexpr double kOutageFactor = 1e-6;

bool active(int from_slot, int until_slot, int slot) {
  return slot >= from_slot && slot < until_slot;
}

void check_window(const char* kind, int from_slot, int until_slot) {
  if (from_slot < 0 || until_slot < from_slot) {
    throw std::invalid_argument(std::string("FaultPlan: ") + kind +
                                " has a bad slot window [" +
                                std::to_string(from_slot) + ", " +
                                std::to_string(until_slot) + ")");
  }
}

void check_station(const mec::Topology& topo, const char* kind, int station) {
  if (station < 0 || station >= topo.num_stations()) {
    throw std::invalid_argument(std::string("FaultPlan: ") + kind +
                                " names station " + std::to_string(station) +
                                " outside [0, " +
                                std::to_string(topo.num_stations()) + ")");
  }
}

void check_link(const mec::Topology& topo, const char* kind, int link) {
  if (link < 0 || static_cast<std::size_t>(link) >= topo.links().size()) {
    throw std::invalid_argument(std::string("FaultPlan: ") + kind +
                                " names link " + std::to_string(link) +
                                " outside [0, " +
                                std::to_string(topo.links().size()) + ")");
  }
}

}  // namespace

bool FaultPlan::empty() const noexcept { return num_events() == 0; }

std::size_t FaultPlan::num_events() const noexcept {
  return station_outages.size() + brownouts.size() + link_outages.size() +
         link_degradations.size() + solver_budgets.size() + solver_jams.size();
}

bool FaultPlan::crash_at(int slot) const noexcept {
  for (const CrashPoint& c : crashes) {
    if (c.slot == slot) return true;
  }
  return false;
}

void FaultPlan::validate(const mec::Topology& topo) const {
  for (const StationOutage& e : station_outages) {
    check_station(topo, "station_outage", e.station);
    check_window("station_outage", e.from_slot, e.until_slot);
  }
  for (const CapacityBrownout& e : brownouts) {
    check_station(topo, "brownout", e.station);
    check_window("brownout", e.from_slot, e.until_slot);
    if (e.factor < 0.0 || e.factor > 1.0) {
      throw std::invalid_argument(
          "FaultPlan: brownout factor outside [0, 1]: " +
          std::to_string(e.factor));
    }
  }
  for (const LinkOutage& e : link_outages) {
    check_link(topo, "link_outage", e.link);
    check_window("link_outage", e.from_slot, e.until_slot);
  }
  for (const LinkDegradation& e : link_degradations) {
    check_link(topo, "link_degradation", e.link);
    check_window("link_degradation", e.from_slot, e.until_slot);
    if (e.delay_factor < 1.0) {
      throw std::invalid_argument(
          "FaultPlan: link degradation factor < 1: " +
          std::to_string(e.delay_factor));
    }
  }
  for (const SolverBudgetSqueeze& e : solver_budgets) {
    check_window("solver_budget", e.from_slot, e.until_slot);
    if (e.max_pivots < 1) {
      throw std::invalid_argument(
          "FaultPlan: solver_budget max_pivots < 1: " +
          std::to_string(e.max_pivots));
    }
  }
  for (const SolverJam& e : solver_jams) {
    check_window("solver_jam", e.from_slot, e.until_slot);
  }
  for (const CrashPoint& e : crashes) {
    if (e.slot < 0) {
      throw std::invalid_argument("FaultPlan: crash at negative slot " +
                                  std::to_string(e.slot));
    }
  }
}

FaultSnapshot FaultPlan::snapshot(const mec::Topology& topo, int slot) const {
  FaultSnapshot snap;
  const auto stations = static_cast<std::size_t>(topo.num_stations());
  const auto links = topo.links().size();
  snap.station_up.assign(stations, 1);

  for (const StationOutage& e : station_outages) {
    if (active(e.from_slot, e.until_slot, slot)) {
      snap.station_up[static_cast<std::size_t>(e.station)] = 0;
      snap.any_fault = true;
    }
  }
  std::vector<double> capacity_scale(stations, 1.0);
  bool any_brownout = false;
  for (const CapacityBrownout& e : brownouts) {
    if (!active(e.from_slot, e.until_slot, slot)) continue;
    capacity_scale[static_cast<std::size_t>(e.station)] *= e.factor;
    any_brownout = true;
    snap.any_fault = true;
  }
  if (any_brownout) {
    // A brownout to (effectively) zero is an outage: gate the station off
    // via the availability map and keep the overlay scale harmless so the
    // effective topology stays constructible.
    for (std::size_t i = 0; i < stations; ++i) {
      if (capacity_scale[i] <= kOutageFactor) {
        snap.station_up[i] = 0;
        capacity_scale[i] = 1.0;
      }
    }
    if (std::any_of(capacity_scale.begin(), capacity_scale.end(),
                    [](double s) { return s != 1.0; })) {
      snap.perturbation.capacity_scale = std::move(capacity_scale);
    }
  }

  std::vector<char> link_down(links, 0);
  bool any_link_down = false;
  for (const LinkOutage& e : link_outages) {
    if (!active(e.from_slot, e.until_slot, slot)) continue;
    link_down[static_cast<std::size_t>(e.link)] = 1;
    any_link_down = true;
    snap.any_fault = true;
  }
  if (any_link_down) snap.perturbation.link_down = std::move(link_down);

  std::vector<double> delay_scale(links, 1.0);
  bool any_degraded = false;
  for (const LinkDegradation& e : link_degradations) {
    if (!active(e.from_slot, e.until_slot, slot)) continue;
    delay_scale[static_cast<std::size_t>(e.link)] *= e.delay_factor;
    any_degraded = true;
    snap.any_fault = true;
  }
  if (any_degraded) snap.perturbation.link_delay_scale = std::move(delay_scale);

  for (const SolverBudgetSqueeze& e : solver_budgets) {
    if (!active(e.from_slot, e.until_slot, slot)) continue;
    // Overlapping squeezes take the tightest budget.
    if (snap.solver_max_pivots == 0 ||
        e.max_pivots < snap.solver_max_pivots) {
      snap.solver_max_pivots = e.max_pivots;
    }
    snap.any_fault = true;
  }
  for (const SolverJam& e : solver_jams) {
    if (!active(e.from_slot, e.until_slot, slot)) continue;
    snap.solver_jam = true;
    snap.any_fault = true;
  }

  return snap;
}

FaultPlan generate_chaos(const mec::Topology& topo, const ChaosParams& params,
                         int horizon_slots, util::Rng& rng) {
  if (horizon_slots <= 0) {
    throw std::invalid_argument("generate_chaos: horizon_slots <= 0");
  }
  if (params.intensity < 0.0 || params.bursts_per_100_slots < 0.0) {
    throw std::invalid_argument("generate_chaos: negative rate");
  }
  if (params.burst_min_slots < 1 ||
      params.burst_max_slots < params.burst_min_slots) {
    throw std::invalid_argument("generate_chaos: bad burst length range");
  }
  FaultPlan plan;
  const double expected = params.intensity * params.bursts_per_100_slots *
                          horizon_slots / 100.0;
  int bursts = static_cast<int>(std::floor(expected));
  if (rng.bernoulli(expected - std::floor(expected))) ++bursts;

  for (int b = 0; b < bursts; ++b) {
    const int from = static_cast<int>(
        rng.uniform_int(0, std::max(0, horizon_slots - 1)));
    const int len = static_cast<int>(rng.uniform_int(
        params.burst_min_slots, params.burst_max_slots));
    const int until = std::min(horizon_slots, from + len);
    const int epicentre = static_cast<int>(
        rng.uniform_int(0, topo.num_stations() - 1));

    // The blast hits the epicentre and its nearest neighbours together —
    // faults in one rack row / power domain are spatially correlated.
    const std::vector<int> order = topo.stations_by_distance(epicentre);
    const int radius =
        std::min<int>(std::max(1, params.blast_radius),
                      static_cast<int>(order.size()));
    std::vector<char> hit(static_cast<std::size_t>(topo.num_stations()), 0);
    for (int k = 0; k < radius; ++k) {
      const int bs = order[static_cast<std::size_t>(k)];
      hit[static_cast<std::size_t>(bs)] = 1;
      if (rng.bernoulli(params.p_station_outage)) {
        plan.station_outages.push_back({bs, from, until});
      } else {
        const double factor =
            rng.uniform(params.brownout_min, params.brownout_max);
        plan.brownouts.push_back({bs, from, until, factor});
      }
    }
    for (std::size_t li = 0; li < topo.links().size(); ++li) {
      const mec::Link& link = topo.links()[li];
      if (hit[static_cast<std::size_t>(link.a)] == 0 &&
          hit[static_cast<std::size_t>(link.b)] == 0) {
        continue;
      }
      if (!rng.bernoulli(params.p_link_affected)) continue;
      if (rng.bernoulli(params.p_link_outage)) {
        plan.link_outages.push_back({static_cast<int>(li), from, until});
      } else {
        const double scale =
            rng.uniform(params.delay_scale_min, params.delay_scale_max);
        plan.link_degradations.push_back(
            {static_cast<int>(li), from, until, scale});
      }
    }
    // Solver faults ride along with a burst: the orchestrator shares the
    // failing infrastructure. Gated on p_solver_fault > 0 so plans from
    // existing seeds are reproduced draw-for-draw.
    if (params.p_solver_fault > 0.0 &&
        rng.bernoulli(params.p_solver_fault)) {
      if (rng.bernoulli(params.p_solver_jam)) {
        plan.solver_jams.push_back({from, until});
      } else {
        const int pivots = static_cast<int>(rng.uniform_int(
            params.squeeze_min_pivots, params.squeeze_max_pivots));
        plan.solver_budgets.push_back({from, until, pivots});
      }
    }
  }
  return plan;
}

FaultPlan read_fault_plan(std::istream& is) {
  FaultPlan plan;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream tokens(line);
    std::string kind;
    if (!(tokens >> kind) || kind[0] == '#') continue;

    std::vector<std::string> args;
    std::string tok;
    while (tokens >> tok) args.push_back(tok);

    const auto want_args = [&](std::size_t n) {
      if (args.size() != n) {
        throw FaultPlanParseError(
            lineno, "fault plan line " + std::to_string(lineno) + ": '" +
                        kind + "' expects " + std::to_string(n) +
                        " fields, got " + std::to_string(args.size()));
      }
    };
    const auto int_arg = [&](std::size_t k, const char* field) {
      const auto v = util::parse_int(args[k]);
      if (!v) {
        throw FaultPlanParseError(
            lineno, "fault plan line " + std::to_string(lineno) + ": " +
                        field + " is not an integer: '" + args[k] + "'");
      }
      return static_cast<int>(*v);
    };
    const auto double_arg = [&](std::size_t k, const char* field) {
      const auto v = util::parse_double(args[k]);
      if (!v) {
        throw FaultPlanParseError(
            lineno, "fault plan line " + std::to_string(lineno) + ": " +
                        field + " is not a number: '" + args[k] + "'");
      }
      return *v;
    };

    if (kind == "station_outage") {
      want_args(3);
      plan.station_outages.push_back({int_arg(0, "station"),
                                      int_arg(1, "from_slot"),
                                      int_arg(2, "until_slot")});
    } else if (kind == "brownout") {
      want_args(4);
      plan.brownouts.push_back({int_arg(0, "station"), int_arg(1, "from_slot"),
                                int_arg(2, "until_slot"),
                                double_arg(3, "factor")});
    } else if (kind == "link_outage") {
      want_args(3);
      plan.link_outages.push_back({int_arg(0, "link"), int_arg(1, "from_slot"),
                                   int_arg(2, "until_slot")});
    } else if (kind == "link_degradation") {
      want_args(4);
      plan.link_degradations.push_back(
          {int_arg(0, "link"), int_arg(1, "from_slot"),
           int_arg(2, "until_slot"), double_arg(3, "delay_factor")});
    } else if (kind == "solver_budget") {
      want_args(3);
      plan.solver_budgets.push_back({int_arg(0, "from_slot"),
                                     int_arg(1, "until_slot"),
                                     int_arg(2, "max_pivots")});
    } else if (kind == "solver_jam") {
      want_args(2);
      plan.solver_jams.push_back(
          {int_arg(0, "from_slot"), int_arg(1, "until_slot")});
    } else if (kind == "crash") {
      want_args(1);
      plan.crashes.push_back({int_arg(0, "slot")});
    } else {
      throw FaultPlanParseError(
          lineno, "fault plan line " + std::to_string(lineno) +
                      ": unknown fault kind '" + kind + "'");
    }
  }
  return plan;
}

void write_fault_plan(const FaultPlan& plan, std::ostream& os) {
  os << "# mecar fault scenario\n";
  for (const StationOutage& e : plan.station_outages) {
    os << "station_outage " << e.station << ' ' << e.from_slot << ' '
       << e.until_slot << '\n';
  }
  for (const CapacityBrownout& e : plan.brownouts) {
    os << "brownout " << e.station << ' ' << e.from_slot << ' '
       << e.until_slot << ' ' << e.factor << '\n';
  }
  for (const LinkOutage& e : plan.link_outages) {
    os << "link_outage " << e.link << ' ' << e.from_slot << ' '
       << e.until_slot << '\n';
  }
  for (const LinkDegradation& e : plan.link_degradations) {
    os << "link_degradation " << e.link << ' ' << e.from_slot << ' '
       << e.until_slot << ' ' << e.delay_factor << '\n';
  }
  for (const SolverBudgetSqueeze& e : plan.solver_budgets) {
    os << "solver_budget " << e.from_slot << ' ' << e.until_slot << ' '
       << e.max_pivots << '\n';
  }
  for (const SolverJam& e : plan.solver_jams) {
    os << "solver_jam " << e.from_slot << ' ' << e.until_slot << '\n';
  }
  for (const CrashPoint& e : plan.crashes) {
    os << "crash " << e.slot << '\n';
  }
}

}  // namespace mecar::sim
