#include "obs/telemetry.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "util/json_writer.h"
#include "util/snapshot.h"
#include "util/stats.h"

namespace mecar::obs {

std::string_view to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

namespace {

/// Monotonic id shared by every registry instance ever constructed; lets
/// the thread-local shard cache detect a stale entry whose registry was
/// destroyed and another allocated at the same address.
std::atomic<std::uint64_t>& generation_source() {
  static std::atomic<std::uint64_t> gen{0};
  return gen;
}

struct HistData {
  std::vector<std::uint64_t> counts;  // boundaries.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

}  // namespace

struct MetricRegistry::Shard {
  struct GaugeCell {
    double value = 0.0;
    std::uint64_t version = 0;  // 0 = never set
  };
  std::vector<double> counters;
  std::vector<GaugeCell> gauges;
  std::vector<HistData> hists;
};

struct MetricRegistry::Impl {
  struct CounterDef {
    std::string name, help;
  };
  struct GaugeDef {
    std::string name, help;
  };
  struct HistDef {
    std::string name, help;
    std::vector<double> boundaries;
  };

  mutable std::mutex mutex;
  std::uint64_t generation = 0;
  std::vector<CounterDef> counter_defs;
  std::vector<GaugeDef> gauge_defs;
  std::vector<HistDef> hist_defs;
  std::vector<std::unique_ptr<Shard>> shards;
  /// Global version source for gauge last-write-wins resolution.
  std::atomic<std::uint64_t> gauge_version{0};
};

namespace {

/// Thread-local shard cache: (registry address, generation) -> shard. The
/// generation check keeps a recycled registry address from resurrecting a
/// destroyed registry's shard pointer.
struct TlsEntry {
  const void* reg = nullptr;
  std::uint64_t generation = 0;
  void* shard = nullptr;  // MetricRegistry::Shard* (private type)
};
thread_local std::vector<TlsEntry> tls_shards;

}  // namespace

MetricRegistry::MetricRegistry() : impl_(std::make_unique<Impl>()) {
  impl_->generation = generation_source().fetch_add(1) + 1;
}

MetricRegistry::~MetricRegistry() = default;

MetricRegistry::Shard& MetricRegistry::local_shard() const {
  for (TlsEntry& entry : tls_shards) {
    if (entry.reg == this && entry.generation == impl_->generation) {
      return *static_cast<Shard*>(entry.shard);
    }
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto shard = std::make_unique<Shard>();
  shard->counters.assign(impl_->counter_defs.size(), 0.0);
  shard->gauges.assign(impl_->gauge_defs.size(), Shard::GaugeCell{});
  shard->hists.resize(impl_->hist_defs.size());
  for (std::size_t h = 0; h < impl_->hist_defs.size(); ++h) {
    shard->hists[h].counts.assign(impl_->hist_defs[h].boundaries.size() + 1,
                                  0);
  }
  Shard* raw = shard.get();
  impl_->shards.push_back(std::move(shard));
  // Replace a stale entry for this address, if any.
  for (TlsEntry& entry : tls_shards) {
    if (entry.reg == this) {
      entry.generation = impl_->generation;
      entry.shard = raw;
      return *raw;
    }
  }
  tls_shards.push_back(TlsEntry{this, impl_->generation, raw});
  return *raw;
}

Counter MetricRegistry::counter(std::string_view name,
                                std::string_view help) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& def : impl_->gauge_defs) {
    if (def.name == name) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' already registered as a gauge");
    }
  }
  for (const auto& def : impl_->hist_defs) {
    if (def.name == name) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' already registered as a histogram");
    }
  }
  for (std::size_t i = 0; i < impl_->counter_defs.size(); ++i) {
    if (impl_->counter_defs[i].name == name) {
      return Counter(this, static_cast<int>(i));
    }
  }
  impl_->counter_defs.push_back(
      Impl::CounterDef{std::string(name), std::string(help)});
  return Counter(this, static_cast<int>(impl_->counter_defs.size()) - 1);
}

Gauge MetricRegistry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& def : impl_->counter_defs) {
    if (def.name == name) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' already registered as a counter");
    }
  }
  for (const auto& def : impl_->hist_defs) {
    if (def.name == name) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' already registered as a histogram");
    }
  }
  for (std::size_t i = 0; i < impl_->gauge_defs.size(); ++i) {
    if (impl_->gauge_defs[i].name == name) {
      return Gauge(this, static_cast<int>(i));
    }
  }
  impl_->gauge_defs.push_back(
      Impl::GaugeDef{std::string(name), std::string(help)});
  return Gauge(this, static_cast<int>(impl_->gauge_defs.size()) - 1);
}

Histogram MetricRegistry::histogram(std::string_view name,
                                    std::vector<double> boundaries,
                                    std::string_view help) {
  if (boundaries.empty()) {
    throw std::invalid_argument("histogram '" + std::string(name) +
                                "': no boundaries");
  }
  if (!std::is_sorted(boundaries.begin(), boundaries.end())) {
    throw std::invalid_argument("histogram '" + std::string(name) +
                                "': boundaries not sorted");
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& def : impl_->counter_defs) {
    if (def.name == name) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' already registered as a counter");
    }
  }
  for (const auto& def : impl_->gauge_defs) {
    if (def.name == name) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' already registered as a gauge");
    }
  }
  for (std::size_t i = 0; i < impl_->hist_defs.size(); ++i) {
    if (impl_->hist_defs[i].name == name) {
      if (impl_->hist_defs[i].boundaries != boundaries) {
        throw std::logic_error("histogram '" + std::string(name) +
                               "' re-registered with different boundaries");
      }
      return Histogram(this, static_cast<int>(i));
    }
  }
  impl_->hist_defs.push_back(Impl::HistDef{std::string(name),
                                           std::string(help),
                                           std::move(boundaries)});
  return Histogram(this, static_cast<int>(impl_->hist_defs.size()) - 1);
}

void MetricRegistry::record_counter(int id, double delta) const noexcept {
  Shard& shard = local_shard();
  if (static_cast<std::size_t>(id) >= shard.counters.size()) {
    shard.counters.resize(static_cast<std::size_t>(id) + 1, 0.0);
  }
  shard.counters[static_cast<std::size_t>(id)] += delta;
}

void MetricRegistry::record_gauge(int id, double value) const noexcept {
  Shard& shard = local_shard();
  if (static_cast<std::size_t>(id) >= shard.gauges.size()) {
    shard.gauges.resize(static_cast<std::size_t>(id) + 1);
  }
  Shard::GaugeCell& cell = shard.gauges[static_cast<std::size_t>(id)];
  cell.value = value;
  cell.version =
      impl_->gauge_version.fetch_add(1, std::memory_order_relaxed) + 1;
}

void MetricRegistry::record_histogram(int id, double value) const noexcept {
  Shard& shard = local_shard();
  std::size_t num_bounds = 0;
  {
    // The boundary list is immutable after registration; reading its size
    // without the lock is safe because the def vector only grows and the
    // recording thread's handle proves the def exists.
    num_bounds = impl_->hist_defs[static_cast<std::size_t>(id)]
                     .boundaries.size();
  }
  if (static_cast<std::size_t>(id) >= shard.hists.size()) {
    shard.hists.resize(static_cast<std::size_t>(id) + 1);
  }
  HistData& h = shard.hists[static_cast<std::size_t>(id)];
  if (h.counts.size() != num_bounds + 1) h.counts.assign(num_bounds + 1, 0);
  const auto& bounds =
      impl_->hist_defs[static_cast<std::size_t>(id)].boundaries;
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds.begin());
  ++h.counts[bucket];
  ++h.count;
  h.sum += value;
  h.min = std::min(h.min, value);
  h.max = std::max(h.max, value);
}

void Counter::add(double delta) const noexcept {
#if MECAR_TELEMETRY_ENABLED
  if (reg_ != nullptr) reg_->record_counter(id_, delta);
#else
  (void)delta;
#endif
}

void Gauge::set(double value) const noexcept {
#if MECAR_TELEMETRY_ENABLED
  if (reg_ != nullptr) reg_->record_gauge(id_, value);
#else
  (void)value;
#endif
}

void Histogram::observe(double value) const noexcept {
#if MECAR_TELEMETRY_ENABLED
  if (reg_ != nullptr) reg_->record_histogram(id_, value);
#else
  (void)value;
#endif
}

MetricsSnapshot MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  MetricsSnapshot out;
  out.counters.reserve(impl_->counter_defs.size());
  for (std::size_t i = 0; i < impl_->counter_defs.size(); ++i) {
    CounterSnapshot c;
    c.name = impl_->counter_defs[i].name;
    c.help = impl_->counter_defs[i].help;
    for (const auto& shard : impl_->shards) {
      if (i < shard->counters.size()) c.value += shard->counters[i];
    }
    out.counters.push_back(std::move(c));
  }
  out.gauges.reserve(impl_->gauge_defs.size());
  for (std::size_t i = 0; i < impl_->gauge_defs.size(); ++i) {
    GaugeSnapshot g;
    g.name = impl_->gauge_defs[i].name;
    g.help = impl_->gauge_defs[i].help;
    std::uint64_t best_version = 0;
    for (const auto& shard : impl_->shards) {
      if (i >= shard->gauges.size()) continue;
      const Shard::GaugeCell& cell = shard->gauges[i];
      if (cell.version > best_version) {
        best_version = cell.version;
        g.value = cell.value;
      }
    }
    g.ever_set = best_version > 0;
    out.gauges.push_back(std::move(g));
  }
  out.histograms.reserve(impl_->hist_defs.size());
  for (std::size_t i = 0; i < impl_->hist_defs.size(); ++i) {
    HistogramSnapshot h;
    h.name = impl_->hist_defs[i].name;
    h.help = impl_->hist_defs[i].help;
    h.boundaries = impl_->hist_defs[i].boundaries;
    h.counts.assign(h.boundaries.size() + 1, 0);
    for (const auto& shard : impl_->shards) {
      if (i >= shard->hists.size()) continue;
      const HistData& data = shard->hists[i];
      if (data.count == 0) continue;
      for (std::size_t b = 0;
           b < data.counts.size() && b < h.counts.size(); ++b) {
        h.counts[b] += data.counts[b];
      }
      h.count += data.count;
      h.sum += data.sum;
      h.min = std::min(h.min, data.min);
      h.max = std::max(h.max, data.max);
    }
    out.histograms.push_back(std::move(h));
  }
  return out;
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& shard : impl_->shards) {
    std::fill(shard->counters.begin(), shard->counters.end(), 0.0);
    std::fill(shard->gauges.begin(), shard->gauges.end(),
              Shard::GaugeCell{});
    for (HistData& h : shard->hists) {
      std::fill(h.counts.begin(), h.counts.end(), 0);
      h.count = 0;
      h.sum = 0.0;
      h.min = std::numeric_limits<double>::infinity();
      h.max = -std::numeric_limits<double>::infinity();
    }
  }
}

void MetricRegistry::restore(const MetricsSnapshot& snapshot) {
  // Acquire the calling thread's shard BEFORE the lock (a cache miss in
  // local_shard takes the same mutex). The restored totals all land in
  // this one shard; every other shard is zeroed, so a subsequent
  // snapshot() sums back to exactly the restored values.
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& s : impl_->shards) {
    std::fill(s->counters.begin(), s->counters.end(), 0.0);
    std::fill(s->gauges.begin(), s->gauges.end(), Shard::GaugeCell{});
    for (HistData& h : s->hists) {
      std::fill(h.counts.begin(), h.counts.end(), 0);
      h.count = 0;
      h.sum = 0.0;
      h.min = std::numeric_limits<double>::infinity();
      h.max = -std::numeric_limits<double>::infinity();
    }
  }
  // Snapshot entries are matched to the live catalog by name; entries for
  // metrics this build does not register are ignored.
  for (std::size_t i = 0; i < impl_->counter_defs.size(); ++i) {
    const CounterSnapshot* c =
        snapshot.find_counter(impl_->counter_defs[i].name);
    if (c == nullptr || c->value == 0.0) continue;
    if (i >= shard.counters.size()) shard.counters.resize(i + 1, 0.0);
    shard.counters[i] = c->value;
  }
  for (std::size_t i = 0; i < impl_->gauge_defs.size(); ++i) {
    const GaugeSnapshot* g = snapshot.find_gauge(impl_->gauge_defs[i].name);
    if (g == nullptr || !g->ever_set) continue;
    if (i >= shard.gauges.size()) shard.gauges.resize(i + 1);
    Shard::GaugeCell& cell = shard.gauges[i];
    cell.value = g->value;
    cell.version =
        impl_->gauge_version.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  for (std::size_t i = 0; i < impl_->hist_defs.size(); ++i) {
    const HistogramSnapshot* h =
        snapshot.find_histogram(impl_->hist_defs[i].name);
    if (h == nullptr || h->count == 0) continue;
    if (h->boundaries != impl_->hist_defs[i].boundaries) continue;
    if (i >= shard.hists.size()) shard.hists.resize(i + 1);
    HistData& data = shard.hists[i];
    data.counts = h->counts;
    data.counts.resize(impl_->hist_defs[i].boundaries.size() + 1, 0);
    data.count = h->count;
    data.sum = h->sum;
    data.min = h->min;
    data.max = h->max;
  }
}

std::vector<MetricDescriptor> MetricRegistry::descriptors() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<MetricDescriptor> out;
  out.reserve(impl_->counter_defs.size() + impl_->gauge_defs.size() +
              impl_->hist_defs.size());
  for (const auto& def : impl_->counter_defs) {
    out.push_back(MetricDescriptor{def.name, def.help, MetricKind::kCounter,
                                   {}});
  }
  for (const auto& def : impl_->gauge_defs) {
    out.push_back(MetricDescriptor{def.name, def.help, MetricKind::kGauge,
                                   {}});
  }
  for (const auto& def : impl_->hist_defs) {
    out.push_back(MetricDescriptor{def.name, def.help,
                                   MetricKind::kHistogram, def.boundaries});
  }
  return out;
}

double HistogramSnapshot::percentile(double pct) const {
  if (count == 0) return 0.0;
  const double est = util::histogram_percentile(boundaries, counts, pct);
  return std::clamp(est, min, max);
}

bool MetricsSnapshot::empty() const noexcept {
  for (const CounterSnapshot& c : counters) {
    if (c.value != 0.0) return false;
  }
  for (const GaugeSnapshot& g : gauges) {
    if (g.ever_set) return false;
  }
  for (const HistogramSnapshot& h : histograms) {
    if (h.count > 0) return false;
  }
  return true;
}

const CounterSnapshot* MetricsSnapshot::find_counter(
    std::string_view name) const noexcept {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* MetricsSnapshot::find_gauge(
    std::string_view name) const noexcept {
  for (const GaugeSnapshot& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    std::string_view name) const noexcept {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricRegistry& registry() {
  static MetricRegistry global;
  return global;
}

void save_metrics_snapshot(const MetricsSnapshot& snapshot,
                           util::SnapshotWriter& w) {
  w.vec(snapshot.counters, [&](const CounterSnapshot& c) {
    w.str(c.name);
    w.f64(c.value);
  });
  w.vec(snapshot.gauges, [&](const GaugeSnapshot& g) {
    w.str(g.name);
    w.f64(g.value);
    w.boolean(g.ever_set);
  });
  w.vec(snapshot.histograms, [&](const HistogramSnapshot& h) {
    w.str(h.name);
    w.vec(h.boundaries, [&](double b) { w.f64(b); });
    w.vec(h.counts, [&](std::uint64_t c) { w.u64(c); });
    w.u64(h.count);
    w.f64(h.sum);
    w.f64(h.min);
    w.f64(h.max);
  });
}

MetricsSnapshot load_metrics_snapshot(util::SnapshotReader& r) {
  MetricsSnapshot out;
  out.counters = r.vec<CounterSnapshot>([&] {
    CounterSnapshot c;
    c.name = r.str();
    c.value = r.f64();
    return c;
  });
  out.gauges = r.vec<GaugeSnapshot>([&] {
    GaugeSnapshot g;
    g.name = r.str();
    g.value = r.f64();
    g.ever_set = r.boolean();
    return g;
  });
  out.histograms = r.vec<HistogramSnapshot>([&] {
    HistogramSnapshot h;
    h.name = r.str();
    h.boundaries = r.vec<double>([&] { return r.f64(); });
    h.counts = r.vec<std::uint64_t>([&] { return r.u64(); });
    h.count = r.u64();
    h.sum = r.f64();
    h.min = r.f64();
    h.max = r.f64();
    return h;
  });
  return out;
}

namespace {

/// `lp.pivots` -> `mecar_lp_pivots` (Prometheus metric-name charset).
std::string prometheus_name(std::string_view name) {
  std::string out = "mecar_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void prometheus_header(std::ostream& os, const std::string& name,
                       const std::string& help, std::string_view type) {
  if (!help.empty()) os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

void write_prometheus(const MetricsSnapshot& snapshot, std::ostream& os) {
  for (const CounterSnapshot& c : snapshot.counters) {
    const std::string name = prometheus_name(c.name);
    prometheus_header(os, name, c.help, "counter");
    os << name << ' ' << util::json_number(c.value) << '\n';
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    const std::string name = prometheus_name(g.name);
    prometheus_header(os, name, g.help, "gauge");
    os << name << ' ' << util::json_number(g.value) << '\n';
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string name = prometheus_name(h.name);
    prometheus_header(os, name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.boundaries.size(); ++b) {
      cumulative += h.counts[b];
      os << name << "_bucket{le=\"" << util::json_number(h.boundaries[b])
         << "\"} " << cumulative << '\n';
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    os << name << "_sum " << util::json_number(h.sum) << '\n';
    os << name << "_count " << h.count << '\n';
  }
}

void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& os) {
  util::JsonWriter w(os);
  w.begin_object();
  w.key("counters").begin_object();
  for (const CounterSnapshot& c : snapshot.counters) {
    w.field(c.name, c.value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const GaugeSnapshot& g : snapshot.gauges) {
    w.field(g.name, g.value);
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const HistogramSnapshot& h : snapshot.histograms) {
    w.key(h.name).begin_object();
    w.key("boundaries").begin_array();
    for (double b : h.boundaries) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (std::uint64_t c : h.counts) {
      w.value(static_cast<std::int64_t>(c));
    }
    w.end_array();
    w.field("count", static_cast<std::int64_t>(h.count));
    w.field("sum", h.sum);
    if (h.count > 0) {
      w.field("min", h.min);
      w.field("max", h.max);
      w.field("p50", h.percentile(50.0));
      w.field("p95", h.percentile(95.0));
      w.field("p99", h.percentile(99.0));
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace mecar::obs
