#include "obs/event_trace.h"

#include <atomic>
#include <mutex>
#include <ostream>

#include "util/json_writer.h"

namespace mecar::obs {

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSlotBegin:
      return "slot_begin";
    case EventKind::kSlotEnd:
      return "slot_end";
    case EventKind::kLpSolve:
      return "lp_solve";
    case EventKind::kArmPull:
      return "arm_pull";
    case EventKind::kArmElimination:
      return "arm_elimination";
    case EventKind::kAdmission:
      return "admission";
    case EventKind::kPreemption:
      return "preemption";
    case EventKind::kDisplacement:
      return "displacement";
    case EventKind::kFaultEpochBegin:
      return "fault_epoch_begin";
    case EventKind::kFaultEpochEnd:
      return "fault_epoch_end";
  }
  return "?";
}

namespace {

/// Per-thread run context: which run the thread is tracing and at which
/// slot. Keyed by the trace's enable-generation so a clear()/enable()
/// cycle invalidates stale contexts.
struct ThreadContext {
  std::uint64_t generation = 0;
  int run = -1;
  std::int32_t slot = -1;
};
thread_local ThreadContext tls_context;

}  // namespace

struct EventTrace::Impl {
  std::atomic<bool> enabled{false};
  mutable std::mutex mutex;
  std::uint64_t generation = 0;  // bumped on enable/clear
  std::size_t capacity = kDefaultCapacity;
  std::vector<Event> ring;
  std::size_t next = 0;  // write cursor
  std::uint64_t total = 0;
  std::vector<std::string> run_labels;
  std::vector<double> run_slot_ms;
};

EventTrace::EventTrace() : impl_(std::make_unique<Impl>()) {}
EventTrace::~EventTrace() = default;

void EventTrace::enable(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->capacity = capacity == 0 ? 1 : capacity;
  impl_->ring.clear();
  impl_->ring.reserve(std::min(impl_->capacity, std::size_t{1} << 12));
  impl_->next = 0;
  impl_->total = 0;
  impl_->run_labels.clear();
  impl_->run_slot_ms.clear();
  ++impl_->generation;
  impl_->enabled.store(true, std::memory_order_release);
}

void EventTrace::disable() {
  impl_->enabled.store(false, std::memory_order_release);
}

bool EventTrace::enabled() const noexcept {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void EventTrace::clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->ring.clear();
  impl_->next = 0;
  impl_->total = 0;
  impl_->run_labels.clear();
  impl_->run_slot_ms.clear();
  ++impl_->generation;
}

int EventTrace::begin_run(std::string label, double slot_ms) {
  if (!enabled()) return -1;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const int run = static_cast<int>(impl_->run_labels.size());
  impl_->run_labels.push_back(std::move(label));
  impl_->run_slot_ms.push_back(slot_ms);
  tls_context.generation = impl_->generation;
  tls_context.run = run;
  tls_context.slot = -1;
  return run;
}

void EventTrace::set_slot(std::int32_t slot) noexcept {
  if (!enabled()) return;
  tls_context.slot = slot;
}

void EventTrace::emit(EventKind kind, double v0, double v1,
                      double v2) noexcept {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (tls_context.generation != impl_->generation) return;
  Event ev;
  ev.kind = kind;
  ev.run = tls_context.run < 0
               ? 0
               : static_cast<std::uint16_t>(tls_context.run);
  ev.slot = tls_context.slot;
  ev.v0 = v0;
  ev.v1 = v1;
  ev.v2 = v2;
  if (impl_->ring.size() < impl_->capacity) {
    impl_->ring.push_back(ev);
  } else {
    impl_->ring[impl_->next] = ev;
  }
  impl_->next = (impl_->next + 1) % impl_->capacity;
  ++impl_->total;
}

EventTrace::Snapshot EventTrace::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Snapshot out;
  out.run_labels = impl_->run_labels;
  out.run_slot_ms = impl_->run_slot_ms;
  if (impl_->total <= impl_->ring.size()) {
    out.events = impl_->ring;
  } else {
    // Ring wrapped: oldest event sits at the write cursor.
    out.events.reserve(impl_->ring.size());
    for (std::size_t i = 0; i < impl_->ring.size(); ++i) {
      out.events.push_back(
          impl_->ring[(impl_->next + i) % impl_->ring.size()]);
    }
    out.dropped = impl_->total - impl_->ring.size();
  }
  return out;
}

EventTrace& trace() {
  static EventTrace global;
  return global;
}

void write_trace_json(const EventTrace::Snapshot& snapshot,
                      std::ostream& os) {
  util::JsonWriter w(os);
  w.begin_object();
  w.field("dropped", static_cast<std::int64_t>(snapshot.dropped));
  w.key("runs").begin_array();
  for (std::size_t r = 0; r < snapshot.run_labels.size(); ++r) {
    w.begin_object();
    w.field("id", static_cast<std::int64_t>(r));
    w.field("label", snapshot.run_labels[r]);
    w.field("slot_ms", snapshot.run_slot_ms[r]);
    w.end_object();
  }
  w.end_array();
  w.key("events").begin_array();
  for (const Event& ev : snapshot.events) {
    w.begin_object();
    w.field("kind", to_string(ev.kind));
    w.field("run", static_cast<std::int64_t>(ev.run));
    w.field("slot", static_cast<std::int64_t>(ev.slot));
    w.field("v0", ev.v0);
    w.field("v1", ev.v1);
    w.field("v2", ev.v2);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

namespace {

/// Argument names per event kind for the chrome exporter, so traces read
/// naturally in the viewer ({"pivots": 12} instead of {"v0": 12}).
struct ArgNames {
  const char* a0;
  const char* a1;
  const char* a2;
};

ArgNames arg_names(EventKind kind) {
  switch (kind) {
    case EventKind::kSlotBegin:
      return {"pending", nullptr, nullptr};
    case EventKind::kSlotEnd:
      return {"reward", "active_streams", nullptr};
    case EventKind::kLpSolve:
      return {"pivots", "refactorizations", "warm"};
    case EventKind::kArmPull:
      return {"arm", "threshold", nullptr};
    case EventKind::kArmElimination:
      return {"arm", "active_arms", nullptr};
    case EventKind::kAdmission:
      return {"request", "station", nullptr};
    case EventKind::kPreemption:
      return {"request", "station", nullptr};
    case EventKind::kDisplacement:
      return {"request", "cause", nullptr};
    case EventKind::kFaultEpochBegin:
      return {"epoch", "stations_up", nullptr};
    case EventKind::kFaultEpochEnd:
      return {"epoch", "slots", nullptr};
  }
  return {nullptr, nullptr, nullptr};
}

}  // namespace

void write_chrome_trace(const EventTrace::Snapshot& snapshot,
                        std::ostream& os) {
  util::JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (std::size_t r = 0; r < snapshot.run_labels.size(); ++r) {
    w.begin_object();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", 1);
    w.field("tid", static_cast<std::int64_t>(r) + 1);
    w.key("args").begin_object();
    w.field("name", snapshot.run_labels[r]);
    w.end_object();
    w.end_object();
  }
  // Simulated time: slot t spans [t * slot_us, (t+1) * slot_us). Within a
  // slot, instant events are offset by their arrival index so the viewer
  // preserves emission order.
  std::vector<std::uint64_t> seq_in_slot(snapshot.run_labels.size() + 1, 0);
  std::vector<std::int32_t> last_slot(snapshot.run_labels.size() + 1, -2);
  for (const Event& ev : snapshot.events) {
    const std::size_t run = ev.run;
    const double slot_ms = run < snapshot.run_slot_ms.size()
                               ? snapshot.run_slot_ms[run]
                               : 1.0;
    const double slot_us = slot_ms * 1000.0;
    if (run < last_slot.size()) {
      if (last_slot[run] != ev.slot) {
        last_slot[run] = ev.slot;
        seq_in_slot[run] = 0;
      }
    }
    const double base =
        static_cast<double>(ev.slot < 0 ? 0 : ev.slot) * slot_us;
    const ArgNames names = arg_names(ev.kind);
    w.begin_object();
    w.field("name", ev.kind == EventKind::kSlotEnd
                        ? std::string_view("slot")
                        : to_string(ev.kind));
    w.field("cat", "mecar");
    w.field("pid", 1);
    w.field("tid", static_cast<std::int64_t>(run) + 1);
    if (ev.kind == EventKind::kSlotEnd) {
      // The slot itself renders as a complete span of one slot duration.
      w.field("ph", "X");
      w.field("ts", base);
      w.field("dur", slot_us);
    } else {
      w.field("ph", "i");
      w.field("s", "t");
      const double offset =
          run < seq_in_slot.size()
              ? static_cast<double>(seq_in_slot[run]++) * 1e-3
              : 0.0;
      w.field("ts", base + offset);
    }
    w.key("args").begin_object();
    w.field("slot", static_cast<std::int64_t>(ev.slot));
    if (names.a0 != nullptr) w.field(names.a0, ev.v0);
    if (names.a1 != nullptr) w.field(names.a1, ev.v1);
    if (names.a2 != nullptr) w.field(names.a2, ev.v2);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
}

}  // namespace mecar::obs
