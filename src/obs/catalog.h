// Well-known metric handles shared by the LP, bandit, and scheduling
// layers. Centralizing registration here (instead of scattering
// registry().counter(...) calls through the hot layers) guarantees that
// every documented metric appears in every snapshot — even at zero — so
// `mecar_cli metrics` can list the full taxonomy and exported snapshots
// have a stable schema regardless of which code paths a run exercised.
#pragma once

#include "obs/telemetry.h"

namespace mecar::obs {

/// The metric taxonomy (DESIGN.md §10). Handles are value types; grab the
/// singleton once per call site (`const auto& m = obs::metrics();`) and
/// record through it — registration happens on first use, thread-safely.
struct Metrics {
  // --- lp: simplex solver work ----------------------------------------
  Counter lp_solves;             // lp.solves
  Counter lp_pivots;             // lp.pivots
  Counter lp_refactorizations;   // lp.refactorizations
  Counter lp_warm_start_hits;    // lp.warm_start_hits
  Counter lp_warm_start_misses;  // lp.warm_start_misses
  Counter lp_slot_models;        // lp.slot_models
  Counter lp_recoveries;         // lp.recoveries
  Counter lp_numerical_errors;   // lp.numerical_errors
  Counter lp_incremental_reuses;    // lp.incremental_reuses
  Counter lp_incremental_deltas;    // lp.incremental_deltas
  Counter lp_incremental_rebuilds;  // lp.incremental_rebuilds
  Histogram lp_pivots_per_solve;  // lp.pivots_per_solve
  Histogram lp_eta_len;           // lp.eta_len
  Gauge lp_pricing_mode;          // lp.pricing_mode

  // --- bandit: learner dynamics ---------------------------------------
  Counter bandit_arm_pulls;         // bandit.arm_pulls
  Counter bandit_arm_eliminations;  // bandit.arm_eliminations
  Gauge bandit_active_arms;         // bandit.active_arms

  // --- sim: online scheduling churn -----------------------------------
  Counter sim_slots;          // sim.slots
  Counter sim_admissions;     // sim.admissions
  Counter sim_preemptions;    // sim.preemptions
  Counter sim_displacements;  // sim.displacements
  Counter sim_completions;    // sim.completions
  Counter sim_drops;          // sim.drops
  Counter sim_handovers;      // sim.handovers
  Counter sim_fault_epochs;   // sim.fault_epochs
  Counter sim_lp_fallbacks;   // sim.lp_fallbacks
  Gauge sim_degradation_level;  // sim.degradation_level
  Histogram sim_slot_reward;  // sim.slot_reward
  Histogram sim_slot_wall_ms;   // sim.slot_wall_ms
  Gauge sim_shards;             // sim.shards
  Gauge sim_shard_imbalance;    // sim.shard_imbalance

  // --- exp: experiment engine -----------------------------------------
  Counter exp_trials;  // exp.trials
};

/// Lazily-registered handles into the global registry().
const Metrics& metrics();

}  // namespace mecar::obs
