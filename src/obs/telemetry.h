// Telemetry metrics: a registry of named counters, gauges, and
// fixed-boundary histograms shared by the LP, bandit, and online
// scheduling layers.
//
// Design constraints (DESIGN.md §10):
//   * near-zero overhead on the hot paths: recording is one thread-local
//     shard lookup plus an indexed add — no locks, no allocation after the
//     first touch per thread;
//   * safe under util::ThreadPool seed sweeps: every thread writes only its
//     own shard, shards are aggregated when a snapshot is taken (snapshot
//     after the parallel region, never concurrently with recording);
//   * deterministic: recording never reads clocks or RNGs, counter sums of
//     integral increments are exact regardless of thread schedule, and the
//     default (no-export) runs emit nothing anywhere;
//   * compiled out: configuring with -DMECAR_TELEMETRY=OFF turns every
//     record call into an empty inline body. Registration and snapshots
//     still work (the `mecar_cli metrics` inventory stays available), all
//     values simply stay zero.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef MECAR_TELEMETRY_ENABLED
#define MECAR_TELEMETRY_ENABLED 1
#endif

namespace mecar::util {
class SnapshotWriter;
class SnapshotReader;
}  // namespace mecar::util

namespace mecar::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

std::string_view to_string(MetricKind kind);

class MetricRegistry;

/// Monotonically increasing sum. Handles are cheap value types bound to
/// one registry; the default-constructed handle is inert (add is a no-op).
class Counter {
 public:
  Counter() = default;
  void add(double delta = 1.0) const noexcept;

 private:
  friend class MetricRegistry;
  Counter(MetricRegistry* reg, int id) : reg_(reg), id_(id) {}
  MetricRegistry* reg_ = nullptr;
  int id_ = -1;
};

/// Last-write-wins instantaneous value (e.g. active arms).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const noexcept;

 private:
  friend class MetricRegistry;
  Gauge(MetricRegistry* reg, int id) : reg_(reg), id_(id) {}
  MetricRegistry* reg_ = nullptr;
  int id_ = -1;
};

/// Fixed-boundary histogram: bucket i counts observations in
/// (boundaries[i-1], boundaries[i]], the final bucket is the overflow
/// (boundaries.back(), +inf). Boundaries are set at registration and never
/// change, so shards merge by summing bucket counts.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const noexcept;

 private:
  friend class MetricRegistry;
  Histogram(MetricRegistry* reg, int id) : reg_(reg), id_(id) {}
  MetricRegistry* reg_ = nullptr;
  int id_ = -1;
};

struct CounterSnapshot {
  std::string name;
  std::string help;
  double value = 0.0;
};

struct GaugeSnapshot {
  std::string name;
  std::string help;
  double value = 0.0;
  bool ever_set = false;
};

struct HistogramSnapshot {
  std::string name;
  std::string help;
  std::vector<double> boundaries;
  /// boundaries.size() + 1 buckets; the last is the overflow bucket.
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  /// Percentile estimate (pct in [0,100]) by linear interpolation inside
  /// the target bucket (util::histogram_percentile), clamped to the
  /// observed [min, max]. Returns 0 when empty.
  double percentile(double pct) const;
};

/// Aggregated view of every registered metric (including never-touched
/// ones, so the inventory is complete), in registration order per kind.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// True when no metric recorded any data.
  bool empty() const noexcept;
  const CounterSnapshot* find_counter(std::string_view name) const noexcept;
  const GaugeSnapshot* find_gauge(std::string_view name) const noexcept;
  const HistogramSnapshot* find_histogram(
      std::string_view name) const noexcept;
};

/// One registered metric, for inventory listings.
struct MetricDescriptor {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<double> boundaries;  // histograms only
};

/// Registry of named metrics with per-thread shards.
///
/// Threading contract: counter/gauge/histogram registration and snapshot()
/// take a lock and may run from any thread; recording through handles is
/// lock-free per thread. snapshot() and reset() must not run concurrently
/// with recording — take snapshots after parallel regions complete (the
/// scenario engine's sweep_seeds joins before any export).
class MetricRegistry {
 public:
  MetricRegistry();
  ~MetricRegistry();

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Returns the handle for `name`, registering it on first use.
  /// Re-registering an existing name with a different kind (or different
  /// histogram boundaries) throws std::logic_error.
  Counter counter(std::string_view name, std::string_view help = {});
  Gauge gauge(std::string_view name, std::string_view help = {});
  Histogram histogram(std::string_view name, std::vector<double> boundaries,
                      std::string_view help = {});

  /// Aggregates all shards. See the threading contract above.
  MetricsSnapshot snapshot() const;

  /// Zeroes every recorded value; registrations are kept.
  void reset();

  /// Overwrites recorded values with a previously taken snapshot, matched
  /// to the live catalog by metric name (unknown names are ignored;
  /// histograms additionally require identical boundaries). Used by
  /// checkpoint restore so counters accumulated before a crash continue
  /// from their saved totals. Same threading contract as reset().
  void restore(const MetricsSnapshot& snapshot);

  /// Inventory of every registered metric, counters then gauges then
  /// histograms, each in registration order.
  std::vector<MetricDescriptor> descriptors() const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Shard;
  struct Impl;

  Shard& local_shard() const;
  void record_counter(int id, double delta) const noexcept;
  void record_gauge(int id, double value) const noexcept;
  void record_histogram(int id, double value) const noexcept;

  std::unique_ptr<Impl> impl_;
};

/// Process-global registry: the hot layers record here, `mecar_cli
/// experiment --metrics-out` snapshots it.
MetricRegistry& registry();

/// Prometheus text exposition format (one family per metric; names are
/// prefixed with `mecar_` and dots become underscores).
void write_prometheus(const MetricsSnapshot& snapshot, std::ostream& os);

/// JSON snapshot via util::JsonWriter: {"counters": {name: value, ...},
/// "gauges": {...}, "histograms": {name: {boundaries, counts, count, sum,
/// p50, p95, p99}, ...}}.
void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& os);

/// Checkpoint (de)serialization of a snapshot (DESIGN.md §14). Help text
/// is not written — restore() resolves it from the live catalog.
void save_metrics_snapshot(const MetricsSnapshot& snapshot,
                           util::SnapshotWriter& w);
MetricsSnapshot load_metrics_snapshot(util::SnapshotReader& r);

}  // namespace mecar::obs
