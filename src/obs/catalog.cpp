#include "obs/catalog.h"

namespace mecar::obs {

namespace {

Metrics make_metrics() {
  MetricRegistry& reg = registry();
  Metrics m;
  m.lp_solves = reg.counter("lp.solves", "simplex solves (dense + revised)");
  m.lp_pivots = reg.counter("lp.pivots", "simplex pivots across all solves");
  m.lp_refactorizations =
      reg.counter("lp.refactorizations", "basis refactorizations");
  m.lp_warm_start_hits = reg.counter(
      "lp.warm_start_hits", "solves that adopted the carried-over basis");
  m.lp_warm_start_misses = reg.counter(
      "lp.warm_start_misses",
      "warm-start attempts that fell back to a cold phase-1 start");
  m.lp_slot_models =
      reg.counter("lp.slot_models", "per-slot LP models built");
  m.lp_recoveries = reg.counter(
      "lp.recoveries",
      "recovery-ladder actions (refactorizations, basis resets, dense "
      "cross-solves) taken after a numerical fault");
  m.lp_numerical_errors = reg.counter(
      "lp.numerical_errors",
      "solves that exhausted the recovery ladder without an answer");
  m.lp_incremental_reuses = reg.counter(
      "lp.incremental_reuses",
      "slot LPs served unchanged from the incremental cache");
  m.lp_incremental_deltas = reg.counter(
      "lp.incremental_deltas",
      "slot LPs updated in place by column/row deltas");
  m.lp_incremental_rebuilds = reg.counter(
      "lp.incremental_rebuilds",
      "slot LPs rebuilt from scratch (cache miss or compaction)");
  m.lp_pivots_per_solve = reg.histogram(
      "lp.pivots_per_solve",
      {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0},
      "pivot count distribution per solve");
  m.lp_eta_len = reg.histogram(
      "lp.eta_len", {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0},
      "peak eta-file length per revised-simplex solve");
  m.lp_pricing_mode = reg.gauge(
      "lp.pricing_mode",
      "pricing rule of the latest solve (0=dantzig 1=devex 2=steepest-edge)");

  m.bandit_arm_pulls =
      reg.counter("bandit.arm_pulls", "learner updates (arm feedback)");
  m.bandit_arm_eliminations = reg.counter(
      "bandit.arm_eliminations", "arms eliminated by successive elimination");
  m.bandit_active_arms =
      reg.gauge("bandit.active_arms", "arms still active in the learner");

  m.sim_slots = reg.counter("sim.slots", "simulated slots executed");
  m.sim_admissions =
      reg.counter("sim.admissions", "requests first scheduled onto a station");
  m.sim_preemptions = reg.counter(
      "sim.preemptions", "served streams descheduled by a later decision");
  m.sim_displacements = reg.counter(
      "sim.displacements", "streams displaced by outages or partitions");
  m.sim_completions =
      reg.counter("sim.completions", "streams that finished their demand");
  m.sim_drops = reg.counter("sim.drops", "requests dropped (all causes)");
  m.sim_handovers =
      reg.counter("sim.handovers", "mobility handovers between stations");
  m.sim_fault_epochs =
      reg.counter("sim.fault_epochs", "distinct fault epochs entered");
  m.sim_lp_fallbacks = reg.counter(
      "sim.lp_fallbacks", "slot LPs that fell back to the greedy policy");
  m.sim_degradation_level = reg.gauge(
      "sim.degradation_level",
      "degradation-ladder rung of the latest slot decision (0=warm LP "
      "1=cold LP 2=dense LP 3=greedy 4=carry)");
  m.sim_slot_reward = reg.histogram(
      "sim.slot_reward",
      {0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0},
      "per-slot realized reward distribution");

  m.sim_slot_wall_ms = reg.histogram(
      "sim.slot_wall_ms",
      {0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
       100.0},
      "wall-clock time per simulated slot, ms");
  m.sim_shards = reg.gauge(
      "sim.shards", "station shards of the current sharded simulation run");
  m.sim_shard_imbalance = reg.gauge(
      "sim.shard_imbalance",
      "latest slot's max/mean ratio of live requests per shard (1.0 = "
      "perfectly balanced)");

  m.exp_trials = reg.counter("exp.trials", "experiment trials executed");
  return m;
}

}  // namespace

const Metrics& metrics() {
  static const Metrics m = make_metrics();
  return m;
}

}  // namespace mecar::obs
