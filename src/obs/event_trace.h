// Structured event tracing: a ring buffer of typed per-slot events emitted
// by the LP, bandit, and online scheduling layers.
//
// Timestamps are simulated-slot indices, never wall-clock — exporting the
// same seeded run twice produces byte-identical traces, and the default
// (tracing disabled) runs skip everything behind one relaxed atomic load.
// Tracing is an explicitly-enabled debugging aid, not an always-on path:
// emit() takes a mutex when enabled, which is fine for --seeds=1 style
// diagnostic runs and keeps multi-threaded sweeps safe (events from
// different runs interleave in arrival order; exporters group by run id).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#ifndef MECAR_TELEMETRY_ENABLED
#define MECAR_TELEMETRY_ENABLED 1
#endif

namespace mecar::obs {

enum class EventKind : std::uint8_t {
  kSlotBegin,        // v0 = pending requests entering the slot
  kSlotEnd,          // v0 = slot reward, v1 = active streams
  kLpSolve,          // v0 = pivots, v1 = refactorizations, v2 = warm (0/1)
  kArmPull,          // v0 = arm index, v1 = threshold value
  kArmElimination,   // v0 = arm index, v1 = active arms remaining
  kAdmission,        // v0 = request id, v1 = station id
  kPreemption,       // v0 = request id, v1 = station id it lost
  kDisplacement,     // v0 = request id, v1 = cause (0 outage, 1 partition)
  kFaultEpochBegin,  // v0 = epoch index, v1 = stations up
  kFaultEpochEnd,    // v0 = epoch index, v1 = slots the epoch lasted
};

std::string_view to_string(EventKind kind);

/// One trace record. `run` indexes the run registered via begin_run (one
/// per simulator run when tracing); `slot` is the simulated slot at emit
/// time (-1 before the first set_slot). Payload meanings per kind above.
struct Event {
  EventKind kind = EventKind::kSlotBegin;
  std::uint16_t run = 0;
  std::int32_t slot = -1;
  double v0 = 0.0;
  double v1 = 0.0;
  double v2 = 0.0;
};

/// Global ring buffer of events. Disabled by default: emit() is a single
/// relaxed atomic load then return. enable(capacity) arms it; when the ring
/// fills, the oldest events are overwritten and `dropped` counts them.
class EventTrace {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  EventTrace();
  ~EventTrace();
  EventTrace(const EventTrace&) = delete;
  EventTrace& operator=(const EventTrace&) = delete;

  /// Arms tracing with a ring of `capacity` events (clears prior state).
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  bool enabled() const noexcept;

  /// Drops all recorded events and run registrations, keeps enabled state.
  void clear();

  /// Registers a run (one simulator execution) and makes it this thread's
  /// current run context; subsequent set_slot/emit on this thread attach
  /// to it. `slot_ms` scales slot indices to microseconds for the chrome
  /// exporter. No-op (returns -1) when disabled.
  int begin_run(std::string label, double slot_ms);

  /// Sets the current simulated slot for this thread's run context.
  void set_slot(std::int32_t slot) noexcept;

  /// Appends an event bound to this thread's run/slot context.
  void emit(EventKind kind, double v0 = 0.0, double v1 = 0.0,
            double v2 = 0.0) noexcept;

  struct Snapshot {
    std::vector<Event> events;  // oldest first
    std::vector<std::string> run_labels;
    std::vector<double> run_slot_ms;
    std::uint64_t dropped = 0;
  };

  /// Copies the ring in emission order. Safe to call while disabled.
  Snapshot snapshot() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Process-global trace; armed by exp::run_with_telemetry when a trace
/// export is requested, otherwise it stays disabled.
EventTrace& trace();

/// Plain JSON export: {"dropped": N, "runs": [...], "events": [...]}.
void write_trace_json(const EventTrace::Snapshot& snapshot,
                      std::ostream& os);

/// chrome://tracing (trace-event format) export on simulated time: slots
/// become "X" complete events of one slot duration, everything else an
/// instant event; runs map to tids with thread_name metadata.
void write_chrome_trace(const EventTrace::Snapshot& snapshot,
                        std::ostream& os);

}  // namespace mecar::obs
