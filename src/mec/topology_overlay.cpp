#include "mec/topology_overlay.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mecar::mec {

namespace {
/// Floor on browned-out capacity: keeps the effective Topology
/// constructible (it rejects non-positive capacities) while making the
/// station useless for any real placement.
constexpr double kMinCapacityScale = 1e-9;
}  // namespace

bool TopologyPerturbation::identity() const noexcept {
  const auto all_one = [](const std::vector<double>& v) {
    return std::all_of(v.begin(), v.end(), [](double s) { return s == 1.0; });
  };
  return all_one(capacity_scale) && all_one(link_delay_scale) &&
         std::all_of(link_down.begin(), link_down.end(),
                     [](char d) { return d == 0; });
}

TopologyOverlay::TopologyOverlay(const Topology& base)
    : base_(base), effective_(base) {}

bool TopologyOverlay::apply(const TopologyPerturbation& pert) {
  const auto stations = static_cast<std::size_t>(base_.num_stations());
  const auto links = base_.links().size();
  if (!pert.capacity_scale.empty() && pert.capacity_scale.size() != stations) {
    throw std::invalid_argument("TopologyOverlay: capacity_scale size");
  }
  if (!pert.link_down.empty() && pert.link_down.size() != links) {
    throw std::invalid_argument("TopologyOverlay: link_down size");
  }
  if (!pert.link_delay_scale.empty() &&
      pert.link_delay_scale.size() != links) {
    throw std::invalid_argument("TopologyOverlay: link_delay_scale size");
  }
  for (double s : pert.capacity_scale) {
    if (s < 0.0 || s > 1.0) {
      throw std::invalid_argument(
          "TopologyOverlay: capacity scale outside [0, 1]");
    }
  }
  for (double s : pert.link_delay_scale) {
    if (s < 1.0) {
      throw std::invalid_argument("TopologyOverlay: link delay scale < 1");
    }
  }
  if (pert == active_) return false;
  active_ = pert;
  rebuild();
  return true;
}

bool TopologyOverlay::reset() { return apply(TopologyPerturbation{}); }

void TopologyOverlay::rebuild() {
  std::vector<BaseStation> stations = base_.stations();
  if (!active_.capacity_scale.empty()) {
    for (std::size_t i = 0; i < stations.size(); ++i) {
      stations[i].capacity_mhz *=
          std::max(kMinCapacityScale, active_.capacity_scale[i]);
    }
  }
  std::vector<Link> links = base_.links();
  for (std::size_t li = 0; li < links.size(); ++li) {
    if (!active_.link_down.empty() && active_.link_down[li] != 0) {
      links[li].delay_ms = std::numeric_limits<double>::infinity();
    } else if (!active_.link_delay_scale.empty()) {
      links[li].delay_ms *= active_.link_delay_scale[li];
    }
  }
  effective_ = Topology(std::move(stations), std::move(links));
  ++epochs_;
}

}  // namespace mecar::mec
