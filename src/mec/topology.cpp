#include "mec/topology.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace mecar::mec {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Topology::Topology(std::vector<BaseStation> stations, std::vector<Link> links)
    : stations_(std::move(stations)), links_(std::move(links)) {
  if (stations_.empty()) {
    throw std::invalid_argument("Topology: no stations");
  }
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (stations_[i].id != static_cast<int>(i)) {
      throw std::invalid_argument("Topology: station ids must be 0..n-1");
    }
    if (stations_[i].capacity_mhz <= 0.0) {
      throw std::invalid_argument("Topology: non-positive capacity");
    }
  }
  adjacency_.assign(stations_.size(), {});
  for (std::size_t li = 0; li < links_.size(); ++li) {
    const Link& link = links_[li];
    if (link.a < 0 || link.b < 0 || link.a >= num_stations() ||
        link.b >= num_stations() || link.a == link.b) {
      throw std::invalid_argument("Topology: bad link endpoints");
    }
    if (link.delay_ms < 0.0) {
      throw std::invalid_argument("Topology: negative link delay");
    }
    if (link.bandwidth_mbps <= 0.0) {
      throw std::invalid_argument("Topology: non-positive link bandwidth");
    }
    adjacency_[static_cast<std::size_t>(link.a)].push_back(
        Edge{link.b, link.delay_ms, static_cast<int>(li)});
    adjacency_[static_cast<std::size_t>(link.b)].push_back(
        Edge{link.a, link.delay_ms, static_cast<int>(li)});
  }
  compute_shortest_paths();
}

void Topology::compute_shortest_paths() {
  const auto n = stations_.size();
  dist_.assign(n * n, kInf);
  parent_link_.assign(n * n, -1);
  using Entry = std::pair<double, int>;  // (distance, node)
  for (std::size_t src = 0; src < n; ++src) {
    auto* row = &dist_[src * n];
    auto* parents = &parent_link_[src * n];
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    row[src] = 0.0;
    heap.emplace(0.0, static_cast<int>(src));
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > row[u]) continue;
      for (const Edge& edge : adjacency_[static_cast<std::size_t>(u)]) {
        const double nd = d + edge.delay;
        if (nd < row[edge.to]) {
          row[edge.to] = nd;
          parents[edge.to] = edge.link;
          heap.emplace(nd, edge.to);
        }
      }
    }
  }
}

std::vector<int> Topology::shortest_path_links(int from, int to) const {
  if (from < 0 || to < 0 || from >= num_stations() || to >= num_stations()) {
    throw std::out_of_range("Topology::shortest_path_links: bad station id");
  }
  std::vector<int> path;
  if (from == to) return path;
  const auto n = static_cast<std::size_t>(num_stations());
  if (dist_[static_cast<std::size_t>(from) * n + static_cast<std::size_t>(to)] ==
      kInf) {
    throw std::runtime_error(
        "Topology::shortest_path_links: stations are disconnected");
  }
  int cur = to;
  while (cur != from) {
    const int link_id = parent_link_[static_cast<std::size_t>(from) * n +
                                     static_cast<std::size_t>(cur)];
    path.push_back(link_id);
    const Link& link = links_[static_cast<std::size_t>(link_id)];
    cur = (link.a == cur) ? link.b : link.a;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double Topology::transmission_delay_ms(int from, int to) const {
  if (from < 0 || to < 0 || from >= num_stations() || to >= num_stations()) {
    throw std::out_of_range("Topology::transmission_delay_ms: bad station id");
  }
  return dist_[static_cast<std::size_t>(from) *
                   static_cast<std::size_t>(num_stations()) +
               static_cast<std::size_t>(to)];
}

bool Topology::connected() const noexcept {
  const auto n = static_cast<std::size_t>(num_stations());
  for (std::size_t j = 0; j < n; ++j) {
    if (dist_[j] == kInf) return false;
  }
  return true;
}

double Topology::total_capacity_mhz() const noexcept {
  double total = 0.0;
  for (const BaseStation& bs : stations_) total += bs.capacity_mhz;
  return total;
}

std::vector<int> Topology::stations_by_distance(int from) const {
  std::vector<int> order(static_cast<std::size_t>(num_stations()));
  for (int i = 0; i < num_stations(); ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double da = transmission_delay_ms(from, a);
    const double db = transmission_delay_ms(from, b);
    if (da != db) return da < db;
    return a < b;
  });
  return order;
}

Topology generate_topology(const TopologyParams& params, util::Rng& rng) {
  if (params.num_stations <= 0) {
    throw std::invalid_argument("generate_topology: num_stations <= 0");
  }
  const int n = params.num_stations;
  std::vector<BaseStation> stations;
  stations.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    BaseStation bs;
    bs.id = i;
    bs.capacity_mhz = rng.uniform(params.capacity_min_mhz,
                                  params.capacity_max_mhz);
    bs.proc_ms_per_unit = rng.uniform(params.proc_ms_min, params.proc_ms_max);
    bs.x = rng.uniform();
    bs.y = rng.uniform();
    stations.push_back(bs);
  }

  const double max_dist = std::sqrt(2.0);  // unit square diagonal
  auto euclid = [&](int a, int b) {
    const double dx = stations[static_cast<std::size_t>(a)].x -
                      stations[static_cast<std::size_t>(b)].x;
    const double dy = stations[static_cast<std::size_t>(a)].y -
                      stations[static_cast<std::size_t>(b)].y;
    return std::sqrt(dx * dx + dy * dy);
  };
  auto link_delay = [&](double dist) {
    // Longer links have proportionally larger transmission delay.
    const double frac = dist / max_dist;
    return params.link_delay_min_ms +
           frac * (params.link_delay_max_ms - params.link_delay_min_ms);
  };
  auto link_bandwidth = [&] {
    if (!std::isfinite(params.link_bandwidth_min_mbps)) {
      return std::numeric_limits<double>::infinity();
    }
    return rng.uniform(params.link_bandwidth_min_mbps,
                       params.link_bandwidth_max_mbps);
  };

  std::vector<Link> links;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const double d = euclid(a, b);
      const double p =
          params.waxman_beta * std::exp(-d / (params.waxman_alpha * max_dist));
      if (rng.bernoulli(p)) {
        links.push_back(Link{a, b, link_delay(d), link_bandwidth()});
      }
    }
  }

  // Patch connectivity: union-find over Waxman edges, then join components
  // through their geometrically closest station pair (what an ISP would do).
  std::vector<int> parent(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) parent[static_cast<std::size_t>(i)] = i;
  auto find = [&](int v) {
    while (parent[static_cast<std::size_t>(v)] != v) {
      parent[static_cast<std::size_t>(v)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
      v = parent[static_cast<std::size_t>(v)];
    }
    return v;
  };
  auto unite = [&](int a, int b) { parent[static_cast<std::size_t>(find(a))] = find(b); };
  for (const Link& l : links) unite(l.a, l.b);
  while (true) {
    int best_a = -1, best_b = -1;
    double best_d = kInf;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        if (find(a) == find(b)) continue;
        const double d = euclid(a, b);
        if (d < best_d) {
          best_d = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_a < 0) break;  // single component
    links.push_back(Link{best_a, best_b, link_delay(best_d),
                         link_bandwidth()});
    unite(best_a, best_b);
  }

  return Topology(std::move(stations), std::move(links));
}

}  // namespace mecar::mec
