#include "mec/trace.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/parse.h"

namespace mecar::mec {

FrameTrace::FrameTrace(std::vector<FrameRecord> frames)
    : frames_(std::move(frames)) {
  double prev = -1.0;
  for (const FrameRecord& f : frames_) {
    if (f.timestamp_ms < prev) {
      throw std::invalid_argument("FrameTrace: timestamps must not decrease");
    }
    if (f.size_kb < 0.0) {
      throw std::invalid_argument("FrameTrace: negative frame size");
    }
    prev = f.timestamp_ms;
  }
}

double FrameTrace::duration_ms() const noexcept {
  if (frames_.size() < 2) return 0.0;
  return frames_.back().timestamp_ms - frames_.front().timestamp_ms;
}

double FrameTrace::total_mb() const noexcept {
  double kb = 0.0;
  for (const FrameRecord& f : frames_) kb += f.size_kb;
  return kb / 1024.0;
}

double FrameTrace::average_rate_mbps() const noexcept {
  const double dur = duration_ms();
  if (dur <= 0.0) return 0.0;
  return total_mb() / (dur / 1000.0);
}

void FrameTrace::write_csv(std::ostream& os) const {
  os << "timestamp_ms,size_kb\n";
  for (const FrameRecord& f : frames_) {
    os << f.timestamp_ms << ',' << f.size_kb << '\n';
  }
}

FrameTrace FrameTrace::read_csv(std::istream& is) {
  std::vector<FrameRecord> frames;
  std::string line;
  bool first = true;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line.rfind("timestamp_ms", 0) == 0) continue;  // header
    }
    const auto comma = line.find(',');
    if (comma == std::string::npos) {
      throw TraceParseError(line_no, "expected 'timestamp_ms,size_kb', got '" +
                                         line + "'");
    }
    if (line.find(',', comma + 1) != std::string::npos) {
      throw TraceParseError(line_no,
                            "expected exactly 2 fields, got '" + line + "'");
    }
    FrameRecord record;
    const std::string ts_tok = line.substr(0, comma);
    const std::string kb_tok = line.substr(comma + 1);
    if (const auto ts = util::parse_double(ts_tok)) {
      record.timestamp_ms = *ts;
    } else {
      throw TraceParseError(line_no,
                            "bad timestamp_ms value '" + ts_tok + "'");
    }
    if (const auto kb = util::parse_double(kb_tok)) {
      record.size_kb = *kb;
    } else {
      throw TraceParseError(line_no, "bad size_kb value '" + kb_tok + "'");
    }
    frames.push_back(record);
  }
  return FrameTrace(std::move(frames));
}

FrameTrace synthesize_trace(const TraceParams& params, util::Rng& rng) {
  if (params.duration_s <= 0.0 || params.fps_min <= 0.0 ||
      params.fps_max < params.fps_min) {
    throw std::invalid_argument("synthesize_trace: bad parameters");
  }
  std::vector<FrameRecord> frames;
  double t_ms = 0.0;
  double burst_until_ms = -1.0;
  const double end_ms = params.duration_s * 1000.0;
  while (t_ms < end_ms) {
    // Frame cadence wanders within the fps band.
    const double fps = rng.uniform(params.fps_min, params.fps_max);
    t_ms += 1000.0 / fps;

    // Motion bursts inflate frame sizes for a stretch.
    if (t_ms > burst_until_ms &&
        rng.bernoulli(params.burst_rate_per_s / fps)) {
      burst_until_ms = t_ms + params.burst_len_s * 1000.0;
    }
    const bool bursting = t_ms <= burst_until_ms;

    // Clamped gaussian-ish jitter via average of uniforms.
    const double jitter =
        1.0 + params.frame_kb_jitter *
                  (rng.uniform() + rng.uniform() + rng.uniform() - 1.5);
    double size = params.frame_kb_mean * std::max(0.2, jitter);
    if (bursting) size *= params.burst_scale;
    frames.push_back(FrameRecord{t_ms, size});
  }
  return FrameTrace(std::move(frames));
}

std::vector<double> window_rates_mbps(const FrameTrace& trace,
                                      double window_ms) {
  if (window_ms <= 0.0) {
    throw std::invalid_argument("window_rates_mbps: non-positive window");
  }
  std::vector<double> rates;
  if (trace.empty()) return rates;
  const double start = trace.frames().front().timestamp_ms;
  const double end = trace.frames().back().timestamp_ms;
  if (end - start < window_ms) return rates;

  std::size_t i = 0;
  for (double w = start; w + window_ms <= end + 1e-9; w += window_ms) {
    double kb = 0.0;
    while (i < trace.size() &&
           trace.frames()[i].timestamp_ms < w + window_ms) {
      kb += trace.frames()[i].size_kb;
      ++i;
    }
    rates.push_back((kb / 1024.0) / (window_ms / 1000.0));
  }
  return rates;
}

RateRewardDist estimate_demand(const FrameTrace& trace,
                               const EstimateOptions& options,
                               util::Rng& rng) {
  if (options.num_levels < 1) {
    throw std::invalid_argument("estimate_demand: num_levels < 1");
  }
  const auto rates = window_rates_mbps(trace, options.window_ms);
  if (rates.empty()) {
    throw std::invalid_argument(
        "estimate_demand: trace shorter than one window");
  }
  const auto [lo_it, hi_it] = std::minmax_element(rates.begin(), rates.end());
  const double lo = *lo_it;
  const double hi = *hi_it;

  // Quantize into equal-width bins; collapse to a single level when the
  // trace is rate-stable.
  const int levels = hi - lo < 1e-9 ? 1 : options.num_levels;
  std::vector<int> counts(static_cast<std::size_t>(levels), 0);
  const double width = levels == 1 ? 1.0 : (hi - lo) / levels;
  for (double r : rates) {
    auto bin = levels == 1
                   ? 0
                   : static_cast<int>(std::min<double>(
                         levels - 1, std::floor((r - lo) / width)));
    ++counts[static_cast<std::size_t>(bin)];
  }

  std::vector<RateLevel> out;
  const double n = static_cast<double>(rates.size());
  for (int k = 0; k < levels; ++k) {
    if (counts[static_cast<std::size_t>(k)] == 0) continue;
    RateLevel lvl;
    lvl.rate = levels == 1 ? lo : lo + width * (k + 0.5);  // bin centre
    lvl.prob = counts[static_cast<std::size_t>(k)] / n;
    // Demand-independent rewards (section III-C): billed volume drawn from
    // the observed range independently of the level's rate.
    lvl.reward = rng.uniform(options.reward_per_unit_min,
                             options.reward_per_unit_max) *
                 rng.uniform(lo, std::max(hi, lo + 1e-9));
    out.push_back(lvl);
  }
  // Exact normalization of the tail.
  double acc = 0.0;
  for (std::size_t k = 0; k + 1 < out.size(); ++k) acc += out[k].prob;
  out.back().prob = 1.0 - acc;
  return RateRewardDist(std::move(out));
}

}  // namespace mecar::mec
