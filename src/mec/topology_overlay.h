// Fault-epoch view over an immutable Topology.
//
// `Topology` precomputes all-pairs shortest transmission delays at
// construction — exactly right for the fault-free case and exactly wrong
// once backhaul links fail mid-horizon. TopologyOverlay bridges the two: it
// owns a mutable *effective* copy of a base topology and rebuilds it
// (re-running the Dijkstra sweep) only when the applied perturbation set
// actually changes — a fault-epoch boundary. The effective topology is a
// stable reference: callers bind `const Topology&` once and observe every
// epoch through it, so all consumers of the `candidate_stations` /
// `placement_latency_ms` interface (core/, baselines/, sim/) see capacity
// brownouts, link outages, and link latency inflation uniformly, with no
// interface change.
//
// A removed link keeps its index — it is modelled as an infinite-delay edge
// — so link ids stay valid across epochs for anything that cross-references
// base links (e.g. core/backhaul path accounting). Cutting enough links
// partitions the network: transmission_delay_ms returns +infinity between
// the components and latency-feasibility filters exclude the far side.
#pragma once

#include <vector>

#include "mec/topology.h"

namespace mecar::mec {

/// The active perturbation set of one fault epoch. Empty vectors mean "no
/// perturbation of that kind" (healthy); otherwise sizes must match the
/// base topology's station/link counts.
struct TopologyPerturbation {
  /// Per-station multiplicative capacity scale in (0, 1]; 1 = healthy.
  /// Full outages are the simulator availability map's job, not a zero
  /// scale — the effective topology always stays constructible.
  std::vector<double> capacity_scale;
  /// Per-link removal flags (fiber cut, backhaul switch failure).
  std::vector<char> link_down;
  /// Per-link delay multipliers >= 1 (congestion, reroute over a slower
  /// physical path).
  std::vector<double> link_delay_scale;

  /// True when the perturbation leaves the topology unchanged.
  bool identity() const noexcept;

  friend bool operator==(const TopologyPerturbation&,
                         const TopologyPerturbation&) = default;
};

class TopologyOverlay {
 public:
  explicit TopologyOverlay(const Topology& base);

  /// The perturbed topology. The reference stays valid (and is updated in
  /// place) across apply() calls.
  const Topology& effective() const noexcept { return effective_; }
  const Topology& base() const noexcept { return base_; }

  /// Applies a perturbation, rebuilding the effective topology only when
  /// it differs from the active one. Returns true when a rebuild happened.
  /// Throws std::invalid_argument on size mismatches or negative scales.
  bool apply(const TopologyPerturbation& pert);

  /// Reverts to the unperturbed base. Returns true when a rebuild happened.
  bool reset();

  /// Number of rebuilds so far — fault epochs entered, including the
  /// return-to-healthy epoch after a fault clears.
  int epochs() const noexcept { return epochs_; }

  /// Overwrites the epoch count. Checkpoint restore primes the overlay by
  /// replaying the pre-resume perturbation (one rebuild), then stamps the
  /// counter a mid-run snapshot recorded so fault_epochs reporting stays
  /// bit-identical to an uninterrupted run.
  void set_epochs(int epochs) noexcept { epochs_ = epochs; }

 private:
  void rebuild();

  const Topology& base_;
  TopologyPerturbation active_;
  Topology effective_;
  int epochs_ = 0;
};

}  // namespace mecar::mec
