// Frame-level AR traces and demand-distribution estimation.
//
// The paper assumes "historical information about such data rates can be
// obtained" (section III-B): the discrete support DR and the per-request
// probabilities come from observed traffic. This module closes that loop:
//  * `FrameTrace` holds a per-frame record of an AR session (timestamps,
//    frame sizes), as the Braud et al. [5] trace would provide;
//  * `synthesize_trace` generates traces matching the published statistics
//    of [5] (64 KB JPEG frames at 90-120 fps, rate bursts);
//  * `estimate_demand` windows a trace into data rates and builds the
//    RateRewardDist a request carries (the DR support + probabilities);
//  * CSV import/export so real traces can be dropped in.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "mec/request.h"
#include "util/rng.h"

namespace mecar::mec {

/// Structured CSV import failure: the 1-based line number of the offending
/// row plus a message naming the malformed field. Derives from
/// std::invalid_argument so pre-existing catch sites keep working.
class TraceParseError : public std::invalid_argument {
 public:
  TraceParseError(int line, const std::string& what_arg)
      : std::invalid_argument("FrameTrace: line " + std::to_string(line) +
                              ": " + what_arg),
        line_(line) {}
  int line() const noexcept { return line_; }

 private:
  int line_;
};

/// One captured video frame of an AR session.
struct FrameRecord {
  /// Capture time in milliseconds from session start.
  double timestamp_ms = 0.0;
  /// Encoded size in kilobytes.
  double size_kb = 0.0;
};

/// A frame-level AR session trace.
class FrameTrace {
 public:
  FrameTrace() = default;
  explicit FrameTrace(std::vector<FrameRecord> frames);

  const std::vector<FrameRecord>& frames() const noexcept { return frames_; }
  std::size_t size() const noexcept { return frames_.size(); }
  bool empty() const noexcept { return frames_.empty(); }
  /// Duration from first to last frame, ms (0 for < 2 frames).
  double duration_ms() const noexcept;
  /// Total payload, MB.
  double total_mb() const noexcept;
  /// Average data rate over the whole trace, MB/s (0 when degenerate).
  double average_rate_mbps() const noexcept;

  /// Writes `timestamp_ms,size_kb` lines with a header.
  void write_csv(std::ostream& os) const;
  /// Parses the CSV format produced by write_csv. Throws TraceParseError
  /// (with the offending 1-based line number and field name) on malformed
  /// rows, and std::invalid_argument on non-monotonic timestamps or
  /// negative sizes.
  static FrameTrace read_csv(std::istream& is);

 private:
  std::vector<FrameRecord> frames_;
};

/// Parameters of the synthetic trace generator, defaults from [5]:
/// 64 KB JPEG frames uploaded at 90-120 fps, with occasional motion bursts
/// that raise the frame size (more scene change = bigger JPEGs).
struct TraceParams {
  double duration_s = 10.0;
  double fps_min = 90.0;
  double fps_max = 120.0;
  double frame_kb_mean = 64.0;
  /// Relative frame-size jitter (lognormal-ish via clamped gaussian).
  double frame_kb_jitter = 0.15;
  /// Probability per second that a motion burst starts.
  double burst_rate_per_s = 0.3;
  /// Burst length and amplification of frame sizes during a burst.
  double burst_len_s = 0.8;
  double burst_scale = 1.6;
};

/// Generates a synthetic session trace matching [5]'s aggregates.
FrameTrace synthesize_trace(const TraceParams& params, util::Rng& rng);

/// Options for turning a trace into the discrete demand distribution of a
/// request (the paper's DR support and pi probabilities).
struct EstimateOptions {
  /// Rate-averaging window.
  double window_ms = 500.0;
  /// Number of levels |DR| in the estimated support.
  int num_levels = 5;
  /// Unit reward range [24]; rewards are drawn demand-independently
  /// (section III-C) using `rng`.
  double reward_per_unit_min = 12.0;
  double reward_per_unit_max = 15.0;
};

/// Windows the trace into data rates, quantizes them into
/// `options.num_levels` equal-width bins over the observed range, and
/// returns the empirical (rate, probability, reward) distribution.
/// Throws when the trace is shorter than one window.
RateRewardDist estimate_demand(const FrameTrace& trace,
                               const EstimateOptions& options,
                               util::Rng& rng);

/// Per-window observed rates (MB/s) — the estimation intermediate, exposed
/// for tests and analysis tools.
std::vector<double> window_rates_mbps(const FrameTrace& trace,
                                      double window_ms);

}  // namespace mecar::mec
