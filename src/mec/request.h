// AR requests with uncertain demands: task pipelines and the discrete
// (data rate, reward) distribution of section III-B/C.
#pragma once

#include <string>
#include <vector>

#include "mec/topology.h"
#include "util/rng.h"

namespace mecar::mec {

/// One task of an AR processing pipeline (pose estimation, tracking, world
/// model, rendering, ...). `proc_weight` scales the per-station processing
/// delay; `output_kb` documents the inter-task matrix size of the pipeline.
struct TaskSpec {
  std::string name;
  double output_kb = 64.0;
  double proc_weight = 1.0;
};

/// One support point of the joint (data rate, reward) distribution:
/// request r_j has rate `rate` (MB/s) with probability `prob`, collecting
/// reward `reward` dollars when served at that rate (Eq. (pi, RD) pairs).
struct RateLevel {
  double rate = 0.0;
  double prob = 0.0;
  double reward = 0.0;
};

/// Discrete distribution over (rate, reward) pairs. Probabilities must sum
/// to 1 (validated), rates must be strictly increasing.
class RateRewardDist {
 public:
  /// Degenerate distribution: rate 0 with probability 1, reward 0.
  /// Lets ARRequest be default-constructed before its demand is filled in.
  RateRewardDist() : RateRewardDist({RateLevel{0.0, 1.0, 0.0}}) {}

  explicit RateRewardDist(std::vector<RateLevel> levels);

  const std::vector<RateLevel>& levels() const noexcept { return levels_; }
  std::size_t size() const noexcept { return levels_.size(); }
  const RateLevel& level(std::size_t k) const { return levels_.at(k); }

  /// E[rho_j].
  double expected_rate() const noexcept { return expected_rate_; }
  /// E[RD_j] = sum_k pi_k * RD_k.
  double expected_reward() const noexcept { return expected_reward_; }
  double max_rate() const noexcept { return levels_.back().rate; }
  double min_rate() const noexcept { return levels_.front().rate; }

  /// E[min(rho_j, cap)] — the truncated expectation of constraints (10)/(23).
  double expected_truncated_rate(double cap) const noexcept;

  /// Expected reward restricted to levels with rate <= cap — the ER_jil of
  /// Eq. (8) with cap = (C(bs_i) - l*C_l) / C_unit.
  double expected_reward_within(double cap) const noexcept;

  /// Samples a level index according to the probabilities.
  std::size_t sample(util::Rng& rng) const;

 private:
  std::vector<RateLevel> levels_;
  double expected_rate_ = 0.0;
  double expected_reward_ = 0.0;
};

/// An AR request: home attachment point, task pipeline, uncertain demand,
/// latency budget, and (for the dynamic problem) arrival time and stream
/// duration.
struct ARRequest {
  int id = 0;
  /// Base station the user device attaches to (requests enter here).
  int home_station = 0;
  std::vector<TaskSpec> tasks;
  RateRewardDist demand;
  /// Experienced-latency requirement \hat{D}_j, ms.
  double latency_budget_ms = 200.0;
  /// Arrival time slot a_j (dynamic problem; 0 for the offline problem).
  int arrival_slot = 0;
  /// Stream duration tau_j in slots (dynamic problem work model).
  int duration_slots = 1;

  /// Total processing weight of the pipeline (sum of task weights).
  double total_proc_weight() const noexcept;
};

/// Transmission + processing latency (ms) of running all tasks of `req` in
/// station `bs`: 2 * d_trans(home, bs) + sum_k d^pro (Eq. (2) without the
/// waiting term). +infinity when the backhaul is disconnected.
double placement_latency_ms(const Topology& topo, const ARRequest& req,
                            int bs);

/// Latency of `req` when its tasks are split across stations: each task k
/// at stations[k]; consecutive tasks at different stations pay the 2x
/// inter-station hop (the Heu migration model).
double split_placement_latency_ms(const Topology& topo, const ARRequest& req,
                                  const std::vector<int>& task_stations);

}  // namespace mecar::mec
