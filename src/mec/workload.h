// Workload generator reproducing the paper's section VI-A settings.
//
// The paper drives its simulations with the AR trace statistics of Braud et
// al. [5] (64 KB JPEG frames at 90-120 fps, a four-task pipeline of render /
// track / update-world-model / recognize with 100/64/64/64 KB outputs, data
// rates of 30-50 MB/s) and unit rewards of 12-15 dollars [24]. We do not
// have the trace itself, so this generator synthesizes requests matching
// exactly those published aggregates — the only properties the paper's
// algorithms consume (DESIGN.md, substitution table).
#pragma once

#include <vector>

#include "mec/request.h"
#include "mec/topology.h"
#include "util/rng.h"

namespace mecar::mec {

/// How the reward of a (request, rate) pair relates to the rate.
enum class RewardModel {
  /// Paper model (section III-C, challenge 2): "the rewards and data rates
  /// of requests are independent". The reward of level (j, rho) is
  /// unit * volume with unit ~ U[reward_per_unit] and volume drawn from the
  /// rate support INDEPENDENTLY of rho.
  kIndependent,
  /// Ablation: the proportional model the paper argues against —
  /// reward = unit * rho.
  kProportional,
};

/// Arrival process of the dynamic problem (horizon_slots > 0).
enum class ArrivalProcess {
  /// Uniform over the horizon (the base model).
  kUniform,
  /// Poisson: exponential inter-arrivals with rate num_requests/horizon.
  kPoisson,
  /// Flash crowd: a Poisson background plus a burst window in the middle
  /// of the horizon holding ~half of all arrivals (stadium kickoff).
  kFlashCrowd,
};

/// Generator parameters with the paper's defaults (section VI-A).
struct WorkloadParams {
  int num_requests = 150;
  /// Data-rate support [30, 50] MB/s; Fig. 6 sweeps rate_max.
  double rate_min = 30.0;
  double rate_max = 50.0;
  /// Number of discrete levels |DR| in the rate support.
  int num_rate_levels = 5;
  /// Larger rates are less likely [10]; probability of level k is
  /// proportional to skew^k (skew <= 1). 1.0 = uniform.
  double rate_prob_skew = 0.6;
  /// Reward per unit data rate, dollars in [12, 15] [24]; drawn
  /// independently per (request, rate) pair — rewards correlate with but are
  /// not proportional to demand (section III-C).
  double reward_per_unit_min = 12.0;
  double reward_per_unit_max = 15.0;
  RewardModel reward_model = RewardModel::kIndependent;
  /// Pipeline length 3..5 (paper: "each request has 3 to 5 tasks").
  int tasks_min = 3;
  int tasks_max = 5;
  /// Zipf exponent of the user-attachment distribution across stations:
  /// 0 = uniform, ~1 = realistic urban hotspots. AR users cluster (malls,
  /// stadiums, campuses); hotspot skew is what separates the paper's
  /// global algorithms from the "local strategy" baselines (section VI-B).
  double home_skew = 1.0;
  /// Latency requirement, ms [18].
  double latency_budget_ms = 200.0;
  /// Dynamic problem: arrivals uniform over [0, horizon_slots) and stream
  /// durations uniform in [duration_min, duration_max] slots (6-20 s AR
  /// sessions at the paper's 0.05 s slot length).
  int horizon_slots = 0;  // 0 = all arrive at slot 0 (offline problem)
  ArrivalProcess arrivals = ArrivalProcess::kUniform;
  int duration_min_slots = 120;
  int duration_max_slots = 400;
};

/// Computing resource consumed per unit data rate: 20 MHz per MB/s (VI-A).
inline constexpr double kCUnitMhzPerMbps = 20.0;

/// The four-task AR pipeline template of [5]; `count` tasks are taken
/// cyclically (3 -> render/track/update, 5 -> + recognize + render pass).
std::vector<TaskSpec> ar_pipeline(int count);

/// Generates `params.num_requests` AR requests attached to uniformly random
/// home stations of `topo`.
std::vector<ARRequest> generate_requests(const WorkloadParams& params,
                                         const Topology& topo,
                                         util::Rng& rng);

}  // namespace mecar::mec
