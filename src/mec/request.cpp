#include "mec/request.h"

#include <cmath>
#include <stdexcept>

namespace mecar::mec {

RateRewardDist::RateRewardDist(std::vector<RateLevel> levels)
    : levels_(std::move(levels)) {
  if (levels_.empty()) {
    throw std::invalid_argument("RateRewardDist: no levels");
  }
  double total_prob = 0.0;
  double prev_rate = -1.0;
  for (const RateLevel& lvl : levels_) {
    if (lvl.rate <= prev_rate) {
      throw std::invalid_argument(
          "RateRewardDist: rates must be strictly increasing");
    }
    if (lvl.prob < 0.0 || lvl.prob > 1.0) {
      throw std::invalid_argument("RateRewardDist: probability outside [0,1]");
    }
    if (lvl.reward < 0.0) {
      throw std::invalid_argument("RateRewardDist: negative reward");
    }
    prev_rate = lvl.rate;
    total_prob += lvl.prob;
    expected_rate_ += lvl.prob * lvl.rate;
    expected_reward_ += lvl.prob * lvl.reward;
  }
  if (std::abs(total_prob - 1.0) > 1e-9) {
    throw std::invalid_argument("RateRewardDist: probabilities must sum to 1");
  }
}

double RateRewardDist::expected_truncated_rate(double cap) const noexcept {
  double e = 0.0;
  for (const RateLevel& lvl : levels_) {
    e += lvl.prob * std::min(lvl.rate, cap);
  }
  return e;
}

double RateRewardDist::expected_reward_within(double cap) const noexcept {
  double e = 0.0;
  for (const RateLevel& lvl : levels_) {
    if (lvl.rate <= cap) e += lvl.prob * lvl.reward;
  }
  return e;
}

std::size_t RateRewardDist::sample(util::Rng& rng) const {
  double target = rng.uniform();
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    target -= levels_[k].prob;
    if (target < 0.0) return k;
  }
  return levels_.size() - 1;
}

double ARRequest::total_proc_weight() const noexcept {
  double total = 0.0;
  for (const TaskSpec& task : tasks) total += task.proc_weight;
  return total;
}

double placement_latency_ms(const Topology& topo, const ARRequest& req,
                            int bs) {
  const double trans = topo.transmission_delay_ms(req.home_station, bs);
  const double proc =
      req.total_proc_weight() * topo.station(bs).proc_ms_per_unit;
  return 2.0 * trans + proc;
}

double split_placement_latency_ms(const Topology& topo, const ARRequest& req,
                                  const std::vector<int>& task_stations) {
  if (task_stations.size() != req.tasks.size()) {
    throw std::invalid_argument(
        "split_placement_latency_ms: one station per task required");
  }
  double latency = 0.0;
  int prev = req.home_station;
  for (std::size_t k = 0; k < req.tasks.size(); ++k) {
    const int bs = task_stations[k];
    latency += topo.transmission_delay_ms(prev, bs);
    latency += req.tasks[k].proc_weight * topo.station(bs).proc_ms_per_unit;
    prev = bs;
  }
  // Results return to the user device via its home station.
  latency += topo.transmission_delay_ms(prev, req.home_station);
  return latency;
}

}  // namespace mecar::mec
