#include "mec/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mecar::mec {

std::vector<TaskSpec> ar_pipeline(int count) {
  if (count <= 0) {
    throw std::invalid_argument("ar_pipeline: non-positive task count");
  }
  // The AR processing pipeline of [5]: rendering dominates the computation
  // (the paper: "rendering ... is the most computing-intensive task").
  static const TaskSpec kTemplate[4] = {
      {"track_objects", 64.0, 0.8},
      {"update_world_model", 64.0, 0.6},
      {"recognize_objects", 64.0, 1.0},
      {"render_objects", 100.0, 1.6},
  };
  std::vector<TaskSpec> tasks;
  tasks.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    tasks.push_back(kTemplate[static_cast<std::size_t>(k % 4)]);
  }
  return tasks;
}

std::vector<ARRequest> generate_requests(const WorkloadParams& params,
                                         const Topology& topo,
                                         util::Rng& rng) {
  if (params.num_requests < 0) {
    throw std::invalid_argument("generate_requests: negative request count");
  }
  if (params.num_rate_levels < 1) {
    throw std::invalid_argument("generate_requests: need >= 1 rate level");
  }
  if (params.rate_min <= 0.0 || params.rate_max < params.rate_min) {
    throw std::invalid_argument("generate_requests: bad rate range");
  }
  if (params.tasks_min < 1 || params.tasks_max < params.tasks_min) {
    throw std::invalid_argument("generate_requests: bad task count range");
  }
  if (params.rate_prob_skew <= 0.0 || params.rate_prob_skew > 1.0) {
    throw std::invalid_argument("generate_requests: skew must be in (0, 1]");
  }

  if (params.home_skew < 0.0) {
    throw std::invalid_argument("generate_requests: negative home_skew");
  }

  std::vector<ARRequest> requests;
  requests.reserve(static_cast<std::size_t>(params.num_requests));
  const int levels = params.num_rate_levels;

  // Zipf-weighted attachment over a random permutation of stations (so the
  // hotspot location is itself random).
  std::vector<int> station_perm(static_cast<std::size_t>(topo.num_stations()));
  for (int i = 0; i < topo.num_stations(); ++i) {
    station_perm[static_cast<std::size_t>(i)] = i;
  }
  rng.shuffle(station_perm);
  std::vector<double> home_weights(station_perm.size());
  for (std::size_t i = 0; i < station_perm.size(); ++i) {
    home_weights[i] =
        1.0 / std::pow(static_cast<double>(i) + 1.0, params.home_skew);
  }

  for (int j = 0; j < params.num_requests; ++j) {
    ARRequest req;
    req.id = j;
    req.home_station = station_perm[rng.categorical(home_weights)];
    req.tasks = ar_pipeline(
        static_cast<int>(rng.uniform_int(params.tasks_min, params.tasks_max)));
    req.latency_budget_ms = params.latency_budget_ms;

    // Discrete rate support: evenly spaced levels across [rate_min, rate_max]
    // with a small per-request jitter, geometric probability skew toward
    // small rates ("the probability of requests with large data rates is
    // usually small" [10]), and an independent unit reward per level.
    std::vector<RateLevel> rate_levels;
    rate_levels.reserve(static_cast<std::size_t>(levels));
    double prob_total = 0.0;
    std::vector<double> probs(static_cast<std::size_t>(levels));
    for (int k = 0; k < levels; ++k) {
      const double base = std::pow(params.rate_prob_skew, k);
      const double jitter = rng.uniform(0.8, 1.2);
      probs[static_cast<std::size_t>(k)] = base * jitter;
      prob_total += probs[static_cast<std::size_t>(k)];
    }
    const double step =
        levels == 1 ? 0.0
                    : (params.rate_max - params.rate_min) / (levels - 1);
    for (int k = 0; k < levels; ++k) {
      RateLevel lvl;
      const double nominal = params.rate_min + step * k;
      const double max_jitter = step > 0.0 ? step * 0.2 : 0.0;
      lvl.rate = nominal + rng.uniform(-max_jitter, max_jitter);
      lvl.prob = probs[static_cast<std::size_t>(k)] / prob_total;
      const double unit = rng.uniform(params.reward_per_unit_min,
                                      params.reward_per_unit_max);
      // Demand-independent rewards (the paper's challenge 2): the billed
      // volume is drawn from the rate support independently of the level's
      // actual rate. The proportional ablation uses the rate itself.
      const double billed_volume =
          params.reward_model == RewardModel::kIndependent
              ? rng.uniform(params.rate_min, params.rate_max)
              : lvl.rate;
      lvl.reward = unit * billed_volume;
      rate_levels.push_back(lvl);
    }
    // Normalize the tail so probabilities sum to exactly 1.
    double acc = 0.0;
    for (int k = 0; k + 1 < levels; ++k) {
      acc += rate_levels[static_cast<std::size_t>(k)].prob;
    }
    rate_levels.back().prob = 1.0 - acc;
    req.demand = RateRewardDist(std::move(rate_levels));

    if (params.horizon_slots > 0) {
      const int horizon = params.horizon_slots;
      switch (params.arrivals) {
        case ArrivalProcess::kUniform:
          req.arrival_slot =
              static_cast<int>(rng.uniform_int(0, horizon - 1));
          break;
        case ArrivalProcess::kPoisson: {
          // Memoryless arrivals at the configured mean intensity: a
          // uniform draw per request is the conditional distribution of a
          // Poisson process given its count, so jitter the uniform grid.
          const double pos = rng.uniform(0.0, static_cast<double>(horizon));
          req.arrival_slot = std::min(horizon - 1, static_cast<int>(pos));
          break;
        }
        case ArrivalProcess::kFlashCrowd: {
          // Half the arrivals land in the middle eighth of the horizon.
          if (rng.bernoulli(0.5)) {
            const int burst_start = horizon * 7 / 16;
            const int burst_len = std::max(1, horizon / 8);
            req.arrival_slot = burst_start + static_cast<int>(rng.uniform_int(
                                                 0, burst_len - 1));
          } else {
            req.arrival_slot =
                static_cast<int>(rng.uniform_int(0, horizon - 1));
          }
          break;
        }
      }
    }
    req.duration_slots = static_cast<int>(rng.uniform_int(
        params.duration_min_slots, params.duration_max_slots));
    requests.push_back(std::move(req));
  }

  std::sort(requests.begin(), requests.end(),
            [](const ARRequest& a, const ARRequest& b) {
              if (a.arrival_slot != b.arrival_slot) {
                return a.arrival_slot < b.arrival_slot;
              }
              return a.id < b.id;
            });
  return requests;
}

}  // namespace mecar::mec
