// MEC network substrate: base stations, backhaul links, transmission delays.
//
// The paper evaluates on topologies "generated using GT-ITM" [13]; GT-ITM's
// flat random model is the Waxman model, which `TopologyGenerator` implements
// (uniform node placement, edge probability beta * exp(-d / (alpha * L)),
// plus patch edges to guarantee connectivity). Each base station carries a
// computing capacity in MHz and a per-unit processing speed; each link a
// per-unit transmission delay. All-pairs shortest transmission delays are
// precomputed with Dijkstra.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace mecar::mec {

/// A 5G base station of the MEC network.
struct BaseStation {
  int id = 0;
  /// Computing capacity C(bs_i) in MHz.
  double capacity_mhz = 0.0;
  /// Delay of processing one rho_unit of data per unit of task weight, ms.
  /// (d^pro_{jki} = task.proc_weight * proc_ms_per_unit of the station.)
  double proc_ms_per_unit = 1.0;
  /// Planar position (arbitrary units) used by the Waxman generator.
  double x = 0.0;
  double y = 0.0;
};

/// An undirected backhaul link between two base stations.
struct Link {
  int a = 0;
  int b = 0;
  /// Delay d^trans of shipping one rho_unit of data across the link, ms.
  double delay_ms = 0.0;
  /// Carrying capacity in MB/s (infinite = unconstrained backhaul, the
  /// paper's base model; finite values enable the bandwidth extension —
  /// the paper criticizes prior work for "ignoring the backhaul wired
  /// bandwidth consumption").
  double bandwidth_mbps = std::numeric_limits<double>::infinity();
};

/// Immutable network: stations, links, and all-pairs shortest-path
/// transmission delays (ms per rho_unit).
class Topology {
 public:
  Topology(std::vector<BaseStation> stations, std::vector<Link> links);

  int num_stations() const noexcept {
    return static_cast<int>(stations_.size());
  }
  const BaseStation& station(int id) const { return stations_.at(id); }
  const std::vector<BaseStation>& stations() const noexcept {
    return stations_;
  }
  const std::vector<Link>& links() const noexcept { return links_; }

  /// Shortest transmission delay between two stations (0 when equal);
  /// +infinity when disconnected.
  double transmission_delay_ms(int from, int to) const;

  /// True when every station can reach every other.
  bool connected() const noexcept;

  /// Total computing capacity of the network, MHz.
  double total_capacity_mhz() const noexcept;

  /// Stations ordered by transmission delay from `from` (nearest first,
  /// starting with `from` itself).
  std::vector<int> stations_by_distance(int from) const;

  /// Link indices along the delay-shortest path from `from` to `to`
  /// (empty when from == to). Throws std::runtime_error when disconnected.
  std::vector<int> shortest_path_links(int from, int to) const;

 private:
  void compute_shortest_paths();

  std::vector<BaseStation> stations_;
  std::vector<Link> links_;
  /// adjacency_[u] = (neighbour, delay, link index).
  struct Edge {
    int to;
    double delay;
    int link;
  };
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<double> dist_;      // row-major |BS| x |BS|
  std::vector<int> parent_link_;  // row-major: link used to reach column
};

/// Parameters of the Waxman/GT-ITM-style generator with the paper's
/// section VI-A defaults.
struct TopologyParams {
  int num_stations = 20;
  /// Capacity range [3000, 3600] MHz [28].
  double capacity_min_mhz = 3000.0;
  double capacity_max_mhz = 3600.0;
  /// Per-unit processing speed range (ms per rho_unit per task weight).
  double proc_ms_min = 1.0;
  double proc_ms_max = 3.0;
  /// Waxman parameters; GT-ITM flat random defaults.
  double waxman_alpha = 0.4;
  double waxman_beta = 0.6;
  /// Link transmission delay range (ms per rho_unit per hop).
  double link_delay_min_ms = 2.0;
  double link_delay_max_ms = 8.0;
  /// Backhaul link bandwidth range in MB/s; infinite (the default)
  /// reproduces the paper's unconstrained-backhaul model.
  double link_bandwidth_min_mbps = std::numeric_limits<double>::infinity();
  double link_bandwidth_max_mbps = std::numeric_limits<double>::infinity();
};

/// Generates a connected Waxman topology. Throws on non-positive sizes.
Topology generate_topology(const TopologyParams& params, util::Rng& rng);

}  // namespace mecar::mec
