#include "bandit/ucb1.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/catalog.h"
#include "util/snapshot.h"

namespace mecar::bandit {

Ucb1::Ucb1(int num_arms, double reward_range) : range_(reward_range) {
  if (num_arms <= 0) throw std::invalid_argument("Ucb1: num_arms <= 0");
  if (reward_range <= 0.0) throw std::invalid_argument("Ucb1: range <= 0");
  arms_.resize(static_cast<std::size_t>(num_arms));
}

int Ucb1::select_arm() {
  int best = 0;
  double best_index = -std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < arms_.size(); ++a) {
    if (arms_[a].pulls == 0) return static_cast<int>(a);
    const double bonus =
        range_ * std::sqrt(2.0 * std::log(std::max(2, rounds_)) /
                           arms_[a].pulls);
    const double index = arms_[a].mean + bonus;
    if (index > best_index) {
      best_index = index;
      best = static_cast<int>(a);
    }
  }
  return best;
}

void Ucb1::update(int arm, double reward) {
  if (arm < 0 || arm >= num_arms()) {
    throw std::out_of_range("Ucb1::update: bad arm");
  }
  Arm& a = arms_[static_cast<std::size_t>(arm)];
  ++a.pulls;
  a.mean += (reward - a.mean) / a.pulls;
  ++rounds_;
  obs::metrics().bandit_arm_pulls.add();
}

double Ucb1::mean(int arm) const {
  return arms_.at(static_cast<std::size_t>(arm)).mean;
}

void Ucb1::save(util::SnapshotWriter& w) const {
  w.vec(arms_, [&](const Arm& a) {
    w.i32(a.pulls);
    w.f64(a.mean);
  });
  w.i32(rounds_);
}

void Ucb1::load(util::SnapshotReader& r) {
  const std::uint64_t n = r.u64();
  if (n != arms_.size()) {
    throw util::SnapshotParseError(r.offset(), "Ucb1: arm count mismatch");
  }
  for (Arm& a : arms_) {
    a.pulls = r.i32();
    a.mean = r.f64();
  }
  rounds_ = r.i32();
}

}  // namespace mecar::bandit
