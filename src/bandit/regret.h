// Cumulative-regret bookkeeping for the Theorem 3 experiments.
#pragma once

#include <vector>

namespace mecar::bandit {

/// Accumulates per-round rewards of a policy and of the best fixed arm,
/// exposing the cumulative regret trajectory.
class RegretTracker {
 public:
  void record(double policy_reward, double best_fixed_reward);

  int rounds() const noexcept { return static_cast<int>(per_round_.size()); }
  double policy_total() const noexcept { return policy_total_; }
  double best_fixed_total() const noexcept { return best_total_; }
  /// Cumulative regret after all recorded rounds (can be negative when the
  /// policy beat the fixed comparator on this sample path).
  double cumulative_regret() const noexcept {
    return best_total_ - policy_total_;
  }
  /// Regret trajectory: entry t is the cumulative regret after round t+1.
  const std::vector<double>& trajectory() const noexcept { return per_round_; }

 private:
  std::vector<double> per_round_;
  double policy_total_ = 0.0;
  double best_total_ = 0.0;
};

}  // namespace mecar::bandit
