// UCB1 (Auer et al.): optimism in the face of uncertainty. Included as a
// drop-in alternative to successive elimination for ablation studies of
// DynamicRR's arm-selection rule.
#pragma once

#include <vector>

#include "bandit/bandit.h"

namespace mecar::bandit {

class Ucb1 final : public Bandit {
 public:
  explicit Ucb1(int num_arms, double reward_range = 1.0);

  int select_arm() override;
  void update(int arm, double reward) override;
  int num_arms() const override { return static_cast<int>(arms_.size()); }
  int rounds() const override { return rounds_; }
  double mean(int arm) const override;

  void save(util::SnapshotWriter& w) const override;
  void load(util::SnapshotReader& r) override;

 private:
  struct Arm {
    int pulls = 0;
    double mean = 0.0;
  };
  std::vector<Arm> arms_;
  double range_;
  int rounds_ = 0;
};

}  // namespace mecar::bandit
