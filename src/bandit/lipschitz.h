// Uniform discretization of a continuous arm space (section V-A).
//
// The threshold C^th lives in Z = [C^th_min, C^th_max]; assuming the
// expected reward is eta-Lipschitz in the threshold (Eq. (21)), dividing Z
// into kappa arms of spacing epsilon = (max - min) / (kappa - 1) costs at
// most eta * epsilon reward per round (discretization error, Eq. (25)),
// giving Theorem 3's regret O(sqrt(kappa T log T) + T eta epsilon).
#pragma once

#include <memory>
#include <vector>

#include "bandit/bandit.h"

namespace mecar::bandit {

/// A finite arm grid over a continuous interval plus the bandit policy that
/// learns over it.
class LipschitzGrid {
 public:
  /// Discretizes [lo, hi] into `kappa` evenly spaced arms (kappa >= 1).
  LipschitzGrid(double lo, double hi, int kappa);

  int num_arms() const noexcept { return static_cast<int>(values_.size()); }
  double value(int arm) const { return values_.at(static_cast<std::size_t>(arm)); }
  const std::vector<double>& values() const noexcept { return values_; }
  double spacing() const noexcept { return spacing_; }

  /// The grid arm closest to a continuous point (clamped to [lo, hi]).
  int nearest_arm(double x) const;

  /// Worst-case discretization error eta * epsilon of Eq. (25).
  double discretization_error(double eta) const noexcept {
    return eta * spacing_;
  }

 private:
  std::vector<double> values_;
  double spacing_ = 0.0;
};

}  // namespace mecar::bandit
