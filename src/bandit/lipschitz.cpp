#include "bandit/lipschitz.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mecar::bandit {

LipschitzGrid::LipschitzGrid(double lo, double hi, int kappa) {
  if (kappa < 1) throw std::invalid_argument("LipschitzGrid: kappa < 1");
  if (hi < lo) throw std::invalid_argument("LipschitzGrid: hi < lo");
  if (kappa == 1) {
    values_.push_back((lo + hi) / 2.0);
    spacing_ = hi - lo;
    return;
  }
  spacing_ = (hi - lo) / (kappa - 1);
  values_.reserve(static_cast<std::size_t>(kappa));
  for (int k = 0; k < kappa; ++k) {
    values_.push_back(lo + spacing_ * k);
  }
}

int LipschitzGrid::nearest_arm(double x) const {
  int best = 0;
  double best_dist = std::abs(x - values_[0]);
  for (std::size_t a = 1; a < values_.size(); ++a) {
    const double d = std::abs(x - values_[a]);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(a);
    }
  }
  return best;
}

}  // namespace mecar::bandit
