// Thompson sampling with Gaussian posteriors over arm means.
//
// A Bayesian alternative to successive elimination for DynamicRR's arm
// selection (ablation). Rewards are modelled as N(mu, sigma^2) with a
// N(prior_mean, prior_var) prior per arm; each round samples every
// posterior and plays the argmax.
#pragma once

#include <vector>

#include "bandit/bandit.h"
#include "util/rng.h"

namespace mecar::bandit {

class ThompsonSampling final : public Bandit {
 public:
  /// `observation_noise` is the assumed reward std-dev; the prior is
  /// N(prior_mean, prior_std^2) for every arm.
  ThompsonSampling(int num_arms, util::Rng rng, double observation_noise = 0.25,
                   double prior_mean = 0.5, double prior_std = 1.0);

  int select_arm() override;
  void update(int arm, double reward) override;
  int num_arms() const override { return static_cast<int>(arms_.size()); }
  int rounds() const override { return rounds_; }
  double mean(int arm) const override;

  /// Posterior mean/std for inspection.
  double posterior_mean(int arm) const;
  double posterior_std(int arm) const;

  void save(util::SnapshotWriter& w) const override;
  void load(util::SnapshotReader& r) override;

 private:
  struct Arm {
    double posterior_mean;
    double posterior_var;
    int pulls = 0;
    double empirical_mean = 0.0;
  };
  double gaussian(double mean, double std);

  std::vector<Arm> arms_;
  util::Rng rng_;
  double noise_var_;
  int rounds_ = 0;
};

}  // namespace mecar::bandit
