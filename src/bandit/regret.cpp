#include "bandit/regret.h"

namespace mecar::bandit {

void RegretTracker::record(double policy_reward, double best_fixed_reward) {
  policy_total_ += policy_reward;
  best_total_ += best_fixed_reward;
  per_round_.push_back(best_total_ - policy_total_);
}

}  // namespace mecar::bandit
