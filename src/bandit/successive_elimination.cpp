#include "bandit/successive_elimination.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/catalog.h"
#include "obs/event_trace.h"
#include "util/snapshot.h"

namespace mecar::bandit {

SuccessiveElimination::SuccessiveElimination(int num_arms, double reward_range)
    : range_(reward_range) {
  if (num_arms <= 0) {
    throw std::invalid_argument("SuccessiveElimination: num_arms <= 0");
  }
  if (reward_range <= 0.0) {
    throw std::invalid_argument("SuccessiveElimination: range <= 0");
  }
  arms_.resize(static_cast<std::size_t>(num_arms));
}

int SuccessiveElimination::select_arm() {
  // Unplayed active arms first. Then alternate an exploration round — the
  // least-sampled active arm, which drives elimination ("try all active
  // arms in possibly multiple rounds", Alg. 3 step 5) — with an
  // exploitation round on the empirically best active arm ("choose an
  // active arm that has the maximum reward", step 9). Once a single arm
  // survives both modes coincide.
  for (std::size_t a = 0; a < arms_.size(); ++a) {
    if (arms_[a].active && arms_[a].pulls == 0) return static_cast<int>(a);
  }
  if (rounds_ % 2 == 1) return best_active_arm();
  int fewest = -1;
  for (std::size_t a = 0; a < arms_.size(); ++a) {
    if (!arms_[a].active) continue;
    if (fewest < 0 ||
        arms_[a].pulls < arms_[static_cast<std::size_t>(fewest)].pulls) {
      fewest = static_cast<int>(a);
    }
  }
  return fewest;  // never -1: at least one arm stays active
}

void SuccessiveElimination::update(int arm, double reward) {
  if (arm < 0 || arm >= num_arms()) {
    throw std::out_of_range("SuccessiveElimination::update: bad arm");
  }
  Arm& a = arms_[static_cast<std::size_t>(arm)];
  ++a.pulls;
  a.mean += (reward - a.mean) / a.pulls;
  ++rounds_;
  obs::metrics().bandit_arm_pulls.add();
  eliminate();
}

double SuccessiveElimination::mean(int arm) const {
  return arms_.at(static_cast<std::size_t>(arm)).mean;
}

bool SuccessiveElimination::is_active(int arm) const {
  return arms_.at(static_cast<std::size_t>(arm)).active;
}

int SuccessiveElimination::num_active() const {
  int n = 0;
  for (const Arm& a : arms_) n += a.active;
  return n;
}

double SuccessiveElimination::radius(const Arm& arm) const {
  if (arm.pulls == 0) return std::numeric_limits<double>::infinity();
  const double t = std::max(2, rounds_);
  return range_ * std::sqrt(2.0 * std::log(t) / arm.pulls);
}

double SuccessiveElimination::ucb(int arm) const {
  const Arm& a = arms_.at(static_cast<std::size_t>(arm));
  return a.mean + radius(a);
}

double SuccessiveElimination::lcb(int arm) const {
  const Arm& a = arms_.at(static_cast<std::size_t>(arm));
  return a.mean - radius(a);
}

int SuccessiveElimination::best_active_arm() const {
  int best = -1;
  double best_mean = -std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < arms_.size(); ++a) {
    if (!arms_[a].active) continue;
    if (arms_[a].mean > best_mean) {
      best_mean = arms_[a].mean;
      best = static_cast<int>(a);
    }
  }
  return best;
}

void SuccessiveElimination::eliminate() {
  double best_lcb = -std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < arms_.size(); ++a) {
    if (arms_[a].active) {
      best_lcb = std::max(best_lcb, lcb(static_cast<int>(a)));
    }
  }
  int active = num_active();
  const int active_before = active;
  for (std::size_t a = 0; a < arms_.size(); ++a) {
    if (!arms_[a].active || active <= 1) continue;
    if (ucb(static_cast<int>(a)) < best_lcb) {
      arms_[a].active = false;
      --active;
      obs::metrics().bandit_arm_eliminations.add();
      obs::EventTrace& tr = obs::trace();
      if (tr.enabled()) {
        tr.emit(obs::EventKind::kArmElimination, static_cast<double>(a),
                active);
      }
    }
  }
  if (active != active_before) {
    obs::metrics().bandit_active_arms.set(active);
  }
}

void SuccessiveElimination::save(util::SnapshotWriter& w) const {
  w.vec(arms_, [&](const Arm& a) {
    w.i32(a.pulls);
    w.f64(a.mean);
    w.boolean(a.active);
  });
  w.i32(rounds_);
}

void SuccessiveElimination::load(util::SnapshotReader& r) {
  const std::uint64_t n = r.u64();
  if (n != arms_.size()) {
    throw util::SnapshotParseError(
        r.offset(), "SuccessiveElimination: arm count mismatch");
  }
  for (Arm& a : arms_) {
    a.pulls = r.i32();
    a.mean = r.f64();
    a.active = r.boolean();
  }
  rounds_ = r.i32();
}

}  // namespace mecar::bandit
