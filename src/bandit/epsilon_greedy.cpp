#include "bandit/epsilon_greedy.h"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

#include "obs/catalog.h"
#include "util/snapshot.h"

namespace mecar::bandit {

EpsilonGreedy::EpsilonGreedy(int num_arms, util::Rng rng, double c)
    : rng_(rng), c_(c) {
  if (num_arms <= 0) {
    throw std::invalid_argument("EpsilonGreedy: num_arms <= 0");
  }
  if (c <= 0.0) throw std::invalid_argument("EpsilonGreedy: c <= 0");
  arms_.resize(static_cast<std::size_t>(num_arms));
}

int EpsilonGreedy::select_arm() {
  // Play each arm once first.
  for (std::size_t a = 0; a < arms_.size(); ++a) {
    if (arms_[a].pulls == 0) return static_cast<int>(a);
  }
  const double eps = std::min(1.0, c_ / std::max(1, rounds_));
  if (rng_.bernoulli(eps)) {
    return static_cast<int>(
        rng_.uniform_int(0, static_cast<std::int64_t>(arms_.size()) - 1));
  }
  int best = 0;
  double best_mean = -std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < arms_.size(); ++a) {
    if (arms_[a].mean > best_mean) {
      best_mean = arms_[a].mean;
      best = static_cast<int>(a);
    }
  }
  return best;
}

void EpsilonGreedy::update(int arm, double reward) {
  if (arm < 0 || arm >= num_arms()) {
    throw std::out_of_range("EpsilonGreedy::update: bad arm");
  }
  Arm& a = arms_[static_cast<std::size_t>(arm)];
  ++a.pulls;
  a.mean += (reward - a.mean) / a.pulls;
  ++rounds_;
  obs::metrics().bandit_arm_pulls.add();
}

double EpsilonGreedy::mean(int arm) const {
  return arms_.at(static_cast<std::size_t>(arm)).mean;
}

void EpsilonGreedy::save(util::SnapshotWriter& w) const {
  w.vec(arms_, [&](const Arm& a) {
    w.i32(a.pulls);
    w.f64(a.mean);
  });
  for (std::uint64_t s : rng_.state()) w.u64(s);
  w.i32(rounds_);
}

void EpsilonGreedy::load(util::SnapshotReader& r) {
  const std::uint64_t n = r.u64();
  if (n != arms_.size()) {
    throw util::SnapshotParseError(r.offset(),
                                   "EpsilonGreedy: arm count mismatch");
  }
  for (Arm& a : arms_) {
    a.pulls = r.i32();
    a.mean = r.f64();
  }
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& s : state) s = r.u64();
  rng_.set_state(state);
  rounds_ = r.i32();
}

}  // namespace mecar::bandit
