// Multi-armed bandit interfaces (section V).
//
// A policy selects one arm per round and receives a stochastic reward for
// it. DynamicRR instantiates SuccessiveElimination over a Lipschitz
// discretization of the threshold range; UCB1 and epsilon-greedy are
// provided for comparison/ablation.
#pragma once

#include <cstddef>

namespace mecar::util {
class SnapshotWriter;
class SnapshotReader;
}  // namespace mecar::util

namespace mecar::bandit {

/// Abstract bandit policy over a fixed finite arm set.
class Bandit {
 public:
  virtual ~Bandit() = default;

  /// Picks the arm to play this round.
  virtual int select_arm() = 0;

  /// Records the observed reward for `arm`. Rewards should be (roughly)
  /// within the range the policy was configured with.
  virtual void update(int arm, double reward) = 0;

  virtual int num_arms() const = 0;

  /// Rounds played so far.
  virtual int rounds() const = 0;

  /// Empirical mean reward of an arm (0 when unplayed).
  virtual double mean(int arm) const = 0;

  /// Serializes the learner's mutable state (counts, means, posteriors,
  /// exploration RNG) for checkpoint/restore. Configuration fixed at
  /// construction (arm count, ranges, priors) is NOT written: restore
  /// constructs the learner with the original arguments, then load()
  /// overwrites the mutable state. load() throws util::SnapshotParseError
  /// when the stored arm count disagrees with the constructed one.
  virtual void save(util::SnapshotWriter& w) const = 0;
  virtual void load(util::SnapshotReader& r) = 0;
};

}  // namespace mecar::bandit
