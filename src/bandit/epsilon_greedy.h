// Epsilon-greedy with a decaying exploration rate eps_t = min(1, c/t).
// Included as an ablation alternative for DynamicRR's arm selection.
#pragma once

#include <vector>

#include "bandit/bandit.h"
#include "util/rng.h"

namespace mecar::bandit {

class EpsilonGreedy final : public Bandit {
 public:
  /// `c` controls the exploration decay; eps_t = min(1, c / t).
  EpsilonGreedy(int num_arms, util::Rng rng, double c = 8.0);

  int select_arm() override;
  void update(int arm, double reward) override;
  int num_arms() const override { return static_cast<int>(arms_.size()); }
  int rounds() const override { return rounds_; }
  double mean(int arm) const override;

  void save(util::SnapshotWriter& w) const override;
  void load(util::SnapshotReader& r) override;

 private:
  struct Arm {
    int pulls = 0;
    double mean = 0.0;
  };
  std::vector<Arm> arms_;
  util::Rng rng_;
  double c_;
  int rounds_ = 0;
};

}  // namespace mecar::bandit
