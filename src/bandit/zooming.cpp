#include "bandit/zooming.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/catalog.h"
#include "util/snapshot.h"

namespace mecar::bandit {

ZoomingBandit::ZoomingBandit(double lo, double hi, util::Rng rng,
                             double reward_range)
    : lo_(lo), hi_(hi), rng_(rng), range_(reward_range) {
  if (hi < lo) throw std::invalid_argument("ZoomingBandit: hi < lo");
  if (reward_range <= 0.0) {
    throw std::invalid_argument("ZoomingBandit: range <= 0");
  }
  points_.push_back(Point{(lo + hi) / 2.0});
}

double ZoomingBandit::radius(const Point& p) const {
  if (p.pulls == 0) return std::numeric_limits<double>::infinity();
  const double t = std::max(2, rounds_);
  return range_ * std::sqrt(2.0 * std::log(t) / p.pulls);
}

double ZoomingBandit::find_uncovered() const {
  // Sample candidate locations; return one not covered by any confidence
  // ball. (The interval is 1-D; random probing suffices and keeps the
  // implementation simple and allocation-free.)
  auto covered = [&](double x) {
    for (const Point& p : points_) {
      if (std::abs(x - p.value) <= radius(p)) return true;
    }
    return false;
  };
  // A fresh (unpulled) point has infinite radius and covers everything.
  for (const Point& p : points_) {
    if (p.pulls == 0) return std::numeric_limits<double>::quiet_NaN();
  }
  for (int trial = 0; trial < 16; ++trial) {
    const double x =
        lo_ + (hi_ - lo_) * (trial + 0.5) / 16.0;  // deterministic sweep
    if (!covered(x)) return x;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double ZoomingBandit::select_point() {
  const double uncovered = find_uncovered();
  if (!std::isnan(uncovered)) {
    points_.push_back(Point{uncovered});
    last_played_ = static_cast<int>(points_.size()) - 1;
    return uncovered;
  }
  // Play the active point with the highest index mean + 2*radius
  // (the zooming rule).
  int best = 0;
  double best_index = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const double idx = points_[i].pulls == 0
                           ? std::numeric_limits<double>::infinity()
                           : points_[i].mean + 2.0 * radius(points_[i]);
    if (idx > best_index) {
      best_index = idx;
      best = static_cast<int>(i);
    }
  }
  last_played_ = best;
  return points_[static_cast<std::size_t>(best)].value;
}

void ZoomingBandit::update(double reward) {
  if (last_played_ < 0) {
    throw std::logic_error("ZoomingBandit::update before select_point");
  }
  Point& p = points_[static_cast<std::size_t>(last_played_)];
  ++p.pulls;
  p.mean += (reward - p.mean) / p.pulls;
  ++rounds_;
  last_played_ = -1;
  obs::metrics().bandit_arm_pulls.add();
}

double ZoomingBandit::best_point() const {
  int best = 0;
  double best_mean = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].pulls == 0) continue;
    any = true;
    if (points_[i].mean > best_mean) {
      best_mean = points_[i].mean;
      best = static_cast<int>(i);
    }
  }
  if (!any) return points_.front().value;
  return points_[static_cast<std::size_t>(best)].value;
}

std::vector<ZoomingBandit::PointInfo> ZoomingBandit::points() const {
  std::vector<PointInfo> out;
  out.reserve(points_.size());
  for (const Point& p : points_) {
    out.push_back(PointInfo{p.value, p.pulls, p.mean});
  }
  return out;
}

void ZoomingBandit::save(util::SnapshotWriter& w) const {
  w.vec(points_, [&](const Point& p) {
    w.f64(p.value);
    w.i32(p.pulls);
    w.f64(p.mean);
  });
  for (std::uint64_t s : rng_.state()) w.u64(s);
  w.i32(last_played_);
  w.i32(rounds_);
}

void ZoomingBandit::load(util::SnapshotReader& r) {
  points_ = r.vec<Point>([&] {
    Point p;
    p.value = r.f64();
    p.pulls = r.i32();
    p.mean = r.f64();
    return p;
  });
  if (points_.empty()) {
    throw util::SnapshotParseError(r.offset(),
                                   "ZoomingBandit: empty point set");
  }
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& s : state) s = r.u64();
  rng_.set_state(state);
  last_played_ = r.i32();
  rounds_ = r.i32();
}

}  // namespace mecar::bandit
