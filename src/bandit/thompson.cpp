#include "bandit/thompson.h"

#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/catalog.h"
#include "util/snapshot.h"

namespace mecar::bandit {

ThompsonSampling::ThompsonSampling(int num_arms, util::Rng rng,
                                   double observation_noise,
                                   double prior_mean, double prior_std)
    : rng_(rng), noise_var_(observation_noise * observation_noise) {
  if (num_arms <= 0) {
    throw std::invalid_argument("ThompsonSampling: num_arms <= 0");
  }
  if (observation_noise <= 0.0 || prior_std <= 0.0) {
    throw std::invalid_argument("ThompsonSampling: non-positive std");
  }
  arms_.assign(static_cast<std::size_t>(num_arms),
               Arm{prior_mean, prior_std * prior_std, 0, 0.0});
}

double ThompsonSampling::gaussian(double mean, double std) {
  // Box-Muller.
  double u1 = rng_.uniform();
  if (u1 <= 0.0) u1 = 1e-12;
  const double u2 = rng_.uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + std * z;
}

int ThompsonSampling::select_arm() {
  int best = 0;
  double best_sample = -std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < arms_.size(); ++a) {
    const double sample =
        gaussian(arms_[a].posterior_mean, std::sqrt(arms_[a].posterior_var));
    if (sample > best_sample) {
      best_sample = sample;
      best = static_cast<int>(a);
    }
  }
  return best;
}

void ThompsonSampling::update(int arm, double reward) {
  if (arm < 0 || arm >= num_arms()) {
    throw std::out_of_range("ThompsonSampling::update: bad arm");
  }
  Arm& a = arms_[static_cast<std::size_t>(arm)];
  // Conjugate Gaussian update.
  const double precision = 1.0 / a.posterior_var + 1.0 / noise_var_;
  a.posterior_mean = (a.posterior_mean / a.posterior_var +
                      reward / noise_var_) /
                     precision;
  a.posterior_var = 1.0 / precision;
  ++a.pulls;
  a.empirical_mean += (reward - a.empirical_mean) / a.pulls;
  ++rounds_;
  obs::metrics().bandit_arm_pulls.add();
}

double ThompsonSampling::mean(int arm) const {
  return arms_.at(static_cast<std::size_t>(arm)).empirical_mean;
}

double ThompsonSampling::posterior_mean(int arm) const {
  return arms_.at(static_cast<std::size_t>(arm)).posterior_mean;
}

double ThompsonSampling::posterior_std(int arm) const {
  return std::sqrt(arms_.at(static_cast<std::size_t>(arm)).posterior_var);
}

void ThompsonSampling::save(util::SnapshotWriter& w) const {
  w.vec(arms_, [&](const Arm& a) {
    w.f64(a.posterior_mean);
    w.f64(a.posterior_var);
    w.i32(a.pulls);
    w.f64(a.empirical_mean);
  });
  for (std::uint64_t s : rng_.state()) w.u64(s);
  w.i32(rounds_);
}

void ThompsonSampling::load(util::SnapshotReader& r) {
  const std::uint64_t n = r.u64();
  if (n != arms_.size()) {
    throw util::SnapshotParseError(r.offset(),
                                   "ThompsonSampling: arm count mismatch");
  }
  for (Arm& a : arms_) {
    a.posterior_mean = r.f64();
    a.posterior_var = r.f64();
    a.pulls = r.i32();
    a.empirical_mean = r.f64();
  }
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& s : state) s = r.u64();
  rng_.set_state(state);
  rounds_ = r.i32();
}

}  // namespace mecar::bandit
