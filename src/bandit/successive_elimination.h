// Successive elimination (Slivkins [25], section V of the paper).
//
// All arms start active. Each round the policy plays the least-sampled
// active arm; after each update, every active arm a with
//   UCB_t(a) < max_{a'} LCB_t(a')
// is deactivated (paper Alg. 3 steps 6-8). The confidence radius is
//   r_t(a) = range * sqrt(2 log(max(t, 2)) / n(a)).
// With high probability the best arm is never eliminated and the regret is
// O(sqrt(K T log T)) (Theorem 3's first term).
#pragma once

#include <vector>

#include "bandit/bandit.h"

namespace mecar::bandit {

class SuccessiveElimination final : public Bandit {
 public:
  /// `reward_range` scales the confidence radius; pass (an estimate of) the
  /// width of the reward distribution support.
  explicit SuccessiveElimination(int num_arms, double reward_range = 1.0);

  int select_arm() override;
  void update(int arm, double reward) override;
  int num_arms() const override { return static_cast<int>(arms_.size()); }
  int rounds() const override { return rounds_; }
  double mean(int arm) const override;

  bool is_active(int arm) const;
  int num_active() const;
  double ucb(int arm) const;
  double lcb(int arm) const;
  /// Active arm with the highest empirical mean (paper Alg. 3 step 9);
  /// ties broken toward the lower index.
  int best_active_arm() const;

  void save(util::SnapshotWriter& w) const override;
  void load(util::SnapshotReader& r) override;

 private:
  struct Arm {
    int pulls = 0;
    double mean = 0.0;
    bool active = true;
  };
  double radius(const Arm& arm) const;
  void eliminate();

  std::vector<Arm> arms_;
  double range_;
  int rounds_ = 0;
};

}  // namespace mecar::bandit
