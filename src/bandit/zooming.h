// The zooming algorithm for Lipschitz bandits (Kleinberg, Slivkins, Upfal;
// see Slivkins [25] ch. 4) — the adaptive-discretization alternative to the
// paper's fixed uniform grid.
//
// Instead of kappa evenly spaced arms, the algorithm maintains a growing
// set of active points in [lo, hi], each with a confidence radius; a new
// point is activated whenever some region of the interval is not covered
// by any active point's confidence ball ("zooming in" on promising
// regions). Regret scales with the zooming dimension rather than kappa —
// the paper lists finer threshold adaptation as the motivation for its
// Lipschitz assumption, and this is the canonical refinement.
#pragma once

#include <vector>

#include "util/rng.h"

namespace mecar::util {
class SnapshotWriter;
class SnapshotReader;
}  // namespace mecar::util

namespace mecar::bandit {

class ZoomingBandit {
 public:
  /// Learns over the continuous interval [lo, hi]; `reward_range` scales
  /// the confidence radii (as in SuccessiveElimination).
  ZoomingBandit(double lo, double hi, util::Rng rng,
                double reward_range = 1.0);

  /// Chooses the point to play this round (activates a new point when the
  /// interval is not fully covered).
  double select_point();

  /// Records the reward for the point returned by the last select_point().
  void update(double reward);

  int num_active_points() const noexcept {
    return static_cast<int>(points_.size());
  }
  int rounds() const noexcept { return rounds_; }
  /// Active point with the best empirical mean (midpoint before any play).
  double best_point() const;

  struct PointInfo {
    double value;
    int pulls;
    double mean;
  };
  std::vector<PointInfo> points() const;

  /// Checkpoint support: serializes the active point set, last-played
  /// index, round count, and RNG stream (configuration from the
  /// constructor is not written — mirrors Bandit::save/load).
  void save(util::SnapshotWriter& w) const;
  void load(util::SnapshotReader& r);

 private:
  struct Point {
    double value;
    int pulls = 0;
    double mean = 0.0;
  };
  double radius(const Point& p) const;
  /// Index of an uncovered location, or -1 if [lo, hi] is covered.
  double find_uncovered() const;

  double lo_, hi_;
  util::Rng rng_;
  double range_;
  std::vector<Point> points_;
  int last_played_ = -1;
  int rounds_ = 0;
};

}  // namespace mecar::bandit
