#include "exp/scenario.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/json_writer.h"
#include "util/parse.h"
#include "util/table.h"

namespace mecar::exp {

namespace {

/// Shortest decimal that round-trips; "inf" for unbounded quantities
/// (util::parse_double reads both back).
std::string format_value(double value) {
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  return util::json_number(value);
}

std::string kind_token(ScenarioKind kind) {
  return kind == ScenarioKind::kRegret ? "regret" : "sweep";
}

std::string bool_token(bool value) { return value ? "true" : "false"; }

std::string reward_model_token(mec::RewardModel model) {
  return model == mec::RewardModel::kProportional ? "proportional"
                                                  : "independent";
}

std::string arrivals_token(mec::ArrivalProcess arrivals) {
  switch (arrivals) {
    case mec::ArrivalProcess::kPoisson:
      return "poisson";
    case mec::ArrivalProcess::kFlashCrowd:
      return "flash_crowd";
    case mec::ArrivalProcess::kUniform:
    default:
      return "uniform";
  }
}

}  // namespace

std::string axis_token(SweepAxis axis) {
  switch (axis) {
    case SweepAxis::kRequests:
      return "requests";
    case SweepAxis::kStations:
      return "stations";
    case SweepAxis::kRateMax:
      return "rate_max";
    case SweepAxis::kChaosIntensity:
      return "chaos";
    case SweepAxis::kHorizon:
      return "horizon";
    case SweepAxis::kKappa:
      return "kappa";
    case SweepAxis::kNone:
    default:
      return "none";
  }
}

std::string axis_label(SweepAxis axis) {
  switch (axis) {
    case SweepAxis::kRequests:
      return "|R|";
    case SweepAxis::kStations:
      return "|BS|";
    case SweepAxis::kRateMax:
      return "max rate (MB/s)";
    case SweepAxis::kChaosIntensity:
      return "intensity";
    case SweepAxis::kHorizon:
      return "T (slots)";
    case SweepAxis::kKappa:
      return "kappa";
    case SweepAxis::kNone:
    default:
      return "point";
  }
}

std::string point_label(SweepAxis axis, double value) {
  switch (axis) {
    case SweepAxis::kRequests:
    case SweepAxis::kStations:
    case SweepAxis::kHorizon:
    case SweepAxis::kKappa:
      return std::to_string(static_cast<int>(value));
    case SweepAxis::kRateMax:
      return util::format_double(value, 0);
    case SweepAxis::kChaosIntensity:
      return util::format_double(value, 2);
    case SweepAxis::kNone:
    default:
      return "-";
  }
}

ScenarioSpec read_scenario(std::istream& is) {
  ScenarioSpec spec;
  spec.seeds = 3;
  std::string line;
  int lineno = 0;
  bool any_key = false;

  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream tokens(line);
    std::string key;
    if (!(tokens >> key) || key[0] == '#') continue;
    any_key = true;

    std::vector<std::string> args;
    std::string tok;
    while (tokens >> tok) args.push_back(tok);

    const auto fail = [&](const std::string& why) -> ScenarioParseError {
      return ScenarioParseError(lineno, "scenario line " +
                                            std::to_string(lineno) + ": " +
                                            why);
    };
    const auto want_args = [&](std::size_t n) {
      if (args.size() != n) {
        throw fail("'" + key + "' expects " + std::to_string(n) +
                   " field(s), got " + std::to_string(args.size()));
      }
    };
    const auto int_arg = [&](std::size_t k, const char* field) {
      const auto v = util::parse_int(args[k]);
      if (!v) {
        throw fail(std::string(field) + " is not an integer: '" + args[k] +
                   "'");
      }
      return static_cast<int>(*v);
    };
    const auto double_arg = [&](std::size_t k, const char* field) {
      const auto v = util::parse_double(args[k]);
      if (!v) {
        throw fail(std::string(field) + " is not a number: '" + args[k] + "'");
      }
      return *v;
    };
    const auto bool_arg = [&](std::size_t k, const char* field) {
      const std::string& v = args[k];
      if (v == "true" || v == "on" || v == "1") return true;
      if (v == "false" || v == "off" || v == "0") return false;
      throw fail(std::string(field) + " is not a boolean: '" + v + "'");
    };

    if (key == "name") {
      want_args(1);
      spec.name = args[0];
    } else if (key == "kind") {
      want_args(1);
      if (args[0] == "sweep") {
        spec.kind = ScenarioKind::kSweep;
      } else if (args[0] == "regret") {
        spec.kind = ScenarioKind::kRegret;
      } else {
        throw fail("unknown kind '" + args[0] + "' (sweep|regret)");
      }
    } else if (key == "axis") {
      want_args(1);
      bool known = false;
      for (const SweepAxis axis :
           {SweepAxis::kNone, SweepAxis::kRequests, SweepAxis::kStations,
            SweepAxis::kRateMax, SweepAxis::kChaosIntensity,
            SweepAxis::kHorizon, SweepAxis::kKappa}) {
        if (args[0] == axis_token(axis)) {
          spec.axis = axis;
          known = true;
          break;
        }
      }
      if (!known) {
        throw fail(
            "unknown axis '" + args[0] +
            "' (none|requests|stations|rate_max|chaos|horizon|kappa)");
      }
    } else if (key == "points") {
      if (args.empty()) throw fail("'points' expects at least one value");
      spec.points.clear();
      for (std::size_t k = 0; k < args.size(); ++k) {
        spec.points.push_back(double_arg(k, "point"));
      }
    } else if (key == "seeds") {
      want_args(1);
      spec.seeds = int_arg(0, "seeds");
      if (spec.seeds < 1) throw fail("seeds must be >= 1");
    } else if (key == "horizon") {
      want_args(1);
      spec.horizon = int_arg(0, "horizon");
      if (spec.horizon < 0) throw fail("horizon must be >= 0");
    } else if (key == "requests") {
      want_args(1);
      spec.base.num_requests = int_arg(0, "requests");
    } else if (key == "stations") {
      want_args(1);
      spec.base.num_stations = int_arg(0, "stations");
    } else if (key == "rate_min") {
      want_args(1);
      spec.base.rate_min = double_arg(0, "rate_min");
    } else if (key == "rate_max") {
      want_args(1);
      spec.base.rate_max = double_arg(0, "rate_max");
    } else if (key == "reward_model") {
      want_args(1);
      if (args[0] == "independent") {
        spec.base.reward_model = mec::RewardModel::kIndependent;
      } else if (args[0] == "proportional") {
        spec.base.reward_model = mec::RewardModel::kProportional;
      } else {
        throw fail("unknown reward_model '" + args[0] +
                   "' (independent|proportional)");
      }
    } else if (key == "arrivals") {
      want_args(1);
      if (args[0] == "uniform") {
        spec.base.arrivals = mec::ArrivalProcess::kUniform;
      } else if (args[0] == "poisson") {
        spec.base.arrivals = mec::ArrivalProcess::kPoisson;
      } else if (args[0] == "flash_crowd") {
        spec.base.arrivals = mec::ArrivalProcess::kFlashCrowd;
      } else {
        throw fail("unknown arrivals '" + args[0] +
                   "' (uniform|poisson|flash_crowd)");
      }
    } else if (key == "home_skew") {
      want_args(1);
      spec.base.home_skew = double_arg(0, "home_skew");
    } else if (key == "link_bandwidth") {
      want_args(2);
      spec.base.link_bandwidth_min_mbps = double_arg(0, "link bandwidth min");
      spec.base.link_bandwidth_max_mbps = double_arg(1, "link bandwidth max");
    } else if (key == "policy") {
      if (args.empty()) throw fail("'policy' expects a registry name");
      PolicyRef ref;
      ref.name = args[0];
      if (args.size() > 1) {
        for (std::size_t k = 1; k < args.size(); ++k) {
          if (k > 1) ref.label += ' ';
          ref.label += args[k];
        }
      } else {
        // Default label: the name without an offline:/online: qualifier.
        const auto colon = ref.name.find(':');
        ref.label = colon == std::string::npos ? ref.name
                                               : ref.name.substr(colon + 1);
      }
      spec.policies.push_back(std::move(ref));
    } else if (key == "metric") {
      want_args(1);
      spec.metrics.push_back(args[0]);
    } else if (key == "policy_seed_offset") {
      want_args(1);
      const int offset = int_arg(0, "policy_seed_offset");
      if (offset < 0) throw fail("policy_seed_offset must be >= 0");
      spec.policy_seed_offset = static_cast<unsigned>(offset);
    } else if (key == "chaos") {
      want_args(1);
      spec.chaos_intensity = double_arg(0, "chaos intensity");
      if (spec.chaos_intensity < 0.0) throw fail("chaos intensity < 0");
    } else if (key == "fault_plan") {
      want_args(1);
      spec.fault_plan_path = args[0];
    } else if (key == "mobility") {
      want_args(3);
      spec.mobility.push_back({int_arg(0, "request"), int_arg(1, "slot"),
                               int_arg(2, "new_home")});
    } else if (key == "threshold_range") {
      want_args(2);
      spec.rr.threshold_min_mhz = double_arg(0, "threshold min");
      spec.rr.threshold_max_mhz = double_arg(1, "threshold max");
    } else if (key == "kappa") {
      want_args(1);
      spec.rr.kappa = int_arg(0, "kappa");
      if (spec.rr.kappa < 1) throw fail("kappa must be >= 1");
    } else if (key == "scale_thresholds") {
      want_args(1);
      spec.scale_thresholds = bool_arg(0, "scale_thresholds");
    } else if (key == "threshold_headroom") {
      want_args(1);
      spec.threshold_headroom = double_arg(0, "threshold_headroom");
    } else if (key == "rounding_divisor") {
      want_args(1);
      spec.alg.rounding_divisor = double_arg(0, "rounding_divisor");
    } else if (key == "backfill") {
      want_args(1);
      spec.alg.backfill = bool_arg(0, "backfill");
    } else if (key == "enforce_backhaul") {
      want_args(1);
      spec.alg.enforce_backhaul = bool_arg(0, "enforce_backhaul");
    } else if (key == "backhaul_audit") {
      want_args(1);
      spec.backhaul_audit = bool_arg(0, "backhaul_audit");
    } else if (key == "collect_detail") {
      want_args(1);
      spec.collect_detail = bool_arg(0, "collect_detail");
    } else if (key == "requests_per_slot") {
      want_args(1);
      spec.requests_per_slot = double_arg(0, "requests_per_slot");
      if (spec.requests_per_slot < 0.0) throw fail("requests_per_slot < 0");
    } else if (key == "lp_max_iterations") {
      want_args(1);
      spec.rr.lp_max_iterations = int_arg(0, "lp_max_iterations");
      if (spec.rr.lp_max_iterations < 0) {
        throw fail("lp_max_iterations must be >= 0");
      }
    } else if (key == "lp_budget") {
      // lp_budget PIVOTS [DEADLINE_MS] — the anytime solve budget.
      if (args.size() != 1 && args.size() != 2) {
        throw fail("'lp_budget' expects PIVOTS [DEADLINE_MS], got " +
                   std::to_string(args.size()) + " field(s)");
      }
      spec.rr.lp_pivot_budget = int_arg(0, "lp_budget pivots");
      if (spec.rr.lp_pivot_budget < 1) {
        throw fail("lp_budget pivots must be >= 1");
      }
      if (args.size() == 2) {
        spec.rr.lp_deadline_ms = double_arg(1, "lp_budget deadline_ms");
        if (!(spec.rr.lp_deadline_ms > 0.0)) {
          throw fail("lp_budget deadline_ms must be > 0");
        }
      }
    } else if (key == "shards") {
      // shards N — sharded slot loop with N shards (bit-identical to the
      // legacy loop); 0 defers to MECAR_SHARDS, -1 forces legacy.
      want_args(1);
      spec.shards = int_arg(0, "shards");
      if (spec.shards < -1) throw fail("shards must be >= -1");
    } else if (key == "incremental_lp") {
      want_args(1);
      spec.rr.incremental_lp = bool_arg(0, "incremental_lp");
    } else {
      throw fail("unknown key '" + key + "'");
    }
  }

  if (!any_key) {
    throw ScenarioParseError(lineno, "scenario file holds no directives");
  }
  if (!spec.fault_plan_path.empty() && spec.chaos_intensity > 0.0) {
    throw ScenarioParseError(
        lineno, "scenario: fault_plan and chaos are mutually exclusive");
  }
  return spec;
}

void write_scenario(const ScenarioSpec& spec, std::ostream& os) {
  const ScenarioSpec defaults;
  os << "# mecar scenario\n";
  os << "name " << spec.name << '\n';
  os << "kind " << kind_token(spec.kind) << '\n';
  os << "axis " << axis_token(spec.axis) << '\n';
  if (!spec.points.empty()) {
    os << "points";
    for (const double p : spec.points) os << ' ' << format_value(p);
    os << '\n';
  }
  os << "seeds " << spec.seeds << '\n';
  os << "horizon " << spec.horizon << '\n';
  os << "requests " << spec.base.num_requests << '\n';
  os << "stations " << spec.base.num_stations << '\n';
  os << "rate_min " << format_value(spec.base.rate_min) << '\n';
  os << "rate_max " << format_value(spec.base.rate_max) << '\n';
  if (spec.base.reward_model != defaults.base.reward_model) {
    os << "reward_model " << reward_model_token(spec.base.reward_model)
       << '\n';
  }
  if (spec.base.arrivals != defaults.base.arrivals) {
    os << "arrivals " << arrivals_token(spec.base.arrivals) << '\n';
  }
  if (spec.base.home_skew != defaults.base.home_skew) {
    os << "home_skew " << format_value(spec.base.home_skew) << '\n';
  }
  if (!std::isinf(spec.base.link_bandwidth_min_mbps) ||
      !std::isinf(spec.base.link_bandwidth_max_mbps)) {
    os << "link_bandwidth " << format_value(spec.base.link_bandwidth_min_mbps)
       << ' ' << format_value(spec.base.link_bandwidth_max_mbps) << '\n';
  }
  for (const PolicyRef& ref : spec.policies) {
    os << "policy " << ref.name;
    const auto colon = ref.name.find(':');
    const std::string default_label =
        colon == std::string::npos ? ref.name : ref.name.substr(colon + 1);
    if (!ref.label.empty() && ref.label != default_label) {
      os << ' ' << ref.label;
    }
    os << '\n';
  }
  for (const std::string& metric : spec.metrics) {
    os << "metric " << metric << '\n';
  }
  if (spec.policy_seed_offset != defaults.policy_seed_offset) {
    os << "policy_seed_offset " << spec.policy_seed_offset << '\n';
  }
  if (spec.chaos_intensity != 0.0) {
    os << "chaos " << format_value(spec.chaos_intensity) << '\n';
  }
  if (!spec.fault_plan_path.empty()) {
    os << "fault_plan " << spec.fault_plan_path << '\n';
  }
  for (const sim::MobilityEvent& event : spec.mobility) {
    os << "mobility " << event.request_index << ' ' << event.slot << ' '
       << event.new_home << '\n';
  }
  if (spec.rr.threshold_min_mhz != defaults.rr.threshold_min_mhz ||
      spec.rr.threshold_max_mhz != defaults.rr.threshold_max_mhz) {
    os << "threshold_range " << format_value(spec.rr.threshold_min_mhz) << ' '
       << format_value(spec.rr.threshold_max_mhz) << '\n';
  }
  if (spec.rr.kappa != defaults.rr.kappa) {
    os << "kappa " << spec.rr.kappa << '\n';
  }
  if (spec.scale_thresholds) {
    os << "scale_thresholds true\n";
    os << "threshold_headroom " << format_value(spec.threshold_headroom)
       << '\n';
  }
  if (spec.alg.rounding_divisor != defaults.alg.rounding_divisor) {
    os << "rounding_divisor " << format_value(spec.alg.rounding_divisor)
       << '\n';
  }
  if (spec.alg.backfill != defaults.alg.backfill) {
    os << "backfill " << bool_token(spec.alg.backfill) << '\n';
  }
  if (spec.alg.enforce_backhaul != defaults.alg.enforce_backhaul) {
    os << "enforce_backhaul " << bool_token(spec.alg.enforce_backhaul) << '\n';
  }
  if (spec.backhaul_audit) os << "backhaul_audit true\n";
  if (spec.collect_detail) os << "collect_detail true\n";
  if (spec.requests_per_slot != 0.0) {
    os << "requests_per_slot " << format_value(spec.requests_per_slot) << '\n';
  }
  if (spec.rr.lp_max_iterations != defaults.rr.lp_max_iterations) {
    os << "lp_max_iterations " << spec.rr.lp_max_iterations << '\n';
  }
  if (spec.rr.lp_pivot_budget != defaults.rr.lp_pivot_budget) {
    os << "lp_budget " << spec.rr.lp_pivot_budget;
    if (spec.rr.lp_deadline_ms != defaults.rr.lp_deadline_ms) {
      os << ' ' << format_value(spec.rr.lp_deadline_ms);
    }
    os << '\n';
  }
  if (spec.shards != defaults.shards) {
    os << "shards " << spec.shards << '\n';
  }
  if (spec.rr.incremental_lp) os << "incremental_lp true\n";
}

}  // namespace mecar::exp
