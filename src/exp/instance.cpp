#include "exp/instance.h"

namespace mecar::exp {

Instance make_instance(unsigned seed, const InstanceConfig& config) {
  util::Rng rng(seed);
  mec::TopologyParams tparams;
  tparams.num_stations = config.num_stations;
  tparams.link_bandwidth_min_mbps = config.link_bandwidth_min_mbps;
  tparams.link_bandwidth_max_mbps = config.link_bandwidth_max_mbps;
  mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = config.num_requests;
  wparams.rate_min = config.rate_min;
  wparams.rate_max = config.rate_max;
  wparams.horizon_slots = config.horizon_slots;
  wparams.reward_model = config.reward_model;
  wparams.arrivals = config.arrivals;
  wparams.home_skew = config.home_skew;
  auto requests = mec::generate_requests(wparams, topo, rng);
  auto realized = core::realize_demand_levels(requests, rng);
  return Instance{std::move(topo), std::move(requests), std::move(realized)};
}

std::vector<unsigned> bench_seeds(int count) {
  std::vector<unsigned> seeds;
  seeds.reserve(count > 0 ? static_cast<std::size_t>(count) : 0);
  for (int i = 0; i < count; ++i) {
    seeds.push_back(7u + 1000u * static_cast<unsigned>(i));
  }
  return seeds;
}

}  // namespace mecar::exp
