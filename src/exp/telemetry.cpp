#include "exp/telemetry.h"

#include <fstream>
#include <stdexcept>

#include "obs/catalog.h"
#include "obs/telemetry.h"

namespace mecar::exp {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::ofstream open_out(const std::string& path, const char* what) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error(std::string("cannot write ") + what + " '" +
                             path + "'");
  }
  return out;
}

}  // namespace

Report run_with_telemetry(const Runner& runner,
                          const TelemetryExportOptions& options) {
  // Touch the catalog before resetting so every well-known metric is
  // registered and the snapshot schema is complete even for a run that
  // never reaches some layer.
  obs::metrics();
  obs::registry().reset();

  obs::EventTrace& tr = obs::trace();
  const bool tracing = !options.trace_path.empty();
  if (tracing) tr.enable(options.trace_capacity);

  Report report = [&] {
    try {
      return runner.run();
    } catch (...) {
      if (tracing) tr.disable();
      throw;
    }
  }();
  if (tracing) tr.disable();

  if (!options.metrics_path.empty()) {
    std::ofstream out = open_out(options.metrics_path, "metrics snapshot");
    const obs::MetricsSnapshot snap = obs::registry().snapshot();
    if (ends_with(options.metrics_path, ".prom")) {
      obs::write_prometheus(snap, out);
    } else {
      obs::write_metrics_json(snap, out);
    }
  }
  if (tracing) {
    std::ofstream out = open_out(options.trace_path, "event trace");
    obs::write_chrome_trace(tr.snapshot(), out);
  }
  return report;
}

}  // namespace mecar::exp
