// Uniform result container of the scenario engine: named (metric, policy)
// series over sweep points, seed-averaged, with one table/CSV/JSON
// emission path shared by every figure bench and `mecar_cli experiment`.
//
// Subsumes the old bench_util SeriesCollector; the historical footgun —
// add() before any start_point() dereferenced .back() on an empty vector
// (undefined behaviour) — is now a structured std::logic_error.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/stats.h"

namespace mecar::exp {

/// Accumulates named series over sweep points: series["Appro"] is the
/// vector of per-point accumulators, one per sweep point, averaged over
/// seeds.
class SeriesCollector {
 public:
  /// Empty collector, as load() targets and map value slots need.
  SeriesCollector() = default;
  explicit SeriesCollector(std::vector<std::string> names);

  /// Starts a new sweep point (call once per x value).
  void start_point();

  /// Adds one seed's sample at the current sweep point. Throws
  /// std::logic_error when no sweep point has been started and
  /// std::out_of_range for an unknown series name.
  void add(const std::string& name, double value);

  double mean_at(const std::string& name, std::size_t point) const;
  const util::RunningStats& stats_at(const std::string& name,
                                     std::size_t point) const;
  std::size_t num_points() const noexcept { return num_points_; }

  /// Checkpoint support: serializes/overwrites the full accumulator state.
  void save(util::SnapshotWriter& w) const;
  void load(util::SnapshotReader& r);

 private:
  std::map<std::string, std::vector<util::RunningStats>> series_;
  std::size_t num_points_ = 0;
};

/// Result of one scenario run: for every collected metric, a policy-keyed
/// SeriesCollector over the sweep points, plus the axis/point labelling
/// needed to render the exact tables the figure benches print.
class Report {
 public:
  Report() = default;
  Report(std::string scenario_name, std::string axis_label,
         std::vector<std::string> metrics, std::vector<std::string> policies);

  /// Opens the next sweep point across every metric series.
  void start_point(double point_value, std::string point_label);

  /// Adds one seed's sample of (metric, policy) at the current point.
  void add(const std::string& metric, const std::string& policy, double value);

  double mean(const std::string& metric, const std::string& policy,
              std::size_t point) const;

  const std::string& scenario_name() const noexcept { return scenario_name_; }
  const std::string& axis_label() const noexcept { return axis_label_; }
  const std::vector<std::string>& metrics() const noexcept { return metrics_; }
  const std::vector<std::string>& policies() const noexcept {
    return policies_;
  }
  const std::vector<double>& points() const noexcept { return points_; }
  const std::vector<std::string>& point_labels() const noexcept {
    return point_labels_;
  }
  std::size_t num_points() const noexcept { return points_.size(); }

  /// Prints one metric as the classic figure table: header = axis label +
  /// policy columns, one row per sweep point, `precision` decimals —
  /// exactly the layout the hand-written benches emitted.
  void print_metric_table(std::ostream& os, const std::string& title,
                          const std::string& metric, int precision) const;

  /// Transposed layout for axis-less scenarios: one row per policy, one
  /// column per requested (metric, header label, precision) triple, values
  /// taken at sweep point `point`.
  struct MetricColumn {
    std::string metric;
    std::string header;
    int precision = 2;
  };
  void print_policy_table(std::ostream& os, const std::string& title,
                          const std::string& row_header,
                          const std::vector<MetricColumn>& columns,
                          std::size_t point = 0) const;

  /// Writes the uniform JSON snapshot: scenario name, axis, points, then
  /// per-policy per-metric mean series.
  void write_json(std::ostream& os) const;

  /// Checkpoint support: the full report state (labels, points, every
  /// accumulator) round-trips so a resumed run's tables are bit-identical
  /// to an uninterrupted run's.
  void save(util::SnapshotWriter& w) const;
  void load(util::SnapshotReader& r);

 private:
  const SeriesCollector& collector(const std::string& metric) const;

  std::string scenario_name_;
  std::string axis_label_;
  std::vector<std::string> metrics_;
  std::vector<std::string> policies_;
  std::map<std::string, SeriesCollector> by_metric_;
  std::vector<double> points_;
  std::vector<std::string> point_labels_;
};

}  // namespace mecar::exp
