// Telemetry-exporting wrapper around exp::Runner: run a scenario with the
// global metric registry reset and (optionally) the event trace armed,
// then write the requested export files. This is the engine behind
// `mecar_cli experiment --metrics-out=... --trace-out=...`.
#pragma once

#include <cstddef>
#include <string>

#include "exp/report.h"
#include "exp/runner.h"
#include "obs/event_trace.h"

namespace mecar::exp {

struct TelemetryExportOptions {
  /// Metrics snapshot destination; empty = no metrics export. A ".prom"
  /// suffix selects Prometheus text format, anything else gets JSON.
  std::string metrics_path;
  /// Event-trace destination (chrome://tracing JSON); empty = no tracing.
  /// When set the global trace is armed for the duration of the run.
  std::string trace_path;
  /// Ring capacity when tracing (oldest events drop past this).
  std::size_t trace_capacity = obs::EventTrace::kDefaultCapacity;

  bool any() const noexcept {
    return !metrics_path.empty() || !trace_path.empty();
  }
};

/// Runs the scenario and writes the requested exports. The registry is
/// reset before the run so the snapshot covers exactly this run; the trace
/// is disabled again afterwards. Throws std::runtime_error when an output
/// file cannot be written.
Report run_with_telemetry(const Runner& runner,
                          const TelemetryExportOptions& options);

}  // namespace mecar::exp
