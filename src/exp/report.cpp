#include "exp/report.h"

#include <ostream>
#include <stdexcept>
#include <utility>

#include "util/json_writer.h"
#include "util/snapshot.h"
#include "util/table.h"

namespace mecar::exp {

SeriesCollector::SeriesCollector(std::vector<std::string> names) {
  for (auto& name : names) series_[std::move(name)];
}

void SeriesCollector::start_point() {
  ++num_points_;
  for (auto& [name, values] : series_) {
    values.emplace_back();
  }
}

void SeriesCollector::add(const std::string& name, double value) {
  if (num_points_ == 0) {
    throw std::logic_error(
        "SeriesCollector: add(\"" + name +
        "\") before any start_point() — no sweep point is open");
  }
  const auto it = series_.find(name);
  if (it == series_.end()) {
    throw std::out_of_range("SeriesCollector: unknown series '" + name + "'");
  }
  it->second.back().add(value);
}

double SeriesCollector::mean_at(const std::string& name,
                                std::size_t point) const {
  return stats_at(name, point).mean();
}

const util::RunningStats& SeriesCollector::stats_at(const std::string& name,
                                                    std::size_t point) const {
  const auto it = series_.find(name);
  if (it == series_.end()) {
    throw std::out_of_range("SeriesCollector: unknown series '" + name + "'");
  }
  return it->second.at(point);
}

void SeriesCollector::save(util::SnapshotWriter& w) const {
  w.u64(static_cast<std::uint64_t>(num_points_));
  w.u64(static_cast<std::uint64_t>(series_.size()));
  for (const auto& [name, values] : series_) {
    w.str(name);
    w.vec(values, [&](const util::RunningStats& s) { s.save(w); });
  }
}

void SeriesCollector::load(util::SnapshotReader& r) {
  num_points_ = static_cast<std::size_t>(r.u64());
  series_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.str();
    series_[std::move(name)] = r.vec<util::RunningStats>([&] {
      util::RunningStats s;
      s.load(r);
      return s;
    });
  }
}

Report::Report(std::string scenario_name, std::string axis_label,
               std::vector<std::string> metrics,
               std::vector<std::string> policies)
    : scenario_name_(std::move(scenario_name)),
      axis_label_(std::move(axis_label)),
      metrics_(std::move(metrics)),
      policies_(std::move(policies)) {
  for (const std::string& metric : metrics_) {
    by_metric_.emplace(metric, SeriesCollector(policies_));
  }
}

void Report::start_point(double point_value, std::string point_label) {
  points_.push_back(point_value);
  point_labels_.push_back(std::move(point_label));
  for (auto& [metric, collector] : by_metric_) collector.start_point();
}

void Report::add(const std::string& metric, const std::string& policy,
                 double value) {
  const auto it = by_metric_.find(metric);
  if (it == by_metric_.end()) {
    throw std::out_of_range("Report: unknown metric '" + metric + "'");
  }
  it->second.add(policy, value);
}

const SeriesCollector& Report::collector(const std::string& metric) const {
  const auto it = by_metric_.find(metric);
  if (it == by_metric_.end()) {
    throw std::out_of_range("Report: unknown metric '" + metric + "'");
  }
  return it->second;
}

double Report::mean(const std::string& metric, const std::string& policy,
                    std::size_t point) const {
  return collector(metric).mean_at(policy, point);
}

void Report::print_metric_table(std::ostream& os, const std::string& title,
                                const std::string& metric,
                                int precision) const {
  const SeriesCollector& series = collector(metric);
  std::vector<std::string> header{axis_label_};
  header.insert(header.end(), policies_.begin(), policies_.end());
  util::Table table(header);
  for (std::size_t p = 0; p < points_.size(); ++p) {
    std::vector<double> row;
    row.reserve(policies_.size());
    for (const auto& policy : policies_) row.push_back(series.mean_at(policy, p));
    table.add_numeric_row(point_labels_[p], row, precision);
  }
  table.print(os, title);
  os << '\n';
}

void Report::print_policy_table(std::ostream& os, const std::string& title,
                                const std::string& row_header,
                                const std::vector<MetricColumn>& columns,
                                std::size_t point) const {
  std::vector<std::string> header{row_header};
  for (const MetricColumn& column : columns) header.push_back(column.header);
  util::Table table(header);
  for (const std::string& policy : policies_) {
    std::vector<std::string> row{policy};
    for (const MetricColumn& column : columns) {
      row.push_back(util::format_double(
          collector(column.metric).mean_at(policy, point), column.precision));
    }
    table.add_row(std::move(row));
  }
  table.print(os, title);
}

void Report::save(util::SnapshotWriter& w) const {
  w.str(scenario_name_);
  w.str(axis_label_);
  w.vec(metrics_, [&](const std::string& s) { w.str(s); });
  w.vec(policies_, [&](const std::string& s) { w.str(s); });
  w.u64(static_cast<std::uint64_t>(by_metric_.size()));
  for (const auto& [metric, collector] : by_metric_) {
    w.str(metric);
    collector.save(w);
  }
  w.vec(points_, [&](double v) { w.f64(v); });
  w.vec(point_labels_, [&](const std::string& s) { w.str(s); });
}

void Report::load(util::SnapshotReader& r) {
  scenario_name_ = r.str();
  axis_label_ = r.str();
  metrics_ = r.vec<std::string>([&] { return r.str(); });
  policies_ = r.vec<std::string>([&] { return r.str(); });
  by_metric_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string metric = r.str();
    by_metric_[std::move(metric)].load(r);
  }
  points_ = r.vec<double>([&] { return r.f64(); });
  point_labels_ = r.vec<std::string>([&] { return r.str(); });
}

void Report::write_json(std::ostream& os) const {
  util::JsonWriter w(os);
  w.begin_object();
  w.field("scenario", scenario_name_);
  w.field("axis", axis_label_);
  w.key("points").begin_array();
  for (const double p : points_) w.value(p);
  w.end_array();
  w.key("policies").begin_object();
  for (const std::string& policy : policies_) {
    w.key(policy).begin_object();
    for (const std::string& metric : metrics_) {
      w.key(metric).begin_array();
      const SeriesCollector& series = collector(metric);
      for (std::size_t p = 0; p < points_.size(); ++p) {
        w.value(series.mean_at(policy, p));
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace mecar::exp
