// Name -> factory registry for every algorithm the scenario engine can
// compare, replacing the fragile per-bench `double reward[4]` parallel
// arrays with named lookups.
//
// Offline algorithms (one-shot solvers over an offline instance):
//   Exact, Appro, Heu, Greedy, OCORP, HeuKKT, Appro-backhaul
// Online policies (per-slot schedulers for the simulator):
//   DynamicRR, Greedy, OCORP, HeuKKT,
//   DynamicRR-ucb1, DynamicRR-epsilon, DynamicRR-thompson,
//   DynamicRR-zooming                  (threshold-learner ablations)
//   DynamicRR-fixed-min, DynamicRR-fixed-max (no learning: the range
//                                             endpoints as constant arms)
//
// Greedy/OCORP/HeuKKT exist on both sides (the paper implements them "as
// offline and online versions"); a scenario disambiguates with an
// `offline:`/`online:` prefix, and bare names resolve by the scenario's
// horizon (see resolve_policy).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "exp/instance.h"
#include "sim/dynamic_rr.h"
#include "sim/online_sim.h"

namespace mecar::exp {

class PolicyRegistry {
 public:
  using OfflineFn = std::function<core::OffloadResult(
      const Instance&, const core::AlgorithmParams&, util::Rng&)>;
  /// The DynamicRrParams argument only matters for the DynamicRR variants;
  /// the non-learning baselines ignore it (and the Rng).
  using OnlineFn = std::function<std::unique_ptr<sim::OnlinePolicy>(
      const mec::Topology&, const core::AlgorithmParams&,
      const sim::DynamicRrParams&, util::Rng)>;

  /// The process-wide registry holding the built-in algorithms.
  static const PolicyRegistry& global();

  bool has_offline(const std::string& name) const;
  bool has_online(const std::string& name) const;

  /// Runs the named offline algorithm. Throws std::invalid_argument for an
  /// unknown name, listing the known ones.
  core::OffloadResult run_offline(const std::string& name,
                                  const Instance& instance,
                                  const core::AlgorithmParams& params,
                                  util::Rng& rng) const;

  /// Instantiates the named online policy. Throws std::invalid_argument
  /// for an unknown name, listing the known ones.
  std::unique_ptr<sim::OnlinePolicy> make_online(
      const std::string& name, const mec::Topology& topo,
      const core::AlgorithmParams& params, const sim::DynamicRrParams& rr,
      util::Rng rng) const;

  /// Registered names in deterministic (sorted) order.
  std::vector<std::string> offline_names() const;
  std::vector<std::string> online_names() const;

  void register_offline(std::string name, OfflineFn fn);
  void register_online(std::string name, OnlineFn fn);

 private:
  std::map<std::string, OfflineFn> offline_;
  std::map<std::string, OnlineFn> online_;
};

/// A scenario policy reference resolved against the registry.
struct ResolvedPolicy {
  std::string name;  // registry name, prefix stripped
  bool online = false;
};

/// Resolves a (possibly `offline:`/`online:`-prefixed) policy reference.
/// Bare names found in exactly one registry side resolve there; names on
/// both sides resolve by `horizon` (0 = the offline problem). Throws
/// std::invalid_argument for unknown names or a prefix the registry side
/// cannot satisfy.
ResolvedPolicy resolve_policy(const PolicyRegistry& registry,
                              const std::string& ref, int horizon);

}  // namespace mecar::exp
