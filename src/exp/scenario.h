// Declarative experiment descriptions — the front door of the scenario
// engine. A ScenarioSpec captures everything one experiment needs:
// topology + workload parameters, arrival process, fault injection
// (scripted plan reference or chaos intensity), mobility, the sweep axis
// and its points, the policies under comparison, seeds, horizon, and the
// metrics to collect. exp::Runner executes any spec; the figure benches
// are thin specs, and `mecar_cli experiment --spec=FILE` runs arbitrary
// ones without compiling anything.
//
// Specs round-trip through a line-oriented text format (mirroring the
// fault-plan format, parsed with the hardened util::parse readers):
//
//   # comment
//   name fig4_online
//   kind sweep                      # sweep | regret
//   axis requests                   # requests|stations|rate_max|chaos|
//                                   #   horizon|kappa|none
//   points 100 150 200 250 300
//   seeds 3
//   horizon 600                     # 0 = offline problem
//   requests 150
//   stations 20
//   rate_min 30
//   rate_max 50
//   reward_model independent        # independent | proportional
//   arrivals uniform                # uniform | poisson | flash_crowd
//   home_skew 1.0
//   link_bandwidth 210 390          # MB/s; "inf" = unconstrained (default)
//   policy DynamicRR                # registry name [display label...]
//   policy offline:Greedy Greedy    # offline:/online: disambiguates names
//   metric reward                   # one line per collected metric
//   policy_seed_offset 1            # policy rng = Rng(seed + offset)
//   chaos 0.5                       # fixed chaos intensity (axis!=chaos)
//   fault_plan scenarios/cut.plan   # scripted faults (excludes chaos)
//   mobility 12 300 4               # request, slot, new home station
//   threshold_range 500 1100        # DynamicRR C^th range, MHz
//   kappa 4
//   scale_thresholds true           # derive the range from the rate
//   threshold_headroom 5            #   support: [rate_min, rate_max+h]*C_u
//   rounding_divisor 4              # Appro knobs
//   backfill true
//   backhaul_audit false            # audit offline results against links
//   collect_detail false            # per-slot detail (p50/p95/fairness)
//   requests_per_slot 0.5           # axis=horizon: |R| = T * this
//   lp_max_iterations 0             # slot-LP pivot cap (0 = automatic);
//                                   #   exhausting it -> greedy fallback
//   lp_budget 32 [5.0]              # anytime slot-LP budget: pivots and
//                                   #   optional wall-clock deadline (ms);
//                                   #   exhausting it keeps the best
//                                   #   feasible iterate (kDeadline)
//   shards 4                        # sharded slot loop (bit-identical);
//                                   #   0 = MECAR_SHARDS env, -1 = legacy
//   incremental_lp true             # delta-build the slot LP-PT across
//                                   #   slots (objective-equal, tie-breaks
//                                   #   may differ from scratch builds)
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/types.h"
#include "exp/instance.h"
#include "sim/dynamic_rr.h"
#include "sim/online_sim.h"

namespace mecar::exp {

enum class ScenarioKind {
  /// Sweep the axis, running every policy per point (the figure shape).
  kSweep,
  /// Theorem-3 regret protocol: per point, DynamicRR with learning on vs
  /// the best FIXED threshold arm chosen in hindsight; emits the series
  /// "best fixed" and "DynamicRR".
  kRegret,
};

enum class SweepAxis {
  kNone,            // single point (policy-comparison tables)
  kRequests,        // |R|
  kStations,        // |BS|
  kRateMax,         // demand-support maximum, MB/s
  kChaosIntensity,  // injected-fault intensity
  kHorizon,         // T, slots
  kKappa,           // DynamicRR arm count
};

/// A policy under comparison: a registry name (optionally qualified
/// `offline:`/`online:` when the bare name exists on both sides) plus the
/// display label used in tables (defaults to the unqualified name).
struct PolicyRef {
  std::string name;
  std::string label;
};

struct ScenarioSpec {
  std::string name = "scenario";
  ScenarioKind kind = ScenarioKind::kSweep;
  SweepAxis axis = SweepAxis::kNone;
  std::vector<double> points;
  int seeds = 3;
  /// Online horizon in slots; 0 = the offline problem.
  int horizon = 0;
  /// Base instance parameters; the axis overrides one field per point.
  InstanceConfig base;
  std::vector<PolicyRef> policies;
  std::vector<std::string> metrics;
  /// Policy randomness derives from Rng(seed + policy_seed_offset).
  unsigned policy_seed_offset = 1;
  /// Fixed chaos intensity applied at every point when axis != kChaos.
  double chaos_intensity = 0.0;
  /// Scripted fault scenario file (read via sim::read_fault_plan);
  /// mutually exclusive with chaos.
  std::string fault_plan_path;
  std::vector<sim::MobilityEvent> mobility;
  /// DynamicRR knobs shared by its registry variants.
  sim::DynamicRrParams rr;
  /// Derive the threshold range from the demand support per point:
  /// [rate_min, rate_max + headroom] * C_unit (Fig. 6 coupling).
  bool scale_thresholds = false;
  double threshold_headroom = 5.0;
  /// Offline algorithm knobs (Appro divisor/backfill etc.).
  core::AlgorithmParams alg;
  /// Audit every offline result against finite backhaul links and expose
  /// the voided / peak_link_util metrics.
  bool backhaul_audit = false;
  bool collect_detail = false;
  /// When axis = horizon and this is > 0, |R| = horizon * requests_per_slot
  /// (arrival intensity held constant as T grows).
  double requests_per_slot = 0.0;
  /// Slot-loop engine (sim::OnlineParams::num_shards): > 0 sharded with
  /// that many shards, 0 consults MECAR_SHARDS (default), -1 forces the
  /// legacy loop. Results are bit-identical either way.
  int shards = 0;
};

/// Structured scenario-file parse failure carrying the 1-based line number.
class ScenarioParseError : public std::invalid_argument {
 public:
  ScenarioParseError(int line, const std::string& what)
      : std::invalid_argument(what), line_(line) {}
  int line() const noexcept { return line_; }

 private:
  int line_;
};

/// The axis token of the text format ("requests", "chaos", ...).
std::string axis_token(SweepAxis axis);
/// The axis column header of the emitted tables ("|R|", "intensity", ...).
std::string axis_label(SweepAxis axis);
/// Formats one sweep-point value the way the figure benches label rows
/// (integer axes via to_string, rates with 0 decimals, chaos with 2).
std::string point_label(SweepAxis axis, double value);

/// Parses the text format documented above. Throws ScenarioParseError on
/// malformed input (unknown key, bad token, wrong arity) naming the line.
ScenarioSpec read_scenario(std::istream& is);

/// Writes a spec in the text format; round-trips through read_scenario.
/// Fields at their defaults are omitted except the identifying ones.
void write_scenario(const ScenarioSpec& spec, std::ostream& os);

}  // namespace mecar::exp
