// Simulation-instance construction shared by the scenario runner and the
// micro benches: network + workload + pre-drawn demand realizations
// (common random numbers across all algorithms under comparison), plus the
// canonical seed schedule and the parallel seed sweep.
//
// Moved here from bench/bench_util.h so the scenario engine — a library,
// not a bench — can build instances; the bench header re-exports these
// names for the remaining micro drivers.
#pragma once

#include <limits>
#include <vector>

#include "core/types.h"
#include "mec/topology.h"
#include "mec/workload.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace mecar::exp {

/// One simulation instance: network + workload + pre-drawn realizations
/// (common random numbers across all algorithms under comparison).
struct Instance {
  mec::Topology topo;
  std::vector<mec::ARRequest> requests;
  std::vector<std::size_t> realized;
};

/// Instance knobs with the paper's section VI-A defaults. Every field maps
/// onto mec::TopologyParams / mec::WorkloadParams; leaving a field at its
/// default consumes the generator RNG identically to the historical
/// bench_util construction, so seeds reproduce the same instances.
struct InstanceConfig {
  int num_requests = 150;
  int num_stations = 20;
  double rate_min = 30.0;
  double rate_max = 50.0;
  int horizon_slots = 0;  // 0 = offline
  mec::RewardModel reward_model = mec::RewardModel::kIndependent;
  mec::ArrivalProcess arrivals = mec::ArrivalProcess::kUniform;
  /// Zipf exponent of user attachment (1.0 = the paper's default skew).
  double home_skew = 1.0;
  /// Backhaul link bandwidth range; infinite reproduces the paper's
  /// unconstrained-backhaul model.
  double link_bandwidth_min_mbps = std::numeric_limits<double>::infinity();
  double link_bandwidth_max_mbps = std::numeric_limits<double>::infinity();
};

Instance make_instance(unsigned seed, const InstanceConfig& config);

/// Default seeds a sweep averages over (override with --seeds=N).
std::vector<unsigned> bench_seeds(int count);

/// Runs trial(seed) for every seed across the process thread pool
/// (MECAR_THREADS cores; serial when 1) and returns the results in seed
/// order. Each trial must derive all randomness from its seed; the caller
/// reduces the ordered results serially, so the emitted figures are
/// bit-identical to a serial sweep.
template <typename Trial>
auto sweep_seeds(const std::vector<unsigned>& seeds, Trial&& trial)
    -> std::vector<decltype(trial(0u))> {
  return util::parallel_map(seeds.size(),
                            [&](std::size_t i) { return trial(seeds[i]); });
}

}  // namespace mecar::exp
