// Executes any ScenarioSpec: builds instances, fans the (point, seed)
// trials out over the process thread pool via sweep_seeds (the
// determinism contract: every trial derives all randomness from its seed
// and the reduction is serial in seed order, so results are bit-identical
// to a serial sweep), and reduces into an exp::Report.
//
// Metric names a trial produces (collect any subset via spec.metrics):
//   offline policies: reward, latency, runtime_ms, admitted, rewarded,
//     lp_bound; with spec.backhaul_audit also voided, reward_lost,
//     peak_link_util (and `reward` is then the audited reward).
//   online policies: reward, latency, drops, completed, arrived,
//     unfinished, displaced, handovers, baseline_reward, retention
//     (faulted / fault-free reward under common random numbers; 1 when no
//     faults), fault_epochs, displaced_outage, displaced_partition,
//     recovered, unrecovered, mean_recovery_slots, dropped_starvation,
//     dropped_fault, dropped_partition, fault_dropped_expected_reward;
//     with spec.collect_detail also latency_p50, latency_p95, latency_max,
//     fairness, mean_util, peak_util.
//
// kRegret scenarios ignore spec.policies/metrics and emit the fixed
// series {"best fixed", "DynamicRR"} under metric "reward" (the Theorem 3
// protocol: per seed, every arm of the kappa grid runs as a constant
// policy and the hindsight best competes against the learned run).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exp/registry.h"
#include "exp/report.h"
#include "exp/scenario.h"

namespace mecar::exp {

/// One (point, seed, policy) outcome handed to the observer during the
/// serial reduction — in (point, seed, policy) order, deterministically.
/// `metrics` holds every metric the trial produced, not just the collected
/// ones (drivers use this for invariant checking).
struct TrialObservation {
  std::size_t point_index = 0;
  double point_value = 0.0;
  unsigned seed = 0;
  const std::string* policy = nullptr;  // display label
  const std::map<std::string, double>* metrics = nullptr;
};

/// Checkpointing configuration (`mecar_cli experiment --checkpoint-dir`).
/// A non-empty `dir` switches run() to the serial checkpointed execution
/// path: trials run one (point, seed, policy) unit at a time instead of
/// fanning out over the thread pool, a checkpoint generation is written
/// after every completed unit and — for online simulations — every
/// `every_slots` simulated slots, and `resume` continues from the newest
/// readable generation. The serial path performs the exact same
/// computations in the exact same reduction order as the pooled path, so
/// its Report (and hence stdout) is bit-identical, and a resumed run is
/// bit-identical to an uninterrupted one.
struct CheckpointOptions {
  std::string dir;
  int every_slots = 0;
  bool resume = false;
};

class Runner {
 public:
  /// Validates nothing yet; run() resolves policies, loads any fault-plan
  /// file, and throws std::invalid_argument on a malformed spec.
  explicit Runner(ScenarioSpec spec, const PolicyRegistry& registry =
                                         PolicyRegistry::global());

  /// CLI overrides (--seeds / --horizon); 0 / negative = keep the spec's.
  void set_seeds(int seeds);
  void set_horizon(int horizon);
  /// CLI override (--lp-budget): anytime pivot budget for the per-slot LP
  /// of every DynamicRR-family policy; 0 / negative = keep the spec's.
  void set_lp_budget(int pivots);
  /// CLI override (--shards): slot-loop engine selection (see
  /// ScenarioSpec::shards); 0 = keep the spec's, -1 forces legacy.
  void set_shards(int shards);

  /// Called once per (point, seed, policy) during the serial reduction.
  void set_observer(std::function<void(const TrialObservation&)> observer);

  /// Enables the serial checkpointed execution path (empty dir disables).
  void set_checkpoint(CheckpointOptions options);

  Report run() const;

  const ScenarioSpec& spec() const noexcept { return spec_; }

 private:
  Report run_regret_checkpointed(const std::vector<unsigned>& seeds,
                                 int base_horizon,
                                 const std::vector<double>& points) const;
  Report run_sweep_checkpointed(const std::vector<unsigned>& seeds,
                                int base_horizon,
                                const std::vector<double>& points,
                                const std::vector<ResolvedPolicy>& resolved,
                                const std::vector<std::string>& labels,
                                bool any_offline, bool any_online,
                                const sim::FaultPlan& file_plan) const;

  ScenarioSpec spec_;
  const PolicyRegistry* registry_;
  int seeds_override_ = 0;
  int horizon_override_ = -1;
  int lp_budget_override_ = 0;
  int shards_override_ = 0;
  CheckpointOptions checkpoint_;
  std::function<void(const TrialObservation&)> observer_;
};

}  // namespace mecar::exp
