#include "exp/runner.h"

#include <algorithm>
#include <optional>
#include <fstream>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "bandit/lipschitz.h"
#include "core/backhaul.h"
#include "obs/catalog.h"
#include "sim/fault_plan.h"
#include "sim/metrics.h"
#include "util/timer.h"

namespace mecar::exp {

namespace {

using MetricMap = std::map<std::string, double>;

/// Everything one sweep point fixes for its trials.
struct PointSetup {
  InstanceConfig offline_config;  // horizon 0
  InstanceConfig online_config;   // horizon = effective horizon
  int horizon = 0;
  sim::DynamicRrParams rr;
  double chaos_intensity = 0.0;
};

const std::set<std::string>& known_metrics() {
  static const std::set<std::string> metrics{
      // offline
      "reward", "latency", "runtime_ms", "admitted", "rewarded", "lp_bound",
      "voided", "reward_lost", "peak_link_util",
      // online
      "drops", "completed", "arrived", "unfinished", "displaced",
      "handovers", "baseline_reward", "retention", "fault_epochs",
      "displaced_outage", "displaced_partition", "recovered", "unrecovered",
      "mean_recovery_slots", "dropped_starvation", "dropped_fault",
      "dropped_partition", "fault_dropped_expected_reward",
      // detail
      "latency_p50", "latency_p95", "latency_max", "fairness", "mean_util",
      "peak_util"};
  return metrics;
}

}  // namespace

Runner::Runner(ScenarioSpec spec, const PolicyRegistry& registry)
    : spec_(std::move(spec)), registry_(&registry) {}

void Runner::set_seeds(int seeds) { seeds_override_ = seeds; }

void Runner::set_horizon(int horizon) { horizon_override_ = horizon; }

void Runner::set_lp_budget(int pivots) { lp_budget_override_ = pivots; }

void Runner::set_shards(int shards) { shards_override_ = shards; }

void Runner::set_observer(
    std::function<void(const TrialObservation&)> observer) {
  observer_ = std::move(observer);
}

Report Runner::run() const {
  const ScenarioSpec& spec = spec_;
  const std::string context = "scenario '" + spec.name + "': ";
  const int num_seeds = seeds_override_ > 0 ? seeds_override_ : spec.seeds;
  if (num_seeds < 1) throw std::invalid_argument(context + "seeds must be >= 1");
  const int base_horizon =
      horizon_override_ >= 0 ? horizon_override_ : spec.horizon;

  std::vector<double> points = spec.points;
  if (spec.axis == SweepAxis::kNone) {
    if (points.size() > 1) {
      throw std::invalid_argument(context +
                                  "axis 'none' admits at most one point");
    }
    if (points.empty()) points.push_back(0.0);
  } else if (points.empty()) {
    throw std::invalid_argument(context + "sweep axis set but no points");
  }

  const std::vector<unsigned> seeds = bench_seeds(num_seeds);

  // ---- Theorem-3 regret protocol -------------------------------------
  if (spec.kind == ScenarioKind::kRegret) {
    Report report(spec.name, axis_label(spec.axis), {"reward"},
                  {"best fixed", "DynamicRR"});
    for (const double point : points) {
      const int kappa = spec.axis == SweepAxis::kKappa
                            ? static_cast<int>(point)
                            : spec.rr.kappa;
      const int horizon = spec.axis == SweepAxis::kHorizon
                              ? static_cast<int>(point)
                              : base_horizon;
      if (horizon <= 0) {
        throw std::invalid_argument(context +
                                    "regret scenarios need a horizon > 0");
      }
      InstanceConfig config = spec.base;
      config.horizon_slots = horizon;
      if (spec.axis == SweepAxis::kHorizon && spec.requests_per_slot > 0.0) {
        config.num_requests =
            static_cast<int>(point * spec.requests_per_slot);
      }
      const bandit::LipschitzGrid grid(spec.rr.threshold_min_mhz,
                                       spec.rr.threshold_max_mhz, kappa);
      const std::size_t arms = static_cast<std::size_t>(grid.num_arms());
      // Task layout per seed s: indices [s*(arms+1), s*(arms+1)+arms) are
      // the fixed-arm runs, index s*(arms+1)+arms is the learned run.
      const std::size_t per_seed = arms + 1;
      const auto rewards = util::parallel_map(
          seeds.size() * per_seed, [&](std::size_t i) {
            obs::metrics().exp_trials.add();
            const unsigned seed = seeds[i / per_seed];
            const std::size_t k = i % per_seed;
            const Instance inst = make_instance(seed, config);
            sim::OnlineParams params;
            params.horizon_slots = horizon;
            params.num_shards =
                shards_override_ != 0 ? shards_override_ : spec.shards;
            sim::DynamicRrParams dparams = spec.rr;
            if (lp_budget_override_ > 0) {
              dparams.lp_pivot_budget = lp_budget_override_;
            }
            if (k < arms) {
              dparams.kappa = 1;
              dparams.threshold_min_mhz = grid.value(static_cast<int>(k));
              dparams.threshold_max_mhz = dparams.threshold_min_mhz;
            } else {
              dparams.kappa = kappa;
            }
            auto policy = registry_->make_online(
                "DynamicRR", inst.topo, spec.alg, dparams,
                util::Rng(seed + spec.policy_seed_offset));
            sim::OnlineSimulator simulator(inst.topo, inst.requests,
                                           inst.realized, params);
            return simulator.run(*policy).total_reward;
          });
      report.start_point(point, point_label(spec.axis, point));
      for (std::size_t s = 0; s < seeds.size(); ++s) {
        double best = 0.0;
        for (std::size_t k = 0; k < arms; ++k) {
          best = std::max(best, rewards[s * per_seed + k]);
        }
        report.add("reward", "best fixed", best);
        report.add("reward", "DynamicRR", rewards[s * per_seed + arms]);
      }
    }
    return report;
  }

  // ---- Generic sweep --------------------------------------------------
  if (spec.policies.empty()) {
    throw std::invalid_argument(context + "no policies to compare");
  }
  if (spec.metrics.empty()) {
    throw std::invalid_argument(context + "no metrics to collect");
  }
  for (const std::string& metric : spec.metrics) {
    if (known_metrics().count(metric) == 0) {
      std::string known;
      for (const std::string& name : known_metrics()) {
        known += (known.empty() ? "" : ", ") + name;
      }
      throw std::invalid_argument(context + "unknown metric '" + metric +
                                  "' (known: " + known + ")");
    }
  }

  std::vector<ResolvedPolicy> resolved;
  std::vector<std::string> labels;
  resolved.reserve(spec.policies.size());
  bool any_offline = false;
  bool any_online = false;
  for (const PolicyRef& ref : spec.policies) {
    resolved.push_back(resolve_policy(*registry_, ref.name, base_horizon));
    (resolved.back().online ? any_online : any_offline) = true;
    const std::string label =
        ref.label.empty() ? resolved.back().name : ref.label;
    if (std::find(labels.begin(), labels.end(), label) != labels.end()) {
      throw std::invalid_argument(context + "duplicate policy label '" +
                                  label + "'");
    }
    labels.push_back(label);
  }
  if (any_online && base_horizon <= 0 && spec.axis != SweepAxis::kHorizon) {
    throw std::invalid_argument(context +
                                "online policies need a horizon > 0");
  }

  sim::FaultPlan file_plan;
  if (!spec.fault_plan_path.empty()) {
    std::ifstream file(spec.fault_plan_path);
    if (!file) {
      throw std::invalid_argument(context + "cannot open fault plan '" +
                                  spec.fault_plan_path + "'");
    }
    file_plan = sim::read_fault_plan(file);
  }

  Report report(spec.name, axis_label(spec.axis), spec.metrics, labels);

  for (std::size_t p = 0; p < points.size(); ++p) {
    const double point = points[p];
    PointSetup setup;
    setup.horizon = spec.axis == SweepAxis::kHorizon
                        ? static_cast<int>(point)
                        : base_horizon;
    setup.offline_config = spec.base;
    setup.offline_config.horizon_slots = 0;
    setup.rr = spec.rr;
    if (lp_budget_override_ > 0) setup.rr.lp_pivot_budget = lp_budget_override_;
    setup.chaos_intensity = spec.axis == SweepAxis::kChaosIntensity
                                ? point
                                : spec.chaos_intensity;
    switch (spec.axis) {
      case SweepAxis::kRequests:
        setup.offline_config.num_requests = static_cast<int>(point);
        break;
      case SweepAxis::kStations:
        setup.offline_config.num_stations = static_cast<int>(point);
        break;
      case SweepAxis::kRateMax:
        setup.offline_config.rate_max = point;
        break;
      case SweepAxis::kHorizon:
        if (spec.requests_per_slot > 0.0) {
          setup.offline_config.num_requests =
              static_cast<int>(point * spec.requests_per_slot);
        }
        break;
      case SweepAxis::kKappa:
        setup.rr.kappa = static_cast<int>(point);
        break;
      case SweepAxis::kNone:
      case SweepAxis::kChaosIntensity:
        break;
    }
    setup.online_config = setup.offline_config;
    setup.online_config.horizon_slots = setup.horizon;
    if (spec.scale_thresholds) {
      // Fig. 6 coupling: the provider knows the demand support, so the
      // threshold range brackets it per sweep point.
      setup.rr.threshold_min_mhz =
          setup.online_config.rate_min * spec.alg.c_unit;
      setup.rr.threshold_max_mhz =
          (setup.online_config.rate_max + spec.threshold_headroom) *
          spec.alg.c_unit;
    }

    // One trial = one (sweep point, seed) pair; trials are independent and
    // fully determined by their seed, so the pool runs them concurrently
    // and the ordered reduction below reproduces the serial output bit for
    // bit.
    const auto samples = sweep_seeds(seeds, [&](unsigned seed) {
      obs::metrics().exp_trials.add();
      std::vector<MetricMap> out;
      out.reserve(resolved.size());
      std::optional<Instance> offline_inst;
      std::optional<Instance> online_inst;
      if (any_offline) {
        offline_inst.emplace(make_instance(seed, setup.offline_config));
      }
      if (any_online) {
        online_inst.emplace(make_instance(seed, setup.online_config));
      }

      sim::FaultPlan plan = file_plan;
      if (setup.chaos_intensity > 0.0) {
        sim::ChaosParams chaos;
        chaos.intensity = setup.chaos_intensity;
        // The plan derives entirely from the trial seed (offset so the
        // chaos stream is independent of the workload stream).
        util::Rng chaos_rng(seed * 2654435761u + 17u);
        plan = sim::generate_chaos(online_inst->topo, chaos, setup.horizon,
                                   chaos_rng);
      }

      for (const ResolvedPolicy& policy : resolved) {
        MetricMap m;
        if (!policy.online) {
          util::Rng rng(seed + spec.policy_seed_offset);
          util::Timer timer;
          core::OffloadResult res = registry_->run_offline(
              policy.name, *offline_inst, spec.alg, rng);
          m["runtime_ms"] = timer.elapsed_ms();
          if (spec.backhaul_audit) {
            const core::BackhaulAudit audit = core::apply_backhaul_audit(
                offline_inst->topo, offline_inst->requests, res);
            m["voided"] = audit.voided;
            m["reward_lost"] = audit.reward_lost;
            m["peak_link_util"] = audit.peak_link_utilization;
          }
          m["reward"] = res.total_reward();
          m["latency"] = res.average_latency_ms();
          m["admitted"] = res.num_admitted();
          m["rewarded"] = res.num_rewarded();
          m["lp_bound"] = res.lp_bound;
        } else {
          sim::OnlineParams params;
          params.horizon_slots = setup.horizon;
          params.alg = spec.alg;
          params.mobility = spec.mobility;
          params.collect_detail = spec.collect_detail;
          params.num_shards =
              shards_override_ != 0 ? shards_override_ : spec.shards;

          // Fault-free reference with common random numbers (the faulted
          // run reuses the same instance and a fresh policy).
          auto ref_policy = registry_->make_online(
              policy.name, online_inst->topo, spec.alg, setup.rr,
              util::Rng(seed + spec.policy_seed_offset));
          sim::OnlineSimulator ref_sim(online_inst->topo,
                                       online_inst->requests,
                                       online_inst->realized, params);
          const sim::OnlineMetrics ref = ref_sim.run(*ref_policy);

          sim::OnlineMetrics metrics = ref;
          if (!plan.empty()) {
            params.faults = plan;
            auto faulted_policy = registry_->make_online(
                policy.name, online_inst->topo, spec.alg, setup.rr,
                util::Rng(seed + spec.policy_seed_offset));
            sim::OnlineSimulator faulted_sim(online_inst->topo,
                                             online_inst->requests,
                                             online_inst->realized, params);
            metrics = faulted_sim.run(*faulted_policy);
          }

          m["reward"] = metrics.total_reward;
          m["latency"] = metrics.avg_latency_ms;
          m["drops"] = metrics.dropped;
          m["completed"] = metrics.completed;
          m["arrived"] = metrics.arrived;
          m["unfinished"] = metrics.unfinished;
          m["displaced"] = metrics.displaced;
          m["handovers"] = metrics.handovers;
          m["baseline_reward"] = ref.total_reward;
          m["retention"] = ref.total_reward > 0.0
                               ? metrics.total_reward / ref.total_reward
                               : 1.0;
          const sim::ResilienceReport& rs = metrics.resilience;
          m["fault_epochs"] = rs.fault_epochs;
          m["displaced_outage"] = rs.displaced_outage;
          m["displaced_partition"] = rs.displaced_partition;
          m["recovered"] = rs.recovered;
          m["unrecovered"] = rs.unrecovered;
          m["mean_recovery_slots"] = rs.mean_recovery_slots;
          m["dropped_starvation"] = rs.dropped_starvation;
          m["dropped_fault"] = rs.dropped_fault;
          m["dropped_partition"] = rs.dropped_partition;
          m["fault_dropped_expected_reward"] =
              rs.fault_dropped_expected_reward;
          if (spec.collect_detail) {
            const sim::DetailedSummary s = sim::summarize(metrics);
            m["latency_p50"] = s.latency_p50_ms;
            m["latency_p95"] = s.latency_p95_ms;
            m["latency_max"] = s.latency_max_ms;
            m["fairness"] = s.service_fairness;
            m["mean_util"] = s.mean_utilization;
            m["peak_util"] = s.peak_utilization;
          }
        }
        out.push_back(std::move(m));
      }
      return out;
    });

    report.start_point(point, point_label(spec.axis, point));
    for (std::size_t s = 0; s < samples.size(); ++s) {
      for (std::size_t i = 0; i < labels.size(); ++i) {
        const MetricMap& m = samples[s][i];
        if (observer_) {
          TrialObservation obs;
          obs.point_index = p;
          obs.point_value = point;
          obs.seed = seeds[s];
          obs.policy = &labels[i];
          obs.metrics = &m;
          observer_(obs);
        }
        for (const std::string& metric : spec.metrics) {
          const auto it = m.find(metric);
          if (it != m.end()) report.add(metric, labels[i], it->second);
        }
      }
    }
  }
  return report;
}

}  // namespace mecar::exp
