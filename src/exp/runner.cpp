#include "exp/runner.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <fstream>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "bandit/lipschitz.h"
#include "core/backhaul.h"
#include "obs/catalog.h"
#include "obs/telemetry.h"
#include "sim/checkpoint.h"
#include "sim/fault_plan.h"
#include "sim/metrics.h"
#include "util/snapshot.h"
#include "util/timer.h"

namespace mecar::exp {

namespace {

using MetricMap = std::map<std::string, double>;

/// Everything one sweep point fixes for its trials.
struct PointSetup {
  InstanceConfig offline_config;  // horizon 0
  InstanceConfig online_config;   // horizon = effective horizon
  int horizon = 0;
  sim::DynamicRrParams rr;
  double chaos_intensity = 0.0;
};

/// Everything one sweep point fixes for its trials, derived identically by
/// the pooled and the checkpointed execution paths.
PointSetup make_point_setup(const ScenarioSpec& spec, double point,
                            int base_horizon, int lp_budget_override) {
  PointSetup setup;
  setup.horizon = spec.axis == SweepAxis::kHorizon ? static_cast<int>(point)
                                                   : base_horizon;
  setup.offline_config = spec.base;
  setup.offline_config.horizon_slots = 0;
  setup.rr = spec.rr;
  if (lp_budget_override > 0) setup.rr.lp_pivot_budget = lp_budget_override;
  setup.chaos_intensity = spec.axis == SweepAxis::kChaosIntensity
                              ? point
                              : spec.chaos_intensity;
  switch (spec.axis) {
    case SweepAxis::kRequests:
      setup.offline_config.num_requests = static_cast<int>(point);
      break;
    case SweepAxis::kStations:
      setup.offline_config.num_stations = static_cast<int>(point);
      break;
    case SweepAxis::kRateMax:
      setup.offline_config.rate_max = point;
      break;
    case SweepAxis::kHorizon:
      if (spec.requests_per_slot > 0.0) {
        setup.offline_config.num_requests =
            static_cast<int>(point * spec.requests_per_slot);
      }
      break;
    case SweepAxis::kKappa:
      setup.rr.kappa = static_cast<int>(point);
      break;
    case SweepAxis::kNone:
    case SweepAxis::kChaosIntensity:
      break;
  }
  setup.online_config = setup.offline_config;
  setup.online_config.horizon_slots = setup.horizon;
  if (spec.scale_thresholds) {
    // Fig. 6 coupling: the provider knows the demand support, so the
    // threshold range brackets it per sweep point.
    setup.rr.threshold_min_mhz =
        setup.online_config.rate_min * spec.alg.c_unit;
    setup.rr.threshold_max_mhz =
        (setup.online_config.rate_max + spec.threshold_headroom) *
        spec.alg.c_unit;
  }
  return setup;
}

/// One offline policy's metric map (both execution paths).
MetricMap offline_trial_metrics(const PolicyRegistry& registry,
                                const ScenarioSpec& spec,
                                const std::string& policy_name,
                                const Instance& inst, unsigned seed) {
  MetricMap m;
  util::Rng rng(seed + spec.policy_seed_offset);
  util::Timer timer;
  core::OffloadResult res =
      registry.run_offline(policy_name, inst, spec.alg, rng);
  m["runtime_ms"] = timer.elapsed_ms();
  if (spec.backhaul_audit) {
    const core::BackhaulAudit audit =
        core::apply_backhaul_audit(inst.topo, inst.requests, res);
    m["voided"] = audit.voided;
    m["reward_lost"] = audit.reward_lost;
    m["peak_link_util"] = audit.peak_link_utilization;
  }
  m["reward"] = res.total_reward();
  m["latency"] = res.average_latency_ms();
  m["admitted"] = res.num_admitted();
  m["rewarded"] = res.num_rewarded();
  m["lp_bound"] = res.lp_bound;
  return m;
}

/// One online policy's metric map from its faulted metrics and fault-free
/// reference (both execution paths).
MetricMap online_trial_metrics(const ScenarioSpec& spec,
                               const sim::OnlineMetrics& metrics,
                               const sim::OnlineMetrics& ref) {
  MetricMap m;
  m["reward"] = metrics.total_reward;
  m["latency"] = metrics.avg_latency_ms;
  m["drops"] = metrics.dropped;
  m["completed"] = metrics.completed;
  m["arrived"] = metrics.arrived;
  m["unfinished"] = metrics.unfinished;
  m["displaced"] = metrics.displaced;
  m["handovers"] = metrics.handovers;
  m["baseline_reward"] = ref.total_reward;
  m["retention"] = ref.total_reward > 0.0
                       ? metrics.total_reward / ref.total_reward
                       : 1.0;
  const sim::ResilienceReport& rs = metrics.resilience;
  m["fault_epochs"] = rs.fault_epochs;
  m["displaced_outage"] = rs.displaced_outage;
  m["displaced_partition"] = rs.displaced_partition;
  m["recovered"] = rs.recovered;
  m["unrecovered"] = rs.unrecovered;
  m["mean_recovery_slots"] = rs.mean_recovery_slots;
  m["dropped_starvation"] = rs.dropped_starvation;
  m["dropped_fault"] = rs.dropped_fault;
  m["dropped_partition"] = rs.dropped_partition;
  m["fault_dropped_expected_reward"] = rs.fault_dropped_expected_reward;
  if (spec.collect_detail) {
    const sim::DetailedSummary s = sim::summarize(metrics);
    m["latency_p50"] = s.latency_p50_ms;
    m["latency_p95"] = s.latency_p95_ms;
    m["latency_max"] = s.latency_max_ms;
    m["fairness"] = s.service_fairness;
    m["mean_util"] = s.mean_utilization;
    m["peak_util"] = s.peak_utilization;
  }
  return m;
}

// ---- Runner checkpoint frame -----------------------------------------
//
// [fingerprint][Report][cursor][obs MetricsSnapshot], framed with
// kCkptMagic/kCkptVersion (DESIGN.md §14). The fingerprint pins the run
// configuration; resuming under a different one is a user error
// (std::invalid_argument), unlike a corrupt generation, which falls back
// down the ladder. The cursor layout depends on the scenario kind (which
// the fingerprint fixes): sweeps store (point, seed, policy, stage) plus
// an optional reference OnlineMetrics and an optional mid-sim
// SimSnapshot; regret runs store (point, task, stage), the completed
// tasks' rewards, and an optional mid-sim SimSnapshot.

constexpr std::uint32_t kCkptMagic = 0x4b43524dU;  // "MRCK"
constexpr std::uint32_t kCkptVersion = 1;

struct CkptFingerprint {
  std::string name;
  std::uint8_t kind = 0;
  std::int32_t num_seeds = 0;
  std::int32_t base_horizon = 0;
  std::int32_t shards = 0;
  std::int32_t lp_budget = 0;
  std::vector<double> points;
  std::vector<std::string> metrics;
  std::vector<std::string> policies;
};

void save_fingerprint(const CkptFingerprint& fp, util::SnapshotWriter& w) {
  w.str(fp.name);
  w.u8(fp.kind);
  w.i32(fp.num_seeds);
  w.i32(fp.base_horizon);
  w.i32(fp.shards);
  w.i32(fp.lp_budget);
  w.vec(fp.points, [&](double v) { w.f64(v); });
  w.vec(fp.metrics, [&](const std::string& s) { w.str(s); });
  w.vec(fp.policies, [&](const std::string& s) { w.str(s); });
}

/// Throws std::invalid_argument when the checkpoint's fingerprint differs
/// from the current run configuration in `field` terms a user can act on.
void check_fingerprint(const CkptFingerprint& fp, util::SnapshotReader& r,
                       const std::string& context) {
  const auto mismatch = [&](const char* field) {
    throw std::invalid_argument(
        context + "checkpoint was written by a different run configuration (" +
        field + " differs); pass a fresh --checkpoint-dir or matching flags");
  };
  if (r.str() != fp.name) mismatch("scenario name");
  if (r.u8() != fp.kind) mismatch("scenario kind");
  if (r.i32() != fp.num_seeds) mismatch("seeds");
  if (r.i32() != fp.base_horizon) mismatch("horizon");
  if (r.i32() != fp.shards) mismatch("shards");
  if (r.i32() != fp.lp_budget) mismatch("lp budget");
  if (r.vec<double>([&] { return r.f64(); }) != fp.points) mismatch("points");
  if (r.vec<std::string>([&] { return r.str(); }) != fp.metrics) {
    mismatch("metrics");
  }
  if (r.vec<std::string>([&] { return r.str(); }) != fp.policies) {
    mismatch("policies");
  }
}

/// Engine hook that checkpoints the in-flight simulation every
/// `every` slots (slot 0 is the initial state; nothing to save yet).
struct MidSimHook final : sim::SlotHook {
  int every = 0;
  std::function<void(sim::SimSnapshot)> sink;

  bool want_snapshot(int slot) override {
    return every > 0 && slot > 0 && slot % every == 0;
  }
  void on_snapshot(int /*slot*/, sim::SimSnapshot snapshot) override {
    sink(std::move(snapshot));
  }
};

/// Where a checkpointed run left off. stage 0 = before the cursor unit's
/// first simulation, 1 = inside the fault-free reference run, 2 = inside
/// the faulted run (the reference result rides in `ref`).
struct ResumeCursor {
  std::size_t point = 0;
  std::size_t seed = 0;    // sweep: seed index
  std::size_t policy = 0;  // sweep: policy index
  std::size_t task = 0;    // regret: task index within the point
  std::uint8_t stage = 0;
  std::optional<sim::OnlineMetrics> ref;
  std::optional<sim::SimSnapshot> snap;
  std::vector<double> rewards;  // regret: completed tasks of the point
};

/// Walks the generation ladder newest-first and loads the first readable
/// checkpoint into (report, cur), restoring the obs registry as a side
/// effect. A generation failing CRC/parse validation logs a structured
/// diagnostic and falls back to the previous one; an empty or fully
/// corrupt ladder returns false (start fresh). A fingerprint mismatch is
/// a user error and propagates as std::invalid_argument instead.
bool load_latest_checkpoint(const sim::CheckpointStore& store,
                            const CkptFingerprint& fp,
                            const std::string& context, Report& report,
                            ResumeCursor& cur) {
  for (const std::string& path : store.generations()) {
    try {
      const std::vector<std::uint8_t> bytes =
          sim::CheckpointStore::read_file(path);
      util::SnapshotReader r(bytes, kCkptMagic, kCkptVersion);
      check_fingerprint(fp, r, context);
      Report loaded;
      loaded.load(r);
      ResumeCursor c;
      if (fp.kind == 0) {  // sweep cursor
        c.point = static_cast<std::size_t>(r.u64());
        c.seed = static_cast<std::size_t>(r.u64());
        c.policy = static_cast<std::size_t>(r.u64());
        c.stage = r.u8();
        if (r.boolean()) c.ref = sim::load_online_metrics(r);
        if (r.boolean()) c.snap = sim::load_sim_snapshot(r);
      } else {  // regret cursor
        c.point = static_cast<std::size_t>(r.u64());
        c.task = static_cast<std::size_t>(r.u64());
        c.stage = r.u8();
        c.rewards = r.vec<double>([&] { return r.f64(); });
        if (r.boolean()) c.snap = sim::load_sim_snapshot(r);
      }
      const obs::MetricsSnapshot ms = obs::load_metrics_snapshot(r);
      r.expect_end();
      report = std::move(loaded);
      cur = std::move(c);
      obs::registry().restore(ms);
      std::fprintf(stderr, "mecar: resuming from %s\n", path.c_str());
      return true;
    } catch (const util::SnapshotParseError& e) {
      std::fprintf(stderr,
                   "mecar: checkpoint %s rejected at byte %zu (%s); "
                   "falling back to the previous generation\n",
                   path.c_str(), e.offset(), e.what());
    } catch (const std::runtime_error& e) {
      std::fprintf(stderr,
                   "mecar: checkpoint %s unreadable (%s); "
                   "falling back to the previous generation\n",
                   path.c_str(), e.what());
    }
  }
  std::fprintf(stderr, "mecar: no usable checkpoint in %s; starting fresh\n",
               store.dir().c_str());
  return false;
}

const std::set<std::string>& known_metrics() {
  static const std::set<std::string> metrics{
      // offline
      "reward", "latency", "runtime_ms", "admitted", "rewarded", "lp_bound",
      "voided", "reward_lost", "peak_link_util",
      // online
      "drops", "completed", "arrived", "unfinished", "displaced",
      "handovers", "baseline_reward", "retention", "fault_epochs",
      "displaced_outage", "displaced_partition", "recovered", "unrecovered",
      "mean_recovery_slots", "dropped_starvation", "dropped_fault",
      "dropped_partition", "fault_dropped_expected_reward",
      // detail
      "latency_p50", "latency_p95", "latency_max", "fairness", "mean_util",
      "peak_util"};
  return metrics;
}

}  // namespace

Runner::Runner(ScenarioSpec spec, const PolicyRegistry& registry)
    : spec_(std::move(spec)), registry_(&registry) {}

void Runner::set_seeds(int seeds) { seeds_override_ = seeds; }

void Runner::set_horizon(int horizon) { horizon_override_ = horizon; }

void Runner::set_lp_budget(int pivots) { lp_budget_override_ = pivots; }

void Runner::set_shards(int shards) { shards_override_ = shards; }

void Runner::set_observer(
    std::function<void(const TrialObservation&)> observer) {
  observer_ = std::move(observer);
}

void Runner::set_checkpoint(CheckpointOptions options) {
  checkpoint_ = std::move(options);
}

Report Runner::run() const {
  const ScenarioSpec& spec = spec_;
  const std::string context = "scenario '" + spec.name + "': ";
  const int num_seeds = seeds_override_ > 0 ? seeds_override_ : spec.seeds;
  if (num_seeds < 1) throw std::invalid_argument(context + "seeds must be >= 1");
  const int base_horizon =
      horizon_override_ >= 0 ? horizon_override_ : spec.horizon;

  std::vector<double> points = spec.points;
  if (spec.axis == SweepAxis::kNone) {
    if (points.size() > 1) {
      throw std::invalid_argument(context +
                                  "axis 'none' admits at most one point");
    }
    if (points.empty()) points.push_back(0.0);
  } else if (points.empty()) {
    throw std::invalid_argument(context + "sweep axis set but no points");
  }

  const std::vector<unsigned> seeds = bench_seeds(num_seeds);

  // ---- Theorem-3 regret protocol -------------------------------------
  if (spec.kind == ScenarioKind::kRegret) {
    if (!checkpoint_.dir.empty()) {
      return run_regret_checkpointed(seeds, base_horizon, points);
    }
    Report report(spec.name, axis_label(spec.axis), {"reward"},
                  {"best fixed", "DynamicRR"});
    for (const double point : points) {
      const int kappa = spec.axis == SweepAxis::kKappa
                            ? static_cast<int>(point)
                            : spec.rr.kappa;
      const int horizon = spec.axis == SweepAxis::kHorizon
                              ? static_cast<int>(point)
                              : base_horizon;
      if (horizon <= 0) {
        throw std::invalid_argument(context +
                                    "regret scenarios need a horizon > 0");
      }
      InstanceConfig config = spec.base;
      config.horizon_slots = horizon;
      if (spec.axis == SweepAxis::kHorizon && spec.requests_per_slot > 0.0) {
        config.num_requests =
            static_cast<int>(point * spec.requests_per_slot);
      }
      const bandit::LipschitzGrid grid(spec.rr.threshold_min_mhz,
                                       spec.rr.threshold_max_mhz, kappa);
      const std::size_t arms = static_cast<std::size_t>(grid.num_arms());
      // Task layout per seed s: indices [s*(arms+1), s*(arms+1)+arms) are
      // the fixed-arm runs, index s*(arms+1)+arms is the learned run.
      const std::size_t per_seed = arms + 1;
      const auto rewards = util::parallel_map(
          seeds.size() * per_seed, [&](std::size_t i) {
            obs::metrics().exp_trials.add();
            const unsigned seed = seeds[i / per_seed];
            const std::size_t k = i % per_seed;
            const Instance inst = make_instance(seed, config);
            sim::OnlineParams params;
            params.horizon_slots = horizon;
            params.num_shards =
                shards_override_ != 0 ? shards_override_ : spec.shards;
            sim::DynamicRrParams dparams = spec.rr;
            if (lp_budget_override_ > 0) {
              dparams.lp_pivot_budget = lp_budget_override_;
            }
            if (k < arms) {
              dparams.kappa = 1;
              dparams.threshold_min_mhz = grid.value(static_cast<int>(k));
              dparams.threshold_max_mhz = dparams.threshold_min_mhz;
            } else {
              dparams.kappa = kappa;
            }
            auto policy = registry_->make_online(
                "DynamicRR", inst.topo, spec.alg, dparams,
                util::Rng(seed + spec.policy_seed_offset));
            sim::OnlineSimulator simulator(inst.topo, inst.requests,
                                           inst.realized, params);
            return simulator.run(*policy).total_reward;
          });
      report.start_point(point, point_label(spec.axis, point));
      for (std::size_t s = 0; s < seeds.size(); ++s) {
        double best = 0.0;
        for (std::size_t k = 0; k < arms; ++k) {
          best = std::max(best, rewards[s * per_seed + k]);
        }
        report.add("reward", "best fixed", best);
        report.add("reward", "DynamicRR", rewards[s * per_seed + arms]);
      }
    }
    return report;
  }

  // ---- Generic sweep --------------------------------------------------
  if (spec.policies.empty()) {
    throw std::invalid_argument(context + "no policies to compare");
  }
  if (spec.metrics.empty()) {
    throw std::invalid_argument(context + "no metrics to collect");
  }
  for (const std::string& metric : spec.metrics) {
    if (known_metrics().count(metric) == 0) {
      std::string known;
      for (const std::string& name : known_metrics()) {
        known += (known.empty() ? "" : ", ") + name;
      }
      throw std::invalid_argument(context + "unknown metric '" + metric +
                                  "' (known: " + known + ")");
    }
  }

  std::vector<ResolvedPolicy> resolved;
  std::vector<std::string> labels;
  resolved.reserve(spec.policies.size());
  bool any_offline = false;
  bool any_online = false;
  for (const PolicyRef& ref : spec.policies) {
    resolved.push_back(resolve_policy(*registry_, ref.name, base_horizon));
    (resolved.back().online ? any_online : any_offline) = true;
    const std::string label =
        ref.label.empty() ? resolved.back().name : ref.label;
    if (std::find(labels.begin(), labels.end(), label) != labels.end()) {
      throw std::invalid_argument(context + "duplicate policy label '" +
                                  label + "'");
    }
    labels.push_back(label);
  }
  if (any_online && base_horizon <= 0 && spec.axis != SweepAxis::kHorizon) {
    throw std::invalid_argument(context +
                                "online policies need a horizon > 0");
  }

  sim::FaultPlan file_plan;
  if (!spec.fault_plan_path.empty()) {
    std::ifstream file(spec.fault_plan_path);
    if (!file) {
      throw std::invalid_argument(context + "cannot open fault plan '" +
                                  spec.fault_plan_path + "'");
    }
    file_plan = sim::read_fault_plan(file);
  }

  if (!checkpoint_.dir.empty()) {
    return run_sweep_checkpointed(seeds, base_horizon, points, resolved,
                                  labels, any_offline, any_online, file_plan);
  }

  Report report(spec.name, axis_label(spec.axis), spec.metrics, labels);

  for (std::size_t p = 0; p < points.size(); ++p) {
    const double point = points[p];
    const PointSetup setup =
        make_point_setup(spec, point, base_horizon, lp_budget_override_);

    // One trial = one (sweep point, seed) pair; trials are independent and
    // fully determined by their seed, so the pool runs them concurrently
    // and the ordered reduction below reproduces the serial output bit for
    // bit.
    const auto samples = sweep_seeds(seeds, [&](unsigned seed) {
      obs::metrics().exp_trials.add();
      std::vector<MetricMap> out;
      out.reserve(resolved.size());
      std::optional<Instance> offline_inst;
      std::optional<Instance> online_inst;
      if (any_offline) {
        offline_inst.emplace(make_instance(seed, setup.offline_config));
      }
      if (any_online) {
        online_inst.emplace(make_instance(seed, setup.online_config));
      }

      sim::FaultPlan plan = file_plan;
      if (setup.chaos_intensity > 0.0) {
        sim::ChaosParams chaos;
        chaos.intensity = setup.chaos_intensity;
        // The plan derives entirely from the trial seed (offset so the
        // chaos stream is independent of the workload stream).
        util::Rng chaos_rng(seed * 2654435761u + 17u);
        plan = sim::generate_chaos(online_inst->topo, chaos, setup.horizon,
                                   chaos_rng);
      }

      for (const ResolvedPolicy& policy : resolved) {
        MetricMap m;
        if (!policy.online) {
          m = offline_trial_metrics(*registry_, spec, policy.name,
                                    *offline_inst, seed);
        } else {
          sim::OnlineParams params;
          params.horizon_slots = setup.horizon;
          params.alg = spec.alg;
          params.mobility = spec.mobility;
          params.collect_detail = spec.collect_detail;
          params.num_shards =
              shards_override_ != 0 ? shards_override_ : spec.shards;

          // Fault-free reference with common random numbers (the faulted
          // run reuses the same instance and a fresh policy).
          auto ref_policy = registry_->make_online(
              policy.name, online_inst->topo, spec.alg, setup.rr,
              util::Rng(seed + spec.policy_seed_offset));
          sim::OnlineSimulator ref_sim(online_inst->topo,
                                       online_inst->requests,
                                       online_inst->realized, params);
          const sim::OnlineMetrics ref = ref_sim.run(*ref_policy);

          sim::OnlineMetrics metrics = ref;
          if (!plan.empty()) {
            params.faults = plan;
            auto faulted_policy = registry_->make_online(
                policy.name, online_inst->topo, spec.alg, setup.rr,
                util::Rng(seed + spec.policy_seed_offset));
            sim::OnlineSimulator faulted_sim(online_inst->topo,
                                             online_inst->requests,
                                             online_inst->realized, params);
            metrics = faulted_sim.run(*faulted_policy);
          }

          m = online_trial_metrics(spec, metrics, ref);
        }
        out.push_back(std::move(m));
      }
      return out;
    });

    report.start_point(point, point_label(spec.axis, point));
    for (std::size_t s = 0; s < samples.size(); ++s) {
      for (std::size_t i = 0; i < labels.size(); ++i) {
        const MetricMap& m = samples[s][i];
        if (observer_) {
          TrialObservation obs;
          obs.point_index = p;
          obs.point_value = point;
          obs.seed = seeds[s];
          obs.policy = &labels[i];
          obs.metrics = &m;
          observer_(obs);
        }
        for (const std::string& metric : spec.metrics) {
          const auto it = m.find(metric);
          if (it != m.end()) report.add(metric, labels[i], it->second);
        }
      }
    }
  }
  return report;
}

// ---- Serial checkpointed execution -----------------------------------
//
// Same computations, same (point, seed, policy) reduction order as the
// pooled path above, so the resulting Report is bit-identical — but one
// unit at a time, with a checkpoint generation written after every unit
// and (via MidSimHook) every checkpoint_.every_slots simulated slots.
// Invariants the cursor encodes:
//  * sweep: the report holds start_point for every point <= cursor.point
//    and the adds of every unit strictly before (point, seed, policy);
//  * regret: the report holds the reduction of every point < cursor.point
//    (a point's start_point/adds land atomically after its last task),
//    and `rewards` holds the tasks strictly before cursor.task.
// Resuming replays nothing: completed units are skipped, an in-flight
// simulation restarts from its SimSnapshot, and the obs registry picks up
// from its restored totals.

Report Runner::run_sweep_checkpointed(
    const std::vector<unsigned>& seeds, int base_horizon,
    const std::vector<double>& points,
    const std::vector<ResolvedPolicy>& resolved,
    const std::vector<std::string>& labels, bool any_offline, bool any_online,
    const sim::FaultPlan& file_plan) const {
  const ScenarioSpec& spec = spec_;
  const std::string context = "scenario '" + spec.name + "': ";
  sim::CheckpointStore store(checkpoint_.dir);

  CkptFingerprint fp;
  fp.name = spec.name;
  fp.kind = 0;
  fp.num_seeds = static_cast<std::int32_t>(seeds.size());
  fp.base_horizon = base_horizon;
  fp.shards = shards_override_ != 0 ? shards_override_ : spec.shards;
  fp.lp_budget = lp_budget_override_;
  fp.points = points;
  fp.metrics = spec.metrics;
  fp.policies = labels;

  Report report(spec.name, axis_label(spec.axis), spec.metrics, labels);
  ResumeCursor cur;
  bool resumed = false;
  if (checkpoint_.resume) {
    resumed = load_latest_checkpoint(store, fp, context, report, cur);
  }

  const auto write_ckpt = [&](std::size_t p, std::size_t s, std::size_t i,
                              std::uint8_t stage,
                              const sim::OnlineMetrics* ref,
                              const sim::SimSnapshot* snap) {
    util::SnapshotWriter w;
    save_fingerprint(fp, w);
    report.save(w);
    w.u64(p);
    w.u64(s);
    w.u64(i);
    w.u8(stage);
    w.boolean(ref != nullptr);
    if (ref != nullptr) sim::save_online_metrics(w, *ref);
    w.boolean(snap != nullptr);
    if (snap != nullptr) sim::save_sim_snapshot(w, *snap);
    obs::save_metrics_snapshot(obs::registry().snapshot(), w);
    store.write(w.finish(kCkptMagic, kCkptVersion));
  };

  int done_units = 0;
  for (std::size_t p = cur.point; p < points.size(); ++p) {
    const double point = points[p];
    const PointSetup setup =
        make_point_setup(spec, point, base_horizon, lp_budget_override_);
    if (report.num_points() <= p) {
      report.start_point(point, point_label(spec.axis, point));
    }
    for (std::size_t s = p == cur.point ? cur.seed : 0; s < seeds.size();
         ++s) {
      const unsigned seed = seeds[s];
      const bool resumed_seed = resumed && p == cur.point && s == cur.seed;
      // The pooled path counts one exp trial per (point, seed) before its
      // first policy; a restored registry already holds that count when
      // the cursor sits past the seed's first policy boundary.
      if (!(resumed_seed && (cur.policy > 0 || cur.stage != 0))) {
        obs::metrics().exp_trials.add();
      }
      std::optional<Instance> offline_inst;
      std::optional<Instance> online_inst;
      if (any_offline) {
        offline_inst.emplace(make_instance(seed, setup.offline_config));
      }
      if (any_online) {
        online_inst.emplace(make_instance(seed, setup.online_config));
      }

      sim::FaultPlan plan = file_plan;
      if (setup.chaos_intensity > 0.0) {
        sim::ChaosParams chaos;
        chaos.intensity = setup.chaos_intensity;
        util::Rng chaos_rng(seed * 2654435761u + 17u);
        plan = sim::generate_chaos(online_inst->topo, chaos, setup.horizon,
                                   chaos_rng);
      }

      for (std::size_t i = resumed_seed ? cur.policy : 0; i < resolved.size();
           ++i) {
        const ResolvedPolicy& policy = resolved[i];
        const bool resumed_unit = resumed_seed && i == cur.policy;
        MetricMap m;
        if (!policy.online) {
          m = offline_trial_metrics(*registry_, spec, policy.name,
                                    *offline_inst, seed);
        } else {
          sim::OnlineParams params;
          params.horizon_slots = setup.horizon;
          params.alg = spec.alg;
          params.mobility = spec.mobility;
          params.collect_detail = spec.collect_detail;
          params.num_shards =
              shards_override_ != 0 ? shards_override_ : spec.shards;

          sim::OnlineMetrics ref;
          if (resumed_unit && cur.stage == 2 && cur.ref) {
            ref = *cur.ref;  // reference leg finished before the crash
          } else {
            auto ref_policy = registry_->make_online(
                policy.name, online_inst->topo, spec.alg, setup.rr,
                util::Rng(seed + spec.policy_seed_offset));
            MidSimHook hook;
            hook.every = checkpoint_.every_slots;
            hook.sink = [&](sim::SimSnapshot snap) {
              write_ckpt(p, s, i, 1, nullptr, &snap);
            };
            const sim::SimSnapshot* from =
                resumed_unit && cur.stage == 1 && cur.snap ? &*cur.snap
                                                           : nullptr;
            sim::OnlineSimulator ref_sim(online_inst->topo,
                                         online_inst->requests,
                                         online_inst->realized, params);
            ref = ref_sim.run(*ref_policy, &hook, from);
          }

          sim::OnlineMetrics metrics = ref;
          if (!plan.empty()) {
            params.faults = plan;
            auto faulted_policy = registry_->make_online(
                policy.name, online_inst->topo, spec.alg, setup.rr,
                util::Rng(seed + spec.policy_seed_offset));
            MidSimHook hook;
            hook.every = checkpoint_.every_slots;
            hook.sink = [&](sim::SimSnapshot snap) {
              write_ckpt(p, s, i, 2, &ref, &snap);
            };
            const sim::SimSnapshot* from =
                resumed_unit && cur.stage == 2 && cur.snap ? &*cur.snap
                                                           : nullptr;
            sim::OnlineSimulator faulted_sim(online_inst->topo,
                                             online_inst->requests,
                                             online_inst->realized, params);
            metrics = faulted_sim.run(*faulted_policy, &hook, from);
          }
          m = online_trial_metrics(spec, metrics, ref);
        }

        if (observer_) {
          TrialObservation obs;
          obs.point_index = p;
          obs.point_value = point;
          obs.seed = seed;
          obs.policy = &labels[i];
          obs.metrics = &m;
          observer_(obs);
        }
        for (const std::string& metric : spec.metrics) {
          const auto it = m.find(metric);
          if (it != m.end()) report.add(metric, labels[i], it->second);
        }

        // Advance the cursor past this unit and persist the boundary.
        std::size_t np = p;
        std::size_t ns = s;
        std::size_t ni = i + 1;
        if (ni == resolved.size()) {
          ni = 0;
          ++ns;
        }
        if (ns == seeds.size()) {
          ns = 0;
          ++np;
        }
        write_ckpt(np, ns, ni, 0, nullptr, nullptr);
        sim::unit_crash_point(++done_units);
      }
    }
  }
  return report;
}

Report Runner::run_regret_checkpointed(
    const std::vector<unsigned>& seeds, int base_horizon,
    const std::vector<double>& points) const {
  const ScenarioSpec& spec = spec_;
  const std::string context = "scenario '" + spec.name + "': ";
  sim::CheckpointStore store(checkpoint_.dir);

  CkptFingerprint fp;
  fp.name = spec.name;
  fp.kind = 1;
  fp.num_seeds = static_cast<std::int32_t>(seeds.size());
  fp.base_horizon = base_horizon;
  fp.shards = shards_override_ != 0 ? shards_override_ : spec.shards;
  fp.lp_budget = lp_budget_override_;
  fp.points = points;
  fp.metrics = {"reward"};
  fp.policies = {"best fixed", "DynamicRR"};

  Report report(spec.name, axis_label(spec.axis), {"reward"},
                {"best fixed", "DynamicRR"});
  ResumeCursor cur;
  bool resumed = false;
  if (checkpoint_.resume) {
    resumed = load_latest_checkpoint(store, fp, context, report, cur);
  }

  std::vector<double> rewards;
  const auto write_ckpt = [&](std::size_t p, std::size_t task,
                              std::uint8_t stage,
                              const sim::SimSnapshot* snap) {
    util::SnapshotWriter w;
    save_fingerprint(fp, w);
    report.save(w);
    w.u64(p);
    w.u64(task);
    w.u8(stage);
    w.vec(rewards, [&](double v) { w.f64(v); });
    w.boolean(snap != nullptr);
    if (snap != nullptr) sim::save_sim_snapshot(w, *snap);
    obs::save_metrics_snapshot(obs::registry().snapshot(), w);
    store.write(w.finish(kCkptMagic, kCkptVersion));
  };

  int done_units = 0;
  for (std::size_t p = cur.point; p < points.size(); ++p) {
    const double point = points[p];
    const int kappa = spec.axis == SweepAxis::kKappa ? static_cast<int>(point)
                                                     : spec.rr.kappa;
    const int horizon = spec.axis == SweepAxis::kHorizon
                            ? static_cast<int>(point)
                            : base_horizon;
    if (horizon <= 0) {
      throw std::invalid_argument(context +
                                  "regret scenarios need a horizon > 0");
    }
    InstanceConfig config = spec.base;
    config.horizon_slots = horizon;
    if (spec.axis == SweepAxis::kHorizon && spec.requests_per_slot > 0.0) {
      config.num_requests = static_cast<int>(point * spec.requests_per_slot);
    }
    const bandit::LipschitzGrid grid(spec.rr.threshold_min_mhz,
                                     spec.rr.threshold_max_mhz, kappa);
    const std::size_t arms = static_cast<std::size_t>(grid.num_arms());
    const std::size_t per_seed = arms + 1;
    const std::size_t total = seeds.size() * per_seed;

    rewards.clear();
    std::size_t first_task = 0;
    if (resumed && p == cur.point) {
      rewards = cur.rewards;
      first_task = cur.task;
    }
    for (std::size_t i = first_task; i < total; ++i) {
      const bool resumed_task = resumed && p == cur.point && i == cur.task;
      if (!(resumed_task && cur.stage != 0)) obs::metrics().exp_trials.add();
      const unsigned seed = seeds[i / per_seed];
      const std::size_t k = i % per_seed;
      const Instance inst = make_instance(seed, config);
      sim::OnlineParams params;
      params.horizon_slots = horizon;
      params.num_shards =
          shards_override_ != 0 ? shards_override_ : spec.shards;
      sim::DynamicRrParams dparams = spec.rr;
      if (lp_budget_override_ > 0) {
        dparams.lp_pivot_budget = lp_budget_override_;
      }
      if (k < arms) {
        dparams.kappa = 1;
        dparams.threshold_min_mhz = grid.value(static_cast<int>(k));
        dparams.threshold_max_mhz = dparams.threshold_min_mhz;
      } else {
        dparams.kappa = kappa;
      }
      auto policy = registry_->make_online(
          "DynamicRR", inst.topo, spec.alg, dparams,
          util::Rng(seed + spec.policy_seed_offset));
      sim::OnlineSimulator simulator(inst.topo, inst.requests, inst.realized,
                                     params);
      MidSimHook hook;
      hook.every = checkpoint_.every_slots;
      hook.sink = [&](sim::SimSnapshot snap) { write_ckpt(p, i, 1, &snap); };
      const sim::SimSnapshot* from =
          resumed_task && cur.stage == 1 && cur.snap ? &*cur.snap : nullptr;
      rewards.push_back(simulator.run(*policy, &hook, from).total_reward);
      write_ckpt(p, i + 1, 0, nullptr);
      sim::unit_crash_point(++done_units);
    }

    report.start_point(point, point_label(spec.axis, point));
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      double best = 0.0;
      for (std::size_t k = 0; k < arms; ++k) {
        best = std::max(best, rewards[s * per_seed + k]);
      }
      report.add("reward", "best fixed", best);
      report.add("reward", "DynamicRR", rewards[s * per_seed + arms]);
    }
  }
  return report;
}

}  // namespace mecar::exp
