#include "exp/registry.h"

#include <stdexcept>
#include <utility>

#include "baselines/greedy.h"
#include "baselines/heu_kkt.h"
#include "baselines/ocorp.h"
#include "core/appro.h"
#include "core/exact.h"
#include "core/heu.h"
#include "sim/online_baselines.h"

namespace mecar::exp {

namespace {

std::string known_list(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

/// DynamicRR with a fixed learner, overriding whatever the scenario set.
PolicyRegistry::OnlineFn dynamic_rr_with(sim::ThresholdLearner learner) {
  return [learner](const mec::Topology& topo,
                   const core::AlgorithmParams& params,
                   const sim::DynamicRrParams& rr, util::Rng rng) {
    sim::DynamicRrParams variant = rr;
    variant.learner = learner;
    return std::make_unique<sim::DynamicRrPolicy>(topo, params, variant,
                                                  std::move(rng));
  };
}

/// DynamicRR pinned to one endpoint of its threshold range (kappa = 1, no
/// learning) — the "learning value" ablation arms.
PolicyRegistry::OnlineFn dynamic_rr_fixed(bool use_max) {
  return [use_max](const mec::Topology& topo,
                   const core::AlgorithmParams& params,
                   const sim::DynamicRrParams& rr, util::Rng rng) {
    sim::DynamicRrParams variant = rr;
    const double pin =
        use_max ? rr.threshold_max_mhz : rr.threshold_min_mhz;
    variant.threshold_min_mhz = pin;
    variant.threshold_max_mhz = pin;
    variant.kappa = 1;
    return std::make_unique<sim::DynamicRrPolicy>(topo, params, variant,
                                                  std::move(rng));
  };
}

PolicyRegistry make_builtin_registry() {
  PolicyRegistry reg;

  reg.register_offline(
      "Exact", [](const Instance& inst, const core::AlgorithmParams& params,
                  util::Rng&) {
        core::ExactOptions options;
        options.params = params;
        return core::run_exact(inst.topo, inst.requests, inst.realized,
                               options)
            .offload;
      });
  reg.register_offline(
      "Appro", [](const Instance& inst, const core::AlgorithmParams& params,
                  util::Rng& rng) {
        return core::run_appro(inst.topo, inst.requests, inst.realized,
                               params, rng);
      });
  reg.register_offline(
      "Appro-backhaul",
      [](const Instance& inst, const core::AlgorithmParams& params,
         util::Rng& rng) {
        core::AlgorithmParams aware = params;
        aware.enforce_backhaul = true;
        return core::run_appro(inst.topo, inst.requests, inst.realized, aware,
                               rng);
      });
  reg.register_offline(
      "Heu", [](const Instance& inst, const core::AlgorithmParams& params,
                util::Rng& rng) {
        return core::run_heu(inst.topo, inst.requests, inst.realized, params,
                             rng);
      });
  reg.register_offline(
      "Greedy", [](const Instance& inst, const core::AlgorithmParams& params,
                   util::Rng&) {
        return baselines::run_greedy(inst.topo, inst.requests, inst.realized,
                                     params);
      });
  reg.register_offline(
      "OCORP", [](const Instance& inst, const core::AlgorithmParams& params,
                  util::Rng&) {
        return baselines::run_ocorp(inst.topo, inst.requests, inst.realized,
                                    params);
      });
  reg.register_offline(
      "HeuKKT", [](const Instance& inst, const core::AlgorithmParams& params,
                   util::Rng&) {
        return baselines::run_heu_kkt(inst.topo, inst.requests,
                                      inst.realized, params);
      });

  reg.register_online(
      "DynamicRR",
      [](const mec::Topology& topo, const core::AlgorithmParams& params,
         const sim::DynamicRrParams& rr, util::Rng rng) {
        return std::make_unique<sim::DynamicRrPolicy>(topo, params, rr,
                                                      std::move(rng));
      });
  reg.register_online(
      "Greedy",
      [](const mec::Topology& topo, const core::AlgorithmParams& params,
         const sim::DynamicRrParams&, util::Rng) {
        return std::make_unique<sim::GreedyOnlinePolicy>(topo, params);
      });
  reg.register_online(
      "OCORP",
      [](const mec::Topology& topo, const core::AlgorithmParams& params,
         const sim::DynamicRrParams&, util::Rng) {
        return std::make_unique<sim::OcorpOnlinePolicy>(topo, params);
      });
  reg.register_online(
      "HeuKKT",
      [](const mec::Topology& topo, const core::AlgorithmParams& params,
         const sim::DynamicRrParams&, util::Rng) {
        return std::make_unique<sim::HeuKktOnlinePolicy>(topo, params);
      });
  reg.register_online("DynamicRR-ucb1",
                      dynamic_rr_with(sim::ThresholdLearner::kUcb1));
  reg.register_online("DynamicRR-epsilon",
                      dynamic_rr_with(sim::ThresholdLearner::kEpsilonGreedy));
  reg.register_online("DynamicRR-thompson",
                      dynamic_rr_with(sim::ThresholdLearner::kThompson));
  reg.register_online("DynamicRR-zooming",
                      dynamic_rr_with(sim::ThresholdLearner::kZooming));
  reg.register_online("DynamicRR-fixed-min", dynamic_rr_fixed(false));
  reg.register_online("DynamicRR-fixed-max", dynamic_rr_fixed(true));
  return reg;
}

}  // namespace

const PolicyRegistry& PolicyRegistry::global() {
  static const PolicyRegistry registry = make_builtin_registry();
  return registry;
}

bool PolicyRegistry::has_offline(const std::string& name) const {
  return offline_.count(name) != 0;
}

bool PolicyRegistry::has_online(const std::string& name) const {
  return online_.count(name) != 0;
}

core::OffloadResult PolicyRegistry::run_offline(
    const std::string& name, const Instance& instance,
    const core::AlgorithmParams& params, util::Rng& rng) const {
  const auto it = offline_.find(name);
  if (it == offline_.end()) {
    throw std::invalid_argument("unknown offline policy '" + name +
                                "' (known: " + known_list(offline_names()) +
                                ")");
  }
  return it->second(instance, params, rng);
}

std::unique_ptr<sim::OnlinePolicy> PolicyRegistry::make_online(
    const std::string& name, const mec::Topology& topo,
    const core::AlgorithmParams& params, const sim::DynamicRrParams& rr,
    util::Rng rng) const {
  const auto it = online_.find(name);
  if (it == online_.end()) {
    throw std::invalid_argument("unknown online policy '" + name +
                                "' (known: " + known_list(online_names()) +
                                ")");
  }
  return it->second(topo, params, rr, std::move(rng));
}

std::vector<std::string> PolicyRegistry::offline_names() const {
  std::vector<std::string> names;
  names.reserve(offline_.size());
  for (const auto& [name, fn] : offline_) names.push_back(name);
  return names;
}

std::vector<std::string> PolicyRegistry::online_names() const {
  std::vector<std::string> names;
  names.reserve(online_.size());
  for (const auto& [name, fn] : online_) names.push_back(name);
  return names;
}

void PolicyRegistry::register_offline(std::string name, OfflineFn fn) {
  offline_[std::move(name)] = std::move(fn);
}

void PolicyRegistry::register_online(std::string name, OnlineFn fn) {
  online_[std::move(name)] = std::move(fn);
}

ResolvedPolicy resolve_policy(const PolicyRegistry& registry,
                              const std::string& ref, int horizon) {
  std::string name = ref;
  int want = -1;  // -1 = unqualified, 0 = offline, 1 = online
  if (ref.rfind("offline:", 0) == 0) {
    name = ref.substr(8);
    want = 0;
  } else if (ref.rfind("online:", 0) == 0) {
    name = ref.substr(7);
    want = 1;
  }
  const bool off = registry.has_offline(name);
  const bool on = registry.has_online(name);
  if (want == 0) {
    if (!off) {
      throw std::invalid_argument(
          "policy '" + ref + "': no offline algorithm named '" + name +
          "' (known: " + [&] {
            std::string s;
            for (const auto& n : registry.offline_names())
              s += (s.empty() ? "" : ", ") + n;
            return s;
          }() + ")");
    }
    return {name, false};
  }
  if (want == 1) {
    if (!on) {
      throw std::invalid_argument(
          "policy '" + ref + "': no online policy named '" + name +
          "' (known: " + [&] {
            std::string s;
            for (const auto& n : registry.online_names())
              s += (s.empty() ? "" : ", ") + n;
            return s;
          }() + ")");
    }
    return {name, true};
  }
  if (off && on) return {name, horizon > 0};
  if (on) return {name, true};
  if (off) return {name, false};
  std::string known;
  for (const auto& n : registry.offline_names())
    known += (known.empty() ? "offline: " : ", ") + n;
  known += "; online: ";
  bool first = true;
  for (const auto& n : registry.online_names()) {
    if (!first) known += ", ";
    known += n;
    first = false;
  }
  throw std::invalid_argument("unknown policy '" + ref + "' (" + known + ")");
}

}  // namespace mecar::exp
