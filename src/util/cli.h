// Minimal command-line flag parser for examples and bench drivers.
//
// Accepts flags of the form `--key=value` and boolean `--flag` (a bare flag
// never consumes the following token, so positionals stay unambiguous).
// Non-flag arguments are collected as positionals.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mecar::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True when `--key` was present (with or without a value).
  bool has(const std::string& key) const;

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, std::string fallback) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace mecar::util
