#include "util/parse.h"

#include <cerrno>
#include <cstdlib>

namespace mecar::util {

std::optional<double> parse_double(const std::string& token) {
  if (token.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return value;
}

std::optional<std::int64_t> parse_int(const std::string& token) {
  if (token.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(value);
}

}  // namespace mecar::util
