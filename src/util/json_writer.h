// Streaming JSON emission shared by every snapshot writer in the tree
// (BENCH_parallel.json, BENCH_resilience.json, exp::Report snapshots).
//
// The hand-rolled per-bench writers each re-invented string quoting and
// number formatting, and none escaped strings at all — a policy label with
// a quote or backslash produced invalid JSON. JsonWriter centralizes both:
// strings are escaped per RFC 8259, doubles are printed with the shortest
// representation that round-trips (integral values print without a
// fractional part), and nesting/comma bookkeeping is automatic.
//
//   util::JsonWriter w(os);
//   w.begin_object();
//   w.key("threads").value(8);
//   w.key("entries").begin_array();
//   w.begin_object().key("name").value("fig4").end_object();
//   w.end_array();
//   w.end_object();  // emits a trailing newline at depth 0
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mecar::util {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included): ", \, control characters -> \uXXXX / short escapes.
std::string json_escape(std::string_view s);

/// Formats a double as a JSON number: integral values without a fractional
/// part, everything else with the shortest precision that parses back to
/// the same double. Non-finite values (JSON has none) emit null.
std::string json_number(double value);

/// Minimal streaming JSON writer with automatic commas and indentation.
/// Misuse (value without key inside an object, unbalanced end_*) throws
/// std::logic_error — a malformed snapshot should fail loudly, not ship.
class JsonWriter {
 public:
  /// Writes to `os`; `indent` spaces per nesting level (0 = compact).
  explicit JsonWriter(std::ostream& os, int indent = 2);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next value/begin_* attaches to it.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& null();

  /// Convenience: key(name).value(v).
  template <typename T>
  JsonWriter& field(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  /// True once the single top-level value is complete.
  bool done() const noexcept { return done_; }

 private:
  enum class Ctx { kObject, kArray };
  struct Level {
    Ctx ctx;
    bool any = false;       // wrote at least one element
    bool key_open = false;  // object: key emitted, value pending
  };

  void before_value();
  void newline_indent();
  void raw(std::string_view text);

  std::ostream& os_;
  int indent_;
  std::vector<Level> stack_;
  bool done_ = false;
};

}  // namespace mecar::util
