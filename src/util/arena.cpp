#include "util/arena.h"

#include <algorithm>

namespace mecar::util {

void* Arena::allocate_slow(std::size_t bytes, std::size_t align) {
  // Try the remaining retained chunks before growing: after a reset() the
  // cursor walks forward through the chunks allocated in earlier slots.
  while (current_ + 1 < chunks_.size()) {
    ++current_;
    offset_ = 0;
    const std::uintptr_t base =
        reinterpret_cast<std::uintptr_t>(chunks_[current_].data.get());
    const std::size_t aligned = (offset_ + (align - 1)) & ~(align - 1);
    if (aligned + bytes <= chunks_[current_].size) {
      offset_ = aligned + bytes;
      used_ += bytes;
      return reinterpret_cast<void*>(base + aligned);
    }
  }
  // Grow. Oversized requests get a dedicated chunk; operator new[] aligns
  // the base to max_align_t, covering every align we accept, and offset 0
  // is trivially aligned.
  const std::size_t size = std::max(bytes, chunk_bytes_);
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  chunks_.push_back(std::move(chunk));
  current_ = chunks_.size() - 1;
  offset_ = bytes;
  used_ += bytes;
  return chunks_[current_].data.get();
}

void Arena::reset() noexcept {
  current_ = 0;
  offset_ = 0;
  used_ = 0;
}

void Arena::release() noexcept {
  chunks_.clear();
  current_ = 0;
  offset_ = 0;
  used_ = 0;
}

std::size_t Arena::capacity_bytes() const noexcept {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

}  // namespace mecar::util
