#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mecar::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  cells_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::string& label,
                            const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string Table::to_aligned() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : cells_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : cells_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  os << "== " << title << " ==\n"
     << to_aligned() << "csv:\n"
     << to_csv() << ":csv\n";
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

}  // namespace mecar::util
