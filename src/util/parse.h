// Strict, locale-independent numeric token parsing shared by every text
// reader in the tree (CSV traces, MPS files, CLI flags, fault scenarios).
//
// Unlike raw std::stod/std::stoll, a token parses only when it is ENTIRELY
// a number: trailing junk ("3.5x", "12abc") is rejected instead of being
// silently truncated, and out-of-range magnitudes fail instead of throwing.
// Callers turn the nullopt into a diagnostic that names the field and the
// offending token — no raw std::invalid_argument ever escapes a reader.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace mecar::util {

/// Parses `token` as a double. The whole token must be consumed; empty
/// tokens, trailing junk, and out-of-range values yield nullopt. "inf" and
/// "nan" parse (some writers emit them for unbounded quantities).
std::optional<double> parse_double(const std::string& token);

/// Parses `token` as a base-10 signed integer. The whole token must be
/// consumed; empty tokens, trailing junk (including a fractional part),
/// and out-of-range values yield nullopt.
std::optional<std::int64_t> parse_int(const std::string& token);

}  // namespace mecar::util
