#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace mecar::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::bernoulli(double p) noexcept {
  return uniform() < std::clamp(p, 0.0, 1.0);
}

std::size_t Rng::categorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::categorical: weights sum to zero");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical tail
}

std::size_t Rng::categorical_or_none(std::span<const double> weights,
                                     double total) {
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument("Rng::categorical_or_none: negative weight");
    }
    sum += w;
  }
  if (total <= 0.0 || sum > total * (1.0 + 1e-9)) {
    throw std::invalid_argument(
        "Rng::categorical_or_none: weights exceed total");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size();  // residual mass -> "no pick"
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

Rng Rng::split() noexcept {
  return Rng((*this)());
}

}  // namespace mecar::util
