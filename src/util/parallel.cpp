#include "util/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

namespace mecar::util {
namespace {

/// Set while the current thread executes inside a parallel region; nested
/// regions run inline instead of re-entering the shared pool.
thread_local bool t_in_parallel_region = false;

/// Shared state of one parallel_for region.
struct ForState {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<int> open_tasks{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex mutex;
  std::condition_variable done_cv;

  /// Drains indices until exhausted or a body failed. Returns the
  /// exception the calling thread itself hit, if any.
  void drain() {
    const bool outer = !t_in_parallel_region;
    t_in_parallel_region = true;
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
    if (outer) t_in_parallel_region = false;
  }

  void task_done() {
    std::lock_guard<std::mutex> lock(mutex);
    if (--open_tasks == 0) done_cv.notify_all();
  }
};

}  // namespace

int default_thread_count() {
  if (const char* env = std::getenv("MECAR_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<int>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  num_threads_ = threads > 0 ? threads : default_thread_count();
  queue_bound_ = 4 * static_cast<std::size_t>(num_threads_) + 16;
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // single-thread fallback: run inline
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    space_cv_.wait(lock, [this] { return stop_ || queue_.size() < queue_bound_; });
    if (stop_) return;
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

bool ThreadPool::pop_task(std::function<void()>& task) {
  std::unique_lock<std::mutex> lock(mutex_);
  queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
  if (queue_.empty()) return false;
  task = std::move(queue_.front());
  queue_.pop_front();
  space_cv_.notify_one();
  return true;
}

void ThreadPool::worker_loop() {
  std::function<void()> task;
  while (pop_task(task)) {
    task();
    task = nullptr;
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Serial fast paths: tiny regions, single-thread pools, and nested calls
  // (a pool task waiting on pool tasks would deadlock).
  if (n == 1 || workers_.empty() || t_in_parallel_region) {
    const bool outer = !t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      for (std::size_t i = 0; i < n; ++i) body(i);
    } catch (...) {
      if (outer) t_in_parallel_region = false;
      throw;
    }
    if (outer) t_in_parallel_region = false;
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->body = &body;
  const std::size_t helpers =
      std::min(workers_.size(), n > 1 ? n - 1 : std::size_t{0});
  state->open_tasks = static_cast<int>(helpers);
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([state] {
      state->drain();
      state->task_done();
    });
  }
  // The calling thread works too; `drain` hands out indices atomically so
  // no index runs twice.
  state->drain();
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock, [&] { return state->open_tasks == 0; });
    if (state->error) std::rethrow_exception(state->error);
  }
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  default_pool().parallel_for(n, body);
}

}  // namespace mecar::util
