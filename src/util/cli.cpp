#include "util/cli.h"

#include <stdexcept>

#include "util/parse.h"

namespace mecar::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string key = arg.substr(2);
    const auto eq = key.find('=');
    if (eq != std::string::npos) {
      flags_[key.substr(0, eq)] = key.substr(eq + 1);
    } else {
      flags_[key] = "";  // boolean flag; values require --key=value
    }
  }
}

bool Cli::has(const std::string& key) const {
  return flags_.contains(key);
}

std::optional<std::string> Cli::get(const std::string& key) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_or(const std::string& key, std::string fallback) const {
  const auto v = get(key);
  return v ? *v : std::move(fallback);
}

std::int64_t Cli::get_int_or(const std::string& key,
                             std::int64_t fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  // Strict: the whole value must be an integer — "12abs" used to silently
  // truncate to 12 under std::stoll.
  if (const auto parsed = parse_int(*v)) return *parsed;
  throw std::invalid_argument("flag --" + key + " expects an integer, got '" +
                              *v + "'");
}

double Cli::get_double_or(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  if (const auto parsed = parse_double(*v)) return *parsed;
  throw std::invalid_argument("flag --" + key + " expects a number, got '" +
                              *v + "'");
}

bool Cli::get_bool_or(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes") return true;
  if (*v == "0" || *v == "false" || *v == "no") return false;
  throw std::invalid_argument("flag --" + key + " expects a boolean, got '" +
                              *v + "'");
}

}  // namespace mecar::util
