// Aligned console tables + CSV emission for the figure-reproduction benches.
//
// Each bench prints the exact series a paper figure plots: one row per sweep
// point, one column per algorithm. `Table` renders both a human-readable
// aligned view and a machine-readable CSV block so results can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mecar::util {

/// A rectangular table with a header row; cells are strings, with helpers
/// for formatting numeric series.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: first cell is a label, remaining cells are numbers
  /// formatted with `precision` digits after the decimal point.
  void add_numeric_row(const std::string& label,
                       const std::vector<double>& values, int precision = 2);

  std::size_t rows() const noexcept { return cells_.size(); }
  std::size_t cols() const noexcept { return header_.size(); }
  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::string>& row(std::size_t r) const {
    return cells_.at(r);
  }

  /// Renders an aligned, pipe-separated table.
  std::string to_aligned() const;

  /// Renders an RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string to_csv() const;

  /// Prints the aligned table, then the CSV block fenced by `csv:` markers.
  void print(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats a double with fixed precision (helper shared by benches).
std::string format_double(double value, int precision = 2);

}  // namespace mecar::util
