// Versioned binary snapshot framing — the wire format under every
// checkpoint the simulator writes (sim/checkpoint.h orchestrates *what*
// goes into a snapshot; this header owns *how* bytes get on disk).
//
// A framed snapshot is
//
//   [magic u32][version u32][payload_len u64][payload ...][crc32 u32]
//
// little-endian, with the CRC32 (polynomial 0xEDB88320, the zlib one)
// taken over the payload bytes alone. Inside the payload every value is
// tagged with a one-byte type code and written in a fixed-width
// little-endian encoding — doubles as their raw IEEE-754 bit pattern, so
// a round trip is bit-exact (NaN payloads and signed zeros included) and
// a resumed run can continue a floating-point accumulation stream
// without drift. The tags turn a reader/writer mismatch (schema drift,
// corruption the CRC happened to miss, a truncated nested blob) into a
// structured SnapshotParseError carrying the byte offset of the fault
// instead of silently misinterpreted state.
//
// Compatibility policy (DESIGN.md §14): the version constant of each
// snapshot kind bumps on ANY layout change and readers reject every
// version but their own — checkpoints are crash-recovery state, not an
// archival format, and a stale-format checkpoint is equivalent to no
// checkpoint (the run simply starts fresh).
//
// atomic_write_file provides the durable-write protocol: tmp file in the
// same directory, write, fsync, rename over the target, fsync the
// directory — a crash mid-write leaves either the old generation or the
// new one, never a torn file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mecar::util {

/// Structured snapshot decode failure carrying the byte offset (within
/// the framed buffer) at which the fault was detected.
class SnapshotParseError : public std::runtime_error {
 public:
  SnapshotParseError(std::size_t offset, const std::string& what)
      : std::runtime_error(what), offset_(offset) {}
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// CRC32 (reflected, polynomial 0xEDB88320) of a byte buffer.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept;

/// Serializer for the tagged payload encoding. Write values, then either
/// finish() into a framed buffer or take payload() to nest the bytes
/// inside an enclosing snapshot (engine snapshots embed the policy's
/// opaque state blob this way).
class SnapshotWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void i64(std::int64_t v);
  /// Bit-exact: the raw IEEE-754 pattern, not a decimal round trip.
  void f64(double v);
  void boolean(bool v);
  void str(const std::string& v);
  void bytes(const std::vector<std::uint8_t>& v);

  /// Writes a u64 element count followed by f(element) per element.
  template <typename T, typename F>
  void vec(const std::vector<T>& v, F&& f) {
    u64(static_cast<std::uint64_t>(v.size()));
    for (const T& item : v) f(item);
  }

  /// The unframed payload written so far.
  const std::vector<std::uint8_t>& payload() const noexcept { return buf_; }

  /// Frames the payload: magic, version, length, payload, CRC32.
  std::vector<std::uint8_t> finish(std::uint32_t magic,
                                   std::uint32_t version) const;

 private:
  void raw(const void* data, std::size_t size);

  std::vector<std::uint8_t> buf_;
};

/// Deserializer. The framed constructor validates magic, version, length
/// and CRC up front; unframed() wraps a nested payload blob. Every read
/// checks its type tag and bounds, throwing SnapshotParseError with the
/// offending byte offset.
class SnapshotReader {
 public:
  /// Parses a framed buffer; throws SnapshotParseError on a bad magic
  /// (offset 0), unsupported version (offset 4), inconsistent length
  /// (offset 8) or CRC mismatch (offset of the stored CRC).
  SnapshotReader(const std::vector<std::uint8_t>& framed, std::uint32_t magic,
                 std::uint32_t version);

  /// Wraps an unframed payload (a nested blob); no magic/CRC check.
  static SnapshotReader unframed(const std::vector<std::uint8_t>& payload);

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  double f64();
  bool boolean();
  std::string str();
  std::vector<std::uint8_t> bytes();

  /// Reads a u64 element count then f() per element into a vector.
  template <typename T, typename F>
  std::vector<T> vec(F&& f) {
    const std::uint64_t n = u64();
    check_count(n);
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(f());
    return out;
  }

  /// True when every payload byte has been consumed.
  bool at_end() const noexcept { return pos_ == end_; }
  /// Current absolute offset within the framed buffer.
  std::size_t offset() const noexcept { return pos_; }

  /// Throws unless the payload was fully consumed (trailing garbage is a
  /// schema mismatch, not padding).
  void expect_end() const;

 private:
  SnapshotReader(const std::uint8_t* data, std::size_t begin, std::size_t end);

  void expect_tag(std::uint8_t tag, const char* what);
  const std::uint8_t* take(std::size_t size, const char* what);
  void check_count(std::uint64_t n) const;

  const std::uint8_t* data_ = nullptr;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
};

/// Durably replaces `path` with `data`: tmp file in the same directory,
/// write + fsync, rename over `path`, fsync the directory. Throws
/// std::runtime_error (with errno text) on any failure.
void atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& data);

/// Reads a whole file as bytes; throws std::runtime_error when the file
/// cannot be opened or read.
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

}  // namespace mecar::util
