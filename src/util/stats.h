// Streaming and batch statistics used by the metric collectors and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace mecar::util {

class SnapshotWriter;
class SnapshotReader;

/// Welford-style running accumulator: mean/variance/min/max in one pass
/// without storing samples.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  /// Checkpoint support: the accumulator state round-trips bit-exactly
  /// (doubles as raw IEEE-754 patterns), so a resumed reduction continues
  /// the Welford stream without drift.
  void save(SnapshotWriter& w) const;
  void load(SnapshotReader& r);

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double sum() const noexcept { return sum_; }
  /// Mean of the samples; 0 when empty.
  double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Returns the q-th quantile (q in [0,1]) with linear interpolation.
/// Throws std::invalid_argument on an empty sample or q outside [0,1].
double quantile(std::span<const double> sorted_samples, double q);

/// Sorts a copy of `samples` and returns the q-th quantile.
double quantile_unsorted(std::span<const double> samples, double q);

/// Percentile convenience over quantile: pct in [0,100].
/// percentile(s, 95.0) == quantile(s, 0.95) bit-for-bit (pct/100.0 rounds
/// to the same double for the percentiles we use), so callers can migrate
/// without perturbing golden outputs.
double percentile(std::span<const double> sorted_samples, double pct);

/// Sorts a copy of `samples` and returns the pct-th percentile.
double percentile_unsorted(std::span<const double> samples, double pct);

/// The three tail percentiles every latency report wants, in one pass over
/// an unsorted sample. Throws std::invalid_argument when empty.
struct PercentileSummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};
PercentileSummary percentile_summary(std::span<const double> samples);

/// Percentile estimate from a fixed-boundary histogram, as produced by
/// obs::MetricRegistry snapshots: `counts` has boundaries.size() + 1
/// buckets, the last being the overflow bucket (boundaries.back(), +inf).
/// Linear interpolation inside the target bucket; the first bucket's lower
/// edge is taken as min(0, boundaries[0]) and ranks landing in the
/// overflow bucket return boundaries.back() (there is no upper edge to
/// interpolate toward). Throws std::invalid_argument on an empty
/// histogram, mismatched sizes, or pct outside [0,100].
double histogram_percentile(std::span<const double> boundaries,
                            std::span<const std::uint64_t> counts,
                            double pct);

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> samples) noexcept;

/// Sum of a span.
double sum(std::span<const double> samples) noexcept;

/// Simple ordinary-least-squares fit y = a + b*x; returns {a, b}.
/// Used by the regret bench to estimate growth exponents in log-log space.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

}  // namespace mecar::util
