// Deterministic pseudo-random number generation for reproducible simulations.
//
// Every stochastic component in mecar (topology generation, workloads,
// randomized rounding, rate realization, bandit exploration) draws from an
// explicitly passed Rng so that a single seed reproduces an entire
// experiment. The generator is xoshiro256**, seeded through SplitMix64, which
// is both fast and statistically strong for simulation purposes.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace mecar::util {

/// Deterministic random number generator (xoshiro256**).
///
/// Satisfies the UniformRandomBitGenerator concept, so it can also be used
/// with <random> distributions, although the member helpers below are the
/// preferred interface inside mecar.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Weights must be non-negative and not all zero.
  std::size_t categorical(std::span<const double> weights);

  /// Samples an index in [0, weights.size()) proportional to weights, where
  /// weights may sum to less than `total`; with the residual probability
  /// (total - sum) / total, returns weights.size() ("no pick"). Used by the
  /// y/4 randomized rounding of algorithm Appro.
  std::size_t categorical_or_none(std::span<const double> weights,
                                  double total);

  /// Exponential variate with the given rate (> 0).
  double exponential(double rate);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each
  /// subsystem its own stream while remaining reproducible.
  Rng split() noexcept;

  /// The raw xoshiro256** state, for checkpoint/restore. set_state with a
  /// captured state resumes the stream at exactly the next draw.
  std::array<std::uint64_t, 4> state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    for (int i = 0; i < 4; ++i) {
      state_[i] = state[static_cast<std::size_t>(i)];
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace mecar::util
