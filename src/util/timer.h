// Wall-clock timing for the running-time series of Fig. 3(c).
#pragma once

#include <chrono>

namespace mecar::util {

/// Monotonic stopwatch. Started on construction; `restart()` resets it.
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last restart.
  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mecar::util
