// Wall-clock timing for the running-time series of Fig. 3(c).
#pragma once

#include <chrono>

namespace mecar::util {

/// Monotonic stopwatch. Started on construction; `restart()` resets it.
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last restart.
  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// RAII accumulator: adds the scope's elapsed milliseconds into a caller
/// total on destruction. Lets repeated regions build up one number without
/// start/stop bookkeeping at every exit path:
///
///   double solve_ms = 0.0;
///   for (...) { ScopedTimerMs t(solve_ms); solver.solve(model); }
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(double& total_ms) noexcept : total_ms_(total_ms) {}
  ~ScopedTimerMs() { total_ms_ += timer_.elapsed_ms(); }

  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  double& total_ms_;
  Timer timer_;
};

}  // namespace mecar::util
