// Chunked bump allocator for per-slot transient state.
//
// The sharded slot loop (sim/shard.h) rebuilds small scratch structures —
// merged pending lists, per-station activation lists, waterfill demand
// vectors — every slot. Allocating them from the general heap costs one
// malloc/free pair per structure per slot; at 10^3+ stations that dominates
// a steady-state slot whose real work is O(changes). An Arena instead hands
// out pointers by bumping a cursor through recycled chunks: allocation is a
// pointer increment, deallocation is a no-op, and `reset()` rewinds the
// cursor while keeping every chunk for the next slot. After the first few
// slots the arena reaches its high-water mark and per-slot allocation does
// not touch the heap at all.
//
// Contract:
//   * allocate() returns maximally-aligned storage (like malloc).
//   * reset() invalidates every outstanding pointer but keeps capacity.
//   * Trivially-destructible payloads only — reset() runs no destructors.
//     ArenaVector enforces this via static_assert.
//   * Not thread-safe; each shard pass owns its own arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace mecar::util {

class Arena {
 public:
  /// `chunk_bytes` is the granularity the arena grows by; oversized
  /// requests get a dedicated chunk of exactly their size.
  explicit Arena(std::size_t chunk_bytes = 64 * 1024)
      : chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` — a power of two no
  /// stricter than alignof(std::max_align_t), which is what chunk storage
  /// from operator new[] guarantees. Never returns nullptr; zero-byte
  /// requests return a valid one-past pointer.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  template <typename T>
  T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::reset runs no destructors");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds the cursor to the first chunk, keeping all capacity. Every
  /// pointer previously handed out becomes invalid.
  void reset() noexcept;

  /// Releases all chunks (capacity drops to zero).
  void release() noexcept;

  /// Total bytes across retained chunks (the high-water capacity).
  std::size_t capacity_bytes() const noexcept;
  /// Bytes handed out since the last reset (including alignment padding).
  std::size_t used_bytes() const noexcept { return used_; }
  /// Chunks allocated from the heap since construction or release();
  /// stable across reset() once the high-water mark is reached.
  std::size_t num_chunks() const noexcept { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocate_slow(std::size_t bytes, std::size_t align);

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // chunk the cursor lives in
  std::size_t offset_ = 0;   // cursor within the current chunk
  std::size_t used_ = 0;
};

inline void* Arena::allocate(std::size_t bytes, std::size_t align) {
  // Chunk bases are max_align_t-aligned, so aligning the offset aligns the
  // pointer for every align we accept.
  if (!chunks_.empty()) {
    const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(
        chunks_[current_].data.get());
    const std::size_t aligned = (offset_ + (align - 1)) & ~(align - 1);
    if (aligned + bytes <= chunks_[current_].size) {
      offset_ = aligned + bytes;
      used_ += bytes;
      return reinterpret_cast<void*>(base + aligned);
    }
  }
  return allocate_slow(bytes, align);
}

/// std::allocator-compatible adapter so standard containers can draw from
/// an Arena. Deallocation is a no-op; the arena's reset()/lifetime governs
/// the storage, so any container using it must be destroyed (or cleared and
/// shrunk) before the arena resets.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) { return arena_->allocate_array<T>(n); }
  void deallocate(T*, std::size_t) noexcept {}

  Arena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const noexcept {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

/// Vector of trivially-destructible T backed by an Arena.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace mecar::util
