// Shared-memory parallel execution substrate.
//
// Every figure sweep in bench/ and the per-arm evaluation sweeps of the
// learning experiments are embarrassingly parallel: N independent trials,
// each fully determined by its index (seed). `ThreadPool` runs such
// workloads across cores while keeping the output bit-identical to the
// serial path:
//
//   * tasks are addressed by index, and `parallel_map` stores result i at
//     slot i — the reduction order is the caller's, not the scheduler's;
//   * callers derive any randomness from the task index (one util::Rng per
//     task), never from shared state;
//   * with one thread (or MECAR_THREADS=1) everything runs inline on the
//     calling thread — the serial fallback is the parallel path, not a
//     second code path.
//
// Thread count resolution: explicit constructor argument, else the
// MECAR_THREADS environment variable, else std::thread::hardware_concurrency.
// The pool owns count-1 worker threads; the calling thread participates in
// every parallel region, so a pool of k uses exactly k cores.
//
// Exceptions thrown by task bodies are captured, the region drains without
// starting new indices, and the first exception is rethrown on the calling
// thread. Nested parallel regions (a task body calling parallel_for) run
// inline serially rather than deadlocking on the shared workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mecar::util {

/// Thread count the default pool resolves to: MECAR_THREADS when set to a
/// positive integer, otherwise std::thread::hardware_concurrency (>= 1).
int default_thread_count();

class ThreadPool {
 public:
  /// Creates a pool using `threads` cores (calling thread included);
  /// threads <= 0 resolves via default_thread_count().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism: worker threads + the participating caller.
  int num_threads() const noexcept { return num_threads_; }

  /// Enqueues an arbitrary task. The queue is bounded (a small multiple of
  /// the thread count); submit blocks when it is full. Exceptions escaping
  /// `task` terminate — prefer parallel_for/parallel_map, which propagate.
  void submit(std::function<void()> task);

  /// Runs body(0..n-1), distributing indices across the pool. Returns when
  /// every index completed; rethrows the first exception a body threw (once
  /// a body throws no further indices are started).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// parallel_for that collects return values: result[i] = body(i). The
  /// result vector is ordered by index, so any serial reduction over it is
  /// bit-identical to the serial loop.
  template <typename F>
  auto parallel_map(std::size_t n, F&& body)
      -> std::vector<decltype(body(std::size_t{0}))> {
    using R = decltype(body(std::size_t{0}));
    std::vector<R> results(n);
    parallel_for(n, [&](std::size_t i) { results[i] = body(i); });
    return results;
  }

 private:
  void worker_loop();
  bool pop_task(std::function<void()>& task);

  int num_threads_ = 1;
  std::size_t queue_bound_ = 0;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable queue_cv_;  // workers wait for tasks
  std::condition_variable space_cv_;  // submitters wait for space
  bool stop_ = false;
};

/// Process-wide pool sized by default_thread_count(); constructed on first
/// use. Benches and learners share it so the MECAR_THREADS override governs
/// the whole process.
ThreadPool& default_pool();

/// parallel_for on the default pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

/// parallel_map on the default pool.
template <typename F>
auto parallel_map(std::size_t n, F&& body)
    -> std::vector<decltype(body(std::size_t{0}))> {
  return default_pool().parallel_map(n, std::forward<F>(body));
}

}  // namespace mecar::util
