#include "util/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace mecar::util {

namespace {

// Type tags of the payload encoding. Values are part of the on-disk
// format — append, never renumber.
enum Tag : std::uint8_t {
  kTagU8 = 0x01,
  kTagU32 = 0x02,
  kTagU64 = 0x03,
  kTagI32 = 0x04,
  kTagI64 = 0x05,
  kTagF64 = 0x06,
  kTagBool = 0x07,
  kTagStr = 0x08,
  kTagBytes = 0x09,
};

const char* tag_name(std::uint8_t tag) {
  switch (tag) {
    case kTagU8: return "u8";
    case kTagU32: return "u32";
    case kTagU64: return "u64";
    case kTagI32: return "i32";
    case kTagI64: return "i64";
    case kTagF64: return "f64";
    case kTagBool: return "bool";
    case kTagStr: return "str";
    case kTagBytes: return "bytes";
    default: return "unknown";
  }
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void SnapshotWriter::raw(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

void SnapshotWriter::u8(std::uint8_t v) {
  buf_.push_back(kTagU8);
  buf_.push_back(v);
}

void SnapshotWriter::u32(std::uint32_t v) {
  buf_.push_back(kTagU32);
  put_u32(buf_, v);
}

void SnapshotWriter::u64(std::uint64_t v) {
  buf_.push_back(kTagU64);
  put_u64(buf_, v);
}

void SnapshotWriter::i32(std::int32_t v) {
  buf_.push_back(kTagI32);
  put_u32(buf_, static_cast<std::uint32_t>(v));
}

void SnapshotWriter::i64(std::int64_t v) {
  buf_.push_back(kTagI64);
  put_u64(buf_, static_cast<std::uint64_t>(v));
}

void SnapshotWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  buf_.push_back(kTagF64);
  put_u64(buf_, bits);
}

void SnapshotWriter::boolean(bool v) {
  buf_.push_back(kTagBool);
  buf_.push_back(v ? 1 : 0);
}

void SnapshotWriter::str(const std::string& v) {
  buf_.push_back(kTagStr);
  put_u64(buf_, v.size());
  raw(v.data(), v.size());
}

void SnapshotWriter::bytes(const std::vector<std::uint8_t>& v) {
  buf_.push_back(kTagBytes);
  put_u64(buf_, v.size());
  raw(v.data(), v.size());
}

std::vector<std::uint8_t> SnapshotWriter::finish(std::uint32_t magic,
                                                 std::uint32_t version) const {
  std::vector<std::uint8_t> out;
  out.reserve(16 + buf_.size() + 4);
  put_u32(out, magic);
  put_u32(out, version);
  put_u64(out, buf_.size());
  out.insert(out.end(), buf_.begin(), buf_.end());
  put_u32(out, crc32(buf_.data(), buf_.size()));
  return out;
}

SnapshotReader::SnapshotReader(const std::uint8_t* data, std::size_t begin,
                               std::size_t end)
    : data_(data), pos_(begin), end_(end) {}

SnapshotReader::SnapshotReader(const std::vector<std::uint8_t>& framed,
                               std::uint32_t magic, std::uint32_t version) {
  if (framed.size() < 20) {
    throw SnapshotParseError(
        framed.size(), "snapshot truncated: " + std::to_string(framed.size()) +
                           " bytes, header needs 16 + trailing crc32");
  }
  const std::uint32_t got_magic = get_u32(framed.data());
  if (got_magic != magic) {
    throw SnapshotParseError(0, "snapshot magic mismatch: got 0x" +
                                    [&] {
                                      char buf[16];
                                      std::snprintf(buf, sizeof(buf), "%08x",
                                                    got_magic);
                                      return std::string(buf);
                                    }() +
                                    ", want 0x" + [&] {
                                      char buf[16];
                                      std::snprintf(buf, sizeof(buf), "%08x",
                                                    magic);
                                      return std::string(buf);
                                    }());
  }
  const std::uint32_t got_version = get_u32(framed.data() + 4);
  if (got_version != version) {
    throw SnapshotParseError(
        4, "snapshot version " + std::to_string(got_version) +
               " unsupported (this build reads version " +
               std::to_string(version) + ")");
  }
  const std::uint64_t len = get_u64(framed.data() + 8);
  if (len != framed.size() - 20) {
    throw SnapshotParseError(
        8, "snapshot payload length " + std::to_string(len) +
               " inconsistent with buffer of " +
               std::to_string(framed.size()) + " bytes");
  }
  const std::size_t crc_offset = 16 + static_cast<std::size_t>(len);
  const std::uint32_t want_crc = get_u32(framed.data() + crc_offset);
  const std::uint32_t got_crc =
      crc32(framed.data() + 16, static_cast<std::size_t>(len));
  if (want_crc != got_crc) {
    throw SnapshotParseError(crc_offset,
                             "snapshot crc32 mismatch: payload corrupt");
  }
  data_ = framed.data();
  pos_ = 16;
  end_ = crc_offset;
}

SnapshotReader SnapshotReader::unframed(
    const std::vector<std::uint8_t>& payload) {
  return SnapshotReader(payload.data(), 0, payload.size());
}

void SnapshotReader::expect_tag(std::uint8_t tag, const char* what) {
  if (pos_ >= end_) {
    throw SnapshotParseError(pos_, std::string("snapshot ends where a ") +
                                       what + " value was expected");
  }
  const std::uint8_t got = data_[pos_];
  if (got != tag) {
    throw SnapshotParseError(pos_, std::string("snapshot type mismatch: ") +
                                       "expected " + what + ", found " +
                                       tag_name(got) + " tag");
  }
  ++pos_;
}

const std::uint8_t* SnapshotReader::take(std::size_t size, const char* what) {
  if (end_ - pos_ < size) {
    throw SnapshotParseError(pos_, std::string("snapshot truncated inside a ") +
                                       what + " value");
  }
  const std::uint8_t* p = data_ + pos_;
  pos_ += size;
  return p;
}

void SnapshotReader::check_count(std::uint64_t n) const {
  // Every element costs at least a tag byte, so a count beyond the
  // remaining payload is corruption — reject before reserve() can blow up.
  if (n > end_ - pos_) {
    throw SnapshotParseError(pos_, "snapshot element count " +
                                       std::to_string(n) +
                                       " exceeds remaining payload");
  }
}

std::uint8_t SnapshotReader::u8() {
  expect_tag(kTagU8, "u8");
  return *take(1, "u8");
}

std::uint32_t SnapshotReader::u32() {
  expect_tag(kTagU32, "u32");
  return get_u32(take(4, "u32"));
}

std::uint64_t SnapshotReader::u64() {
  expect_tag(kTagU64, "u64");
  return get_u64(take(8, "u64"));
}

std::int32_t SnapshotReader::i32() {
  expect_tag(kTagI32, "i32");
  return static_cast<std::int32_t>(get_u32(take(4, "i32")));
}

std::int64_t SnapshotReader::i64() {
  expect_tag(kTagI64, "i64");
  return static_cast<std::int64_t>(get_u64(take(8, "i64")));
}

double SnapshotReader::f64() {
  expect_tag(kTagF64, "f64");
  const std::uint64_t bits = get_u64(take(8, "f64"));
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool SnapshotReader::boolean() {
  expect_tag(kTagBool, "bool");
  const std::uint8_t v = *take(1, "bool");
  if (v > 1) {
    throw SnapshotParseError(pos_ - 1, "snapshot bool byte is " +
                                           std::to_string(v) +
                                           ", not 0 or 1");
  }
  return v != 0;
}

std::string SnapshotReader::str() {
  expect_tag(kTagStr, "str");
  const std::uint64_t len = get_u64(take(8, "str length"));
  if (len > end_ - pos_) {
    throw SnapshotParseError(pos_, "snapshot str length " +
                                       std::to_string(len) +
                                       " exceeds remaining payload");
  }
  const std::uint8_t* p = take(static_cast<std::size_t>(len), "str");
  return std::string(reinterpret_cast<const char*>(p),
                     static_cast<std::size_t>(len));
}

std::vector<std::uint8_t> SnapshotReader::bytes() {
  expect_tag(kTagBytes, "bytes");
  const std::uint64_t len = get_u64(take(8, "bytes length"));
  if (len > end_ - pos_) {
    throw SnapshotParseError(pos_, "snapshot bytes length " +
                                       std::to_string(len) +
                                       " exceeds remaining payload");
  }
  const std::uint8_t* p = take(static_cast<std::size_t>(len), "bytes");
  return std::vector<std::uint8_t>(p, p + len);
}

void SnapshotReader::expect_end() const {
  if (pos_ != end_) {
    throw SnapshotParseError(pos_, "snapshot has " +
                                       std::to_string(end_ - pos_) +
                                       " unread trailing bytes");
  }
}

void atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& data) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const std::string tmp = path + ".tmp";

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("atomic_write_file: cannot create '" + tmp + "'");
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw_errno("atomic_write_file: write to '" + tmp + "' failed");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw_errno("atomic_write_file: fsync of '" + tmp + "' failed");
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("atomic_write_file: close of '" + tmp + "' failed");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("atomic_write_file: rename to '" + path + "' failed");
  }
  // Persist the rename itself; without this a crash can forget the file.
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_errno("read_file_bytes: cannot open '" + path + "'");
  std::vector<std::uint8_t> data;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("read_file_bytes: read from '" + path + "' failed");
    }
    if (n == 0) break;
    data.insert(data.end(), buf, buf + n);
  }
  ::close(fd);
  return data;
}

}  // namespace mecar::util
