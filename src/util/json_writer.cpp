#include "util/json_writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace mecar::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  // Shortest precision that round-trips.
  char buf[40];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent < 0 ? 0 : indent) {}

void JsonWriter::raw(std::string_view text) { os_ << text; }

void JsonWriter::newline_indent() {
  if (indent_ == 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i) {
    os_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) return;
  Level& top = stack_.back();
  if (top.ctx == Ctx::kObject) {
    if (!top.key_open) {
      throw std::logic_error("JsonWriter: value inside object requires key()");
    }
    top.key_open = false;
  } else {
    if (top.any) raw(",");
    newline_indent();
    top.any = true;
  }
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty() || stack_.back().ctx != Ctx::kObject) {
    throw std::logic_error("JsonWriter: key() outside an object");
  }
  Level& top = stack_.back();
  if (top.key_open) {
    throw std::logic_error("JsonWriter: key() while a value is pending");
  }
  if (top.any) raw(",");
  newline_indent();
  top.any = true;
  top.key_open = true;
  os_ << '"' << json_escape(name) << "\":";
  if (indent_ > 0) os_ << ' ';
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  raw("{");
  stack_.push_back({Ctx::kObject});
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  raw("[");
  stack_.push_back({Ctx::kArray});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back().ctx != Ctx::kObject) {
    throw std::logic_error("JsonWriter: end_object() without begin_object()");
  }
  if (stack_.back().key_open) {
    throw std::logic_error("JsonWriter: end_object() with a dangling key");
  }
  const bool any = stack_.back().any;
  stack_.pop_back();
  if (any) newline_indent();
  raw("}");
  if (stack_.empty()) {
    done_ = true;
    os_ << '\n';
  }
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back().ctx != Ctx::kArray) {
    throw std::logic_error("JsonWriter: end_array() without begin_array()");
  }
  const bool any = stack_.back().any;
  stack_.pop_back();
  if (any) newline_indent();
  raw("]");
  if (stack_.empty()) {
    done_ = true;
    os_ << '\n';
  }
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  raw(json_number(v));
  if (stack_.empty()) {
    done_ = true;
    os_ << '\n';
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) {
    done_ = true;
    os_ << '\n';
  }
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  raw(v ? "true" : "false");
  if (stack_.empty()) {
    done_ = true;
    os_ << '\n';
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  if (stack_.empty()) {
    done_ = true;
    os_ << '\n';
  }
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  raw("null");
  if (stack_.empty()) {
    done_ = true;
    os_ << '\n';
  }
  return *this;
}

}  // namespace mecar::util
