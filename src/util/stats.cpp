#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/snapshot.h"

namespace mecar::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  sum_ += other.sum_;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::save(SnapshotWriter& w) const {
  w.u64(static_cast<std::uint64_t>(n_));
  w.f64(mean_);
  w.f64(m2_);
  w.f64(sum_);
  w.f64(min_);
  w.f64(max_);
}

void RunningStats::load(SnapshotReader& r) {
  n_ = static_cast<std::size_t>(r.u64());
  mean_ = r.f64();
  m2_ = r.f64();
  sum_ = r.f64();
  min_ = r.f64();
  max_ = r.f64();
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(variance());
}

double quantile(std::span<const double> sorted_samples, double q) {
  if (sorted_samples.empty()) {
    throw std::invalid_argument("quantile: empty sample");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile: q outside [0,1]");
  }
  const double pos = q * static_cast<double>(sorted_samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted_samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_samples[lo] * (1.0 - frac) + sorted_samples[hi] * frac;
}

double quantile_unsorted(std::span<const double> samples, double q) {
  std::vector<double> copy(samples.begin(), samples.end());
  std::sort(copy.begin(), copy.end());
  return quantile(copy, q);
}

double percentile(std::span<const double> sorted_samples, double pct) {
  if (pct < 0.0 || pct > 100.0) {
    throw std::invalid_argument("percentile: pct outside [0,100]");
  }
  return quantile(sorted_samples, pct / 100.0);
}

double percentile_unsorted(std::span<const double> samples, double pct) {
  std::vector<double> copy(samples.begin(), samples.end());
  std::sort(copy.begin(), copy.end());
  return percentile(copy, pct);
}

PercentileSummary percentile_summary(std::span<const double> samples) {
  std::vector<double> copy(samples.begin(), samples.end());
  std::sort(copy.begin(), copy.end());
  PercentileSummary out;
  out.p50 = percentile(copy, 50.0);
  out.p95 = percentile(copy, 95.0);
  out.p99 = percentile(copy, 99.0);
  return out;
}

double histogram_percentile(std::span<const double> boundaries,
                            std::span<const std::uint64_t> counts,
                            double pct) {
  if (pct < 0.0 || pct > 100.0) {
    throw std::invalid_argument("histogram_percentile: pct outside [0,100]");
  }
  if (boundaries.empty() || counts.size() != boundaries.size() + 1) {
    throw std::invalid_argument(
        "histogram_percentile: counts must have boundaries.size()+1 buckets");
  }
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) {
    throw std::invalid_argument("histogram_percentile: empty histogram");
  }
  const double rank = pct / 100.0 * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double in_bucket = static_cast<double>(counts[b]);
    if (cumulative + in_bucket < rank || in_bucket == 0.0) {
      cumulative += in_bucket;
      continue;
    }
    if (b == boundaries.size()) {
      // Overflow bucket has no upper edge; the best bounded estimate is
      // the last boundary.
      return boundaries.back();
    }
    const double lower = b == 0 ? std::min(0.0, boundaries[0])
                                : boundaries[b - 1];
    const double upper = boundaries[b];
    const double frac = (rank - cumulative) / in_bucket;
    return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
  }
  return boundaries.back();
}

double mean(std::span<const double> samples) noexcept {
  if (samples.empty()) return 0.0;
  return sum(samples) / static_cast<double>(samples.size());
}

double sum(std::span<const double> samples) noexcept {
  double total = 0.0;
  for (double x : samples) total += x;
  return total;
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_line: need >= 2 paired samples");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    throw std::invalid_argument("fit_line: degenerate x values");
  }
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  return fit;
}

}  // namespace mecar::util
