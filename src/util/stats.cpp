#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mecar::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  sum_ += other.sum_;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(variance());
}

double quantile(std::span<const double> sorted_samples, double q) {
  if (sorted_samples.empty()) {
    throw std::invalid_argument("quantile: empty sample");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile: q outside [0,1]");
  }
  const double pos = q * static_cast<double>(sorted_samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted_samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_samples[lo] * (1.0 - frac) + sorted_samples[hi] * frac;
}

double quantile_unsorted(std::span<const double> samples, double q) {
  std::vector<double> copy(samples.begin(), samples.end());
  std::sort(copy.begin(), copy.end());
  return quantile(copy, q);
}

double mean(std::span<const double> samples) noexcept {
  if (samples.empty()) return 0.0;
  return sum(samples) / static_cast<double>(samples.size());
}

double sum(std::span<const double> samples) noexcept {
  double total = 0.0;
  for (double x : samples) total += x;
  return total;
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_line: need >= 2 paired samples");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    throw std::invalid_argument("fit_line: degenerate x values");
  }
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  return fit;
}

}  // namespace mecar::util
