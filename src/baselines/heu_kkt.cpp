#include "baselines/heu_kkt.h"

#include <algorithm>
#include <stdexcept>

#include "core/slot_lp.h"

namespace mecar::baselines {

core::OffloadResult run_heu_kkt(const mec::Topology& topo,
                                const std::vector<mec::ARRequest>& requests,
                                const std::vector<std::size_t>& realized,
                                const core::AlgorithmParams& params) {
  if (realized.size() != requests.size()) {
    throw std::invalid_argument("run_heu_kkt: realized size mismatch");
  }
  core::OffloadResult result;
  result.outcomes.resize(requests.size());
  for (std::size_t j = 0; j < requests.size(); ++j) {
    result.outcomes[j].request_id = requests[j].id;
  }

  // Stage 1 (uncapacitated): group requests at their home stations.
  std::vector<std::vector<int>> home(
      static_cast<std::size_t>(topo.num_stations()));
  for (std::size_t j = 0; j < requests.size(); ++j) {
    home[static_cast<std::size_t>(requests[j].home_station)].push_back(
        static_cast<int>(j));
  }

  core::StationLoad load(topo);
  std::vector<int> overflow;

  auto admit = [&](int j, int bs) {
    const mec::ARRequest& req = requests[static_cast<std::size_t>(j)];
    const std::size_t level = realized[static_cast<std::size_t>(j)];
    const double rate = req.demand.level(level).rate;
    const double demand_mhz = rate * params.c_unit;
    core::RequestOutcome& outcome =
        result.outcomes[static_cast<std::size_t>(j)];
    outcome.admitted = true;
    outcome.station = bs;
    outcome.realized_level = level;
    outcome.realized_rate = rate;
    outcome.latency_ms = mec::placement_latency_ms(topo, req, bs);
    outcome.task_stations.assign(req.tasks.size(), bs);
    const double remaining = load.remaining_mhz(bs);
    load.occupy(bs, demand_mhz);
    if (demand_mhz <= remaining + 1e-9) {
      outcome.rewarded = true;
      outcome.reward = req.demand.level(level).reward;
    }
  };

  // Stage 2: per-station KKT water-filling — smallest expected demand
  // first (the allocation that satisfies the KKT conditions of the
  // latency-minimization program under a capacity constraint).
  for (int bs = 0; bs < topo.num_stations(); ++bs) {
    auto& local = home[static_cast<std::size_t>(bs)];
    std::sort(local.begin(), local.end(), [&](int a, int b) {
      const double da =
          requests[static_cast<std::size_t>(a)].demand.expected_rate();
      const double db =
          requests[static_cast<std::size_t>(b)].demand.expected_rate();
      if (da != db) return da < db;
      return a < b;
    });
    double committed = 0.0;
    for (int j : local) {
      const mec::ARRequest& req = requests[static_cast<std::size_t>(j)];
      const double expected_mhz = req.demand.expected_rate() * params.c_unit;
      if (committed + expected_mhz <= topo.station(bs).capacity_mhz &&
          mec::placement_latency_ms(topo, req, bs) <= req.latency_budget_ms) {
        committed += expected_mhz;
        admit(j, bs);
      } else {
        overflow.push_back(j);
      }
    }
  }

  // Stage 3: offload overflow cooperatively — the most spare
  // latency-feasible station among the home NEIGHBOURHOOD (Ma et al. share
  // load between cooperating neighbour edges), else the remote cloud (no
  // edge reward).
  core::AlgorithmParams neighbourhood = params;
  neighbourhood.max_candidate_stations = 6;
  for (int j : overflow) {
    const mec::ARRequest& req = requests[static_cast<std::size_t>(j)];
    const double expected_mhz = req.demand.expected_rate() * params.c_unit;
    int best_bs = -1;
    double best_spare = 0.0;
    for (const auto& cand : core::candidate_stations(topo, req, neighbourhood)) {
      const double spare = load.remaining_mhz(cand.station);
      if (spare < expected_mhz) continue;
      if (best_bs < 0 || spare > best_spare) {
        best_bs = cand.station;
        best_spare = spare;
      }
    }
    if (best_bs >= 0) admit(j, best_bs);
    // else: remote cloud — outside the MEC network, no reward collected.
  }

  return result;
}

}  // namespace mecar::baselines
