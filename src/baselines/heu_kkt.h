// Baseline HeuKKT (Ma et al. [21], as described in section VI-A):
// "first removes the constraints of resource capacities to find the
// workload offloaded to the remote cloud. It then finds the optimal
// scheduling solutions in edge servers fitting Karush-Kuhn-Tucker (KKT)
// conditions with resource constraints."
//
// Implementation: every request is first pinned to its home station
// (uncapacitated optimum — the home station minimizes latency). Per station
// a KKT water-filling pass admits home requests smallest-expected-demand
// first up to capacity; the overflow workload is offloaded — first to the
// latency-feasible station with the most spare capacity, and, failing
// that, to the remote cloud, where the MEC provider collects no edge
// reward (the request leaves the MEC network).
#pragma once

#include "core/types.h"

namespace mecar::baselines {

core::OffloadResult run_heu_kkt(const mec::Topology& topo,
                                const std::vector<mec::ARRequest>& requests,
                                const std::vector<std::size_t>& realized,
                                const core::AlgorithmParams& params);

}  // namespace mecar::baselines
