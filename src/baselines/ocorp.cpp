#include "baselines/ocorp.h"

#include <algorithm>
#include <stdexcept>

#include "core/slot_lp.h"

namespace mecar::baselines {

/// OCORP is a cluster scheduler ported to the MEC setting: it packs the
/// few servers closest to the user and never relocates across the backhaul
/// ("they utilize a local strategy instead of considering the global
/// optimal solution", section VI-B).
constexpr int kLocalCandidates = 3;

core::OffloadResult run_ocorp(const mec::Topology& topo,
                              const std::vector<mec::ARRequest>& requests,
                              const std::vector<std::size_t>& realized,
                              const core::AlgorithmParams& params) {
  if (realized.size() != requests.size()) {
    throw std::invalid_argument("run_ocorp: realized size mismatch");
  }
  core::OffloadResult result;
  result.outcomes.resize(requests.size());
  for (std::size_t j = 0; j < requests.size(); ++j) {
    result.outcomes[j].request_id = requests[j].id;
  }

  // Sort by arrival time, then remaining to-be-processed data (expected
  // rate x stream duration as the job-size proxy).
  std::vector<int> order(requests.size());
  for (std::size_t j = 0; j < requests.size(); ++j) {
    order[j] = static_cast<int>(j);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& ra = requests[static_cast<std::size_t>(a)];
    const auto& rb = requests[static_cast<std::size_t>(b)];
    if (ra.arrival_slot != rb.arrival_slot) {
      return ra.arrival_slot < rb.arrival_slot;
    }
    const double da = ra.demand.expected_rate() * ra.duration_slots;
    const double db = rb.demand.expected_rate() * rb.duration_slots;
    if (da != db) return da < db;
    return a < b;
  });

  // Like Greedy, OCORP only has a point estimate of the unknown stream
  // rate; it reserves the peak rate to keep its latency SLA (coarse-grained
  // over-provisioning, section VI-B).
  core::StationLoad reserved(topo);
  for (int j : order) {
    const mec::ARRequest& req = requests[static_cast<std::size_t>(j)];
    const double reserve_mhz = req.demand.max_rate() * params.c_unit;
    // Best fit among the nearest feasible stations: OCORP packs servers
    // (smallest residual that fits) but, being a cluster scheduler, stays
    // latency-greedy — it only looks at the closest few candidates
    // ("they greedily select locations that achieve the lowest latencies").
    int best_bs = -1;
    double best_resid = 0.0;
    double best_latency = 0.0;
    core::AlgorithmParams near = params;
    near.max_candidate_stations = kLocalCandidates;
    for (const auto& cand : core::candidate_stations(topo, req, near)) {
      const double resid = reserved.remaining_mhz(cand.station);
      if (resid < reserve_mhz) continue;
      if (best_bs < 0 || resid < best_resid ||
          (resid == best_resid && cand.latency_ms < best_latency)) {
        best_bs = cand.station;
        best_resid = resid;
        best_latency = cand.latency_ms;
      }
    }
    if (best_bs < 0) continue;

    reserved.occupy(best_bs, reserve_mhz);
    const std::size_t level = realized[static_cast<std::size_t>(j)];
    core::RequestOutcome& outcome =
        result.outcomes[static_cast<std::size_t>(j)];
    outcome.admitted = true;
    outcome.station = best_bs;
    outcome.realized_level = level;
    outcome.realized_rate = req.demand.level(level).rate;
    outcome.latency_ms = best_latency;
    outcome.task_stations.assign(req.tasks.size(), best_bs);
    // The peak reservation always covers the realized rate.
    outcome.rewarded = true;
    outcome.reward = req.demand.level(level).reward;
  }
  return result;
}

}  // namespace mecar::baselines
