// Baseline OCORP (Liu et al. [20], as described in section VI-A):
// "in each time slot, OCORP sorts the unfinished jobs according to arriving
// time and remaining to-be-processed data, then assigns tasks to edge
// servers based on a best-fit algorithm."
//
// Offline form: a single pass over requests in (arrival, expected-demand)
// order; each request goes to the BEST-FIT station — the latency-feasible
// station with the smallest residual capacity that still holds its expected
// demand (classic best-fit packing). Reward-blind and uncertainty-blind.
#pragma once

#include "core/types.h"

namespace mecar::baselines {

core::OffloadResult run_ocorp(const mec::Topology& topo,
                              const std::vector<mec::ARRequest>& requests,
                              const std::vector<std::size_t>& realized,
                              const core::AlgorithmParams& params);

}  // namespace mecar::baselines
