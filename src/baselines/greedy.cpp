#include "baselines/greedy.h"

#include <algorithm>
#include <stdexcept>

#include "core/slot_lp.h"

namespace mecar::baselines {

core::OffloadResult run_greedy(const mec::Topology& topo,
                               const std::vector<mec::ARRequest>& requests,
                               const std::vector<std::size_t>& realized,
                               const core::AlgorithmParams& params) {
  if (realized.size() != requests.size()) {
    throw std::invalid_argument("run_greedy: realized size mismatch");
  }
  core::OffloadResult result;
  result.outcomes.resize(requests.size());
  for (std::size_t j = 0; j < requests.size(); ++j) {
    result.outcomes[j].request_id = requests[j].id;
  }

  // Decreasing total execution time (weight * fastest station speed proxy).
  std::vector<int> order(requests.size());
  for (std::size_t j = 0; j < requests.size(); ++j) {
    order[j] = static_cast<int>(j);
  }
  // Execution time of a streaed pipeline scales with both the pipeline
  // weight and the data volume it must chew through.
  auto execution_time = [&](int j) {
    const auto& req = requests[static_cast<std::size_t>(j)];
    return req.total_proc_weight() * req.demand.expected_rate();
  };
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double ta = execution_time(a);
    const double tb = execution_time(b);
    if (ta != tb) return ta > tb;
    return a < b;
  });

  // Greedy knows neither the rate distribution nor the realized rate at
  // admission time; to honour the AR latency SLA it reserves the peak rate
  // of the request's service class (coarse-grained over-provisioning).
  core::StationLoad reserved(topo);
  for (int j : order) {
    const mec::ARRequest& req = requests[static_cast<std::size_t>(j)];
    const double reserve_mhz = req.demand.max_rate() * params.c_unit;
    // Latency-optimal station that can hold the reservation. Greedy is a
    // local strategy (section VI-B): it only considers the stations
    // nearest to the user.
    core::AlgorithmParams near = params;
    near.max_candidate_stations = 3;
    int best_bs = -1;
    double best_latency = 0.0;
    for (const auto& cand : core::candidate_stations(topo, req, near)) {
      if (reserved.remaining_mhz(cand.station) < reserve_mhz) continue;
      if (best_bs < 0 || cand.latency_ms < best_latency) {
        best_bs = cand.station;
        best_latency = cand.latency_ms;
      }
    }
    if (best_bs < 0) continue;

    reserved.occupy(best_bs, reserve_mhz);
    const std::size_t level = realized[static_cast<std::size_t>(j)];
    core::RequestOutcome& outcome =
        result.outcomes[static_cast<std::size_t>(j)];
    outcome.admitted = true;
    outcome.station = best_bs;
    outcome.realized_level = level;
    outcome.realized_rate = req.demand.level(level).rate;
    outcome.latency_ms = best_latency;
    outcome.task_stations.assign(req.tasks.size(), best_bs);
    // The peak reservation always covers the realized rate.
    outcome.rewarded = true;
    outcome.reward = req.demand.level(level).reward;
  }
  return result;
}

}  // namespace mecar::baselines
