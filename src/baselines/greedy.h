// Baseline Greedy (Yang et al. [32], as described in section VI-A):
// "sorts tasks in a decreasing order according to their execution times,
// and assigns the task to the optimal edge server one-by-one."
//
// Interpretation for the request model of this paper: requests are ordered
// by decreasing total execution time (pipeline weight x best processing
// speed) and each is assigned to the station with the minimum placement
// latency that can still hold its expected demand. Greedy is latency-greedy
// and reward-blind, and admits against expected demand with no uncertainty
// headroom — exactly the "coarse-grained" behaviour the paper contrasts
// against.
#pragma once

#include "core/types.h"

namespace mecar::baselines {

core::OffloadResult run_greedy(const mec::Topology& topo,
                               const std::vector<mec::ARRequest>& requests,
                               const std::vector<std::size_t>& realized,
                               const core::AlgorithmParams& params);

}  // namespace mecar::baselines
