// Service-quality study (extension): beyond total reward, how do the
// online policies compare on tail latency, service fairness (Jain index
// over per-stream service ratios), and network utilization?
//
// A single axis-less scenario with collect_detail on (see
// scenarios/quality_metrics.scenario); the transposed policy table comes
// straight from the report.
//
//   ./bench/quality_metrics [--seeds=3] [--requests=250]
#include <iostream>
#include <string>

#include "exp/runner.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);
  const int num_requests = static_cast<int>(cli.get_int_or("requests", 250));

  exp::ScenarioSpec spec;
  spec.name = "quality_metrics";
  spec.axis = exp::SweepAxis::kNone;
  spec.horizon = 600;
  spec.base.num_requests = num_requests;
  spec.collect_detail = true;
  spec.policies = {{"DynamicRR", "DynamicRR"},
                   {"online:Greedy", "Greedy"},
                   {"online:OCORP", "OCORP"},
                   {"online:HeuKKT", "HeuKKT"}};
  spec.metrics = {"reward",   "latency_p50", "latency_p95",
                  "fairness", "mean_util",   "peak_util"};

  exp::Runner runner(std::move(spec));
  runner.set_seeds(static_cast<int>(cli.get_int_or("seeds", 3)));
  const exp::Report report = runner.run();

  report.print_policy_table(
      std::cout,
      "service quality at |R| = " + std::to_string(num_requests) +
          " over a 30 s horizon",
      "policy",
      {{"reward", "reward ($)", 1},
       {"latency_p50", "p50 lat (ms)", 1},
       {"latency_p95", "p95 lat (ms)", 1},
       {"fairness", "fairness (Jain)", 3},
       {"mean_util", "mean util", 3},
       {"peak_util", "peak util", 3}});
  std::cout << "\nreward-aware admission should not cost tail latency or "
               "fairness: DynamicRR's p95 and Jain index stay comparable to "
               "the reservation baselines while its reward leads\n";
  return 0;
}
