// Service-quality study (extension): beyond total reward, how do the
// online policies compare on tail latency, service fairness (Jain index
// over per-stream service ratios), and network utilization?
//
//   ./bench/quality_metrics [--seeds=3] [--requests=250]
#include <iostream>

#include "bench/bench_util.h"
#include "sim/dynamic_rr.h"
#include "sim/metrics.h"
#include "sim/online_baselines.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int_or("seeds", 3));
  const int num_requests = static_cast<int>(cli.get_int_or("requests", 250));
  const int horizon = 600;

  util::Table table({"policy", "reward ($)", "p50 lat (ms)", "p95 lat (ms)",
                     "fairness (Jain)", "mean util", "peak util"});

  struct Acc {
    util::RunningStats reward, p50, p95, fair, mean_util, peak_util;
  };
  auto run_policy = [&](const std::string& name, auto make_policy) {
    Acc acc;
    for (unsigned seed : benchx::bench_seeds(seeds)) {
      benchx::InstanceConfig config;
      config.num_requests = num_requests;
      config.horizon_slots = horizon;
      const auto inst = benchx::make_instance(seed, config);
      sim::OnlineParams params;
      params.horizon_slots = horizon;
      params.collect_detail = true;
      auto policy = make_policy(inst.topo, seed);
      sim::OnlineSimulator simulator(inst.topo, inst.requests, inst.realized,
                                     params);
      const auto m = simulator.run(*policy);
      const auto s = sim::summarize(m);
      acc.reward.add(m.total_reward);
      acc.p50.add(s.latency_p50_ms);
      acc.p95.add(s.latency_p95_ms);
      acc.fair.add(s.service_fairness);
      acc.mean_util.add(s.mean_utilization);
      acc.peak_util.add(s.peak_utilization);
    }
    table.add_row({name, util::format_double(acc.reward.mean(), 1),
                   util::format_double(acc.p50.mean(), 1),
                   util::format_double(acc.p95.mean(), 1),
                   util::format_double(acc.fair.mean(), 3),
                   util::format_double(acc.mean_util.mean(), 3),
                   util::format_double(acc.peak_util.mean(), 3)});
  };

  run_policy("DynamicRR", [&](const mec::Topology& topo, unsigned seed) {
    return std::make_unique<sim::DynamicRrPolicy>(
        topo, core::AlgorithmParams{}, sim::DynamicRrParams{},
        util::Rng(seed + 1));
  });
  run_policy("Greedy", [&](const mec::Topology& topo, unsigned) {
    return std::make_unique<sim::GreedyOnlinePolicy>(topo,
                                                     core::AlgorithmParams{});
  });
  run_policy("OCORP", [&](const mec::Topology& topo, unsigned) {
    return std::make_unique<sim::OcorpOnlinePolicy>(topo,
                                                    core::AlgorithmParams{});
  });
  run_policy("HeuKKT", [&](const mec::Topology& topo, unsigned) {
    return std::make_unique<sim::HeuKktOnlinePolicy>(topo,
                                                     core::AlgorithmParams{});
  });

  table.print(std::cout, "service quality at |R| = " +
                             std::to_string(num_requests) +
                             " over a 30 s horizon");
  std::cout << "\nreward-aware admission should not cost tail latency or "
               "fairness: DynamicRR's p95 and Jain index stay comparable to "
               "the reservation baselines while its reward leads\n";
  return 0;
}
