// Ablation studies for the design choices documented in DESIGN.md 3b:
//   A1  Appro rounding divisor (paper's 4 vs alternatives) and backfill
//   A2  reward model: demand-independent (paper) vs proportional
//   A3  user-attachment skew: uniform vs Zipf hotspots
//   A4  DynamicRR arm-selection rule: successive elimination vs fixed arms
//       at the range endpoints (learning value)
//   A5  DynamicRR learner ablation (UCB1, epsilon-greedy, Thompson, zooming)
//   A6  backhaul bandwidth extension (bandwidth-blind vs -aware Appro)
//
// Every block is a small axis-less scenario over the engine; the engine
// fans each block's seeds out over the thread pool and reduces in seed
// order, so the printed tables are bit-identical to the old serial loops.
//
//   ./bench/ablations [--seeds=3]
#include <iostream>
#include <utility>

#include "exp/runner.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace mecar;

exp::Report run_spec(exp::ScenarioSpec spec, int seeds) {
  exp::Runner runner(std::move(spec));
  runner.set_seeds(seeds);
  return runner.run();
}

/// The shared offline ablation base: |R| = 250, legacy seed offset 9.
exp::ScenarioSpec offline_base(const std::string& name) {
  exp::ScenarioSpec spec;
  spec.name = name;
  spec.axis = exp::SweepAxis::kNone;
  spec.base.num_requests = 250;
  spec.policy_seed_offset = 9;
  return spec;
}

/// The shared online ablation base: |R| = 300 on a 600-slot horizon.
exp::ScenarioSpec online_base(const std::string& name) {
  exp::ScenarioSpec spec;
  spec.name = name;
  spec.axis = exp::SweepAxis::kNone;
  spec.base.num_requests = 300;
  spec.horizon = 600;
  spec.policy_seed_offset = 9;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int_or("seeds", 3));

  // A1: rounding divisor x backfill.
  {
    util::Table table({"divisor", "backfill", "Appro reward ($)",
                       "admitted", "LP bound ($)"});
    for (double divisor : {1.0, 2.0, 4.0, 8.0}) {
      for (bool backfill : {false, true}) {
        exp::ScenarioSpec spec = offline_base("ablation_a1");
        spec.alg.rounding_divisor = divisor;
        spec.alg.backfill = backfill;
        spec.policies = {{"Appro", "Appro"}};
        spec.metrics = {"reward", "admitted", "lp_bound"};
        const exp::Report report = run_spec(std::move(spec), seeds);
        table.add_row(
            {util::format_double(divisor, 0), backfill ? "on" : "off",
             util::format_double(report.mean("reward", "Appro", 0), 1),
             util::format_double(report.mean("admitted", "Appro", 0), 1),
             util::format_double(report.mean("lp_bound", "Appro", 0), 1)});
      }
    }
    table.print(std::cout, "A1: Appro rounding divisor x backfill");
    std::cout << "note: Theorem 1's 1/8 guarantee is proven for divisor 4; "
                 "smaller divisors admit more but void the bound\n\n";
  }

  // A2: reward model.
  {
    util::Table table({"reward model", "Heu ($)", "Greedy ($)", "HeuKKT ($)",
                       "Heu/Greedy"});
    for (const auto model : {mec::RewardModel::kIndependent,
                             mec::RewardModel::kProportional}) {
      exp::ScenarioSpec spec = offline_base("ablation_a2");
      spec.base.reward_model = model;
      spec.policies = {{"Heu", "Heu"},
                       {"offline:Greedy", "Greedy"},
                       {"offline:HeuKKT", "HeuKKT"}};
      spec.metrics = {"reward"};
      const exp::Report report = run_spec(std::move(spec), seeds);
      const double heu = report.mean("reward", "Heu", 0);
      const double greedy = report.mean("reward", "Greedy", 0);
      table.add_row(
          {model == mec::RewardModel::kIndependent ? "independent (paper)"
                                                   : "proportional",
           util::format_double(heu, 1), util::format_double(greedy, 1),
           util::format_double(report.mean("reward", "HeuKKT", 0), 1),
           util::format_double(heu / greedy, 2)});
    }
    table.print(std::cout, "A2: demand-independent vs proportional rewards");
    std::cout << '\n';
  }

  // A3: attachment skew.
  {
    util::Table table(
        {"home skew", "Heu ($)", "Greedy ($)", "Heu/Greedy"});
    for (double skew : {0.0, 0.5, 1.0, 1.5}) {
      exp::ScenarioSpec spec = offline_base("ablation_a3");
      spec.base.home_skew = skew;
      spec.policies = {{"Heu", "Heu"}, {"offline:Greedy", "Greedy"}};
      spec.metrics = {"reward"};
      const exp::Report report = run_spec(std::move(spec), seeds);
      const double heu = report.mean("reward", "Heu", 0);
      const double greedy = report.mean("reward", "Greedy", 0);
      table.add_row({util::format_double(skew, 1),
                     util::format_double(heu, 1),
                     util::format_double(greedy, 1),
                     util::format_double(heu / greedy, 2)});
    }
    table.print(std::cout, "A3: global vs local strategies under hotspots");
    std::cout << '\n';
  }

  // A4: learning value — DynamicRR vs the fixed endpoints of its range.
  {
    exp::ScenarioSpec spec = online_base("ablation_a4");
    spec.policies = {{"DynamicRR", "DynamicRR (learned)"},
                     {"DynamicRR-fixed-min", "fixed min threshold"},
                     {"DynamicRR-fixed-max", "fixed max threshold"}};
    spec.metrics = {"reward", "drops"};
    const exp::Report report = run_spec(std::move(spec), seeds);
    util::Table table({"policy", "total reward ($)", "dropped"});
    for (const std::string& policy : report.policies()) {
      table.add_row(
          {policy,
           util::format_double(report.mean("reward", policy, 0), 1),
           util::format_double(report.mean("drops", policy, 0), 1)});
    }
    table.print(std::cout, "A4: learned threshold vs fixed endpoints");
    std::cout << '\n';
  }

  // A5: arm-selection rule — the paper's successive elimination against
  // UCB1, epsilon-greedy, Thompson sampling, and the zooming algorithm
  // (adaptive discretization of the Lipschitz interval).
  {
    exp::ScenarioSpec spec = online_base("ablation_a5");
    spec.policies = {
        {"DynamicRR", "successive elimination (paper)"},
        {"DynamicRR-ucb1", "UCB1"},
        {"DynamicRR-epsilon", "epsilon-greedy"},
        {"DynamicRR-thompson", "Thompson sampling"},
        {"DynamicRR-zooming", "zooming (adaptive grid)"}};
    spec.metrics = {"reward", "drops"};
    const exp::Report report = run_spec(std::move(spec), seeds);
    util::Table table({"learner", "total reward ($)", "dropped"});
    for (const std::string& policy : report.policies()) {
      table.add_row(
          {policy,
           util::format_double(report.mean("reward", policy, 0), 1),
           util::format_double(report.mean("drops", policy, 0), 1)});
    }
    table.print(std::cout, "A5: DynamicRR arm-selection rule");
    std::cout << '\n';
  }

  // A6: backhaul bandwidth (extension): audited reward of bandwidth-blind
  // vs bandwidth-aware Appro as links tighten.
  {
    util::Table table({"link bw (MB/s)", "blind audited ($)", "voided",
                       "aware audited ($)", "peak link util"});
    for (double bw : {1e9, 120.0, 60.0, 30.0}) {
      exp::ScenarioSpec spec = offline_base("ablation_a6");
      spec.base.home_skew = 1.5;
      spec.base.link_bandwidth_min_mbps = bw * 0.7;
      spec.base.link_bandwidth_max_mbps = bw * 1.3;
      spec.backhaul_audit = true;
      spec.policies = {{"Appro", "blind"}, {"Appro-backhaul", "aware"}};
      spec.metrics = {"reward", "voided", "peak_link_util"};
      const exp::Report report = run_spec(std::move(spec), seeds);
      table.add_row(
          {bw >= 1e8 ? "unbounded" : util::format_double(bw, 0),
           util::format_double(report.mean("reward", "blind", 0), 1),
           util::format_double(report.mean("voided", "blind", 0), 1),
           util::format_double(report.mean("reward", "aware", 0), 1),
           util::format_double(report.mean("peak_link_util", "blind", 0),
                               2)});
    }
    table.print(std::cout,
                "A6: backhaul bandwidth extension (blind vs aware Appro)");
  }
  return 0;
}
