// Ablation studies for the design choices documented in DESIGN.md 3b:
//   A1  Appro rounding divisor (paper's 4 vs alternatives) and backfill
//   A2  reward model: demand-independent (paper) vs proportional
//   A3  user-attachment skew: uniform vs Zipf hotspots
//   A4  DynamicRR arm-selection rule: successive elimination vs fixed arms
//       at the range endpoints (learning value)
//
//   ./bench/ablations [--seeds=3]
#include <iostream>

#include "baselines/greedy.h"
#include "baselines/heu_kkt.h"
#include "bench/bench_util.h"
#include "core/appro.h"
#include "core/backhaul.h"
#include "core/heu.h"
#include "sim/dynamic_rr.h"
#include "sim/online_sim.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace mecar;

benchx::Instance make_offline(unsigned seed, mec::RewardModel model,
                              double skew) {
  util::Rng rng(seed);
  mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 250;
  wparams.reward_model = model;
  wparams.home_skew = skew;
  auto requests = mec::generate_requests(wparams, topo, rng);
  auto realized = core::realize_demand_levels(requests, rng);
  return {std::move(topo), std::move(requests), std::move(realized)};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int_or("seeds", 3));
  // Every ablation block runs its seeds concurrently through sweep_seeds
  // and reduces the ordered samples serially, so the printed tables are
  // bit-identical to the old nested serial loops.

  // A1: rounding divisor x backfill.
  {
    util::Table table({"divisor", "backfill", "Appro reward ($)",
                       "admitted", "LP bound ($)"});
    for (double divisor : {1.0, 2.0, 4.0, 8.0}) {
      for (bool backfill : {false, true}) {
        struct Sample {
          double reward, admitted, bound;
        };
        const auto samples = benchx::sweep_seeds(
            benchx::bench_seeds(seeds), [&](unsigned seed) {
              const auto inst =
                  make_offline(seed, mec::RewardModel::kIndependent, 1.0);
              core::AlgorithmParams params;
              params.rounding_divisor = divisor;
              params.backfill = backfill;
              util::Rng rng(seed + 9);
              const auto res = core::run_appro(inst.topo, inst.requests,
                                               inst.realized, params, rng);
              return Sample{res.total_reward(),
                            static_cast<double>(res.num_admitted()),
                            res.lp_bound};
            });
        util::RunningStats reward, admitted, bound;
        for (const Sample& sample : samples) {
          reward.add(sample.reward);
          admitted.add(sample.admitted);
          bound.add(sample.bound);
        }
        table.add_row({util::format_double(divisor, 0),
                       backfill ? "on" : "off",
                       util::format_double(reward.mean(), 1),
                       util::format_double(admitted.mean(), 1),
                       util::format_double(bound.mean(), 1)});
      }
    }
    table.print(std::cout, "A1: Appro rounding divisor x backfill");
    std::cout << "note: Theorem 1's 1/8 guarantee is proven for divisor 4; "
                 "smaller divisors admit more but void the bound\n\n";
  }

  // A2: reward model.
  {
    util::Table table({"reward model", "Heu ($)", "Greedy ($)", "HeuKKT ($)",
                       "Heu/Greedy"});
    for (const auto model : {mec::RewardModel::kIndependent,
                             mec::RewardModel::kProportional}) {
      struct Sample {
        double heu, greedy, kkt;
      };
      const auto samples = benchx::sweep_seeds(
          benchx::bench_seeds(seeds), [&](unsigned seed) {
            const auto inst = make_offline(seed, model, 1.0);
            const core::AlgorithmParams params;
            util::Rng rng(seed + 9);
            return Sample{
                core::run_heu(inst.topo, inst.requests, inst.realized, params,
                              rng)
                    .total_reward(),
                baselines::run_greedy(inst.topo, inst.requests, inst.realized,
                                      params)
                    .total_reward(),
                baselines::run_heu_kkt(inst.topo, inst.requests,
                                       inst.realized, params)
                    .total_reward()};
          });
      util::RunningStats heu, greedy, kkt;
      for (const Sample& sample : samples) {
        heu.add(sample.heu);
        greedy.add(sample.greedy);
        kkt.add(sample.kkt);
      }
      table.add_row(
          {model == mec::RewardModel::kIndependent ? "independent (paper)"
                                                   : "proportional",
           util::format_double(heu.mean(), 1),
           util::format_double(greedy.mean(), 1),
           util::format_double(kkt.mean(), 1),
           util::format_double(heu.mean() / greedy.mean(), 2)});
    }
    table.print(std::cout, "A2: demand-independent vs proportional rewards");
    std::cout << '\n';
  }

  // A3: attachment skew.
  {
    util::Table table(
        {"home skew", "Heu ($)", "Greedy ($)", "Heu/Greedy"});
    for (double skew : {0.0, 0.5, 1.0, 1.5}) {
      struct Sample {
        double heu, greedy;
      };
      const auto samples = benchx::sweep_seeds(
          benchx::bench_seeds(seeds), [&](unsigned seed) {
            const auto inst =
                make_offline(seed, mec::RewardModel::kIndependent, skew);
            const core::AlgorithmParams params;
            util::Rng rng(seed + 9);
            return Sample{
                core::run_heu(inst.topo, inst.requests, inst.realized, params,
                              rng)
                    .total_reward(),
                baselines::run_greedy(inst.topo, inst.requests, inst.realized,
                                      params)
                    .total_reward()};
          });
      util::RunningStats heu, greedy;
      for (const Sample& sample : samples) {
        heu.add(sample.heu);
        greedy.add(sample.greedy);
      }
      table.add_row({util::format_double(skew, 1),
                     util::format_double(heu.mean(), 1),
                     util::format_double(greedy.mean(), 1),
                     util::format_double(heu.mean() / greedy.mean(), 2)});
    }
    table.print(std::cout, "A3: global vs local strategies under hotspots");
    std::cout << '\n';
  }

  // A4: learning value — DynamicRR vs the fixed endpoints of its range.
  {
    util::Table table({"policy", "total reward ($)", "dropped"});
    struct Variant {
      std::string name;
      double lo, hi;
      int kappa;
    };
    const sim::DynamicRrParams defaults;
    const std::vector<Variant> variants{
        {"DynamicRR (learned)", defaults.threshold_min_mhz,
         defaults.threshold_max_mhz, defaults.kappa},
        {"fixed min threshold", defaults.threshold_min_mhz,
         defaults.threshold_min_mhz, 1},
        {"fixed max threshold", defaults.threshold_max_mhz,
         defaults.threshold_max_mhz, 1},
    };
    for (const auto& variant : variants) {
      struct Sample {
        double reward, dropped;
      };
      const auto samples = benchx::sweep_seeds(
          benchx::bench_seeds(seeds), [&](unsigned seed) {
            benchx::InstanceConfig config;
            config.num_requests = 300;
            config.horizon_slots = 600;
            const auto inst = benchx::make_instance(seed, config);
            sim::OnlineParams oparams;
            oparams.horizon_slots = 600;
            sim::DynamicRrParams dparams;
            dparams.threshold_min_mhz = variant.lo;
            dparams.threshold_max_mhz = variant.hi;
            dparams.kappa = variant.kappa;
            sim::DynamicRrPolicy policy(inst.topo, core::AlgorithmParams{},
                                        dparams, util::Rng(seed + 9));
            sim::OnlineSimulator simulator(inst.topo, inst.requests,
                                           inst.realized, oparams);
            const auto m = simulator.run(policy);
            return Sample{m.total_reward, static_cast<double>(m.dropped)};
          });
      util::RunningStats reward, dropped;
      for (const Sample& sample : samples) {
        reward.add(sample.reward);
        dropped.add(sample.dropped);
      }
      table.add_row({variant.name, util::format_double(reward.mean(), 1),
                     util::format_double(dropped.mean(), 1)});
    }
    table.print(std::cout, "A4: learned threshold vs fixed endpoints");
    std::cout << '\n';
  }

  // A5: arm-selection rule — the paper's successive elimination against
  // UCB1, epsilon-greedy, Thompson sampling, and the zooming algorithm
  // (adaptive discretization of the Lipschitz interval).
  {
    util::Table table({"learner", "total reward ($)", "dropped"});
    const std::vector<std::pair<std::string, sim::ThresholdLearner>> rules{
        {"successive elimination (paper)",
         sim::ThresholdLearner::kSuccessiveElimination},
        {"UCB1", sim::ThresholdLearner::kUcb1},
        {"epsilon-greedy", sim::ThresholdLearner::kEpsilonGreedy},
        {"Thompson sampling", sim::ThresholdLearner::kThompson},
        {"zooming (adaptive grid)", sim::ThresholdLearner::kZooming},
    };
    for (const auto& [name, learner] : rules) {
      struct Sample {
        double reward, dropped;
      };
      const auto samples = benchx::sweep_seeds(
          benchx::bench_seeds(seeds), [&](unsigned seed) {
            benchx::InstanceConfig config;
            config.num_requests = 300;
            config.horizon_slots = 600;
            const auto inst = benchx::make_instance(seed, config);
            sim::OnlineParams oparams;
            oparams.horizon_slots = 600;
            sim::DynamicRrParams dparams;
            dparams.learner = learner;
            sim::DynamicRrPolicy policy(inst.topo, core::AlgorithmParams{},
                                        dparams, util::Rng(seed + 9));
            sim::OnlineSimulator simulator(inst.topo, inst.requests,
                                           inst.realized, oparams);
            const auto m = simulator.run(policy);
            return Sample{m.total_reward, static_cast<double>(m.dropped)};
          });
      util::RunningStats reward, dropped;
      for (const Sample& sample : samples) {
        reward.add(sample.reward);
        dropped.add(sample.dropped);
      }
      table.add_row({name, util::format_double(reward.mean(), 1),
                     util::format_double(dropped.mean(), 1)});
    }
    table.print(std::cout, "A5: DynamicRR arm-selection rule");
    std::cout << '\n';
  }

  // A6: backhaul bandwidth (extension): audited reward of bandwidth-blind
  // vs bandwidth-aware Appro as links tighten.
  {
    util::Table table({"link bw (MB/s)", "blind audited ($)", "voided",
                       "aware audited ($)", "peak link util"});
    for (double bw : {1e9, 120.0, 60.0, 30.0}) {
      struct Sample {
        double blind_r, voided, aware_r, util_peak;
      };
      const auto samples = benchx::sweep_seeds(
          benchx::bench_seeds(seeds), [&](unsigned seed) {
            util::Rng rng(seed);
            mec::TopologyParams tparams;
            tparams.link_bandwidth_min_mbps = bw * 0.7;
            tparams.link_bandwidth_max_mbps = bw * 1.3;
            const mec::Topology topo = mec::generate_topology(tparams, rng);
            mec::WorkloadParams wparams;
            wparams.num_requests = 250;
            wparams.home_skew = 1.5;
            const auto requests = mec::generate_requests(wparams, topo, rng);
            const auto realized = core::realize_demand_levels(requests, rng);

            core::AlgorithmParams blind;
            util::Rng r1(seed + 9);
            auto blind_result =
                core::run_appro(topo, requests, realized, blind, r1);
            const auto audit =
                core::apply_backhaul_audit(topo, requests, blind_result);

            core::AlgorithmParams aware = blind;
            aware.enforce_backhaul = true;
            util::Rng r2(seed + 9);
            auto aware_result =
                core::run_appro(topo, requests, realized, aware, r2);
            core::apply_backhaul_audit(topo, requests, aware_result);
            return Sample{blind_result.total_reward(),
                          static_cast<double>(audit.voided),
                          aware_result.total_reward(),
                          audit.peak_link_utilization};
          });
      util::RunningStats blind_r, voided, aware_r, util_peak;
      for (const Sample& sample : samples) {
        blind_r.add(sample.blind_r);
        voided.add(sample.voided);
        aware_r.add(sample.aware_r);
        util_peak.add(sample.util_peak);
      }
      table.add_row({bw >= 1e8 ? "unbounded" : util::format_double(bw, 0),
                     util::format_double(blind_r.mean(), 1),
                     util::format_double(voided.mean(), 1),
                     util::format_double(aware_r.mean(), 1),
                     util::format_double(util_peak.mean(), 2)});
    }
    table.print(std::cout,
                "A6: backhaul bandwidth extension (blind vs aware Appro)");
  }
  return 0;
}
