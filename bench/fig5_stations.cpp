// Figure 5 reproduction: all six algorithms over |BS| in {10..50} at the
// default |R| = 150.
//   (a) total reward   (b) average request latency
//
// Offline algorithms run on the offline instance; DynamicRR runs the
// 600-slot online instance on the same topology (as in the paper, the
// figure overlays offline and online algorithms).
//
//   ./bench/fig5_stations [--seeds=3]
#include <iostream>

#include "baselines/greedy.h"
#include "baselines/heu_kkt.h"
#include "baselines/ocorp.h"
#include "bench/bench_util.h"
#include "core/appro.h"
#include "core/heu.h"
#include "sim/dynamic_rr.h"
#include "sim/online_sim.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int_or("seeds", 3));
  const std::vector<int> points{10, 20, 30, 40, 50};
  const std::vector<std::string> algos{"Appro",  "Heu",   "DynamicRR",
                                       "Greedy", "OCORP", "HeuKKT"};

  benchx::SeriesCollector reward(algos);
  benchx::SeriesCollector latency(algos);

  // Seeds run concurrently (see bench_util.h); the ordered reduction keeps
  // the printed figure bit-identical to the serial sweep. Slot order
  // follows `algos`: Appro, Heu, DynamicRR, Greedy, OCORP, HeuKKT.
  struct Sample {
    double reward[6];
    double latency[6];
  };
  for (int num_stations : points) {
    reward.start_point();
    latency.start_point();
    const auto samples = benchx::sweep_seeds(
        benchx::bench_seeds(seeds), [&](unsigned seed) {
          benchx::InstanceConfig config;
          config.num_requests = 150;
          config.num_stations = num_stations;
          const auto inst = benchx::make_instance(seed, config);
          const core::AlgorithmParams params;

          Sample sample{};
          auto record = [&](std::size_t slot, const core::OffloadResult& res) {
            sample.reward[slot] = res.total_reward();
            sample.latency[slot] = res.average_latency_ms();
          };
          {
            util::Rng rng(seed + 1);
            record(0, core::run_appro(inst.topo, inst.requests, inst.realized,
                                      params, rng));
          }
          {
            util::Rng rng(seed + 1);
            record(1, core::run_heu(inst.topo, inst.requests, inst.realized,
                                    params, rng));
          }
          record(3, baselines::run_greedy(inst.topo, inst.requests,
                                          inst.realized, params));
          record(4, baselines::run_ocorp(inst.topo, inst.requests,
                                         inst.realized, params));
          record(5, baselines::run_heu_kkt(inst.topo, inst.requests,
                                           inst.realized, params));
          {
            // Online instance on the same topology scale.
            benchx::InstanceConfig online_config = config;
            online_config.horizon_slots = 600;
            const auto online_inst = benchx::make_instance(seed, online_config);
            sim::OnlineParams oparams;
            oparams.horizon_slots = 600;
            sim::DynamicRrPolicy policy(online_inst.topo,
                                        core::AlgorithmParams{},
                                        sim::DynamicRrParams{},
                                        util::Rng(seed + 1));
            sim::OnlineSimulator simulator(online_inst.topo,
                                           online_inst.requests,
                                           online_inst.realized, oparams);
            const auto m = simulator.run(policy);
            sample.reward[2] = m.total_reward;
            sample.latency[2] = m.avg_latency_ms;
          }
          return sample;
        });
    for (const Sample& sample : samples) {
      for (std::size_t a = 0; a < algos.size(); ++a) {
        reward.add(algos[a], sample.reward[a]);
        latency.add(algos[a], sample.latency[a]);
      }
    }
  }

  auto emit = [&](const std::string& title, const benchx::SeriesCollector& s,
                  int precision) {
    std::vector<std::string> header{"|BS|"};
    header.insert(header.end(), algos.begin(), algos.end());
    util::Table table(header);
    for (std::size_t p = 0; p < points.size(); ++p) {
      std::vector<double> row;
      for (const auto& a : algos) row.push_back(s.mean_at(a, p));
      table.add_numeric_row(std::to_string(points[p]), row, precision);
    }
    table.print(std::cout, title);
    std::cout << '\n';
  };

  emit("Fig 5(a): total reward ($) vs number of base stations", reward, 1);
  emit("Fig 5(b): average latency (ms) vs number of base stations", latency,
       2);

  std::cout << "shape: reward should grow with |BS| (more capacity), latency "
               "should fall (closer placements)\n";
  return 0;
}
