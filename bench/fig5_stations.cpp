// Figure 5 reproduction: all six algorithms over |BS| in {10..50} at the
// default |R| = 150.
//   (a) total reward   (b) average request latency
//
// Offline algorithms run on the offline instance; DynamicRR runs the
// 600-slot online instance on the same topology (as in the paper, the
// figure overlays offline and online algorithms). A thin spec over the
// scenario engine (see scenarios/fig5_stations.scenario).
//
//   ./bench/fig5_stations [--seeds=3]
#include <iostream>

#include "exp/runner.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);

  exp::ScenarioSpec spec;
  spec.name = "fig5_stations";
  spec.axis = exp::SweepAxis::kStations;
  spec.points = {10, 20, 30, 40, 50};
  spec.horizon = 600;
  spec.base.num_requests = 150;
  spec.policies = {{"Appro", "Appro"},
                   {"Heu", "Heu"},
                   {"DynamicRR", "DynamicRR"},
                   {"offline:Greedy", "Greedy"},
                   {"offline:OCORP", "OCORP"},
                   {"offline:HeuKKT", "HeuKKT"}};
  spec.metrics = {"reward", "latency"};

  exp::Runner runner(std::move(spec));
  runner.set_seeds(static_cast<int>(cli.get_int_or("seeds", 3)));
  const exp::Report report = runner.run();

  report.print_metric_table(
      std::cout, "Fig 5(a): total reward ($) vs number of base stations",
      "reward", 1);
  report.print_metric_table(
      std::cout, "Fig 5(b): average latency (ms) vs number of base stations",
      "latency", 2);

  std::cout << "shape: reward should grow with |BS| (more capacity), latency "
               "should fall (closer placements)\n";
  return 0;
}
