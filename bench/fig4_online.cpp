// Figure 4 reproduction: online algorithms DynamicRR, Greedy, OCORP,
// HeuKKT over |R| in {100, 150, 200, 250, 300} on a 600-slot horizon.
//   (a) total reward   (b) average request latency
//
// A thin spec over the scenario engine (see scenarios/fig4_online.scenario
// for the equivalent `mecar_cli experiment` input).
//
//   ./bench/fig4_online [--seeds=3] [--horizon=600]
#include <iostream>

#include "exp/runner.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);

  exp::ScenarioSpec spec;
  spec.name = "fig4_online";
  spec.axis = exp::SweepAxis::kRequests;
  spec.points = {100, 150, 200, 250, 300};
  spec.horizon = 600;
  spec.policies = {{"DynamicRR", "DynamicRR"},
                   {"online:Greedy", "Greedy"},
                   {"online:OCORP", "OCORP"},
                   {"online:HeuKKT", "HeuKKT"}};
  spec.metrics = {"reward", "latency", "drops"};

  exp::Runner runner(std::move(spec));
  runner.set_seeds(static_cast<int>(cli.get_int_or("seeds", 3)));
  runner.set_horizon(static_cast<int>(cli.get_int_or("horizon", 600)));
  const exp::Report report = runner.run();

  report.print_metric_table(
      std::cout, "Fig 4(a): total reward ($) vs number of requests", "reward",
      1);
  report.print_metric_table(
      std::cout, "Fig 4(b): average latency (ms) vs number of requests",
      "latency", 2);
  report.print_metric_table(
      std::cout, "Fig 4(+): starved requests vs number of requests", "drops",
      1);

  const std::size_t last = report.num_points() - 1;
  std::cout << "headline: DynamicRR/HeuKKT = "
            << util::format_double(report.mean("reward", "DynamicRR", last) /
                                       report.mean("reward", "HeuKKT", last),
                                   3)
            << " (paper: DynamicRR above HeuKKT), DynamicRR/OCORP = "
            << util::format_double(report.mean("reward", "DynamicRR", last) /
                                       report.mean("reward", "OCORP", last),
                                   3)
            << '\n';
  return 0;
}
