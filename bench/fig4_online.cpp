// Figure 4 reproduction: online algorithms DynamicRR, Greedy, OCORP,
// HeuKKT over |R| in {100, 150, 200, 250, 300} on a 600-slot horizon.
//   (a) total reward   (b) average request latency
//
//   ./bench/fig4_online [--seeds=3] [--horizon=600]
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "sim/dynamic_rr.h"
#include "sim/online_baselines.h"
#include "sim/online_sim.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int_or("seeds", 3));
  const int horizon = static_cast<int>(cli.get_int_or("horizon", 600));
  const std::vector<int> points{100, 150, 200, 250, 300};
  const std::vector<std::string> algos{"DynamicRR", "Greedy", "OCORP",
                                       "HeuKKT"};

  benchx::SeriesCollector reward(algos);
  benchx::SeriesCollector latency(algos);
  benchx::SeriesCollector drops(algos);

  // One trial = one (sweep point, seed) pair; trials are independent and
  // fully determined by their seed, so the pool runs them concurrently and
  // the ordered reduction below reproduces the serial output bit for bit.
  struct Sample {
    double reward[4];
    double latency[4];
    double drops[4];
  };
  for (int num_requests : points) {
    reward.start_point();
    latency.start_point();
    drops.start_point();
    const auto samples = benchx::sweep_seeds(
        benchx::bench_seeds(seeds), [&](unsigned seed) {
          benchx::InstanceConfig config;
          config.num_requests = num_requests;
          config.horizon_slots = horizon;
          const auto inst = benchx::make_instance(seed, config);
          sim::OnlineParams params;
          params.horizon_slots = horizon;

          Sample sample{};
          auto run = [&](std::size_t slot, sim::OnlinePolicy& policy) {
            sim::OnlineSimulator simulator(inst.topo, inst.requests,
                                           inst.realized, params);
            const auto m = simulator.run(policy);
            sample.reward[slot] = m.total_reward;
            sample.latency[slot] = m.avg_latency_ms;
            sample.drops[slot] = m.dropped;
          };
          {
            sim::DynamicRrPolicy policy(inst.topo, core::AlgorithmParams{},
                                        sim::DynamicRrParams{},
                                        util::Rng(seed + 1));
            run(0, policy);
          }
          {
            sim::GreedyOnlinePolicy policy(inst.topo, core::AlgorithmParams{});
            run(1, policy);
          }
          {
            sim::OcorpOnlinePolicy policy(inst.topo, core::AlgorithmParams{});
            run(2, policy);
          }
          {
            sim::HeuKktOnlinePolicy policy(inst.topo, core::AlgorithmParams{});
            run(3, policy);
          }
          return sample;
        });
    for (const Sample& sample : samples) {
      for (std::size_t a = 0; a < algos.size(); ++a) {
        reward.add(algos[a], sample.reward[a]);
        latency.add(algos[a], sample.latency[a]);
        drops.add(algos[a], sample.drops[a]);
      }
    }
  }

  auto emit = [&](const std::string& title, const benchx::SeriesCollector& s,
                  int precision) {
    std::vector<std::string> header{"|R|"};
    header.insert(header.end(), algos.begin(), algos.end());
    util::Table table(header);
    for (std::size_t p = 0; p < points.size(); ++p) {
      std::vector<double> row;
      for (const auto& a : algos) row.push_back(s.mean_at(a, p));
      table.add_numeric_row(std::to_string(points[p]), row, precision);
    }
    table.print(std::cout, title);
    std::cout << '\n';
  };

  emit("Fig 4(a): total reward ($) vs number of requests", reward, 1);
  emit("Fig 4(b): average latency (ms) vs number of requests", latency, 2);
  emit("Fig 4(+): starved requests vs number of requests", drops, 1);

  const std::size_t last = points.size() - 1;
  std::cout << "headline: DynamicRR/HeuKKT = "
            << util::format_double(reward.mean_at("DynamicRR", last) /
                                       reward.mean_at("HeuKKT", last),
                                   3)
            << " (paper: DynamicRR above HeuKKT), DynamicRR/OCORP = "
            << util::format_double(reward.mean_at("DynamicRR", last) /
                                       reward.mean_at("OCORP", last),
                                   3)
            << '\n';
  return 0;
}
