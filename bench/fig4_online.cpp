// Figure 4 reproduction: online algorithms DynamicRR, Greedy, OCORP,
// HeuKKT over |R| in {100, 150, 200, 250, 300} on a 600-slot horizon.
//   (a) total reward   (b) average request latency
//
//   ./bench/fig4_online [--seeds=3] [--horizon=600]
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "sim/dynamic_rr.h"
#include "sim/online_baselines.h"
#include "sim/online_sim.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int_or("seeds", 3));
  const int horizon = static_cast<int>(cli.get_int_or("horizon", 600));
  const std::vector<int> points{100, 150, 200, 250, 300};
  const std::vector<std::string> algos{"DynamicRR", "Greedy", "OCORP",
                                       "HeuKKT"};

  benchx::SeriesCollector reward(algos);
  benchx::SeriesCollector latency(algos);
  benchx::SeriesCollector drops(algos);

  for (int num_requests : points) {
    reward.start_point();
    latency.start_point();
    drops.start_point();
    for (unsigned seed : benchx::bench_seeds(seeds)) {
      benchx::InstanceConfig config;
      config.num_requests = num_requests;
      config.horizon_slots = horizon;
      const auto inst = benchx::make_instance(seed, config);
      sim::OnlineParams params;
      params.horizon_slots = horizon;

      auto run = [&](const std::string& name, sim::OnlinePolicy& policy) {
        sim::OnlineSimulator simulator(inst.topo, inst.requests,
                                       inst.realized, params);
        const auto m = simulator.run(policy);
        reward.add(name, m.total_reward);
        latency.add(name, m.avg_latency_ms);
        drops.add(name, m.dropped);
      };
      {
        sim::DynamicRrPolicy policy(inst.topo, core::AlgorithmParams{},
                                    sim::DynamicRrParams{},
                                    util::Rng(seed + 1));
        run("DynamicRR", policy);
      }
      {
        sim::GreedyOnlinePolicy policy(inst.topo, core::AlgorithmParams{});
        run("Greedy", policy);
      }
      {
        sim::OcorpOnlinePolicy policy(inst.topo, core::AlgorithmParams{});
        run("OCORP", policy);
      }
      {
        sim::HeuKktOnlinePolicy policy(inst.topo, core::AlgorithmParams{});
        run("HeuKKT", policy);
      }
    }
  }

  auto emit = [&](const std::string& title, const benchx::SeriesCollector& s,
                  int precision) {
    std::vector<std::string> header{"|R|"};
    header.insert(header.end(), algos.begin(), algos.end());
    util::Table table(header);
    for (std::size_t p = 0; p < points.size(); ++p) {
      std::vector<double> row;
      for (const auto& a : algos) row.push_back(s.mean_at(a, p));
      table.add_numeric_row(std::to_string(points[p]), row, precision);
    }
    table.print(std::cout, title);
    std::cout << '\n';
  };

  emit("Fig 4(a): total reward ($) vs number of requests", reward, 1);
  emit("Fig 4(b): average latency (ms) vs number of requests", latency, 2);
  emit("Fig 4(+): starved requests vs number of requests", drops, 1);

  const std::size_t last = points.size() - 1;
  std::cout << "headline: DynamicRR/HeuKKT = "
            << util::format_double(reward.mean_at("DynamicRR", last) /
                                       reward.mean_at("HeuKKT", last),
                                   3)
            << " (paper: DynamicRR above HeuKKT), DynamicRR/OCORP = "
            << util::format_double(reward.mean_at("DynamicRR", last) /
                                       reward.mean_at("OCORP", last),
                                   3)
            << '\n';
  return 0;
}
