// Theorem 3 validation: the regret of DynamicRR's threshold learning is
// O(sqrt(kappa T log T) + T eta epsilon).
//
// Two experiments, both kRegret scenarios over the engine (the runner
// fans the (seed, arm) hindsight sweep and the learned runs out as one
// flat task list; see scenarios/regret_growth.scenario):
//  (1) regret growth in T: cumulative regret of DynamicRR relative to the
//      best FIXED threshold (oracle chosen in hindsight among the arms) on
//      the same workload; the per-round regret must shrink with T and the
//      log-log growth exponent of cumulative regret must be well below 1.
//  (2) kappa ablation at fixed T: more arms = finer grid (smaller
//      discretization error) but more exploration; the bound's two terms.
//
//   ./bench/regret_theorem3 [--seeds=3]
#include <cmath>
#include <iostream>

#include "exp/runner.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int_or("seeds", 3));

  // (1) Regret vs horizon T.
  exp::ScenarioSpec growth_spec;
  growth_spec.name = "regret_growth";
  growth_spec.kind = exp::ScenarioKind::kRegret;
  growth_spec.axis = exp::SweepAxis::kHorizon;
  growth_spec.points = {200, 400, 800, 1600};
  // Arrival intensity held constant as T grows.
  growth_spec.requests_per_slot = 0.5;
  growth_spec.rr.kappa = 4;
  exp::Runner growth_runner(std::move(growth_spec));
  growth_runner.set_seeds(seeds);
  const exp::Report growth_report = growth_runner.run();

  util::Table growth({"T (slots)", "best fixed ($)", "DynamicRR ($)",
                      "regret ($)", "regret/T"});
  std::vector<double> log_t, log_regret;
  for (std::size_t p = 0; p < growth_report.num_points(); ++p) {
    const double horizon = growth_report.points()[p];
    const double fixed = growth_report.mean("reward", "best fixed", p);
    const double learned = growth_report.mean("reward", "DynamicRR", p);
    const double regret = std::max(0.0, fixed - learned);
    growth.add_numeric_row(growth_report.point_labels()[p],
                           {fixed, learned, regret, regret / horizon}, 2);
    if (regret > 0.0) {
      log_t.push_back(std::log(horizon));
      log_regret.push_back(std::log(regret));
    }
  }
  growth.print(std::cout, "Theorem 3: regret vs horizon T (kappa = 4)");
  if (log_t.size() >= 2) {
    const auto fit = util::fit_line(log_t, log_regret);
    std::cout << "log-log growth exponent of cumulative regret: "
              << util::format_double(fit.slope, 3)
              << " (sublinear < 1; sqrt-like ~ 0.5)\n";
  } else {
    std::cout << "regret nonpositive at most horizons (policy matched the "
                 "best fixed arm)\n";
  }
  std::cout << '\n';

  // (2) kappa ablation at fixed T.
  exp::ScenarioSpec kappa_spec;
  kappa_spec.name = "regret_kappa";
  kappa_spec.kind = exp::ScenarioKind::kRegret;
  kappa_spec.axis = exp::SweepAxis::kKappa;
  kappa_spec.points = {2, 4, 8, 16};
  kappa_spec.horizon = 600;
  kappa_spec.base.num_requests = 300;
  exp::Runner kappa_runner(std::move(kappa_spec));
  kappa_runner.set_seeds(seeds);
  const exp::Report kappa_report = kappa_runner.run();

  util::Table ablation(
      {"kappa", "best fixed ($)", "DynamicRR ($)", "regret ($)"});
  for (std::size_t p = 0; p < kappa_report.num_points(); ++p) {
    const double fixed = kappa_report.mean("reward", "best fixed", p);
    const double learned = kappa_report.mean("reward", "DynamicRR", p);
    ablation.add_numeric_row(kappa_report.point_labels()[p],
                             {fixed, learned, fixed - learned}, 2);
  }
  ablation.print(std::cout,
                 "Theorem 3: discretization ablation (T = 600, |R| = 300)");
  std::cout << "shape: small kappa risks discretization error, large kappa "
               "pays exploration; the bound's two terms trade off\n";
  return 0;
}
