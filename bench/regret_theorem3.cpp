// Theorem 3 validation: the regret of DynamicRR's threshold learning is
// O(sqrt(kappa T log T) + T eta epsilon).
//
// Two experiments:
//  (1) regret growth in T: cumulative regret of DynamicRR relative to the
//      best FIXED threshold (oracle chosen in hindsight among the arms) on
//      the same workload; the per-round regret must shrink with T and the
//      log-log growth exponent of cumulative regret must be well below 1.
//  (2) kappa ablation at fixed T: more arms = finer grid (smaller
//      discretization error) but more exploration; the bound's two terms.
//
//   ./bench/regret_theorem3 [--seeds=3]
#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "sim/dynamic_rr.h"
#include "sim/online_sim.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace mecar;

/// Total reward of DynamicRR with learning on.
double learned_reward(const benchx::Instance& inst, int horizon, int kappa,
                      unsigned seed) {
  sim::OnlineParams params;
  params.horizon_slots = horizon;
  sim::DynamicRrParams dparams;
  dparams.kappa = kappa;
  sim::DynamicRrPolicy policy(inst.topo, core::AlgorithmParams{}, dparams,
                              util::Rng(seed));
  sim::OnlineSimulator simulator(inst.topo, inst.requests, inst.realized,
                                 params);
  return simulator.run(policy).total_reward;
}

/// Reward of the best fixed arm, found in hindsight by running each
/// threshold as a constant policy (kappa = 1 grids centred on each value).
double best_fixed_reward(const benchx::Instance& inst, int horizon,
                         int kappa, unsigned seed) {
  const sim::DynamicRrParams defaults;
  const bandit::LipschitzGrid grid(defaults.threshold_min_mhz,
                                   defaults.threshold_max_mhz, kappa);
  double best = 0.0;
  for (int a = 0; a < grid.num_arms(); ++a) {
    sim::OnlineParams params;
    params.horizon_slots = horizon;
    sim::DynamicRrParams dparams;
    dparams.kappa = 1;
    dparams.threshold_min_mhz = grid.value(a);
    dparams.threshold_max_mhz = grid.value(a);
    sim::DynamicRrPolicy policy(inst.topo, core::AlgorithmParams{}, dparams,
                                util::Rng(seed));
    sim::OnlineSimulator simulator(inst.topo, inst.requests, inst.realized,
                                   params);
    best = std::max(best, simulator.run(policy).total_reward);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int_or("seeds", 3));

  // (1) Regret vs horizon T.
  const std::vector<int> horizons{200, 400, 800, 1600};
  util::Table growth({"T (slots)", "best fixed ($)", "DynamicRR ($)",
                      "regret ($)", "regret/T"});
  std::vector<double> log_t, log_regret;
  for (int horizon : horizons) {
    util::RunningStats fixed_stats, learned_stats;
    for (unsigned seed : benchx::bench_seeds(seeds)) {
      benchx::InstanceConfig config;
      // Arrival intensity held constant as T grows.
      config.num_requests = horizon / 2;
      config.horizon_slots = horizon;
      const auto inst = benchx::make_instance(seed, config);
      fixed_stats.add(best_fixed_reward(inst, horizon, 4, seed + 1));
      learned_stats.add(learned_reward(inst, horizon, 4, seed + 1));
    }
    const double regret =
        std::max(0.0, fixed_stats.mean() - learned_stats.mean());
    growth.add_numeric_row(
        std::to_string(horizon),
        {fixed_stats.mean(), learned_stats.mean(), regret,
         regret / horizon},
        2);
    if (regret > 0.0) {
      log_t.push_back(std::log(static_cast<double>(horizon)));
      log_regret.push_back(std::log(regret));
    }
  }
  growth.print(std::cout, "Theorem 3: regret vs horizon T (kappa = 4)");
  if (log_t.size() >= 2) {
    const auto fit = util::fit_line(log_t, log_regret);
    std::cout << "log-log growth exponent of cumulative regret: "
              << util::format_double(fit.slope, 3)
              << " (sublinear < 1; sqrt-like ~ 0.5)\n";
  } else {
    std::cout << "regret nonpositive at most horizons (policy matched the "
                 "best fixed arm)\n";
  }
  std::cout << '\n';

  // (2) kappa ablation at fixed T.
  const int horizon = 600;
  util::Table ablation(
      {"kappa", "best fixed ($)", "DynamicRR ($)", "regret ($)"});
  for (int kappa : {2, 4, 8, 16}) {
    util::RunningStats fixed_stats, learned_stats;
    for (unsigned seed : benchx::bench_seeds(seeds)) {
      benchx::InstanceConfig config;
      config.num_requests = 300;
      config.horizon_slots = horizon;
      const auto inst = benchx::make_instance(seed, config);
      fixed_stats.add(best_fixed_reward(inst, horizon, kappa, seed + 1));
      learned_stats.add(learned_reward(inst, horizon, kappa, seed + 1));
    }
    ablation.add_numeric_row(
        std::to_string(kappa),
        {fixed_stats.mean(), learned_stats.mean(),
         fixed_stats.mean() - learned_stats.mean()},
        2);
  }
  ablation.print(std::cout,
                 "Theorem 3: discretization ablation (T = 600, |R| = 300)");
  std::cout << "shape: small kappa risks discretization error, large kappa "
               "pays exploration; the bound's two terms trade off\n";
  return 0;
}
