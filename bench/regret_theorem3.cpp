// Theorem 3 validation: the regret of DynamicRR's threshold learning is
// O(sqrt(kappa T log T) + T eta epsilon).
//
// Two experiments:
//  (1) regret growth in T: cumulative regret of DynamicRR relative to the
//      best FIXED threshold (oracle chosen in hindsight among the arms) on
//      the same workload; the per-round regret must shrink with T and the
//      log-log growth exponent of cumulative regret must be well below 1.
//  (2) kappa ablation at fixed T: more arms = finer grid (smaller
//      discretization error) but more exploration; the bound's two terms.
//
//   ./bench/regret_theorem3 [--seeds=3]
#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "sim/dynamic_rr.h"
#include "sim/online_sim.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace mecar;

/// Total reward of DynamicRR with learning on.
double learned_reward(const benchx::Instance& inst, int horizon, int kappa,
                      unsigned seed) {
  sim::OnlineParams params;
  params.horizon_slots = horizon;
  sim::DynamicRrParams dparams;
  dparams.kappa = kappa;
  sim::DynamicRrPolicy policy(inst.topo, core::AlgorithmParams{}, dparams,
                              util::Rng(seed));
  sim::OnlineSimulator simulator(inst.topo, inst.requests, inst.realized,
                                 params);
  return simulator.run(policy).total_reward;
}

/// Reward of one fixed threshold run as a constant policy (a kappa = 1
/// grid centred on the value) — one arm of the hindsight oracle.
double fixed_arm_reward(const benchx::Instance& inst, int horizon,
                        double threshold_mhz, unsigned seed) {
  sim::OnlineParams params;
  params.horizon_slots = horizon;
  sim::DynamicRrParams dparams;
  dparams.kappa = 1;
  dparams.threshold_min_mhz = threshold_mhz;
  dparams.threshold_max_mhz = threshold_mhz;
  sim::DynamicRrPolicy policy(inst.topo, core::AlgorithmParams{}, dparams,
                              util::Rng(seed));
  sim::OnlineSimulator simulator(inst.topo, inst.requests, inst.realized,
                                 params);
  return simulator.run(policy).total_reward;
}

struct RegretPoint {
  double fixed_mean = 0.0;
  double learned_mean = 0.0;
};

/// Evaluates one sweep point: for every seed, the learned DynamicRR run
/// plus the per-arm hindsight sweep (the best FIXED threshold among the
/// kappa grid values). All (seed, arm) runs and the learned runs are
/// independent, so they form one flat task list for the thread pool;
/// the reduction below walks it in seed order, so means match the serial
/// nested loops exactly.
RegretPoint evaluate_point(const std::vector<unsigned>& seeds,
                           int num_requests, int horizon, int kappa) {
  const sim::DynamicRrParams defaults;
  const bandit::LipschitzGrid grid(defaults.threshold_min_mhz,
                                   defaults.threshold_max_mhz, kappa);
  const std::size_t arms = static_cast<std::size_t>(grid.num_arms());
  // Task layout per seed s: indices [s*(arms+1), s*(arms+1)+arms) are the
  // fixed-arm runs, index s*(arms+1)+arms is the learned run.
  const std::size_t per_seed = arms + 1;
  const auto rewards = util::parallel_map(
      seeds.size() * per_seed, [&](std::size_t i) {
        const unsigned seed = seeds[i / per_seed];
        const std::size_t k = i % per_seed;
        benchx::InstanceConfig config;
        config.num_requests = num_requests;
        config.horizon_slots = horizon;
        const auto inst = benchx::make_instance(seed, config);
        if (k < arms) {
          return fixed_arm_reward(inst, horizon,
                                  grid.value(static_cast<int>(k)), seed + 1);
        }
        return learned_reward(inst, horizon, kappa, seed + 1);
      });
  util::RunningStats fixed_stats, learned_stats;
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    double best = 0.0;
    for (std::size_t k = 0; k < arms; ++k) {
      best = std::max(best, rewards[s * per_seed + k]);
    }
    fixed_stats.add(best);
    learned_stats.add(rewards[s * per_seed + arms]);
  }
  return RegretPoint{fixed_stats.mean(), learned_stats.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int_or("seeds", 3));

  // (1) Regret vs horizon T.
  const std::vector<int> horizons{200, 400, 800, 1600};
  util::Table growth({"T (slots)", "best fixed ($)", "DynamicRR ($)",
                      "regret ($)", "regret/T"});
  std::vector<double> log_t, log_regret;
  for (int horizon : horizons) {
    // Arrival intensity held constant as T grows.
    const RegretPoint point =
        evaluate_point(benchx::bench_seeds(seeds), horizon / 2, horizon, 4);
    const double regret =
        std::max(0.0, point.fixed_mean - point.learned_mean);
    growth.add_numeric_row(
        std::to_string(horizon),
        {point.fixed_mean, point.learned_mean, regret, regret / horizon},
        2);
    if (regret > 0.0) {
      log_t.push_back(std::log(static_cast<double>(horizon)));
      log_regret.push_back(std::log(regret));
    }
  }
  growth.print(std::cout, "Theorem 3: regret vs horizon T (kappa = 4)");
  if (log_t.size() >= 2) {
    const auto fit = util::fit_line(log_t, log_regret);
    std::cout << "log-log growth exponent of cumulative regret: "
              << util::format_double(fit.slope, 3)
              << " (sublinear < 1; sqrt-like ~ 0.5)\n";
  } else {
    std::cout << "regret nonpositive at most horizons (policy matched the "
                 "best fixed arm)\n";
  }
  std::cout << '\n';

  // (2) kappa ablation at fixed T.
  const int horizon = 600;
  util::Table ablation(
      {"kappa", "best fixed ($)", "DynamicRR ($)", "regret ($)"});
  for (int kappa : {2, 4, 8, 16}) {
    const RegretPoint point =
        evaluate_point(benchx::bench_seeds(seeds), 300, horizon, kappa);
    ablation.add_numeric_row(
        std::to_string(kappa),
        {point.fixed_mean, point.learned_mean,
         point.fixed_mean - point.learned_mean},
        2);
  }
  ablation.print(std::cout,
                 "Theorem 3: discretization ablation (T = 600, |R| = 300)");
  std::cout << "shape: small kappa risks discretization error, large kappa "
               "pays exploration; the bound's two terms trade off\n";
  return 0;
}
