// Resilience under chaos (extension beyond the paper): how the online
// policies degrade as injected-fault intensity rises. Each sweep point
// feeds every policy a seeded chaos plan (correlated bursts of station
// outages, capacity brownouts, link cuts and latency inflation — see
// sim/fault_plan.h) and compares against the same seed's fault-free run.
//
// A chaos-axis scenario over the engine (see scenarios/resilience.scenario);
// the per-trial accounting invariants are verified through the runner's
// observer hook during the deterministic reduction.
//
// Reported per policy: mean reward, reward retention (faulted / fault-free,
// common random numbers), displacement + recovery counts, and the
// drop-cause breakdown (starvation vs fault vs partition).
//
//   ./bench/resilience [--seeds=3] [--snapshot[=PATH]] [--smoke]
//
// --snapshot writes BENCH_resilience.json; --smoke runs a reduced sweep and
// verifies the resilience-accounting invariants (exit 1 on violation).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "sim/dynamic_rr.h"
#include "sim/fault_plan.h"
#include "util/cli.h"
#include "util/json_writer.h"
#include "util/rng.h"

namespace {

using namespace mecar;

/// Accounting invariants every run must satisfy (the --smoke contract).
/// Returns a description of the first violation, or "" when clean.
std::string check_invariants(const std::map<std::string, double>& m) {
  std::ostringstream why;
  const double arrived = m.at("arrived");
  const double completed = m.at("completed");
  const double dropped = m.at("drops");
  const double unfinished = m.at("unfinished");
  const double displaced = m.at("displaced");
  const double starved = m.at("dropped_starvation");
  const double fault = m.at("dropped_fault");
  const double partition = m.at("dropped_partition");
  const double recovered = m.at("recovered");
  const double unrecovered = m.at("unrecovered");
  if (completed + dropped + unfinished != arrived) {
    why << "request conservation: " << completed << "+" << dropped << "+"
        << unfinished << " != " << arrived;
  } else if (starved + fault + partition != dropped) {
    why << "drop-cause breakdown: " << starved << "+" << fault << "+"
        << partition << " != " << dropped;
  } else if (m.at("displaced_outage") + m.at("displaced_partition") !=
             displaced) {
    why << "displacement breakdown: " << m.at("displaced_outage") << "+"
        << m.at("displaced_partition") << " != " << displaced;
  } else if (recovered + unrecovered > displaced) {
    why << "recovered " << recovered << " + unrecovered " << unrecovered
        << " > displaced " << displaced;
  } else if (recovered == 0 && m.at("mean_recovery_slots") != 0.0) {
    why << "mean recovery time without recoveries";
  } else if (m.at("fault_dropped_expected_reward") < 0.0) {
    why << "negative fault-dropped reward";
  }
  return why.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    const bool smoke = cli.has("smoke");

    exp::ScenarioSpec spec;
    spec.name = "resilience";
    spec.axis = exp::SweepAxis::kChaosIntensity;
    spec.points = {0.0, 0.25, 0.5, 0.75, 1.0};
    spec.horizon = 600;
    spec.base.num_requests = 250;
    int default_seeds = 3;
    if (smoke) {
      spec.base.num_requests = 60;
      spec.horizon = 150;
      default_seeds = 2;
      spec.points = {0.0, 0.75};
    }
    const int seeds =
        static_cast<int>(cli.get_int_or("seeds", default_seeds));
    spec.policies = {{"DynamicRR", "DynamicRR"},
                     {"online:Greedy", "Greedy"},
                     {"online:OCORP", "OCORP"},
                     {"online:HeuKKT", "HeuKKT"}};
    spec.metrics = {"reward",
                    "retention",
                    "displaced",
                    "recovered",
                    "mean_recovery_slots",
                    "dropped_starvation",
                    "dropped_fault",
                    "dropped_partition"};

    // Chaos plans must be a pure function of the seed: two generations
    // from equal seeds serialize identically (parallel sweeps depend on
    // this).
    {
      const exp::Instance inst =
          exp::make_instance(7u, exp::InstanceConfig{});
      sim::ChaosParams chaos;
      chaos.intensity = 1.0;
      util::Rng r1(12345u);
      util::Rng r2(12345u);
      std::ostringstream s1;
      std::ostringstream s2;
      sim::write_fault_plan(sim::generate_chaos(inst.topo, chaos, 600, r1),
                            s1);
      sim::write_fault_plan(sim::generate_chaos(inst.topo, chaos, 600, r2),
                            s2);
      if (s1.str() != s2.str()) {
        std::cerr << "FAIL: chaos generation is not seed-deterministic\n";
        return 1;
      }
    }

    int violations = 0;
    exp::Runner runner(spec);
    runner.set_seeds(seeds);
    runner.set_observer([&](const exp::TrialObservation& obs) {
      const auto& m = *obs.metrics;
      const std::string bad = check_invariants(m);
      if (!bad.empty()) {
        ++violations;
        std::cerr << "INVARIANT VIOLATION [" << *obs.policy << ", seed "
                  << obs.seed << ", intensity " << obs.point_value
                  << "]: " << bad << '\n';
      }
      if (obs.point_value == 0.0 &&
          m.at("reward") != m.at("baseline_reward")) {
        ++violations;
        std::cerr << "INVARIANT VIOLATION [" << *obs.policy
                  << "]: empty fault plan changed the reward\n";
      }
    });
    const exp::Report report = runner.run();

    report.print_metric_table(
        std::cout, "Resilience: total reward ($) vs chaos intensity",
        "reward", 1);
    report.print_metric_table(
        std::cout, "Resilience: reward retention (faulted / fault-free)",
        "retention", 3);
    report.print_metric_table(std::cout, "Resilience: displacement events",
                              "displaced", 1);
    report.print_metric_table(std::cout,
                              "Resilience: displaced streams re-placed",
                              "recovered", 1);
    report.print_metric_table(std::cout,
                              "Resilience: mean recovery time (slots)",
                              "mean_recovery_slots", 2);
    report.print_metric_table(std::cout, "Resilience: starvation drops",
                              "dropped_starvation", 1);
    report.print_metric_table(std::cout, "Resilience: fault-attributed drops",
                              "dropped_fault", 1);
    report.print_metric_table(std::cout,
                              "Resilience: partition-attributed drops",
                              "dropped_partition", 1);

    if (cli.has("snapshot")) {
      const std::string path =
          cli.get_or("snapshot", "").empty() ? "BENCH_resilience.json"
                                             : cli.get_or("snapshot", "");
      std::ofstream file(path);
      util::JsonWriter w(file);
      w.begin_object();
      w.key("intensities").begin_array();
      for (const double intensity : report.points()) w.value(intensity);
      w.end_array();
      w.field("seeds", seeds);
      w.key("policies").begin_object();
      for (const std::string& name : report.policies()) {
        w.key(name).begin_object();
        const std::vector<std::pair<std::string, std::string>> series{
            {"reward", "reward"},
            {"retention", "retention"},
            {"displaced", "displaced"},
            {"recovered", "recovered"},
            {"mean_recovery_slots", "mean_recovery_slots"},
            {"dropped_starvation", "dropped_starvation"},
            {"dropped_fault", "dropped_fault"},
            {"dropped_partition", "dropped_partition"}};
        for (const auto& [key, metric] : series) {
          w.key(key).begin_array();
          for (std::size_t p = 0; p < report.num_points(); ++p) {
            w.value(report.mean(metric, name, p));
          }
          w.end_array();
        }
        w.end_object();
      }
      w.end_object();
      w.end_object();
      w.done();
      if (!file.good()) {
        std::cerr << "FAIL: could not write snapshot " << path << '\n';
        return 1;
      }
      std::cout << "snapshot: " << path << '\n';
    }

    if (violations > 0) {
      std::cerr << "FAIL: " << violations << " invariant violation(s)\n";
      return 1;
    }
    if (smoke) {
      // Solver-fault epochs: squeeze the slot-LP pivot budget over one
      // window and jam the factorization over another. The degradation
      // ladder must keep every slot's decision flowing — the run still
      // completes sessions — and the stats must attribute the rungs.
      exp::InstanceConfig config;
      config.num_requests = 60;
      config.horizon_slots = 150;
      const exp::Instance inst = exp::make_instance(5u, config);
      sim::OnlineParams params;
      params.horizon_slots = 150;
      params.collect_detail = true;
      params.faults.solver_budgets.push_back({20, 70, 4});
      params.faults.solver_jams.push_back({80, 130});
      sim::DynamicRrPolicy policy(inst.topo, core::AlgorithmParams{},
                                  sim::DynamicRrParams{}, util::Rng(99u));
      sim::OnlineSimulator simulator(inst.topo, inst.requests, inst.realized,
                                     params);
      const sim::OnlineMetrics metrics = simulator.run(policy);
      const sim::DegradationStats& deg = policy.degradation_stats();
      const long long attributed = deg.slots_warm_lp + deg.slots_cold_lp +
                                   deg.slots_dense_lp + deg.slots_greedy +
                                   deg.slots_carry;
      if (metrics.service_ratios.empty()) {
        std::cerr << "FAIL: no request was ever placed under solver faults\n";
        return 1;
      }
      if (deg.lp_solves > 0 && attributed == 0) {
        std::cerr << "FAIL: degradation ladder attributed no slots\n";
        return 1;
      }
      if (deg.lp_deadline_used == 0) {
        std::cerr << "FAIL: the budget squeeze never produced a usable "
                     "anytime iterate\n";
        return 1;
      }
      if (deg.lp_recovery_actions == 0) {
        std::cerr << "FAIL: the solver jam never engaged the recovery "
                     "ladder\n";
        return 1;
      }
      std::cout << "smoke: solver-fault epochs -> placed="
                << metrics.service_ratios.size()
                << " ladder(warm/cold/dense/greedy/carry)="
                << deg.slots_warm_lp << '/' << deg.slots_cold_lp << '/'
                << deg.slots_dense_lp << '/' << deg.slots_greedy << '/'
                << deg.slots_carry
                << " deadline_used=" << deg.lp_deadline_used
                << " recovery_actions=" << deg.lp_recovery_actions
                << " numerical_errors=" << deg.lp_numerical_errors << '\n';
      std::cout << "smoke: all resilience invariants hold\n";
    }
    std::cout << "shape: reward degrades gracefully with chaos intensity; "
                 "policies that re-place displaced streams globally retain "
                 "more\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "resilience: " << e.what() << '\n';
    return 1;
  }
}
