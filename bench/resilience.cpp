// Resilience study (extension beyond the paper): how the online policies
// degrade when base stations fail mid-horizon. Sweeps the fraction of
// failed stations; reports reward retention and displacement counts.
//
//   ./bench/resilience [--seeds=3]
#include <iostream>

#include "bench/bench_util.h"
#include "sim/dynamic_rr.h"
#include "sim/online_baselines.h"
#include "sim/online_sim.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int_or("seeds", 3));
  const int horizon = 600;
  const std::vector<double> failed_fractions{0.0, 0.1, 0.2, 0.3, 0.4};
  const std::vector<std::string> algos{"DynamicRR", "Greedy", "OCORP",
                                       "HeuKKT"};

  benchx::SeriesCollector reward(algos);
  benchx::SeriesCollector displaced(algos);

  for (double fraction : failed_fractions) {
    reward.start_point();
    displaced.start_point();
    for (unsigned seed : benchx::bench_seeds(seeds)) {
      benchx::InstanceConfig config;
      config.num_requests = 250;
      config.horizon_slots = horizon;
      const auto inst = benchx::make_instance(seed, config);
      sim::OnlineParams params;
      params.horizon_slots = horizon;
      const int failed = static_cast<int>(fraction *
                                          inst.topo.num_stations());
      for (int bs = 0; bs < failed; ++bs) {
        // Middle half of the horizon.
        params.outages.push_back({bs, horizon / 4, 3 * horizon / 4});
      }

      auto run = [&](const std::string& name, sim::OnlinePolicy& policy) {
        sim::OnlineSimulator simulator(inst.topo, inst.requests,
                                       inst.realized, params);
        const auto m = simulator.run(policy);
        reward.add(name, m.total_reward);
        displaced.add(name, m.displaced);
      };
      {
        sim::DynamicRrPolicy policy(inst.topo, core::AlgorithmParams{},
                                    sim::DynamicRrParams{},
                                    util::Rng(seed + 1));
        run("DynamicRR", policy);
      }
      {
        sim::GreedyOnlinePolicy policy(inst.topo, core::AlgorithmParams{});
        run("Greedy", policy);
      }
      {
        sim::OcorpOnlinePolicy policy(inst.topo, core::AlgorithmParams{});
        run("OCORP", policy);
      }
      {
        sim::HeuKktOnlinePolicy policy(inst.topo, core::AlgorithmParams{});
        run("HeuKKT", policy);
      }
    }
  }

  auto emit = [&](const std::string& title, const benchx::SeriesCollector& s,
                  int precision) {
    std::vector<std::string> header{"failed fraction"};
    header.insert(header.end(), algos.begin(), algos.end());
    util::Table table(header);
    for (std::size_t p = 0; p < failed_fractions.size(); ++p) {
      std::vector<double> row;
      for (const auto& a : algos) row.push_back(s.mean_at(a, p));
      table.add_numeric_row(util::format_double(failed_fractions[p], 1), row,
                            precision);
    }
    table.print(std::cout, title);
    std::cout << '\n';
  };

  emit("Resilience: total reward ($) vs failed-station fraction", reward, 1);
  emit("Resilience: displacement events vs failed-station fraction",
       displaced, 1);
  std::cout << "shape: reward degrades gracefully with the failed fraction; "
               "policies that re-place displaced streams globally retain "
               "more\n";
  return 0;
}
