// Resilience under chaos (extension beyond the paper): how the online
// policies degrade as injected-fault intensity rises. Each sweep point
// feeds every policy a seeded chaos plan (correlated bursts of station
// outages, capacity brownouts, link cuts and latency inflation — see
// sim/fault_plan.h) and compares against the same seed's fault-free run.
//
// Reported per policy: mean reward, reward retention (faulted / fault-free,
// common random numbers), displacement + recovery counts, and the
// drop-cause breakdown (starvation vs fault vs partition).
//
//   ./bench/resilience [--seeds=3] [--snapshot[=PATH]] [--smoke]
//
// --snapshot writes BENCH_resilience.json; --smoke runs a reduced sweep and
// verifies the resilience-accounting invariants (exit 1 on violation).
#include <array>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/dynamic_rr.h"
#include "sim/fault_plan.h"
#include "sim/online_baselines.h"
#include "sim/online_sim.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace mecar;

constexpr std::size_t kNumPolicies = 4;
const std::array<std::string, kNumPolicies> kPolicies = {
    "DynamicRR", "Greedy", "OCORP", "HeuKKT"};

std::unique_ptr<sim::OnlinePolicy> make_policy(std::size_t k,
                                               const mec::Topology& topo,
                                               unsigned seed) {
  switch (k) {
    case 0:
      return std::make_unique<sim::DynamicRrPolicy>(
          topo, core::AlgorithmParams{}, sim::DynamicRrParams{},
          util::Rng(seed + 1));
    case 1:
      return std::make_unique<sim::GreedyOnlinePolicy>(topo,
                                                       core::AlgorithmParams{});
    case 2:
      return std::make_unique<sim::OcorpOnlinePolicy>(topo,
                                                      core::AlgorithmParams{});
    default:
      return std::make_unique<sim::HeuKktOnlinePolicy>(
          topo, core::AlgorithmParams{});
  }
}

/// One policy's outcome on one (seed, intensity) cell, plus the same seed's
/// fault-free reward for the retention ratio.
struct PolicyOutcome {
  double reward = 0.0;
  double baseline_reward = 0.0;
  int arrived = 0;
  int completed = 0;
  int dropped = 0;
  int unfinished = 0;
  int displaced = 0;
  sim::ResilienceReport resilience;
};

struct TrialOut {
  std::array<PolicyOutcome, kNumPolicies> policy;
};

struct SweepConfig {
  int num_requests = 250;
  int horizon = 600;
  int seeds = 3;
};

TrialOut run_trial(unsigned seed, double intensity, const SweepConfig& cfg) {
  benchx::InstanceConfig iconfig;
  iconfig.num_requests = cfg.num_requests;
  iconfig.horizon_slots = cfg.horizon;
  const benchx::Instance inst = benchx::make_instance(seed, iconfig);

  sim::FaultPlan plan;
  if (intensity > 0.0) {
    sim::ChaosParams chaos;
    chaos.intensity = intensity;
    // The plan derives entirely from the trial seed (offset so the chaos
    // stream is independent of the workload stream) — reproducible under
    // MECAR_THREADS parallelism.
    util::Rng chaos_rng(seed * 2654435761u + 17u);
    plan = sim::generate_chaos(inst.topo, chaos, cfg.horizon, chaos_rng);
  }

  TrialOut out;
  for (std::size_t k = 0; k < kNumPolicies; ++k) {
    sim::OnlineParams params;
    params.horizon_slots = cfg.horizon;

    // Fault-free reference with common random numbers.
    auto ref_policy = make_policy(k, inst.topo, seed);
    sim::OnlineSimulator ref_sim(inst.topo, inst.requests, inst.realized,
                                 params);
    const sim::OnlineMetrics ref = ref_sim.run(*ref_policy);

    sim::OnlineMetrics faulted = ref;
    if (!plan.empty()) {
      params.faults = plan;
      auto policy = make_policy(k, inst.topo, seed);
      sim::OnlineSimulator faulted_sim(inst.topo, inst.requests,
                                       inst.realized, params);
      faulted = faulted_sim.run(*policy);
    }

    PolicyOutcome& po = out.policy[k];
    po.reward = faulted.total_reward;
    po.baseline_reward = ref.total_reward;
    po.arrived = faulted.arrived;
    po.completed = faulted.completed;
    po.dropped = faulted.dropped;
    po.unfinished = faulted.unfinished;
    po.displaced = faulted.displaced;
    po.resilience = faulted.resilience;
  }
  return out;
}

/// Accounting invariants every run must satisfy (the --smoke contract).
/// Returns a description of the first violation, or "" when clean.
std::string check_invariants(const PolicyOutcome& po) {
  std::ostringstream why;
  const auto& rs = po.resilience;
  if (po.completed + po.dropped + po.unfinished != po.arrived) {
    why << "request conservation: " << po.completed << "+" << po.dropped
        << "+" << po.unfinished << " != " << po.arrived;
  } else if (rs.dropped_starvation + rs.dropped_fault + rs.dropped_partition !=
             po.dropped) {
    why << "drop-cause breakdown: " << rs.dropped_starvation << "+"
        << rs.dropped_fault << "+" << rs.dropped_partition
        << " != " << po.dropped;
  } else if (rs.displaced_outage + rs.displaced_partition != po.displaced) {
    why << "displacement breakdown: " << rs.displaced_outage << "+"
        << rs.displaced_partition << " != " << po.displaced;
  } else if (rs.recovered + rs.unrecovered > po.displaced) {
    why << "recovered " << rs.recovered << " + unrecovered " << rs.unrecovered
        << " > displaced " << po.displaced;
  } else if (rs.recovered == 0 && rs.mean_recovery_slots != 0.0) {
    why << "mean recovery time without recoveries";
  } else if (rs.fault_dropped_expected_reward < 0.0) {
    why << "negative fault-dropped reward";
  }
  return why.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    const bool smoke = cli.has("smoke");

    SweepConfig cfg;
    std::vector<double> intensities{0.0, 0.25, 0.5, 0.75, 1.0};
    if (smoke) {
      cfg.num_requests = 60;
      cfg.horizon = 150;
      cfg.seeds = 2;
      intensities = {0.0, 0.75};
    }
    cfg.seeds = static_cast<int>(cli.get_int_or("seeds", cfg.seeds));

    // Chaos plans must be a pure function of the seed: two generations
    // from equal seeds serialize identically (parallel sweeps depend on
    // this).
    {
      const benchx::Instance inst =
          benchx::make_instance(7u, benchx::InstanceConfig{});
      sim::ChaosParams chaos;
      chaos.intensity = 1.0;
      util::Rng r1(12345u);
      util::Rng r2(12345u);
      std::ostringstream s1;
      std::ostringstream s2;
      sim::write_fault_plan(sim::generate_chaos(inst.topo, chaos, 600, r1),
                            s1);
      sim::write_fault_plan(sim::generate_chaos(inst.topo, chaos, 600, r2),
                            s2);
      if (s1.str() != s2.str()) {
        std::cerr << "FAIL: chaos generation is not seed-deterministic\n";
        return 1;
      }
    }

    const std::vector<unsigned> seeds = benchx::bench_seeds(cfg.seeds);
    const std::vector<std::string> names(kPolicies.begin(), kPolicies.end());
    benchx::SeriesCollector reward(names);
    benchx::SeriesCollector retention(names);
    benchx::SeriesCollector displaced(names);
    benchx::SeriesCollector recovered(names);
    benchx::SeriesCollector recovery_slots(names);
    benchx::SeriesCollector drop_starved(names);
    benchx::SeriesCollector drop_fault(names);
    benchx::SeriesCollector drop_partition(names);
    int violations = 0;

    for (double intensity : intensities) {
      reward.start_point();
      retention.start_point();
      displaced.start_point();
      recovered.start_point();
      recovery_slots.start_point();
      drop_starved.start_point();
      drop_fault.start_point();
      drop_partition.start_point();

      // Seeds fan out over the process thread pool; the reduction below is
      // serial and in seed order, so output is bit-identical to a serial
      // sweep.
      const std::vector<TrialOut> trials = benchx::sweep_seeds(
          seeds,
          [&](unsigned seed) { return run_trial(seed, intensity, cfg); });

      for (std::size_t t = 0; t < trials.size(); ++t) {
        for (std::size_t k = 0; k < kNumPolicies; ++k) {
          const PolicyOutcome& po = trials[t].policy[k];
          const std::string bad = check_invariants(po);
          if (!bad.empty()) {
            ++violations;
            std::cerr << "INVARIANT VIOLATION [" << kPolicies[k] << ", seed "
                      << seeds[t] << ", intensity " << intensity
                      << "]: " << bad << '\n';
          }
          if (intensity == 0.0 && po.reward != po.baseline_reward) {
            ++violations;
            std::cerr << "INVARIANT VIOLATION [" << kPolicies[k]
                      << "]: empty fault plan changed the reward\n";
          }
          reward.add(kPolicies[k], po.reward);
          retention.add(kPolicies[k],
                        po.baseline_reward > 0.0
                            ? po.reward / po.baseline_reward
                            : 1.0);
          displaced.add(kPolicies[k], po.displaced);
          recovered.add(kPolicies[k], po.resilience.recovered);
          recovery_slots.add(kPolicies[k], po.resilience.mean_recovery_slots);
          drop_starved.add(kPolicies[k], po.resilience.dropped_starvation);
          drop_fault.add(kPolicies[k], po.resilience.dropped_fault);
          drop_partition.add(kPolicies[k], po.resilience.dropped_partition);
        }
      }
    }

    auto emit = [&](const std::string& title,
                    const benchx::SeriesCollector& s, int precision) {
      std::vector<std::string> header{"intensity"};
      header.insert(header.end(), names.begin(), names.end());
      util::Table table(header);
      for (std::size_t p = 0; p < intensities.size(); ++p) {
        std::vector<double> row;
        for (const auto& a : names) row.push_back(s.mean_at(a, p));
        table.add_numeric_row(util::format_double(intensities[p], 2), row,
                              precision);
      }
      table.print(std::cout, title);
      std::cout << '\n';
    };

    emit("Resilience: total reward ($) vs chaos intensity", reward, 1);
    emit("Resilience: reward retention (faulted / fault-free)", retention, 3);
    emit("Resilience: displacement events", displaced, 1);
    emit("Resilience: displaced streams re-placed", recovered, 1);
    emit("Resilience: mean recovery time (slots)", recovery_slots, 2);
    emit("Resilience: starvation drops", drop_starved, 1);
    emit("Resilience: fault-attributed drops", drop_fault, 1);
    emit("Resilience: partition-attributed drops", drop_partition, 1);

    if (cli.has("snapshot")) {
      const std::string path =
          cli.get_or("snapshot", "").empty() ? "BENCH_resilience.json"
                                             : cli.get_or("snapshot", "");
      std::ostringstream js;
      js << "{\n  \"intensities\": [";
      for (std::size_t p = 0; p < intensities.size(); ++p) {
        js << (p ? ", " : "") << intensities[p];
      }
      js << "],\n  \"seeds\": " << cfg.seeds
         << ",\n  \"policies\": {\n";
      auto series = [&](const benchx::SeriesCollector& s,
                        const std::string& name) {
        std::ostringstream o;
        o << "[";
        for (std::size_t p = 0; p < intensities.size(); ++p) {
          o << (p ? ", " : "") << s.mean_at(name, p);
        }
        o << "]";
        return o.str();
      };
      for (std::size_t k = 0; k < kNumPolicies; ++k) {
        const std::string& name = kPolicies[k];
        js << "    \"" << name << "\": {\n"
           << "      \"reward\": " << series(reward, name) << ",\n"
           << "      \"retention\": " << series(retention, name) << ",\n"
           << "      \"displaced\": " << series(displaced, name) << ",\n"
           << "      \"recovered\": " << series(recovered, name) << ",\n"
           << "      \"mean_recovery_slots\": "
           << series(recovery_slots, name) << ",\n"
           << "      \"dropped_starvation\": " << series(drop_starved, name)
           << ",\n"
           << "      \"dropped_fault\": " << series(drop_fault, name) << ",\n"
           << "      \"dropped_partition\": " << series(drop_partition, name)
           << "\n    }" << (k + 1 < kNumPolicies ? "," : "") << "\n";
      }
      js << "  }\n}\n";
      std::ofstream file(path);
      file << js.str();
      if (!file.good()) {
        std::cerr << "FAIL: could not write snapshot " << path << '\n';
        return 1;
      }
      std::cout << "snapshot: " << path << '\n';
    }

    if (violations > 0) {
      std::cerr << "FAIL: " << violations << " invariant violation(s)\n";
      return 1;
    }
    if (smoke) std::cout << "smoke: all resilience invariants hold\n";
    std::cout << "shape: reward degrades gracefully with chaos intensity; "
                 "policies that re-place displaced streams globally retain "
                 "more\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "resilience: " << e.what() << '\n';
    return 1;
  }
}
