// Figure 6 reproduction: online algorithms DynamicRR, Greedy, OCORP,
// HeuKKT as the maximum data rate sweeps {15, 20, 25, 30, 35} MB/s
// (|R| = 150, 600-slot horizon).
//   (a) total reward   (b) average request latency
//
// A thin spec over the scenario engine (see scenarios/fig6_rate.scenario).
// DynamicRR's threshold range scales with the demand support per sweep
// point, as the provider would (C_unit * rates).
//
//   ./bench/fig6_rate [--seeds=3]
#include <iostream>

#include "exp/runner.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);

  exp::ScenarioSpec spec;
  spec.name = "fig6_rate";
  spec.axis = exp::SweepAxis::kRateMax;
  spec.points = {15.0, 20.0, 25.0, 30.0, 35.0};
  spec.horizon = 600;
  // Smaller rates mean lighter requests; a larger request pool keeps the
  // network in the contended regime the figure studies.
  spec.base.num_requests = 350;
  spec.base.rate_min = 10.0;  // the sweep moves only the maximum
  spec.scale_thresholds = true;
  spec.threshold_headroom = 5.0;
  spec.policies = {{"DynamicRR", "DynamicRR"},
                   {"online:Greedy", "Greedy"},
                   {"online:OCORP", "OCORP"},
                   {"online:HeuKKT", "HeuKKT"}};
  spec.metrics = {"reward", "latency"};

  exp::Runner runner(std::move(spec));
  runner.set_seeds(static_cast<int>(cli.get_int_or("seeds", 3)));
  const exp::Report report = runner.run();

  report.print_metric_table(std::cout,
                            "Fig 6(a): total reward ($) vs maximum data rate",
                            "reward", 1);
  report.print_metric_table(
      std::cout, "Fig 6(b): average latency (ms) vs maximum data rate",
      "latency", 2);

  std::cout << "shape: reward and latency should both grow with the maximum "
               "data rate\n";
  return 0;
}
