// Figure 6 reproduction: online algorithms DynamicRR, Greedy, OCORP,
// HeuKKT as the maximum data rate sweeps {15, 20, 25, 30, 35} MB/s
// (|R| = 150, 600-slot horizon).
//   (a) total reward   (b) average request latency
//
//   ./bench/fig6_rate [--seeds=3]
#include <iostream>

#include "bench/bench_util.h"
#include "sim/dynamic_rr.h"
#include "sim/online_baselines.h"
#include "sim/online_sim.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int_or("seeds", 3));
  const std::vector<double> points{15.0, 20.0, 25.0, 30.0, 35.0};
  const std::vector<std::string> algos{"DynamicRR", "Greedy", "OCORP",
                                       "HeuKKT"};

  benchx::SeriesCollector reward(algos);
  benchx::SeriesCollector latency(algos);

  // Seeds run concurrently (see bench_util.h); the ordered reduction keeps
  // the printed figure bit-identical to the serial sweep. Slot order
  // follows `algos`: DynamicRR, Greedy, OCORP, HeuKKT.
  struct Sample {
    double reward[4];
    double latency[4];
  };
  for (double rate_max : points) {
    reward.start_point();
    latency.start_point();
    const auto samples = benchx::sweep_seeds(
        benchx::bench_seeds(seeds), [&](unsigned seed) {
          benchx::InstanceConfig config;
          // Smaller rates mean lighter requests; a larger request pool keeps
          // the network in the contended regime the figure studies.
          config.num_requests = 350;
          config.rate_min = 10.0;  // the sweep moves only the maximum
          config.rate_max = rate_max;
          config.horizon_slots = 600;
          const auto inst = benchx::make_instance(seed, config);
          sim::OnlineParams params;
          params.horizon_slots = 600;

          Sample sample{};
          auto run = [&](std::size_t slot, sim::OnlinePolicy& policy) {
            sim::OnlineSimulator simulator(inst.topo, inst.requests,
                                           inst.realized, params);
            const auto m = simulator.run(policy);
            sample.reward[slot] = m.total_reward;
            sample.latency[slot] = m.avg_latency_ms;
          };
          {
            // Scale the threshold range with the demand support, as the
            // provider would (C_unit * rates).
            sim::DynamicRrParams dparams;
            dparams.threshold_min_mhz = 10.0 * core::AlgorithmParams{}.c_unit;
            dparams.threshold_max_mhz =
                (rate_max + 5.0) * core::AlgorithmParams{}.c_unit;
            sim::DynamicRrPolicy policy(inst.topo, core::AlgorithmParams{},
                                        dparams, util::Rng(seed + 1));
            run(0, policy);
          }
          {
            sim::GreedyOnlinePolicy policy(inst.topo, core::AlgorithmParams{});
            run(1, policy);
          }
          {
            sim::OcorpOnlinePolicy policy(inst.topo, core::AlgorithmParams{});
            run(2, policy);
          }
          {
            sim::HeuKktOnlinePolicy policy(inst.topo, core::AlgorithmParams{});
            run(3, policy);
          }
          return sample;
        });
    for (const Sample& sample : samples) {
      for (std::size_t a = 0; a < algos.size(); ++a) {
        reward.add(algos[a], sample.reward[a]);
        latency.add(algos[a], sample.latency[a]);
      }
    }
  }

  auto emit = [&](const std::string& title, const benchx::SeriesCollector& s,
                  int precision) {
    std::vector<std::string> header{"max rate (MB/s)"};
    header.insert(header.end(), algos.begin(), algos.end());
    util::Table table(header);
    for (std::size_t p = 0; p < points.size(); ++p) {
      std::vector<double> row;
      for (const auto& a : algos) row.push_back(s.mean_at(a, p));
      table.add_numeric_row(util::format_double(points[p], 0), row,
                            precision);
    }
    table.print(std::cout, title);
    std::cout << '\n';
  };

  emit("Fig 6(a): total reward ($) vs maximum data rate", reward, 1);
  emit("Fig 6(b): average latency (ms) vs maximum data rate", latency, 2);

  std::cout << "shape: reward and latency should both grow with the maximum "
               "data rate\n";
  return 0;
}
