// Micro-benchmarks and self-checks for the telemetry subsystem (src/obs):
// how much one counter add / histogram observe / trace emit costs, and an
// end-to-end overhead probe comparing an instrumented fig4-mini trial
// against the compile-time budget (DESIGN.md §10: <5% vs -DMECAR_TELEMETRY=OFF).
//
// Three entry modes:
//   ./bench/micro_telemetry              google-benchmark timings
//   ./bench/micro_telemetry --smoke      fast correctness checks (ctest):
//                                        cross-thread sums exact, ring wrap
//                                        accounting, instrumented trial moves
//                                        the catalog counters (or keeps them
//                                        at zero when compiled out)
//   ./bench/micro_telemetry --overhead   times a fig4-mini sweep and prints
//                                        ms/trial; run it against both the
//                                        default and the notelemetry build
//                                        to measure the recording overhead
//   ./bench/micro_telemetry --snapshot[=path]
//                                        writes BENCH_telemetry.json: per-op
//                                        recording costs, ms/trial, and an
//                                        instrumented trial's catalog values
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "obs/catalog.h"
#include "obs/event_trace.h"
#include "obs/telemetry.h"
#include "sim/dynamic_rr.h"
#include "sim/online_sim.h"
#include "util/json_writer.h"
#include "util/timer.h"

namespace {

using namespace mecar;

/// One fig4-style online trial (same construction as micro_parallel):
/// heavy enough that the per-event telemetry cost is realistic in context.
double fig4_mini_trial(unsigned seed, int num_requests, int horizon) {
  benchx::InstanceConfig config;
  config.num_requests = num_requests;
  config.horizon_slots = horizon;
  const auto inst = benchx::make_instance(seed, config);
  sim::OnlineParams params;
  params.horizon_slots = horizon;
  sim::DynamicRrPolicy policy(inst.topo, core::AlgorithmParams{},
                              sim::DynamicRrParams{}, util::Rng(seed + 1));
  sim::OnlineSimulator simulator(inst.topo, inst.requests, inst.realized,
                                 params);
  return simulator.run(policy).total_reward;
}

// ---------------------------------------------------------------------------
// google-benchmark cases.

void BM_CounterAdd(benchmark::State& state) {
  obs::MetricRegistry reg;
  obs::Counter c = reg.counter("bench.count");
  for (auto _ : state) {
    c.add();
  }
  benchmark::DoNotOptimize(reg.snapshot().counters.data());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricRegistry reg;
  obs::Histogram h =
      reg.histogram("bench.hist", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
  double v = 0.0;
  for (auto _ : state) {
    h.observe(v);
    v += 0.37;
    if (v > 40.0) v = 0.0;
  }
  benchmark::DoNotOptimize(reg.snapshot().histograms.data());
}
BENCHMARK(BM_HistogramObserve);

void BM_TraceEmitDisabled(benchmark::State& state) {
  obs::EventTrace tr;  // never enabled: one relaxed atomic load per emit
  for (auto _ : state) {
    tr.emit(obs::EventKind::kAdmission, 1.0, 2.0);
  }
  benchmark::DoNotOptimize(tr.snapshot().dropped);
}
BENCHMARK(BM_TraceEmitDisabled);

void BM_TraceEmitEnabled(benchmark::State& state) {
  obs::EventTrace tr;
  tr.enable(1 << 12);
  (void)tr.begin_run("bench", 1.0);
  for (auto _ : state) {
    tr.emit(obs::EventKind::kAdmission, 1.0, 2.0);
  }
  tr.disable();
  benchmark::DoNotOptimize(tr.snapshot().dropped);
}
BENCHMARK(BM_TraceEmitEnabled);

// ---------------------------------------------------------------------------
// --smoke: fast correctness checks, wired into ctest.

int run_smoke() {
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::cout << (ok ? "  ok: " : "FAIL: ") << what << '\n';
    if (!ok) ++failures;
  };

  // Cross-thread counter aggregation is exact for integral increments.
  {
    obs::MetricRegistry reg;
    obs::Counter c = reg.counter("smoke.count");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 50000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&c] {
        for (int i = 0; i < kPerThread; ++i) c.add();
      });
    }
    for (std::thread& w : workers) w.join();
    const double value =
        reg.snapshot().find_counter("smoke.count")->value;
#if MECAR_TELEMETRY_ENABLED
    check(value == static_cast<double>(kThreads) * kPerThread,
          "cross-thread counter sum is exact");
#else
    check(value == 0.0, "counter stays zero when telemetry is compiled out");
#endif
  }

  // Ring wrap: capacity survivors + dropped must account for every emit.
  {
    obs::EventTrace tr;
    tr.enable(8);
    (void)tr.begin_run("smoke", 1.0);
    for (int i = 0; i < 100; ++i) {
      tr.set_slot(i);
      tr.emit(obs::EventKind::kSlotBegin);
    }
    const auto snap = tr.snapshot();
    tr.disable();
    check(snap.events.size() + snap.dropped == 100,
          "ring wrap accounts for every emitted event");
    check(snap.events.size() == 8 && snap.events.front().slot == 92,
          "ring keeps the newest events, oldest first");
  }

  // End to end: an instrumented trial moves the catalog counters exactly
  // when recording is compiled in.
  {
    obs::registry().reset();
    (void)fig4_mini_trial(1u, 40, 60);
    const auto snap = obs::registry().snapshot();
    const double pivots = snap.find_counter("lp.pivots")->value;
    const double slots = snap.find_counter("sim.slots")->value;
#if MECAR_TELEMETRY_ENABLED
    check(pivots > 0.0, "fig4-mini trial recorded lp.pivots");
    check(slots == 60.0, "fig4-mini trial recorded one count per slot");
#else
    check(pivots == 0.0 && slots == 0.0,
          "compiled-out build records nothing");
#endif
    obs::registry().reset();
  }

  std::cout << (failures == 0 ? "smoke: all checks passed\n"
                              : "smoke: FAILURES\n");
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --overhead: ms/trial for the ON-vs-OFF comparison (DESIGN.md §10).

int run_overhead() {
  const auto seeds = benchx::bench_seeds(6);
  constexpr int kRepeats = 3;
  // Warm-up pass pages in code and data.
  for (unsigned seed : seeds) (void)fig4_mini_trial(seed, 60, 120);
  double best_ms = 1e300;
  for (int r = 0; r < kRepeats; ++r) {
    util::Timer t;
    for (unsigned seed : seeds) (void)fig4_mini_trial(seed, 60, 120);
    best_ms = std::min(best_ms, t.elapsed_ms());
  }
  const double per_trial = best_ms / static_cast<double>(seeds.size());
  std::cout << "telemetry_compiled="
            << (MECAR_TELEMETRY_ENABLED ? "on" : "off")
            << " trials=" << seeds.size() << " best_sweep_ms=" << best_ms
            << " ms_per_trial=" << per_trial << '\n';
  return 0;
}

// ---------------------------------------------------------------------------
// --snapshot: the BENCH_telemetry.json recording-cost snapshot.

/// Best-of-kRepeats nanoseconds per call of `op` over `iters` iterations.
template <typename Op>
double time_op_ns(int iters, Op op) {
  constexpr int kRepeats = 3;
  double best_ms = 1e300;
  for (int r = 0; r < kRepeats; ++r) {
    util::Timer t;
    for (int i = 0; i < iters; ++i) op(i);
    best_ms = std::min(best_ms, t.elapsed_ms());
  }
  return best_ms * 1e6 / static_cast<double>(iters);
}

int run_snapshot(const std::string& path) {
  constexpr int kIters = 200000;
  obs::MetricRegistry reg;
  obs::Counter c = reg.counter("bench.count");
  obs::Histogram h =
      reg.histogram("bench.hist", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
  const double counter_ns = time_op_ns(kIters, [&](int) { c.add(); });
  const double histogram_ns =
      time_op_ns(kIters, [&](int i) { h.observe((i % 100) * 0.4); });
  obs::EventTrace cold;  // never enabled: one relaxed load per emit
  const double emit_disabled_ns = time_op_ns(kIters, [&](int) {
    cold.emit(obs::EventKind::kAdmission, 1.0, 2.0);
  });
  obs::EventTrace hot;
  hot.enable(1 << 12);
  (void)hot.begin_run("bench", 1.0);
  const double emit_enabled_ns = time_op_ns(kIters, [&](int) {
    hot.emit(obs::EventKind::kAdmission, 1.0, 2.0);
  });
  hot.disable();
  benchmark::DoNotOptimize(reg.snapshot().counters.data());
  benchmark::DoNotOptimize(hot.snapshot().dropped);

  // End-to-end cost and one instrumented trial's catalog values (the same
  // series `mecar_cli experiment --metrics-out` exports).
  const auto seeds = benchx::bench_seeds(6);
  for (unsigned seed : seeds) (void)fig4_mini_trial(seed, 60, 120);
  double best_sweep_ms = 1e300;
  for (int r = 0; r < 3; ++r) {
    util::Timer t;
    for (unsigned seed : seeds) (void)fig4_mini_trial(seed, 60, 120);
    best_sweep_ms = std::min(best_sweep_ms, t.elapsed_ms());
  }
  obs::registry().reset();
  (void)fig4_mini_trial(1u, 40, 60);
  const auto snap = obs::registry().snapshot();
  const double lp_pivots = snap.find_counter("lp.pivots")->value;
  const double sim_slots = snap.find_counter("sim.slots")->value;
  const obs::HistogramSnapshot* wall =
      snap.find_histogram("sim.slot_wall_ms");
  obs::registry().reset();

  std::ofstream os(path);
  if (!os) {
    std::cerr << "error: could not write " << path << '\n';
    return 1;
  }
  util::JsonWriter w(os);
  w.begin_object();
  w.field("telemetry_compiled", MECAR_TELEMETRY_ENABLED ? 1 : 0);
  w.key("op_ns").begin_object();
  w.field("counter_add", counter_ns);
  w.field("histogram_observe", histogram_ns);
  w.field("trace_emit_disabled", emit_disabled_ns);
  w.field("trace_emit_enabled", emit_enabled_ns);
  w.end_object();
  w.key("fig4_mini").begin_object();
  w.field("trials", static_cast<int>(seeds.size()));
  w.field("best_sweep_ms", best_sweep_ms);
  w.field("ms_per_trial",
          best_sweep_ms / static_cast<double>(seeds.size()));
  w.field("lp_pivots", lp_pivots);
  w.field("sim_slots", sim_slots);
  w.field("slot_wall_ms_p50", wall != nullptr ? wall->percentile(50.0) : 0.0);
  w.field("slot_wall_ms_p95", wall != nullptr ? wall->percentile(95.0) : 0.0);
  w.field("slot_wall_ms_p99", wall != nullptr ? wall->percentile(99.0) : 0.0);
  w.end_object();
  w.end_object();
  w.done();
  if (!os.good()) {
    std::cerr << "error: could not write " << path << '\n';
    return 1;
  }
  std::cout << "snapshot: " << path << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
    if (std::strcmp(argv[i], "--overhead") == 0) return run_overhead();
    if (std::strncmp(argv[i], "--snapshot", 10) == 0) {
      const char* eq = std::strchr(argv[i], '=');
      return run_snapshot(eq != nullptr ? std::string(eq + 1)
                                        : "BENCH_telemetry.json");
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
