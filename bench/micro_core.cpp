// Micro-benchmarks (google-benchmark) for the core pipeline stages:
// topology generation, workload generation, randomized rounding +
// admission (Appro end-to-end), Heu migration overhead, and one DynamicRR
// simulation slot.
#include <benchmark/benchmark.h>

#include "core/appro.h"
#include "core/heu.h"
#include "core/rounding.h"
#include "lp/simplex.h"
#include "mec/workload.h"
#include "sim/dynamic_rr.h"
#include "sim/online_sim.h"
#include "util/rng.h"

namespace {

using namespace mecar;

void BM_TopologyGeneration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  mec::TopologyParams params;
  params.num_stations = n;
  util::Rng rng(3);
  for (auto _ : state) {
    auto topo = mec::generate_topology(params, rng);
    benchmark::DoNotOptimize(topo.num_stations());
  }
}
BENCHMARK(BM_TopologyGeneration)->Arg(20)->Arg(50)->Arg(100);

void BM_WorkloadGeneration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(5);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams params;
  params.num_requests = n;
  for (auto _ : state) {
    auto requests = mec::generate_requests(params, topo, rng);
    benchmark::DoNotOptimize(requests.size());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Arg(150)->Arg(300);

struct Fixture {
  mec::Topology topo;
  std::vector<mec::ARRequest> requests;
  std::vector<std::size_t> realized;
  static Fixture make(int num_requests) {
    util::Rng rng(9);
    mec::Topology topo = mec::generate_topology({}, rng);
    mec::WorkloadParams wparams;
    wparams.num_requests = num_requests;
    auto requests = mec::generate_requests(wparams, topo, rng);
    auto realized = core::realize_demand_levels(requests, rng);
    return {std::move(topo), std::move(requests), std::move(realized)};
  }
};

void BM_ApproEndToEnd(benchmark::State& state) {
  const auto fixture = Fixture::make(static_cast<int>(state.range(0)));
  const core::AlgorithmParams params;
  unsigned seed = 0;
  for (auto _ : state) {
    util::Rng rng(++seed);
    auto result = core::run_appro(fixture.topo, fixture.requests,
                                  fixture.realized, params, rng);
    benchmark::DoNotOptimize(result.total_reward());
  }
}
BENCHMARK(BM_ApproEndToEnd)->Arg(50)->Arg(150)
    ->Unit(benchmark::kMillisecond);

void BM_HeuEndToEnd(benchmark::State& state) {
  const auto fixture = Fixture::make(static_cast<int>(state.range(0)));
  const core::AlgorithmParams params;
  unsigned seed = 0;
  for (auto _ : state) {
    util::Rng rng(++seed);
    auto result = core::run_heu(fixture.topo, fixture.requests,
                                fixture.realized, params, rng);
    benchmark::DoNotOptimize(result.total_reward());
  }
}
BENCHMARK(BM_HeuEndToEnd)->Arg(50)->Arg(150)->Unit(benchmark::kMillisecond);

void BM_RandomizedRoundingOnly(benchmark::State& state) {
  const auto fixture = Fixture::make(150);
  const core::AlgorithmParams params;
  const auto inst = core::build_slot_lp(fixture.topo, fixture.requests,
                                        params);
  const auto res = lp::SimplexSolver().solve(inst.model);
  util::Rng rng(13);
  for (auto _ : state) {
    auto picks = core::randomized_round(inst, res.x, 4.0,
                                        fixture.requests.size(), rng);
    benchmark::DoNotOptimize(picks.size());
  }
}
BENCHMARK(BM_RandomizedRoundingOnly);

void BM_DynamicRrFullHorizon(benchmark::State& state) {
  util::Rng rng(17);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = static_cast<int>(state.range(0));
  wparams.horizon_slots = 200;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = core::realize_demand_levels(requests, rng);
  sim::OnlineParams params;
  params.horizon_slots = 200;
  unsigned seed = 0;
  for (auto _ : state) {
    sim::DynamicRrPolicy policy(topo, core::AlgorithmParams{},
                                sim::DynamicRrParams{}, util::Rng(++seed));
    sim::OnlineSimulator simulator(topo, requests, realized, params);
    auto metrics = simulator.run(policy);
    benchmark::DoNotOptimize(metrics.total_reward);
  }
}
BENCHMARK(BM_DynamicRrFullHorizon)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
