// Figure 3 reproduction: offline algorithms Appro, Heu, Greedy, OCORP,
// HeuKKT over |R| in {100, 150, 200, 250, 300}.
//   (a) total reward   (b) average request latency   (c) running time
//
// A thin spec over the scenario engine (see scenarios/fig3_offline.scenario
// for the equivalent `mecar_cli experiment` input).
//
//   ./bench/fig3_offline [--seeds=3]
#include <iostream>

#include "exp/runner.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);

  exp::ScenarioSpec spec;
  spec.name = "fig3_offline";
  spec.axis = exp::SweepAxis::kRequests;
  spec.points = {100, 150, 200, 250, 300};
  spec.horizon = 0;
  spec.policies = {{"Appro", "Appro"},
                   {"Heu", "Heu"},
                   {"offline:Greedy", "Greedy"},
                   {"offline:OCORP", "OCORP"},
                   {"offline:HeuKKT", "HeuKKT"}};
  spec.metrics = {"reward", "latency", "runtime_ms"};

  exp::Runner runner(std::move(spec));
  runner.set_seeds(static_cast<int>(cli.get_int_or("seeds", 3)));
  const exp::Report report = runner.run();

  report.print_metric_table(
      std::cout, "Fig 3(a): total reward ($) vs number of requests", "reward",
      1);
  report.print_metric_table(
      std::cout, "Fig 3(b): average latency (ms) vs number of requests",
      "latency", 2);
  report.print_metric_table(
      std::cout, "Fig 3(c): running time (ms) vs number of requests",
      "runtime_ms", 2);

  // Headline check (section VI-B / abstract): Appro and Heu vs HeuKKT at
  // the largest request count.
  const std::size_t last = report.num_points() - 1;
  const double kkt = report.mean("reward", "HeuKKT", last);
  std::cout << "headline: Appro/HeuKKT = "
            << util::format_double(report.mean("reward", "Appro", last) / kkt,
                                   3)
            << " (paper ~1.09), Heu/HeuKKT = "
            << util::format_double(report.mean("reward", "Heu", last) / kkt, 3)
            << " (paper ~1.17), Heu/Greedy = "
            << util::format_double(report.mean("reward", "Heu", last) /
                                       report.mean("reward", "Greedy", last),
                                   3)
            << " (paper ~2.01), Heu/OCORP = "
            << util::format_double(report.mean("reward", "Heu", last) /
                                       report.mean("reward", "OCORP", last),
                                   3)
            << " (paper ~1.61)\n";
  return 0;
}
