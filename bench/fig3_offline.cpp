// Figure 3 reproduction: offline algorithms Appro, Heu, Greedy, OCORP,
// HeuKKT over |R| in {100, 150, 200, 250, 300}.
//   (a) total reward   (b) average request latency   (c) running time
//
//   ./bench/fig3_offline [--seeds=3] [--points=100,150,200,250,300]
#include <iostream>

#include "baselines/greedy.h"
#include "baselines/heu_kkt.h"
#include "baselines/ocorp.h"
#include "bench/bench_util.h"
#include "core/appro.h"
#include "core/heu.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int_or("seeds", 3));
  const std::vector<int> points{100, 150, 200, 250, 300};
  const std::vector<std::string> algos{"Appro", "Heu", "Greedy", "OCORP",
                                       "HeuKKT"};

  benchx::SeriesCollector reward(algos);
  benchx::SeriesCollector latency(algos);
  benchx::SeriesCollector runtime(algos);

  // Seeds run concurrently on the process pool; the figure series (reward,
  // latency) are deterministic per seed, so the ordered reduction matches
  // the serial sweep exactly. Fig 3(c)'s runtimes are wall-clock and vary
  // run to run either way.
  struct Sample {
    double reward[5];
    double latency[5];
    double runtime[5];
  };
  for (int num_requests : points) {
    reward.start_point();
    latency.start_point();
    runtime.start_point();
    const auto samples = benchx::sweep_seeds(
        benchx::bench_seeds(seeds), [&](unsigned seed) {
          benchx::InstanceConfig config;
          config.num_requests = num_requests;
          const auto inst = benchx::make_instance(seed, config);
          const core::AlgorithmParams params;

          Sample sample{};
          auto record = [&](std::size_t slot, const core::OffloadResult& res,
                            double ms) {
            sample.reward[slot] = res.total_reward();
            sample.latency[slot] = res.average_latency_ms();
            sample.runtime[slot] = ms;
          };
          {
            util::Rng rng(seed + 1);
            util::Timer t;
            const auto res = core::run_appro(inst.topo, inst.requests,
                                             inst.realized, params, rng);
            record(0, res, t.elapsed_ms());
          }
          {
            util::Rng rng(seed + 1);
            util::Timer t;
            const auto res = core::run_heu(inst.topo, inst.requests,
                                           inst.realized, params, rng);
            record(1, res, t.elapsed_ms());
          }
          {
            util::Timer t;
            record(2,
                   baselines::run_greedy(inst.topo, inst.requests,
                                         inst.realized, params),
                   t.elapsed_ms());
          }
          {
            util::Timer t;
            record(3,
                   baselines::run_ocorp(inst.topo, inst.requests,
                                        inst.realized, params),
                   t.elapsed_ms());
          }
          {
            util::Timer t;
            record(4,
                   baselines::run_heu_kkt(inst.topo, inst.requests,
                                          inst.realized, params),
                   t.elapsed_ms());
          }
          return sample;
        });
    for (const Sample& sample : samples) {
      for (std::size_t a = 0; a < algos.size(); ++a) {
        reward.add(algos[a], sample.reward[a]);
        latency.add(algos[a], sample.latency[a]);
        runtime.add(algos[a], sample.runtime[a]);
      }
    }
  }

  auto emit = [&](const std::string& title, const benchx::SeriesCollector& s,
                  int precision) {
    std::vector<std::string> header{"|R|"};
    header.insert(header.end(), algos.begin(), algos.end());
    util::Table table(header);
    for (std::size_t p = 0; p < points.size(); ++p) {
      std::vector<double> row;
      for (const auto& a : algos) row.push_back(s.mean_at(a, p));
      table.add_numeric_row(std::to_string(points[p]), row, precision);
    }
    table.print(std::cout, title);
    std::cout << '\n';
  };

  emit("Fig 3(a): total reward ($) vs number of requests", reward, 1);
  emit("Fig 3(b): average latency (ms) vs number of requests", latency, 2);
  emit("Fig 3(c): running time (ms) vs number of requests", runtime, 2);

  // Headline check (section VI-B / abstract): Appro and Heu vs HeuKKT at
  // the largest request count.
  const std::size_t last = points.size() - 1;
  const double kkt = reward.mean_at("HeuKKT", last);
  std::cout << "headline: Appro/HeuKKT = "
            << util::format_double(reward.mean_at("Appro", last) / kkt, 3)
            << " (paper ~1.09), Heu/HeuKKT = "
            << util::format_double(reward.mean_at("Heu", last) / kkt, 3)
            << " (paper ~1.17), Heu/Greedy = "
            << util::format_double(reward.mean_at("Heu", last) /
                                       reward.mean_at("Greedy", last),
                                   3)
            << " (paper ~2.01), Heu/OCORP = "
            << util::format_double(reward.mean_at("Heu", last) /
                                       reward.mean_at("OCORP", last),
                                   3)
            << " (paper ~1.61)\n";
  return 0;
}
