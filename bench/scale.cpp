// Scale: the sharded O(live + changes) slot loop against the legacy
// full-rebuild loop on a large instance (default 10^3 stations, 10^5
// requests). Arrivals are packed into a front window so most of the
// horizon is the steady state the tentpole optimizes: a slot where little
// changes must cost O(changes), not O(|R|) rescans of every request.
//
// Three runs over common random numbers:
//   legacy      — the per-slot full-rescan loop (num_shards = -1),
//   sharded     — the shard engine, same policy settings (must be
//                 bit-identical to legacy; verified here),
//   incremental — the shard engine with the DynamicRR incremental slot-LP
//                 pipeline on (objective-equal, tie-breaks may differ).
//
// Slot latency comes from the obs exporters: the sim.slot_wall_ms
// histogram is reset before each run and its p50/p95/p99 are read back
// from the registry snapshot, so the bench exercises the same telemetry
// path `mecar_cli experiment --metrics-out` exports.
//
//   ./bench/scale [--smoke] [--stations=N] [--requests=N] [--horizon=T]
//                 [--window=W] [--shards=K] [--seeds=S] [--min-speedup=X]
//                 [--snapshot[=PATH]]
//
// --smoke runs the headline configuration once and fails (exit 1) unless
// the sharded steady-state slot (p50) is at least --min-speedup times
// faster than a legacy full-rebuild slot and the sharded run reproduced
// the legacy metrics exactly. --snapshot writes BENCH_scale.json.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exp/instance.h"
#include "obs/catalog.h"
#include "obs/telemetry.h"
#include "sim/dynamic_rr.h"
#include "sim/online_sim.h"
#include "util/cli.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace mecar;

/// One engine configuration's outcome: headline simulator metrics (for
/// the bit-identity check) plus the slot-latency percentiles read back
/// from the obs registry.
struct EngineRun {
  std::string label;
  double reward = 0.0;
  double completed = 0.0;
  double drops = 0.0;
  double total_ms = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double slots = 0.0;
  double shard_imbalance = 0.0;
  long long lp_delta_builds = 0;
  long long lp_full_builds = 0;
};

EngineRun run_engine(const exp::Instance& inst, int horizon, int num_shards,
                     bool incremental_lp, int seeds, std::string label) {
  EngineRun out;
  out.label = std::move(label);
  // Pool the per-slot samples of every seed into one histogram so the
  // percentiles describe the engine, not one lucky run.
  obs::registry().reset();
  for (int s = 0; s < seeds; ++s) {
    sim::OnlineParams params;
    params.horizon_slots = horizon;
    params.num_shards = num_shards;
    sim::DynamicRrParams rr;
    rr.incremental_lp = incremental_lp;
    sim::DynamicRrPolicy policy(inst.topo, core::AlgorithmParams{}, rr,
                                util::Rng(static_cast<unsigned>(s) + 1u));
    sim::OnlineSimulator simulator(inst.topo, inst.requests, inst.realized,
                                   params);
    const util::Timer run_timer;
    const sim::OnlineMetrics metrics = simulator.run(policy);
    out.total_ms += run_timer.elapsed_ms();
    out.reward += metrics.total_reward;
    out.completed += static_cast<double>(metrics.completed);
    out.drops += static_cast<double>(metrics.dropped);
    out.lp_delta_builds += policy.incremental_lp_stats().delta_builds;
    out.lp_full_builds += policy.incremental_lp_stats().full_builds;
  }
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  if (const obs::HistogramSnapshot* h =
          snap.find_histogram("sim.slot_wall_ms")) {
    out.p50 = h->percentile(50.0);
    out.p95 = h->percentile(95.0);
    out.p99 = h->percentile(99.0);
    out.max = h->max;
    out.slots = static_cast<double>(h->count);
  }
  if (const obs::GaugeSnapshot* g = snap.find_gauge("sim.shard_imbalance")) {
    out.shard_imbalance = g->value;
  }
  return out;
}

void print_run(const EngineRun& r) {
  std::cout << "  " << r.label << ": slot p50/p95/p99 = " << r.p50 << " / "
            << r.p95 << " / " << r.p99 << " ms  (max " << r.max << ", "
            << r.slots << " slots, total " << r.total_ms
            << " ms)  reward=" << r.reward << " completed=" << r.completed
            << " drops=" << r.drops;
  if (r.lp_delta_builds + r.lp_full_builds > 0) {
    std::cout << "  lp full/delta=" << r.lp_full_builds << "/"
              << r.lp_delta_builds;
  }
  if (r.shard_imbalance > 0.0) {
    std::cout << "  imbalance=" << r.shard_imbalance;
  }
  std::cout << '\n';
}

void write_run(util::JsonWriter& w, const EngineRun& r) {
  w.key(r.label).begin_object();
  w.field("slot_ms_p50", r.p50);
  w.field("slot_ms_p95", r.p95);
  w.field("slot_ms_p99", r.p99);
  w.field("slot_ms_max", r.max);
  w.field("slots", r.slots);
  w.field("total_ms", r.total_ms);
  w.field("reward", r.reward);
  w.field("completed", r.completed);
  w.field("drops", r.drops);
  w.field("lp_full_builds", static_cast<double>(r.lp_full_builds));
  w.field("lp_delta_builds", static_cast<double>(r.lp_delta_builds));
  w.field("shard_imbalance", r.shard_imbalance);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    const bool smoke = cli.has("smoke");

    // The headline scenario: 10^3 stations, 10^5 requests, arrivals packed
    // into the first `window` slots so ~80% of the horizon is steady-state
    // drain — exactly where O(changes) and O(|R|) per slot diverge.
    const int stations = static_cast<int>(cli.get_int_or("stations", 1000));
    const int requests = static_cast<int>(cli.get_int_or("requests", 100000));
    const int horizon = static_cast<int>(cli.get_int_or("horizon", 2000));
    const int window = static_cast<int>(
        cli.get_int_or("window", std::max(1, horizon / 5)));
    const int shards = static_cast<int>(cli.get_int_or("shards", 8));
    const int seeds = static_cast<int>(cli.get_int_or("seeds", 1));
    const double min_speedup = cli.get_double_or("min-speedup", 10.0);
    if (stations <= 0 || requests <= 0 || horizon <= 0 || window <= 0 ||
        shards <= 0 || seeds <= 0) {
      std::cerr << "scale: all size parameters must be positive\n";
      return 1;
    }

    exp::InstanceConfig config;
    config.num_stations = stations;
    config.num_requests = requests;
    config.horizon_slots = window;  // arrival window, not the run horizon
    std::cout << "scale: " << stations << " stations, " << requests
              << " requests arriving over " << window << " of " << horizon
              << " slots, " << shards << " shards, " << seeds << " seed(s)\n";
    const exp::Instance inst = exp::make_instance(1u, config);

    const EngineRun legacy =
        run_engine(inst, horizon, -1, false, seeds, "legacy");
    const EngineRun sharded =
        run_engine(inst, horizon, shards, false, seeds, "sharded");
    const EngineRun incremental =
        run_engine(inst, horizon, shards, true, seeds, "incremental");
    print_run(legacy);
    print_run(sharded);
    print_run(incremental);

    int failures = 0;
    // Bit-identity: same policy settings -> the shard engine must
    // reproduce the legacy metrics exactly (the goldens prove this on the
    // small benches; this re-proves it at scale).
    if (sharded.reward != legacy.reward ||
        sharded.completed != legacy.completed ||
        sharded.drops != legacy.drops) {
      ++failures;
      std::cerr << "FAIL: sharded run diverged from legacy (reward "
                << sharded.reward << " vs " << legacy.reward << ", completed "
                << sharded.completed << " vs " << legacy.completed
                << ", drops " << sharded.drops << " vs " << legacy.drops
                << ")\n";
    }
    if (legacy.slots != sharded.slots ||
        legacy.slots !=
            static_cast<double>(horizon) * static_cast<double>(seeds)) {
      // With telemetry compiled out both counts are 0 and this stays quiet
      // only for the equal-slots half; the horizon check needs samples.
      if (legacy.slots != 0.0 || sharded.slots != 0.0) {
        ++failures;
        std::cerr << "FAIL: slot histogram count mismatch (legacy "
                  << legacy.slots << ", sharded " << sharded.slots
                  << ", expected " << horizon * seeds << ")\n";
      }
    }
    if (incremental.completed <= 0.0) {
      ++failures;
      std::cerr << "FAIL: the incremental run completed no sessions\n";
    }

#if MECAR_TELEMETRY_ENABLED
    const double steady = std::min(sharded.p50, incremental.p50);
    const double speedup = steady > 0.0 ? legacy.p50 / steady : 0.0;
    std::cout << "steady-state slot speedup (legacy p50 / best sharded p50): "
              << speedup << "x (floor " << min_speedup << "x)\n";
    if (smoke && speedup < min_speedup) {
      ++failures;
      std::cerr << "FAIL: steady-state speedup " << speedup << "x below the "
                << min_speedup << "x floor\n";
    }
#else
    const double speedup = 0.0;
    std::cout << "telemetry compiled out: slot percentiles unavailable, "
                 "skipping the speedup floor\n";
#endif

    if (cli.has("snapshot")) {
      const std::string path = cli.get_or("snapshot", "").empty()
                                   ? "BENCH_scale.json"
                                   : cli.get_or("snapshot", "");
      std::ofstream file(path);
      util::JsonWriter w(file);
      w.begin_object();
      w.field("stations", stations);
      w.field("requests", requests);
      w.field("horizon", horizon);
      w.field("arrival_window", window);
      w.field("shards", shards);
      w.field("seeds", seeds);
      w.key("engines").begin_object();
      write_run(w, legacy);
      write_run(w, sharded);
      write_run(w, incremental);
      w.end_object();
      w.field("steady_state_speedup", speedup);
      w.end_object();
      w.done();
      if (!file.good()) {
        std::cerr << "FAIL: could not write snapshot " << path << '\n';
        return 1;
      }
      std::cout << "snapshot: " << path << '\n';
    }

    if (failures > 0) {
      std::cerr << "FAIL: " << failures << " scale check(s) failed\n";
      return 1;
    }
    if (smoke) std::cout << "smoke: all scale checks hold\n";
    std::cout << "shape: steady-state slots cost O(live + changes) sharded "
                 "vs O(|R|) legacy; the gap widens with |R|\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "scale: " << e.what() << '\n';
    return 1;
  }
}
