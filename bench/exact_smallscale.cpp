// Theorem 1 / exact-solution study on small instances: the branch-and-bound
// ILP-RM optimum vs Appro (with and without backfill) and Heu.
//
// The paper proposes the exact solution "if the problem size is small";
// this driver reports the empirical approximation ratios against it and
// checks the 1/8 guarantee of Theorem 1 with bare rounding.
//
//   ./bench/exact_smallscale [--seeds=5]
#include <iostream>

#include "bench/bench_util.h"
#include "core/appro.h"
#include "core/exact.h"
#include "core/heu.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace mecar;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int_or("seeds", 5));
  const std::vector<int> sizes{6, 9, 12};

  util::Table table({"|R|", "Exact E[reward] ($)", "Appro ($)", "Heu ($)",
                     "bare Appro ($)", "Appro/Exact", "bareAppro/Exact",
                     "B&B nodes", "B&B ms"});
  for (int num_requests : sizes) {
    util::RunningStats exact_s, appro_s, heu_s, bare_s, nodes_s, ms_s;
    for (unsigned seed : benchx::bench_seeds(seeds)) {
      benchx::InstanceConfig config;
      config.num_requests = num_requests;
      config.num_stations = 4;
      const auto inst = benchx::make_instance(seed, config);

      core::ExactOptions exact_options;
      util::Timer timer;
      const auto exact =
          core::run_exact(inst.topo, inst.requests, inst.realized,
                          exact_options);
      ms_s.add(timer.elapsed_ms());
      if (exact.status != lp::SolveStatus::kOptimal) continue;
      exact_s.add(exact.offload.lp_bound);  // ILP expected optimum
      nodes_s.add(static_cast<double>(exact.nodes_explored));

      core::AlgorithmParams params;
      {
        util::Rng rng(seed + 3);
        appro_s.add(core::run_appro(inst.topo, inst.requests, inst.realized,
                                    params, rng)
                        .total_reward());
      }
      {
        util::Rng rng(seed + 3);
        heu_s.add(core::run_heu(inst.topo, inst.requests, inst.realized,
                                params, rng)
                      .total_reward());
      }
      {
        core::AlgorithmParams bare = params;
        bare.backfill = false;
        // Average the randomized rounding over draws for a stable estimate.
        util::RunningStats draws;
        for (int d = 0; d < 16; ++d) {
          util::Rng rng(seed * 100 + static_cast<unsigned>(d));
          draws.add(core::run_appro(inst.topo, inst.requests, inst.realized,
                                    bare, rng)
                        .total_reward());
        }
        bare_s.add(draws.mean());
      }
    }
    table.add_numeric_row(
        std::to_string(num_requests),
        {exact_s.mean(), appro_s.mean(), heu_s.mean(), bare_s.mean(),
         appro_s.mean() / exact_s.mean(), bare_s.mean() / exact_s.mean(),
         nodes_s.mean(), ms_s.mean()},
        3);
  }
  table.print(std::cout,
              "Exact (ILP-RM via branch-and-bound) vs Appro/Heu, small "
              "instances, 4 stations");
  std::cout << "Theorem 1 check: bareAppro/Exact must exceed 1/8 = 0.125 "
               "(realized rewards vs the ILP's expected optimum)\n";
  return 0;
}
