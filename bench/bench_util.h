// Shared plumbing for the micro benches. Instance construction, the seed
// schedule, the parallel seed sweep, and series collection now live in the
// scenario engine (src/exp/); this header re-exports them under the
// historical benchx names and keeps only the serial-vs-parallel timing
// snapshot used by micro_parallel.
#pragma once

#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/instance.h"
#include "exp/report.h"
#include "util/json_writer.h"
#include "util/parallel.h"

namespace mecar::benchx {

using Instance = exp::Instance;
using InstanceConfig = exp::InstanceConfig;
using SeriesCollector = exp::SeriesCollector;
using exp::bench_seeds;
using exp::make_instance;
using exp::sweep_seeds;

/// One serial-vs-parallel timing entry of the BENCH_parallel.json snapshot.
struct ParallelTiming {
  std::string name;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  int threads = 1;
  /// Free-form auxiliary metrics (e.g. pivot counts), emitted verbatim.
  std::vector<std::pair<std::string, double>> extra;
};

/// Writes the timing snapshot consumed by CI dashboards. Schema:
/// {"threads": N, "entries": [{"name", "threads", "serial_ms",
/// "parallel_ms", "speedup", ...extra}]}. Returns false when the file
/// cannot be written.
inline bool write_parallel_snapshot(const std::string& path,
                                    const std::vector<ParallelTiming>& rows) {
  std::ofstream file(path);
  util::JsonWriter w(file);
  w.begin_object();
  w.field("threads", util::default_thread_count());
  w.key("entries").begin_array();
  for (const ParallelTiming& row : rows) {
    const double speedup =
        row.parallel_ms > 0.0 ? row.serial_ms / row.parallel_ms : 0.0;
    w.begin_object();
    w.field("name", row.name);
    w.field("threads", row.threads);
    w.field("serial_ms", row.serial_ms);
    w.field("parallel_ms", row.parallel_ms);
    w.field("speedup", speedup);
    for (const auto& [key, value] : row.extra) w.field(key, value);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.done();
  return file.good();
}

}  // namespace mecar::benchx
