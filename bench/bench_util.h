// Shared plumbing for the figure-reproduction drivers: instance
// construction with the paper's section VI-A defaults, seed-averaged
// series collection, and the parallel trial sweep every driver runs its
// seeds through. Each driver prints the exact series of one paper figure
// as an aligned table plus a CSV block.
#pragma once

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/types.h"
#include "mec/topology.h"
#include "mec/workload.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mecar::benchx {

/// One simulation instance: network + workload + pre-drawn realizations
/// (common random numbers across all algorithms under comparison).
struct Instance {
  mec::Topology topo;
  std::vector<mec::ARRequest> requests;
  std::vector<std::size_t> realized;
};

struct InstanceConfig {
  int num_requests = 150;
  int num_stations = 20;
  double rate_min = 30.0;
  double rate_max = 50.0;
  int horizon_slots = 0;  // 0 = offline
};

inline Instance make_instance(unsigned seed, const InstanceConfig& config) {
  util::Rng rng(seed);
  mec::TopologyParams tparams;
  tparams.num_stations = config.num_stations;
  mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = config.num_requests;
  wparams.rate_min = config.rate_min;
  wparams.rate_max = config.rate_max;
  wparams.horizon_slots = config.horizon_slots;
  auto requests = mec::generate_requests(wparams, topo, rng);
  auto realized = core::realize_demand_levels(requests, rng);
  return Instance{std::move(topo), std::move(requests), std::move(realized)};
}

/// Accumulates named series over sweep points: series["Appro"] is the
/// vector of y-values, one per sweep point, averaged over seeds.
class SeriesCollector {
 public:
  explicit SeriesCollector(std::vector<std::string> names) {
    for (auto& name : names) series_[std::move(name)];
  }

  /// Starts a new sweep point (call once per x value).
  void start_point() {
    for (auto& [name, values] : series_) {
      values.emplace_back();
    }
  }

  /// Adds one seed's sample at the current sweep point.
  void add(const std::string& name, double value) {
    series_.at(name).back().add(value);
  }

  double mean_at(const std::string& name, std::size_t point) const {
    return series_.at(name).at(point).mean();
  }

 private:
  std::map<std::string, std::vector<util::RunningStats>> series_;
};

/// Default seeds a bench averages over (override with --seeds=N).
inline std::vector<unsigned> bench_seeds(int count) {
  std::vector<unsigned> seeds;
  for (int i = 0; i < count; ++i) {
    seeds.push_back(7u + 1000u * static_cast<unsigned>(i));
  }
  return seeds;
}

/// Runs trial(seed) for every seed across the process thread pool
/// (MECAR_THREADS cores; serial when 1) and returns the results in seed
/// order. Each trial must derive all randomness from its seed; the caller
/// reduces the ordered results serially, so the emitted figures are
/// bit-identical to a serial sweep.
template <typename Trial>
auto sweep_seeds(const std::vector<unsigned>& seeds, Trial&& trial)
    -> std::vector<decltype(trial(0u))> {
  return util::parallel_map(
      seeds.size(), [&](std::size_t i) { return trial(seeds[i]); });
}

/// One serial-vs-parallel timing entry of the BENCH_parallel.json snapshot.
struct ParallelTiming {
  std::string name;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  int threads = 1;
  /// Free-form auxiliary metrics (e.g. pivot counts), emitted verbatim.
  std::vector<std::pair<std::string, double>> extra;
};

/// Writes the timing snapshot consumed by CI dashboards. Schema:
/// {"threads": N, "entries": [{"name", "serial_ms", "parallel_ms",
/// "speedup", ...extra}]}. Returns false when the file cannot be written.
inline bool write_parallel_snapshot(const std::string& path,
                                    const std::vector<ParallelTiming>& rows) {
  std::ostringstream out;
  out << "{\n  \"threads\": " << util::default_thread_count()
      << ",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ParallelTiming& row = rows[i];
    const double speedup =
        row.parallel_ms > 0.0 ? row.serial_ms / row.parallel_ms : 0.0;
    out << "    {\"name\": \"" << row.name << "\", \"threads\": "
        << row.threads << ", \"serial_ms\": " << row.serial_ms
        << ", \"parallel_ms\": " << row.parallel_ms
        << ", \"speedup\": " << speedup;
    for (const auto& [key, value] : row.extra) {
      out << ", \"" << key << "\": " << value;
    }
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::ofstream file(path);
  file << out.str();
  return file.good();
}

}  // namespace mecar::benchx
