// Micro-benchmarks and self-checks for the parallel execution substrate
// (util::ThreadPool) and the warm-started slot LPs.
//
// Three entry modes:
//   ./bench/micro_parallel                google-benchmark timings
//   ./bench/micro_parallel --smoke        fast correctness checks (ctest):
//                                         parallel == serial bit-identical,
//                                         exception propagation, warm ==
//                                         cold LP objective; exit 0 on pass
//   ./bench/micro_parallel --snapshot[=path]
//                                         writes the BENCH_parallel.json
//                                         serial-vs-parallel timing snapshot
//                                         (fig4-mini sweep + LP warm/cold)
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/slot_lp.h"
#include "lp/revised_simplex.h"
#include "sim/dynamic_rr.h"
#include "sim/online_sim.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace {

using namespace mecar;

// ---------------------------------------------------------------------------
// Shared workloads.

/// One fig4-style online trial, fully determined by its seed: DynamicRR on
/// a small instance. Heavy enough (hundreds of slot LPs) to dominate any
/// pool overhead, small enough for a smoke test.
double fig4_mini_trial(unsigned seed, int num_requests, int horizon) {
  benchx::InstanceConfig config;
  config.num_requests = num_requests;
  config.horizon_slots = horizon;
  const auto inst = benchx::make_instance(seed, config);
  sim::OnlineParams params;
  params.horizon_slots = horizon;
  sim::DynamicRrPolicy policy(inst.topo, core::AlgorithmParams{},
                              sim::DynamicRrParams{}, util::Rng(seed + 1));
  sim::OnlineSimulator simulator(inst.topo, inst.requests, inst.realized,
                                 params);
  return simulator.run(policy).total_reward;
}

/// Slot-LP sequence with a stable tableau shape (same construction as
/// micro_lp's warm/cold pair): residual capacities drift without crossing
/// a resource-slot boundary.
std::vector<lp::Model> slot_sequence_models(int num_requests, int slots) {
  util::Rng rng(7);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = num_requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const core::AlgorithmParams params;
  std::vector<lp::Model> models;
  for (int t = 0; t < slots; ++t) {
    core::SlotLpOptions options;
    std::vector<double> caps;
    for (const auto& bs : topo.stations()) {
      const double k =
          std::floor(bs.capacity_mhz / params.slot_capacity_mhz);
      caps.push_back((k + 0.25 + 0.1 * static_cast<double>(t % 5)) *
                     params.slot_capacity_mhz);
    }
    options.capacity_override_mhz = std::move(caps);
    models.push_back(
        core::build_slot_lp(topo, requests, params, options).model);
  }
  return models;
}

// ---------------------------------------------------------------------------
// google-benchmark cases.

void BM_ParallelForOverhead(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n);
  for (auto _ : state) {
    util::parallel_for(n, [&](std::size_t i) {
      out[i] = std::sqrt(static_cast<double>(i) + 1.0);
    });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(64)->Arg(4096);

void BM_Fig4MiniSerial(benchmark::State& state) {
  util::ThreadPool pool(1);
  const auto seeds = benchx::bench_seeds(4);
  for (auto _ : state) {
    auto rewards = pool.parallel_map(
        seeds.size(), [&](std::size_t i) {
          return fig4_mini_trial(seeds[i], 60, 120);
        });
    benchmark::DoNotOptimize(rewards.data());
  }
}
BENCHMARK(BM_Fig4MiniSerial)->Unit(benchmark::kMillisecond);

void BM_Fig4MiniParallel(benchmark::State& state) {
  util::ThreadPool pool(0);  // MECAR_THREADS / hardware_concurrency
  const auto seeds = benchx::bench_seeds(4);
  for (auto _ : state) {
    auto rewards = pool.parallel_map(
        seeds.size(), [&](std::size_t i) {
          return fig4_mini_trial(seeds[i], 60, 120);
        });
    benchmark::DoNotOptimize(rewards.data());
  }
  state.counters["threads"] = pool.num_threads();
}
BENCHMARK(BM_Fig4MiniParallel)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --smoke: fast correctness checks, wired into ctest.

int run_smoke() {
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::cout << (ok ? "  ok: " : "FAIL: ") << what << '\n';
    if (!ok) ++failures;
  };

  // Determinism: the pooled sweep must equal the serial sweep element by
  // element, exactly (same doubles, not just close).
  {
    const auto seeds = benchx::bench_seeds(4);
    auto trial = [&](std::size_t i) {
      return fig4_mini_trial(seeds[i], 40, 60);
    };
    util::ThreadPool serial(1);
    util::ThreadPool pooled(0);
    const auto a = serial.parallel_map(seeds.size(), trial);
    const auto b = pooled.parallel_map(seeds.size(), trial);
    bool identical = a.size() == b.size();
    for (std::size_t i = 0; identical && i < a.size(); ++i) {
      identical = (a[i] == b[i]);
    }
    check(identical, "parallel sweep bit-identical to serial sweep");
  }

  // Exception propagation: a throwing body must surface on the caller.
  {
    bool threw = false;
    try {
      util::parallel_for(64, [](std::size_t i) {
        if (i == 13) throw std::runtime_error("boom");
      });
    } catch (const std::runtime_error&) {
      threw = true;
    }
    check(threw, "task exception rethrown on the calling thread");
  }

  // Warm-started LP: identical objective to the cold solve on a tiny slot
  // sequence, and the warm path actually engages after the first slot.
  {
    const auto models = slot_sequence_models(30, 4);
    lp::RevisedSimplexSolver solver;
    lp::WarmStartBasis warm;
    bool objectives_match = true;
    bool warm_engaged = false;
    for (std::size_t t = 0; t < models.size(); ++t) {
      const auto cold = solver.solve(models[t]);
      const auto warmres = solver.solve(models[t], warm);
      objectives_match = objectives_match && cold.optimal() &&
                         warmres.optimal() &&
                         std::abs(cold.objective - warmres.objective) < 1e-9;
      if (t > 0) warm_engaged = warm_engaged || warmres.warm_started;
    }
    check(objectives_match, "warm LP objective == cold LP objective");
    check(warm_engaged, "warm start engaged after the first slot");
  }

  std::cout << (failures == 0 ? "smoke: all checks passed\n"
                              : "smoke: FAILURES\n");
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --snapshot: the BENCH_parallel.json timing snapshot.

int run_snapshot(const std::string& path) {
  std::vector<benchx::ParallelTiming> rows;

  // fig4-mini sweep, serial vs pooled.
  {
    util::ThreadPool serial(1);
    util::ThreadPool pooled(0);
    const auto seeds = benchx::bench_seeds(6);
    auto trial = [&](std::size_t i) {
      return fig4_mini_trial(seeds[i], 60, 120);
    };
    // Warm-up (page in code and data once for both paths).
    serial.parallel_map(seeds.size(), trial);

    benchx::ParallelTiming row;
    row.name = "fig4_mini_sweep";
    row.threads = pooled.num_threads();
    {
      util::Timer t;
      auto r = serial.parallel_map(seeds.size(), trial);
      row.serial_ms = t.elapsed_ms();
      benchmark::DoNotOptimize(r.data());
    }
    {
      util::Timer t;
      auto r = pooled.parallel_map(seeds.size(), trial);
      row.parallel_ms = t.elapsed_ms();
      benchmark::DoNotOptimize(r.data());
    }
    rows.push_back(std::move(row));
  }

  // Slot-LP sequence, cold vs warm (sequential either way: "serial" is the
  // cold path, "parallel" slot is reused for the warm path; pivot counts
  // ride along as extra fields).
  {
    const auto models = slot_sequence_models(100, 8);
    lp::RevisedSimplexSolver solver;

    benchx::ParallelTiming row;
    row.name = "slot_lp_sequence_warm_vs_cold";
    row.threads = 1;
    long cold_pivots = 0;
    long warm_pivots = 0;
    {
      util::Timer t;
      for (const auto& model : models) {
        auto res = solver.solve(model);
        cold_pivots += res.iterations;
        benchmark::DoNotOptimize(res.objective);
      }
      row.serial_ms = t.elapsed_ms();
    }
    {
      lp::WarmStartBasis warm;
      util::Timer t;
      for (const auto& model : models) {
        auto res = solver.solve(model, warm);
        warm_pivots += res.iterations;
        benchmark::DoNotOptimize(res.objective);
      }
      row.parallel_ms = t.elapsed_ms();
    }
    const double slots = static_cast<double>(models.size());
    row.extra.emplace_back("cold_pivots_per_slot",
                           static_cast<double>(cold_pivots) / slots);
    row.extra.emplace_back("warm_pivots_per_slot",
                           static_cast<double>(warm_pivots) / slots);
    rows.push_back(std::move(row));
  }

  if (!benchx::write_parallel_snapshot(path, rows)) {
    std::cerr << "error: could not write " << path << '\n';
    return 1;
  }
  std::cout << "wrote " << path << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
    if (std::strncmp(argv[i], "--snapshot", 10) == 0) {
      const char* eq = std::strchr(argv[i], '=');
      return run_snapshot(eq != nullptr ? std::string(eq + 1)
                                        : std::string("BENCH_parallel.json"));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
