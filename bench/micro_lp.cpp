// Micro-benchmarks (google-benchmark) for the LP/MIP substrate: simplex
// solve time vs model size, slot-LP construction, warm vs cold solves over
// a slot sequence, branch-and-bound on knapsack-style binary programs.
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/slot_lp.h"
#include "mec/topology.h"
#include "lp/branch_and_bound.h"
#include "lp/revised_simplex.h"
#include "lp/simplex.h"
#include "mec/workload.h"
#include "util/rng.h"

namespace {

using namespace mecar;

/// Random dense-ish LP: n vars, m <= rows, positive data (always feasible
/// and bounded thanks to per-variable caps).
lp::Model random_lp(int n, int m, unsigned seed) {
  util::Rng rng(seed);
  lp::Model model;
  for (int j = 0; j < n; ++j) {
    model.add_variable("x" + std::to_string(j), rng.uniform(0.5, 2.0), 5.0);
  }
  for (int r = 0; r < m; ++r) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.3)) terms.push_back({j, rng.uniform(0.1, 1.5)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    model.add_constraint("r" + std::to_string(r), lp::Sense::kLe,
                         rng.uniform(2.0, 10.0), std::move(terms));
  }
  return model;
}

void BM_SimplexRandomLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = n / 2;
  const lp::Model model = random_lp(n, m, 42);
  lp::SimplexSolver solver;
  for (auto _ : state) {
    auto result = solver.solve(model);
    benchmark::DoNotOptimize(result.objective);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SimplexRandomLp)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_SlotLpBuild(benchmark::State& state) {
  const int num_requests = static_cast<int>(state.range(0));
  util::Rng rng(7);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = num_requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const core::AlgorithmParams params;
  for (auto _ : state) {
    auto inst = core::build_slot_lp(topo, requests, params);
    benchmark::DoNotOptimize(inst.model.num_variables());
  }
}
BENCHMARK(BM_SlotLpBuild)->Arg(50)->Arg(150)->Arg(300);

void BM_SlotLpSolve(benchmark::State& state) {
  const int num_requests = static_cast<int>(state.range(0));
  util::Rng rng(7);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = num_requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const core::AlgorithmParams params;
  const auto inst = core::build_slot_lp(topo, requests, params);
  lp::SimplexSolver solver;
  for (auto _ : state) {
    auto result = solver.solve(inst.model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_SlotLpSolve)->Arg(50)->Arg(100)->Arg(150)
    ->Unit(benchmark::kMillisecond);


void BM_SlotLpSolveRevised(benchmark::State& state) {
  const int num_requests = static_cast<int>(state.range(0));
  util::Rng rng(7);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = num_requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const core::AlgorithmParams params;
  const auto inst = core::build_slot_lp(topo, requests, params);
  lp::RevisedSimplexSolver solver;
  for (auto _ : state) {
    auto result = solver.solve(inst.model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_SlotLpSolveRevised)->Arg(50)->Arg(100)->Arg(150)
    ->Unit(benchmark::kMillisecond);

/// Slot sequence shared by the warm/cold pair below: one pending batch
/// whose residual station capacities drift slot to slot WITHOUT crossing a
/// resource-slot boundary, so every model in the sequence keeps the same
/// tableau shape — exactly the regime DynamicRR's per-slot LP-PT solves
/// live in under a saturated queue, and the case the warm start targets.
std::vector<lp::Model> slot_sequence_models(int num_requests, int slots) {
  util::Rng rng(7);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = num_requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const core::AlgorithmParams params;
  std::vector<lp::Model> models;
  for (int t = 0; t < slots; ++t) {
    core::SlotLpOptions options;
    std::vector<double> caps;
    for (const auto& bs : topo.stations()) {
      // Keep floor(cap / slot_capacity) fixed while the fractional part
      // sweeps 0.25..0.65 over the sequence: the rhs changes, the shape
      // does not.
      const double k =
          std::floor(bs.capacity_mhz / params.slot_capacity_mhz);
      caps.push_back((k + 0.25 + 0.1 * static_cast<double>(t % 5)) *
                     params.slot_capacity_mhz);
    }
    options.capacity_override_mhz = std::move(caps);
    models.push_back(
        core::build_slot_lp(topo, requests, params, options).model);
  }
  return models;
}

void BM_SlotLpSequenceCold(benchmark::State& state) {
  const auto models =
      slot_sequence_models(static_cast<int>(state.range(0)), 8);
  lp::RevisedSimplexSolver solver;
  long pivots = 0;
  long solves = 0;
  for (auto _ : state) {
    for (const auto& model : models) {
      auto result = solver.solve(model);
      pivots += result.iterations;
      ++solves;
      benchmark::DoNotOptimize(result.objective);
    }
  }
  state.counters["pivots_per_slot"] =
      solves > 0 ? static_cast<double>(pivots) / static_cast<double>(solves)
                 : 0.0;
}
BENCHMARK(BM_SlotLpSequenceCold)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_SlotLpSequenceWarm(benchmark::State& state) {
  const auto models =
      slot_sequence_models(static_cast<int>(state.range(0)), 8);
  lp::RevisedSimplexSolver solver;
  long pivots = 0;
  long solves = 0;
  for (auto _ : state) {
    lp::WarmStartBasis warm;  // cold first slot, warm thereafter
    for (const auto& model : models) {
      auto result = solver.solve(model, warm);
      pivots += result.iterations;
      ++solves;
      benchmark::DoNotOptimize(result.objective);
    }
  }
  state.counters["pivots_per_slot"] =
      solves > 0 ? static_cast<double>(pivots) / static_cast<double>(solves)
                 : 0.0;
}
BENCHMARK(BM_SlotLpSequenceWarm)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_BranchAndBoundKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(11);
  lp::Model model;
  std::vector<lp::Term> weight;
  for (int j = 0; j < n; ++j) {
    model.add_variable("b" + std::to_string(j), rng.uniform(1.0, 10.0), 1.0,
                       /*integral=*/true);
    weight.push_back({j, rng.uniform(1.0, 5.0)});
  }
  model.add_constraint("w", lp::Sense::kLe, 0.35 * 3.0 * n, weight);
  lp::BranchAndBound solver;
  for (auto _ : state) {
    auto result = solver.solve(model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_BranchAndBoundKnapsack)->Arg(8)->Arg(12)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
