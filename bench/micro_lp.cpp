// Micro-benchmarks for the LP/MIP substrate: simplex solve time vs model
// size, slot-LP construction, warm vs cold solves over a slot sequence,
// branch-and-bound on knapsack-style binary programs.
//
// Three entry modes:
//   ./bench/micro_lp                google-benchmark timings
//   ./bench/micro_lp --smoke        fast correctness checks (ctest): sparse
//                                   engine == dense engine objectives, warm
//                                   == cold, eta file engaged; exit 0 on
//                                   pass
//   ./bench/micro_lp --snapshot[=path]
//                                   writes the BENCH_lp.json engine
//                                   comparison (dense vs sparse cold vs
//                                   sparse warm over the slot sequence,
//                                   pivot/eta/refactorization counters)
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/slot_lp.h"
#include "mec/topology.h"
#include "lp/branch_and_bound.h"
#include "lp/revised_simplex.h"
#include "lp/simplex.h"
#include "mec/workload.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace mecar;

/// Random dense-ish LP: n vars, m <= rows, positive data (always feasible
/// and bounded thanks to per-variable caps).
lp::Model random_lp(int n, int m, unsigned seed) {
  util::Rng rng(seed);
  lp::Model model;
  for (int j = 0; j < n; ++j) {
    model.add_variable("x" + std::to_string(j), rng.uniform(0.5, 2.0), 5.0);
  }
  for (int r = 0; r < m; ++r) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.3)) terms.push_back({j, rng.uniform(0.1, 1.5)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    model.add_constraint("r" + std::to_string(r), lp::Sense::kLe,
                         rng.uniform(2.0, 10.0), std::move(terms));
  }
  return model;
}

void BM_SimplexRandomLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = n / 2;
  const lp::Model model = random_lp(n, m, 42);
  lp::SimplexSolver solver;
  for (auto _ : state) {
    auto result = solver.solve(model);
    benchmark::DoNotOptimize(result.objective);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SimplexRandomLp)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_SlotLpBuild(benchmark::State& state) {
  const int num_requests = static_cast<int>(state.range(0));
  util::Rng rng(7);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = num_requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const core::AlgorithmParams params;
  for (auto _ : state) {
    auto inst = core::build_slot_lp(topo, requests, params);
    benchmark::DoNotOptimize(inst.model.num_variables());
  }
}
BENCHMARK(BM_SlotLpBuild)->Arg(50)->Arg(150)->Arg(300);

void BM_SlotLpSolve(benchmark::State& state) {
  const int num_requests = static_cast<int>(state.range(0));
  util::Rng rng(7);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = num_requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const core::AlgorithmParams params;
  const auto inst = core::build_slot_lp(topo, requests, params);
  lp::SimplexSolver solver;
  for (auto _ : state) {
    auto result = solver.solve(inst.model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_SlotLpSolve)->Arg(50)->Arg(100)->Arg(150)
    ->Unit(benchmark::kMillisecond);


void BM_SlotLpSolveRevised(benchmark::State& state) {
  const int num_requests = static_cast<int>(state.range(0));
  util::Rng rng(7);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = num_requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const core::AlgorithmParams params;
  const auto inst = core::build_slot_lp(topo, requests, params);
  lp::RevisedSimplexSolver solver;
  for (auto _ : state) {
    auto result = solver.solve(inst.model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_SlotLpSolveRevised)->Arg(50)->Arg(100)->Arg(150)
    ->Unit(benchmark::kMillisecond);

/// Slot sequence shared by the warm/cold pair below: one pending batch
/// whose residual station capacities drift slot to slot WITHOUT crossing a
/// resource-slot boundary, so every model in the sequence keeps the same
/// tableau shape — exactly the regime DynamicRR's per-slot LP-PT solves
/// live in under a saturated queue, and the case the warm start targets.
std::vector<lp::Model> slot_sequence_models(int num_requests, int slots) {
  util::Rng rng(7);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = num_requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const core::AlgorithmParams params;
  std::vector<lp::Model> models;
  for (int t = 0; t < slots; ++t) {
    core::SlotLpOptions options;
    std::vector<double> caps;
    for (const auto& bs : topo.stations()) {
      // Keep floor(cap / slot_capacity) fixed while the fractional part
      // sweeps 0.25..0.65 over the sequence: the rhs changes, the shape
      // does not.
      const double k =
          std::floor(bs.capacity_mhz / params.slot_capacity_mhz);
      caps.push_back((k + 0.25 + 0.1 * static_cast<double>(t % 5)) *
                     params.slot_capacity_mhz);
    }
    options.capacity_override_mhz = std::move(caps);
    models.push_back(
        core::build_slot_lp(topo, requests, params, options).model);
  }
  return models;
}

void BM_SlotLpSequenceCold(benchmark::State& state) {
  const auto models =
      slot_sequence_models(static_cast<int>(state.range(0)), 8);
  lp::RevisedSimplexSolver solver;
  long pivots = 0;
  long solves = 0;
  for (auto _ : state) {
    for (const auto& model : models) {
      auto result = solver.solve(model);
      pivots += result.iterations;
      ++solves;
      benchmark::DoNotOptimize(result.objective);
    }
  }
  state.counters["pivots_per_slot"] =
      solves > 0 ? static_cast<double>(pivots) / static_cast<double>(solves)
                 : 0.0;
}
BENCHMARK(BM_SlotLpSequenceCold)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_SlotLpSequenceWarm(benchmark::State& state) {
  const auto models =
      slot_sequence_models(static_cast<int>(state.range(0)), 8);
  lp::RevisedSimplexSolver solver;
  long pivots = 0;
  long solves = 0;
  for (auto _ : state) {
    lp::WarmStartBasis warm;  // cold first slot, warm thereafter
    for (const auto& model : models) {
      auto result = solver.solve(model, warm);
      pivots += result.iterations;
      ++solves;
      benchmark::DoNotOptimize(result.objective);
    }
  }
  state.counters["pivots_per_slot"] =
      solves > 0 ? static_cast<double>(pivots) / static_cast<double>(solves)
                 : 0.0;
}
BENCHMARK(BM_SlotLpSequenceWarm)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_BranchAndBoundKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(11);
  lp::Model model;
  std::vector<lp::Term> weight;
  for (int j = 0; j < n; ++j) {
    model.add_variable("b" + std::to_string(j), rng.uniform(1.0, 10.0), 1.0,
                       /*integral=*/true);
    weight.push_back({j, rng.uniform(1.0, 5.0)});
  }
  model.add_constraint("w", lp::Sense::kLe, 0.35 * 3.0 * n, weight);
  lp::BranchAndBound solver;
  for (auto _ : state) {
    auto result = solver.solve(model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_BranchAndBoundKnapsack)->Arg(8)->Arg(12)->Arg(16);

// ---------------------------------------------------------------------------
// --smoke: fast correctness checks, wired into ctest.

int run_smoke() {
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::cout << (ok ? "  ok: " : "FAIL: ") << what << '\n';
    if (!ok) ++failures;
  };

  // Sparse engine == dense engine on the real slot LPs (same optimum; the
  // vertex may differ on alternate optima, the objective may not).
  {
    bool agree = true;
    for (int n : {30, 60}) {
      const auto models = slot_sequence_models(n, 2);
      for (const auto& model : models) {
        const auto dense = lp::SimplexSolver().solve(model);
        const auto sparse = lp::RevisedSimplexSolver().solve(model);
        agree = agree && dense.optimal() && sparse.optimal() &&
                std::abs(dense.objective - sparse.objective) <=
                    1e-6 * std::max(1.0, std::abs(dense.objective));
      }
    }
    check(agree, "sparse LU engine matches dense tableau objectives");
  }

  // Warm == cold across the slot sequence, and the warm path engages.
  {
    const auto models = slot_sequence_models(40, 4);
    lp::RevisedSimplexSolver solver;
    lp::WarmStartBasis warm;
    bool objectives_match = true;
    bool warm_engaged = false;
    long cold_pivots = 0;
    long warm_pivots = 0;
    for (std::size_t t = 0; t < models.size(); ++t) {
      const auto cold = solver.solve(models[t]);
      const auto warmres = solver.solve(models[t], warm);
      objectives_match = objectives_match && cold.optimal() &&
                         warmres.optimal() &&
                         std::abs(cold.objective - warmres.objective) < 1e-9;
      cold_pivots += cold.iterations;
      warm_pivots += warmres.iterations;
      if (t > 0) warm_engaged = warm_engaged || warmres.warm_started;
    }
    check(objectives_match, "warm LP objective == cold LP objective");
    check(warm_engaged, "warm start engaged after the first slot");
    check(warm_pivots < cold_pivots, "warm sequence needs fewer pivots");
  }

  // The eta file absorbs pivots between refactorizations.
  {
    const auto models = slot_sequence_models(60, 1);
    const auto res = lp::RevisedSimplexSolver().solve(models[0]);
    check(res.optimal() && res.stats.eta_pivots > 0 &&
              res.stats.eta_len_max > 0,
          "eta-file updates engaged (nonzero reuse between refactors)");
  }

  std::cout << (failures == 0 ? "smoke: all checks passed\n"
                              : "smoke: FAILURES\n");
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --snapshot: the BENCH_lp.json engine-comparison snapshot.

struct EngineTiming {
  double dense_ms = 0.0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  long cold_pivots = 0;
  long warm_pivots = 0;
  int warm_adoptions = 0;
  int eta_pivots = 0;
  int eta_len_max = 0;
  int refactorizations = 0;
  int bound_flips = 0;
  int pricing_mode = 0;
};

EngineTiming time_engines(const std::vector<lp::Model>& models) {
  EngineTiming out;
  {
    lp::SimplexSolver dense;
    util::Timer t;
    for (const auto& model : models) {
      auto res = dense.solve(model);
      benchmark::DoNotOptimize(res.objective);
    }
    out.dense_ms = t.elapsed_ms();
  }
  lp::RevisedSimplexSolver sparse;
  {
    util::Timer t;
    for (const auto& model : models) {
      auto res = sparse.solve(model);
      out.cold_pivots += res.iterations;
      out.eta_pivots += res.stats.eta_pivots;
      out.eta_len_max = std::max(out.eta_len_max, res.stats.eta_len_max);
      out.refactorizations += res.stats.refactorizations;
      out.bound_flips += res.stats.bound_flips;
      out.pricing_mode = res.stats.pricing_mode;
      benchmark::DoNotOptimize(res.objective);
    }
    out.cold_ms = t.elapsed_ms();
  }
  {
    lp::WarmStartBasis warm;
    util::Timer t;
    for (const auto& model : models) {
      auto res = sparse.solve(model, warm);
      out.warm_pivots += res.iterations;
      if (res.warm_started) ++out.warm_adoptions;
      benchmark::DoNotOptimize(res.objective);
    }
    out.warm_ms = t.elapsed_ms();
  }
  return out;
}

int run_snapshot(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "error: could not write " << path << '\n';
    return 1;
  }
  util::JsonWriter json(os);
  json.begin_object();
  json.field("bench", "micro_lp");
  json.field("units", "ms per 8-slot sequence");
  json.key("slot_lp_sequence").begin_array();
  for (int n : {50, 100, 150}) {
    const int slots = 8;
    const auto models = slot_sequence_models(n, slots);
    time_engines(models);  // warm-up: page in code and data
    const EngineTiming r = time_engines(models);
    const double per_slot = static_cast<double>(models.size());
    json.begin_object();
    json.field("requests", n);
    json.field("slots", slots);
    json.field("rows", models[0].num_constraints());
    json.field("cols", models[0].num_variables());
    json.field("dense_ms", r.dense_ms);
    json.field("sparse_cold_ms", r.cold_ms);
    json.field("sparse_warm_ms", r.warm_ms);
    json.field("cold_pivots_per_slot",
               static_cast<double>(r.cold_pivots) / per_slot);
    json.field("warm_pivots_per_slot",
               static_cast<double>(r.warm_pivots) / per_slot);
    json.field("warm_adoptions", r.warm_adoptions);
    json.field("eta_pivots", r.eta_pivots);
    json.field("eta_len_max", r.eta_len_max);
    json.field("refactorizations", r.refactorizations);
    json.field("bound_flips", r.bound_flips);
    json.field("pricing_mode", r.pricing_mode);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
  std::cout << "wrote " << path << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
    if (std::strncmp(argv[i], "--snapshot", 10) == 0) {
      const char* eq = std::strchr(argv[i], '=');
      return run_snapshot(eq != nullptr ? std::string(eq + 1)
                                        : std::string("BENCH_lp.json"));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
