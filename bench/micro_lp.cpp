// Micro-benchmarks (google-benchmark) for the LP/MIP substrate: simplex
// solve time vs model size, slot-LP construction, branch-and-bound on
// knapsack-style binary programs.
#include <benchmark/benchmark.h>

#include "core/slot_lp.h"
#include "lp/branch_and_bound.h"
#include "lp/revised_simplex.h"
#include "lp/simplex.h"
#include "mec/workload.h"
#include "util/rng.h"

namespace {

using namespace mecar;

/// Random dense-ish LP: n vars, m <= rows, positive data (always feasible
/// and bounded thanks to per-variable caps).
lp::Model random_lp(int n, int m, unsigned seed) {
  util::Rng rng(seed);
  lp::Model model;
  for (int j = 0; j < n; ++j) {
    model.add_variable("x" + std::to_string(j), rng.uniform(0.5, 2.0), 5.0);
  }
  for (int r = 0; r < m; ++r) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.3)) terms.push_back({j, rng.uniform(0.1, 1.5)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    model.add_constraint("r" + std::to_string(r), lp::Sense::kLe,
                         rng.uniform(2.0, 10.0), std::move(terms));
  }
  return model;
}

void BM_SimplexRandomLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = n / 2;
  const lp::Model model = random_lp(n, m, 42);
  lp::SimplexSolver solver;
  for (auto _ : state) {
    auto result = solver.solve(model);
    benchmark::DoNotOptimize(result.objective);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SimplexRandomLp)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_SlotLpBuild(benchmark::State& state) {
  const int num_requests = static_cast<int>(state.range(0));
  util::Rng rng(7);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = num_requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const core::AlgorithmParams params;
  for (auto _ : state) {
    auto inst = core::build_slot_lp(topo, requests, params);
    benchmark::DoNotOptimize(inst.model.num_variables());
  }
}
BENCHMARK(BM_SlotLpBuild)->Arg(50)->Arg(150)->Arg(300);

void BM_SlotLpSolve(benchmark::State& state) {
  const int num_requests = static_cast<int>(state.range(0));
  util::Rng rng(7);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = num_requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const core::AlgorithmParams params;
  const auto inst = core::build_slot_lp(topo, requests, params);
  lp::SimplexSolver solver;
  for (auto _ : state) {
    auto result = solver.solve(inst.model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_SlotLpSolve)->Arg(50)->Arg(100)->Arg(150)
    ->Unit(benchmark::kMillisecond);


void BM_SlotLpSolveRevised(benchmark::State& state) {
  const int num_requests = static_cast<int>(state.range(0));
  util::Rng rng(7);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = num_requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const core::AlgorithmParams params;
  const auto inst = core::build_slot_lp(topo, requests, params);
  lp::RevisedSimplexSolver solver;
  for (auto _ : state) {
    auto result = solver.solve(inst.model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_SlotLpSolveRevised)->Arg(50)->Arg(100)->Arg(150)
    ->Unit(benchmark::kMillisecond);

void BM_BranchAndBoundKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(11);
  lp::Model model;
  std::vector<lp::Term> weight;
  for (int j = 0; j < n; ++j) {
    model.add_variable("b" + std::to_string(j), rng.uniform(1.0, 10.0), 1.0,
                       /*integral=*/true);
    weight.push_back({j, rng.uniform(1.0, 5.0)});
  }
  model.add_constraint("w", lp::Sense::kLe, 0.35 * 3.0 * n, weight);
  lp::BranchAndBound solver;
  for (auto _ : state) {
    auto result = solver.solve(model);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_BranchAndBoundKnapsack)->Arg(8)->Arg(12)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
