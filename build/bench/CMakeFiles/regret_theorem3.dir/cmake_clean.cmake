file(REMOVE_RECURSE
  "CMakeFiles/regret_theorem3.dir/regret_theorem3.cpp.o"
  "CMakeFiles/regret_theorem3.dir/regret_theorem3.cpp.o.d"
  "regret_theorem3"
  "regret_theorem3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regret_theorem3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
