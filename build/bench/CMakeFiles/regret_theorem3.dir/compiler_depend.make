# Empty compiler generated dependencies file for regret_theorem3.
# This may be replaced when dependencies are built.
