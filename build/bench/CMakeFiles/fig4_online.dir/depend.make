# Empty dependencies file for fig4_online.
# This may be replaced when dependencies are built.
