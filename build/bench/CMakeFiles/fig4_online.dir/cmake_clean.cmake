file(REMOVE_RECURSE
  "CMakeFiles/fig4_online.dir/fig4_online.cpp.o"
  "CMakeFiles/fig4_online.dir/fig4_online.cpp.o.d"
  "fig4_online"
  "fig4_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
