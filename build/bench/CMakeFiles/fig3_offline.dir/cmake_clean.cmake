file(REMOVE_RECURSE
  "CMakeFiles/fig3_offline.dir/fig3_offline.cpp.o"
  "CMakeFiles/fig3_offline.dir/fig3_offline.cpp.o.d"
  "fig3_offline"
  "fig3_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
