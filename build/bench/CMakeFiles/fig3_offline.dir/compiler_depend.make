# Empty compiler generated dependencies file for fig3_offline.
# This may be replaced when dependencies are built.
