file(REMOVE_RECURSE
  "CMakeFiles/fig6_rate.dir/fig6_rate.cpp.o"
  "CMakeFiles/fig6_rate.dir/fig6_rate.cpp.o.d"
  "fig6_rate"
  "fig6_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
