file(REMOVE_RECURSE
  "CMakeFiles/exact_smallscale.dir/exact_smallscale.cpp.o"
  "CMakeFiles/exact_smallscale.dir/exact_smallscale.cpp.o.d"
  "exact_smallscale"
  "exact_smallscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_smallscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
