# Empty compiler generated dependencies file for exact_smallscale.
# This may be replaced when dependencies are built.
