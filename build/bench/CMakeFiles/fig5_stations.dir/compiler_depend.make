# Empty compiler generated dependencies file for fig5_stations.
# This may be replaced when dependencies are built.
