
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_stations.cpp" "bench/CMakeFiles/fig5_stations.dir/fig5_stations.cpp.o" "gcc" "bench/CMakeFiles/fig5_stations.dir/fig5_stations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mecar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mecar_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mecar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mecar_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/mec/CMakeFiles/mecar_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/bandit/CMakeFiles/mecar_bandit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mecar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
