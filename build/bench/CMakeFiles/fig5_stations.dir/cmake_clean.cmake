file(REMOVE_RECURSE
  "CMakeFiles/fig5_stations.dir/fig5_stations.cpp.o"
  "CMakeFiles/fig5_stations.dir/fig5_stations.cpp.o.d"
  "fig5_stations"
  "fig5_stations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_stations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
