# Empty dependencies file for test_mec.
# This may be replaced when dependencies are built.
