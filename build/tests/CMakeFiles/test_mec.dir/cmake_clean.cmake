file(REMOVE_RECURSE
  "CMakeFiles/test_mec.dir/test_mec.cpp.o"
  "CMakeFiles/test_mec.dir/test_mec.cpp.o.d"
  "test_mec"
  "test_mec.pdb"
  "test_mec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
