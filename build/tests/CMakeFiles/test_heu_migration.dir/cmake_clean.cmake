file(REMOVE_RECURSE
  "CMakeFiles/test_heu_migration.dir/test_heu_migration.cpp.o"
  "CMakeFiles/test_heu_migration.dir/test_heu_migration.cpp.o.d"
  "test_heu_migration"
  "test_heu_migration.pdb"
  "test_heu_migration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heu_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
