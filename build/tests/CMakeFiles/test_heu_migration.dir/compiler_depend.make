# Empty compiler generated dependencies file for test_heu_migration.
# This may be replaced when dependencies are built.
