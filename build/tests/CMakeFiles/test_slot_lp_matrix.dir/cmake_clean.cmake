file(REMOVE_RECURSE
  "CMakeFiles/test_slot_lp_matrix.dir/test_slot_lp_matrix.cpp.o"
  "CMakeFiles/test_slot_lp_matrix.dir/test_slot_lp_matrix.cpp.o.d"
  "test_slot_lp_matrix"
  "test_slot_lp_matrix.pdb"
  "test_slot_lp_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slot_lp_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
