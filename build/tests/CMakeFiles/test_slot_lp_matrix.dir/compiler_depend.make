# Empty compiler generated dependencies file for test_slot_lp_matrix.
# This may be replaced when dependencies are built.
