file(REMOVE_RECURSE
  "CMakeFiles/test_bandit.dir/test_bandit.cpp.o"
  "CMakeFiles/test_bandit.dir/test_bandit.cpp.o.d"
  "test_bandit"
  "test_bandit.pdb"
  "test_bandit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bandit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
