# Empty dependencies file for test_revised_simplex.
# This may be replaced when dependencies are built.
