file(REMOVE_RECURSE
  "CMakeFiles/test_revised_simplex.dir/test_revised_simplex.cpp.o"
  "CMakeFiles/test_revised_simplex.dir/test_revised_simplex.cpp.o.d"
  "test_revised_simplex"
  "test_revised_simplex.pdb"
  "test_revised_simplex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_revised_simplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
