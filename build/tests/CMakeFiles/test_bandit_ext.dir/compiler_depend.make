# Empty compiler generated dependencies file for test_bandit_ext.
# This may be replaced when dependencies are built.
