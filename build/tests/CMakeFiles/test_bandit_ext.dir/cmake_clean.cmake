file(REMOVE_RECURSE
  "CMakeFiles/test_bandit_ext.dir/test_bandit_ext.cpp.o"
  "CMakeFiles/test_bandit_ext.dir/test_bandit_ext.cpp.o.d"
  "test_bandit_ext"
  "test_bandit_ext.pdb"
  "test_bandit_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bandit_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
