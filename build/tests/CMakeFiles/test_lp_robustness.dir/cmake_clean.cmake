file(REMOVE_RECURSE
  "CMakeFiles/test_lp_robustness.dir/test_lp_robustness.cpp.o"
  "CMakeFiles/test_lp_robustness.dir/test_lp_robustness.cpp.o.d"
  "test_lp_robustness"
  "test_lp_robustness.pdb"
  "test_lp_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lp_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
