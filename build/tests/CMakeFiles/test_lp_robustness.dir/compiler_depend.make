# Empty compiler generated dependencies file for test_lp_robustness.
# This may be replaced when dependencies are built.
