# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_lp[1]_include.cmake")
include("/root/repo/build/tests/test_mec[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_bandit[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_revised_simplex[1]_include.cmake")
include("/root/repo/build/tests/test_bandit_ext[1]_include.cmake")
include("/root/repo/build/tests/test_failures[1]_include.cmake")
include("/root/repo/build/tests/test_mps[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_backhaul[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_heu_migration[1]_include.cmake")
include("/root/repo/build/tests/test_mobility[1]_include.cmake")
include("/root/repo/build/tests/test_learners[1]_include.cmake")
include("/root/repo/build/tests/test_lp_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_slot_lp_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_workload_stats[1]_include.cmake")
include("/root/repo/build/tests/test_validate[1]_include.cmake")
include("/root/repo/build/tests/test_arrivals[1]_include.cmake")
