file(REMOVE_RECURSE
  "CMakeFiles/hotspot_stress.dir/hotspot_stress.cpp.o"
  "CMakeFiles/hotspot_stress.dir/hotspot_stress.cpp.o.d"
  "hotspot_stress"
  "hotspot_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
