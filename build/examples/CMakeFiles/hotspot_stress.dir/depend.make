# Empty dependencies file for hotspot_stress.
# This may be replaced when dependencies are built.
