# Empty compiler generated dependencies file for hotspot_stress.
# This may be replaced when dependencies are built.
