file(REMOVE_RECURSE
  "CMakeFiles/mecar_bandit.dir/epsilon_greedy.cpp.o"
  "CMakeFiles/mecar_bandit.dir/epsilon_greedy.cpp.o.d"
  "CMakeFiles/mecar_bandit.dir/lipschitz.cpp.o"
  "CMakeFiles/mecar_bandit.dir/lipschitz.cpp.o.d"
  "CMakeFiles/mecar_bandit.dir/regret.cpp.o"
  "CMakeFiles/mecar_bandit.dir/regret.cpp.o.d"
  "CMakeFiles/mecar_bandit.dir/successive_elimination.cpp.o"
  "CMakeFiles/mecar_bandit.dir/successive_elimination.cpp.o.d"
  "CMakeFiles/mecar_bandit.dir/thompson.cpp.o"
  "CMakeFiles/mecar_bandit.dir/thompson.cpp.o.d"
  "CMakeFiles/mecar_bandit.dir/ucb1.cpp.o"
  "CMakeFiles/mecar_bandit.dir/ucb1.cpp.o.d"
  "CMakeFiles/mecar_bandit.dir/zooming.cpp.o"
  "CMakeFiles/mecar_bandit.dir/zooming.cpp.o.d"
  "libmecar_bandit.a"
  "libmecar_bandit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecar_bandit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
