# Empty dependencies file for mecar_bandit.
# This may be replaced when dependencies are built.
