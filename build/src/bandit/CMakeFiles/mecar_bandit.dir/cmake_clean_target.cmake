file(REMOVE_RECURSE
  "libmecar_bandit.a"
)
