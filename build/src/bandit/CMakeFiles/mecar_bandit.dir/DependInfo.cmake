
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bandit/epsilon_greedy.cpp" "src/bandit/CMakeFiles/mecar_bandit.dir/epsilon_greedy.cpp.o" "gcc" "src/bandit/CMakeFiles/mecar_bandit.dir/epsilon_greedy.cpp.o.d"
  "/root/repo/src/bandit/lipschitz.cpp" "src/bandit/CMakeFiles/mecar_bandit.dir/lipschitz.cpp.o" "gcc" "src/bandit/CMakeFiles/mecar_bandit.dir/lipschitz.cpp.o.d"
  "/root/repo/src/bandit/regret.cpp" "src/bandit/CMakeFiles/mecar_bandit.dir/regret.cpp.o" "gcc" "src/bandit/CMakeFiles/mecar_bandit.dir/regret.cpp.o.d"
  "/root/repo/src/bandit/successive_elimination.cpp" "src/bandit/CMakeFiles/mecar_bandit.dir/successive_elimination.cpp.o" "gcc" "src/bandit/CMakeFiles/mecar_bandit.dir/successive_elimination.cpp.o.d"
  "/root/repo/src/bandit/thompson.cpp" "src/bandit/CMakeFiles/mecar_bandit.dir/thompson.cpp.o" "gcc" "src/bandit/CMakeFiles/mecar_bandit.dir/thompson.cpp.o.d"
  "/root/repo/src/bandit/ucb1.cpp" "src/bandit/CMakeFiles/mecar_bandit.dir/ucb1.cpp.o" "gcc" "src/bandit/CMakeFiles/mecar_bandit.dir/ucb1.cpp.o.d"
  "/root/repo/src/bandit/zooming.cpp" "src/bandit/CMakeFiles/mecar_bandit.dir/zooming.cpp.o" "gcc" "src/bandit/CMakeFiles/mecar_bandit.dir/zooming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mecar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
