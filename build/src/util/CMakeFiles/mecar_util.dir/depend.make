# Empty dependencies file for mecar_util.
# This may be replaced when dependencies are built.
