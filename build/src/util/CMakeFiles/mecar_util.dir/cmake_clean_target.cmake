file(REMOVE_RECURSE
  "libmecar_util.a"
)
