file(REMOVE_RECURSE
  "CMakeFiles/mecar_util.dir/cli.cpp.o"
  "CMakeFiles/mecar_util.dir/cli.cpp.o.d"
  "CMakeFiles/mecar_util.dir/log.cpp.o"
  "CMakeFiles/mecar_util.dir/log.cpp.o.d"
  "CMakeFiles/mecar_util.dir/rng.cpp.o"
  "CMakeFiles/mecar_util.dir/rng.cpp.o.d"
  "CMakeFiles/mecar_util.dir/stats.cpp.o"
  "CMakeFiles/mecar_util.dir/stats.cpp.o.d"
  "CMakeFiles/mecar_util.dir/table.cpp.o"
  "CMakeFiles/mecar_util.dir/table.cpp.o.d"
  "libmecar_util.a"
  "libmecar_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecar_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
