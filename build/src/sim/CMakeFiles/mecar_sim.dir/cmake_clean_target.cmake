file(REMOVE_RECURSE
  "libmecar_sim.a"
)
