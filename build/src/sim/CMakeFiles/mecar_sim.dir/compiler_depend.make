# Empty compiler generated dependencies file for mecar_sim.
# This may be replaced when dependencies are built.
