file(REMOVE_RECURSE
  "CMakeFiles/mecar_sim.dir/dynamic_rr.cpp.o"
  "CMakeFiles/mecar_sim.dir/dynamic_rr.cpp.o.d"
  "CMakeFiles/mecar_sim.dir/metrics.cpp.o"
  "CMakeFiles/mecar_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/mecar_sim.dir/online_baselines.cpp.o"
  "CMakeFiles/mecar_sim.dir/online_baselines.cpp.o.d"
  "CMakeFiles/mecar_sim.dir/online_sim.cpp.o"
  "CMakeFiles/mecar_sim.dir/online_sim.cpp.o.d"
  "libmecar_sim.a"
  "libmecar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
