
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dynamic_rr.cpp" "src/sim/CMakeFiles/mecar_sim.dir/dynamic_rr.cpp.o" "gcc" "src/sim/CMakeFiles/mecar_sim.dir/dynamic_rr.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/mecar_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/mecar_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/online_baselines.cpp" "src/sim/CMakeFiles/mecar_sim.dir/online_baselines.cpp.o" "gcc" "src/sim/CMakeFiles/mecar_sim.dir/online_baselines.cpp.o.d"
  "/root/repo/src/sim/online_sim.cpp" "src/sim/CMakeFiles/mecar_sim.dir/online_sim.cpp.o" "gcc" "src/sim/CMakeFiles/mecar_sim.dir/online_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mecar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bandit/CMakeFiles/mecar_bandit.dir/DependInfo.cmake"
  "/root/repo/build/src/mec/CMakeFiles/mecar_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mecar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mecar_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
