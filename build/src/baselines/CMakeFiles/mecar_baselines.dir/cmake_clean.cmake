file(REMOVE_RECURSE
  "CMakeFiles/mecar_baselines.dir/greedy.cpp.o"
  "CMakeFiles/mecar_baselines.dir/greedy.cpp.o.d"
  "CMakeFiles/mecar_baselines.dir/heu_kkt.cpp.o"
  "CMakeFiles/mecar_baselines.dir/heu_kkt.cpp.o.d"
  "CMakeFiles/mecar_baselines.dir/ocorp.cpp.o"
  "CMakeFiles/mecar_baselines.dir/ocorp.cpp.o.d"
  "libmecar_baselines.a"
  "libmecar_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecar_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
