# Empty compiler generated dependencies file for mecar_baselines.
# This may be replaced when dependencies are built.
