file(REMOVE_RECURSE
  "libmecar_baselines.a"
)
