# Empty compiler generated dependencies file for mecar_mec.
# This may be replaced when dependencies are built.
