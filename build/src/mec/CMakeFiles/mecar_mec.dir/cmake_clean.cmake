file(REMOVE_RECURSE
  "CMakeFiles/mecar_mec.dir/request.cpp.o"
  "CMakeFiles/mecar_mec.dir/request.cpp.o.d"
  "CMakeFiles/mecar_mec.dir/topology.cpp.o"
  "CMakeFiles/mecar_mec.dir/topology.cpp.o.d"
  "CMakeFiles/mecar_mec.dir/trace.cpp.o"
  "CMakeFiles/mecar_mec.dir/trace.cpp.o.d"
  "CMakeFiles/mecar_mec.dir/workload.cpp.o"
  "CMakeFiles/mecar_mec.dir/workload.cpp.o.d"
  "libmecar_mec.a"
  "libmecar_mec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecar_mec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
