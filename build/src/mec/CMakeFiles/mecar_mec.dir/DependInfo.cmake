
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mec/request.cpp" "src/mec/CMakeFiles/mecar_mec.dir/request.cpp.o" "gcc" "src/mec/CMakeFiles/mecar_mec.dir/request.cpp.o.d"
  "/root/repo/src/mec/topology.cpp" "src/mec/CMakeFiles/mecar_mec.dir/topology.cpp.o" "gcc" "src/mec/CMakeFiles/mecar_mec.dir/topology.cpp.o.d"
  "/root/repo/src/mec/trace.cpp" "src/mec/CMakeFiles/mecar_mec.dir/trace.cpp.o" "gcc" "src/mec/CMakeFiles/mecar_mec.dir/trace.cpp.o.d"
  "/root/repo/src/mec/workload.cpp" "src/mec/CMakeFiles/mecar_mec.dir/workload.cpp.o" "gcc" "src/mec/CMakeFiles/mecar_mec.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mecar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
