file(REMOVE_RECURSE
  "libmecar_mec.a"
)
