file(REMOVE_RECURSE
  "libmecar_core.a"
)
