# Empty dependencies file for mecar_core.
# This may be replaced when dependencies are built.
