
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/appro.cpp" "src/core/CMakeFiles/mecar_core.dir/appro.cpp.o" "gcc" "src/core/CMakeFiles/mecar_core.dir/appro.cpp.o.d"
  "/root/repo/src/core/backhaul.cpp" "src/core/CMakeFiles/mecar_core.dir/backhaul.cpp.o" "gcc" "src/core/CMakeFiles/mecar_core.dir/backhaul.cpp.o.d"
  "/root/repo/src/core/exact.cpp" "src/core/CMakeFiles/mecar_core.dir/exact.cpp.o" "gcc" "src/core/CMakeFiles/mecar_core.dir/exact.cpp.o.d"
  "/root/repo/src/core/heu.cpp" "src/core/CMakeFiles/mecar_core.dir/heu.cpp.o" "gcc" "src/core/CMakeFiles/mecar_core.dir/heu.cpp.o.d"
  "/root/repo/src/core/rounding.cpp" "src/core/CMakeFiles/mecar_core.dir/rounding.cpp.o" "gcc" "src/core/CMakeFiles/mecar_core.dir/rounding.cpp.o.d"
  "/root/repo/src/core/slot_lp.cpp" "src/core/CMakeFiles/mecar_core.dir/slot_lp.cpp.o" "gcc" "src/core/CMakeFiles/mecar_core.dir/slot_lp.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/core/CMakeFiles/mecar_core.dir/types.cpp.o" "gcc" "src/core/CMakeFiles/mecar_core.dir/types.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/core/CMakeFiles/mecar_core.dir/validate.cpp.o" "gcc" "src/core/CMakeFiles/mecar_core.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/mecar_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/mec/CMakeFiles/mecar_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mecar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
