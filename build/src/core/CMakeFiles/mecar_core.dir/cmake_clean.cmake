file(REMOVE_RECURSE
  "CMakeFiles/mecar_core.dir/appro.cpp.o"
  "CMakeFiles/mecar_core.dir/appro.cpp.o.d"
  "CMakeFiles/mecar_core.dir/backhaul.cpp.o"
  "CMakeFiles/mecar_core.dir/backhaul.cpp.o.d"
  "CMakeFiles/mecar_core.dir/exact.cpp.o"
  "CMakeFiles/mecar_core.dir/exact.cpp.o.d"
  "CMakeFiles/mecar_core.dir/heu.cpp.o"
  "CMakeFiles/mecar_core.dir/heu.cpp.o.d"
  "CMakeFiles/mecar_core.dir/rounding.cpp.o"
  "CMakeFiles/mecar_core.dir/rounding.cpp.o.d"
  "CMakeFiles/mecar_core.dir/slot_lp.cpp.o"
  "CMakeFiles/mecar_core.dir/slot_lp.cpp.o.d"
  "CMakeFiles/mecar_core.dir/types.cpp.o"
  "CMakeFiles/mecar_core.dir/types.cpp.o.d"
  "CMakeFiles/mecar_core.dir/validate.cpp.o"
  "CMakeFiles/mecar_core.dir/validate.cpp.o.d"
  "libmecar_core.a"
  "libmecar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
