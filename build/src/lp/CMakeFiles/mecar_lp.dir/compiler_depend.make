# Empty compiler generated dependencies file for mecar_lp.
# This may be replaced when dependencies are built.
