file(REMOVE_RECURSE
  "CMakeFiles/mecar_lp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/mecar_lp.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/mecar_lp.dir/model.cpp.o"
  "CMakeFiles/mecar_lp.dir/model.cpp.o.d"
  "CMakeFiles/mecar_lp.dir/mps.cpp.o"
  "CMakeFiles/mecar_lp.dir/mps.cpp.o.d"
  "CMakeFiles/mecar_lp.dir/revised_simplex.cpp.o"
  "CMakeFiles/mecar_lp.dir/revised_simplex.cpp.o.d"
  "CMakeFiles/mecar_lp.dir/simplex.cpp.o"
  "CMakeFiles/mecar_lp.dir/simplex.cpp.o.d"
  "libmecar_lp.a"
  "libmecar_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecar_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
