file(REMOVE_RECURSE
  "libmecar_lp.a"
)
