# Empty compiler generated dependencies file for mecar_cli.
# This may be replaced when dependencies are built.
