file(REMOVE_RECURSE
  "CMakeFiles/mecar_cli.dir/mecar_cli.cpp.o"
  "CMakeFiles/mecar_cli.dir/mecar_cli.cpp.o.d"
  "mecar_cli"
  "mecar_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecar_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
